#include "nn/init.hpp"

#include <cmath>

namespace nshd::nn {

void kaiming_normal(Tensor& weight, std::int64_t fan_in, util::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (float& w : weight.span()) w = rng.normal(0.0f, stddev);
}

void xavier_uniform(Tensor& weight, std::int64_t fan_in, std::int64_t fan_out,
                    util::Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& w : weight.span()) w = rng.uniform(-a, a);
}

}  // namespace nshd::nn
