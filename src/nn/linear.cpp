#include "nn/linear.hpp"

#include <cassert>
#include <cstring>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}, "linear.weight"),
      bias_(Shape{out_features}, "linear.bias") {
  kaiming_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 2 && input.shape()[1] == in_features_);
  const std::int64_t batch = input.shape()[0];
  if (training) cached_input_ = input;

  Tensor output(Shape{batch, out_features_});
  // out[batch, out] = in[batch, in] * W[out, in]^T
  tensor::gemm_bt(input.data(), weight_.value.data(), output.data(), batch,
                  in_features_, out_features_);
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = output.data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
  return output;
}

void Linear::forward_into(const TensorView& in, TensorView out,
                          Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 2 && in.shape()[1] == in_features_);
  const std::int64_t batch = in.shape()[0];
  assert(out.shape() == Shape({batch, out_features_}));

  tensor::gemm_bt(in.data(), weight_.value.data(), out.data(), batch,
                  in_features_, out_features_);
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = out.data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
}

void Linear::backward_into(const TensorView& in, const TensorView& grad_out,
                           TensorView grad_in, Workspace& ws) {
  (void)ws;
  assert(in.shape().rank() == 2 && in.shape()[1] == in_features_);
  const std::int64_t batch = in.shape()[0];
  assert(grad_out.shape() == Shape({batch, out_features_}));
  assert(grad_in.shape() == in.shape());
  const float* gout = grad_out.data();

  // dW[out, in] += gout[batch, out]^T * in[batch, in] — the gemm kernel's
  // internal order is fixed, so the accumulation is thread-invariant.
  tensor::gemm_at(gout, in.data(), weight_.grad.data(), out_features_, batch,
                  in_features_, /*accumulate=*/true);
  // Bias grads: chunk over output features (each o written by one chunk
  // only); the inner n-ascending loop keeps the per-element add order of the
  // serial n-outer/o-inner loop, so sums are bitwise identical to it.
  util::parallel_for(0, out_features_, kTrainSampleGrain,
                     [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      for (std::int64_t n = 0; n < batch; ++n)
        bias_.grad[o] += gout[n * out_features_ + o];
    }
  });
  // dX[batch, in] = gout[batch, out] * W[out, in]
  tensor::gemm(gout, weight_.value.data(), grad_in.data(), batch,
               out_features_, in_features_);
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != Shape({cached_input_.shape()[0], out_features_}))
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(cached_input_.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(),
                ws);
  return grad_input;
}

Shape Linear::output_shape(const Shape& input) const {
  assert(input.rank() == 2);
  return Shape{input[0], out_features_};
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) cached_input_shape_ = input.shape();
  const std::int64_t batch = input.shape()[0];
  return input.reshaped(Shape{batch, input.numel() / batch});
}

void Flatten::forward_into(const TensorView& in, TensorView out,
                           Workspace& scratch) {
  (void)scratch;
  assert(out.numel() == in.numel());
  // Pure relabeling; only the bytes move (or stay, when run in place).
  if (out.data() == in.data() || in.numel() == 0) return;
  std::memcpy(out.data(), in.data(),
              static_cast<std::size_t>(in.numel()) * sizeof(float));
}

void Flatten::backward_into(const TensorView& in, const TensorView& grad_out,
                            TensorView grad_in, Workspace& ws) {
  (void)ws;
  (void)in;
  assert(grad_in.numel() == grad_out.numel());
  if (grad_out.numel() == 0) return;
  std::memcpy(grad_in.data(), grad_out.data(),
              static_cast<std::size_t>(grad_out.numel()) * sizeof(float));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() == 0)
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.numel() != cached_input_shape_.numel())
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_shape_.to_string());
  return grad_output.reshaped(cached_input_shape_);
}

Shape Flatten::output_shape(const Shape& input) const {
  return Shape{input[0], input.numel() / input[0]};
}

float Dropout::mask_at(std::uint64_t step, std::int64_t i) const {
  // Counter-based stream: one splitmix64 mix of (seed, step, element).  The
  // multipliers decorrelate the step and element axes; splitmix64 then
  // whitens the combined counter.  Matches util::Rng's bernoulli convention
  // (u < p drops) with a 53-bit uniform.
  std::uint64_t s = seed_ ^ (step * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ULL);
  const std::uint64_t z = util::splitmix64(s);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < static_cast<double>(probability_)
             ? 0.0f
             : 1.0f / (1.0f - probability_);
}

void Dropout::apply_mask_train(const float* in, float* out,
                               std::int64_t numel) {
  last_step_ = static_cast<std::uint64_t>(step_state_[0]);
  cached_numel_ = numel;
  const std::uint64_t step = last_step_;
  // One write per element; mask_at is a pure function of (step, i), so
  // chunking over elements is bitwise thread-invariant.
  util::parallel_for(0, numel, kTrainElemGrain,
                     [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) out[i] = in[i] * mask_at(step, i);
  });
  step_state_[0] = static_cast<float>(last_step_ + 1);
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || probability_ <= 0.0f) {
    cached_numel_ = -1;
    return input;
  }
  Tensor output(input.shape());
  apply_mask_train(input.data(), output.data(), input.numel());
  return output;
}

void Dropout::forward_into(const TensorView& in, TensorView out,
                           Workspace& scratch) {
  (void)scratch;
  assert(out.numel() == in.numel());
  // Inference dropout is the identity.  Leaves the mask stream untouched so
  // concurrent plan workers never race on layer state.
  if (out.data() == in.data() || in.numel() == 0) return;
  std::memcpy(out.data(), in.data(),
              static_cast<std::size_t>(in.numel()) * sizeof(float));
}

void Dropout::forward_train_into(const TensorView& in, TensorView out,
                                 Workspace& ws) {
  (void)ws;
  assert(out.numel() == in.numel());
  if (probability_ <= 0.0f) {
    cached_numel_ = -1;
    forward_into(in, out, ws);
    return;
  }
  apply_mask_train(in.data(), out.data(), in.numel());
}

void Dropout::backward_into(const TensorView& in, const TensorView& grad_out,
                            TensorView grad_in, Workspace& ws) {
  (void)ws;
  (void)in;
  if (cached_numel_ < 0) {
    // Last forward was inactive: identity.
    if (grad_out.numel() > 0)
      std::memcpy(grad_in.data(), grad_out.data(),
                  static_cast<std::size_t>(grad_out.numel()) * sizeof(float));
    return;
  }
  if (grad_out.numel() != cached_numel_)
    throw TrainingStateError(
        name() + "::backward: grad_output has " +
        std::to_string(grad_out.numel()) + " elements but the masked batch had " +
        std::to_string(cached_numel_));
  const float* gout = grad_out.data();
  float* gin = grad_in.data();
  const std::uint64_t step = last_step_;
  util::parallel_for(0, grad_out.numel(), kTrainElemGrain,
                     [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) gin[i] = gout[i] * mask_at(step, i);
  });
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cached_numel_ < 0) return grad_output;
  Tensor grad_input(grad_output.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  // backward_into reads only grad_out (the mask is counter-generated), so
  // the input view can be the gradient itself.
  backward_into(grad_output.view(), grad_output.view(), grad_input.view(), ws);
  return grad_input;
}

}  // namespace nshd::nn
