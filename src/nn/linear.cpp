#include "nn/linear.hpp"

#include <cassert>
#include <cstring>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace nshd::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Shape{out_features, in_features}, "linear.weight"),
      bias_(Shape{out_features}, "linear.bias") {
  kaiming_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 2 && input.shape()[1] == in_features_);
  const std::int64_t batch = input.shape()[0];
  if (training) cached_input_ = input;

  Tensor output(Shape{batch, out_features_});
  // out[batch, out] = in[batch, in] * W[out, in]^T
  tensor::gemm_bt(input.data(), weight_.value.data(), output.data(), batch,
                  in_features_, out_features_);
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = output.data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
  return output;
}

void Linear::forward_into(const TensorView& in, TensorView out,
                          Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 2 && in.shape()[1] == in_features_);
  const std::int64_t batch = in.shape()[0];
  assert(out.shape() == Shape({batch, out_features_}));

  tensor::gemm_bt(in.data(), weight_.value.data(), out.data(), batch,
                  in_features_, out_features_);
  for (std::int64_t n = 0; n < batch; ++n) {
    float* row = out.data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
}

Tensor Linear::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty());
  const std::int64_t batch = cached_input_.shape()[0];

  // dW[out, in] += gout[batch, out]^T * in[batch, in]
  tensor::gemm_at(grad_output.data(), cached_input_.data(), weight_.grad.data(),
                  out_features_, batch, in_features_, /*accumulate=*/true);
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data() + n * out_features_;
    for (std::int64_t o = 0; o < out_features_; ++o) bias_.grad[o] += row[o];
  }
  // dX[batch, in] = gout[batch, out] * W[out, in]
  Tensor grad_input(Shape{batch, in_features_});
  tensor::gemm(grad_output.data(), weight_.value.data(), grad_input.data(),
               batch, out_features_, in_features_);
  return grad_input;
}

Shape Linear::output_shape(const Shape& input) const {
  assert(input.rank() == 2);
  return Shape{input[0], out_features_};
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) cached_input_shape_ = input.shape();
  const std::int64_t batch = input.shape()[0];
  return input.reshaped(Shape{batch, input.numel() / batch});
}

void Flatten::forward_into(const TensorView& in, TensorView out,
                           Workspace& scratch) {
  (void)scratch;
  assert(out.numel() == in.numel());
  // Pure relabeling; only the bytes move (or stay, when run in place).
  if (out.data() == in.data() || in.numel() == 0) return;
  std::memcpy(out.data(), in.data(),
              static_cast<std::size_t>(in.numel()) * sizeof(float));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  assert(cached_input_shape_.rank() > 0);
  return grad_output.reshaped(cached_input_shape_);
}

Shape Flatten::output_shape(const Shape& input) const {
  return Shape{input[0], input.numel() / input[0]};
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  if (!training || probability_ <= 0.0f) {
    mask_ = Tensor();
    return input;
  }
  mask_ = Tensor(input.shape());
  Tensor output(input.shape());
  const float keep_scale = 1.0f / (1.0f - probability_);
  const float* in = input.data();
  float* m = mask_.data();
  float* out = output.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    m[i] = rng_->bernoulli(probability_) ? 0.0f : keep_scale;
    out[i] = in[i] * m[i];
  }
  return output;
}

void Dropout::forward_into(const TensorView& in, TensorView out,
                           Workspace& scratch) {
  (void)scratch;
  assert(out.numel() == in.numel());
  // Inference dropout is the identity.  Unlike forward(), this leaves mask_
  // untouched so concurrent plan workers never race on layer state.
  if (out.data() == in.data() || in.numel() == 0) return;
  std::memcpy(out.data(), in.data(),
              static_cast<std::size_t>(in.numel()) * sizeof(float));
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor grad_input(grad_output.shape());
  const float* gout = grad_output.data();
  const float* m = mask_.data();
  float* gin = grad_input.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) gin[i] = gout[i] * m[i];
  return grad_input;
}

}  // namespace nshd::nn
