// Shape-inferred execution plan for one fused training step.
//
// A TrainingPlan binds a Sequential to a fixed per-sample input shape and a
// maximum batch, sizes one workspace for the whole forward+backward schedule
// (pinned activation tape, logit/gradient buffers, per-layer training
// scratch), and then runs step() — forward_train_into, fused softmax-CE, and
// backward_into — with zero heap allocations on the hot path.  Buffers
// ping-pong through the leased arena exactly as in InferencePlan; the
// saved-for-backward activations are pinned for the lifetime of the step.
//
// Gradients are accumulated with the deterministic chunked scheme described
// in DESIGN.md ("Planned training & gradient accumulation"): results are
// bitwise identical to the legacy allocating Layer::backward path (which
// delegates to the same backward_into kernels) and invariant to NSHD_THREADS.
//
// Unlike InferencePlan, a TrainingPlan is NOT thread-safe: training mutates
// layer state (batch-norm statistics, dropout streams, parameter grads), so
// there is exactly one workspace and steps must be serialized.
//
// Fault site: "train.grad_nan" poisons the logit gradient before backward,
// exercising the trainer's divergence rollback through the planned path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace nshd::nn {

/// Loss/accuracy of one planned training step (batch means, like the legacy
/// path's LossResult).
struct TrainStepStats {
  double loss = 0.0;
  std::int64_t correct = 0;
};

class TrainingPlan {
 public:
  /// Plans full fwd+bwd over `net` for per-sample CHW shape `sample_chw`.
  /// `max_batch` sizes the reserved workspace; smaller final batches are
  /// fine, larger ones grow the arena for the call.  The net must end in a
  /// rank-2 [N, K] logit producer and must outlive the plan; step() mutates
  /// the net (grads, batch-norm stats), so keep steps serialized.
  TrainingPlan(Sequential& net, Shape sample_chw, std::int64_t max_batch = 32);

  TrainingPlan(const TrainingPlan&) = delete;
  TrainingPlan& operator=(const TrainingPlan&) = delete;

  const Shape& sample_chw() const { return sample_chw_; }
  std::int64_t max_batch() const { return max_batch_; }
  std::int64_t classes() const { return classes_; }

  /// One fused training step over images = [N, C, H, W]: training forward,
  /// softmax cross-entropy (loss + grad in workspace memory), backward with
  /// gradient accumulation into the net's params.  Does NOT run the
  /// optimizer — the caller steps it, exactly like the legacy loop.  Throws
  /// TrainingStateError on a shape/label-count mismatch.
  TrainStepStats step(const TensorView& images,
                      const std::vector<std::int64_t>& labels);

  /// Shape-inferred workspace budget reserved at construction.
  std::size_t planned_workspace_bytes() const {
    return planned_floats_ * sizeof(float);
  }
  /// Observed high-water workspace usage across all steps.
  std::size_t peak_workspace_bytes() const { return ws_.peak_bytes(); }

 private:
  Sequential* net_;
  Shape sample_chw_;
  std::int64_t max_batch_;
  std::int64_t classes_ = 0;
  std::size_t planned_floats_ = 0;
  Workspace ws_;
};

}  // namespace nshd::nn
