// Composite building blocks for the MobileNetV2 / EfficientNet model zoo:
//   * SqueezeExcite  — channel-attention gate (EfficientNet MBConv).
//   * MBConvBlock    — expansion 1x1 / depthwise 3x3 / (SE) / project 1x1
//                      with optional residual; with expand_ratio handling and
//                      ReLU6 this doubles as MobileNetV2's InvertedResidual.
//
// Blocks own an internal Sequential; residual and SE wiring are handled in
// the block's own forward/backward.
#pragma once

#include "nn/activation.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

/// Squeeze-and-Excitation: s = sigmoid(W2 act(W1 gap(x))); y = x * s.
class SqueezeExcite final : public Layer {
 public:
  SqueezeExcite(std::int64_t channels, std::int64_t reduced, Activation act,
                util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  /// Recomputes the pooled/hidden/gate intermediates from `in` with the
  /// exact forward expressions (bitwise equal to caching them), then runs
  /// the gradient math — so training needs no [N, C]-sized caches at all.
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  std::int64_t scratch_floats(const Shape& input) const override;
  std::int64_t train_scratch_floats(const Shape& input) const override;
  bool inplace_eval() const override { return true; }
  std::vector<Param*> params() override { return {&w1_, &b1_, &w2_, &b2_}; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerKind kind() const override { return LayerKind::kBlock; }
  std::string name() const override {
    return "SqueezeExcite(" + std::to_string(channels_) + "->" + std::to_string(reduced_) + ")";
  }
  std::int64_t macs_per_sample(const Shape& input_chw) const override;

 private:
  std::int64_t channels_, reduced_;
  Activation act_;
  Param w1_, b1_;  // [reduced, channels], [reduced]
  Param w2_, b2_;  // [channels, reduced], [channels]
  // Legacy-path cache: just the input; everything else is recomputed.
  Tensor cached_input_;
};

struct MBConvConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t expand_ratio = 1;   // 1 disables the expansion conv
  std::int64_t kernel = 3;         // depthwise kernel
  std::int64_t stride = 1;
  bool use_se = false;             // EfficientNet: true; MobileNetV2: false
  std::int64_t se_reduction = 4;   // SE bottleneck = expanded / se_reduction
  Activation activation = Activation::kSiLU;  // ReLU6 for MobileNetV2
};

/// Mobile inverted bottleneck block.  Residual applies when stride==1 and
/// in_channels==out_channels (the projection output is linear, per both
/// papers).
class MBConvBlock final : public Layer {
 public:
  MBConvBlock(const MBConvConfig& config, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void forward_train_into(const TensorView& in, TensorView out,
                          Workspace& ws) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  std::int64_t scratch_floats(const Shape& input) const override;
  std::int64_t train_scratch_floats(const Shape& input) const override;
  std::int64_t train_pinned_floats(const Shape& input) const override;
  std::vector<Param*> params() override { return body_.params(); }
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kBlock; }
  std::string name() const override;
  std::int64_t macs_per_sample(const Shape& input_chw) const override {
    return body_.macs_per_sample(input_chw);
  }

  const MBConvConfig& config() const { return config_; }
  bool has_residual() const { return residual_; }

  void append_state(std::vector<Tensor*>& state) override {
    body_.append_state(state);
  }

 private:
  MBConvConfig config_;
  bool residual_;
  Sequential body_;
};

}  // namespace nshd::nn
