#include "nn/optimizer.hpp"

#include <cmath>

namespace nshd::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), momentum_(momentum), weight_decay_(weight_decay) {
  learning_rate_ = lr;
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    tensor::Tensor& vel = velocity_[i];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* v = vel.data();
    const std::int64_t n = p.value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= learning_rate_ * v[j];
      g[j] = 0.0f;
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  learning_rate_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  step_count_[0] += 1.0f;
  const float bias1 = 1.0f - std::pow(beta1_, step_count_[0]);
  const float bias2 = 1.0f - std::pow(beta2_, step_count_[0]);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    float* w = p.value.data();
    float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = p.value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      w[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      g[j] = 0.0f;
    }
  }
}

}  // namespace nshd::nn
