// Pooling layers: MaxPool2d and global average pooling.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace nshd::nn {

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kMaxPool; }
  std::string name() const override {
    return "MaxPool2d(k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) + ")";
  }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
  // Legacy-path cache: the input itself; backward_into recomputes the argmax
  // selection from it (same loop as forward, so the scatter is bitwise equal
  // to scattering through a cached index table).
  Tensor cached_input_;
};

/// Global average pool: [N, C, H, W] -> [N, C, 1, 1].
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  /// Reads only in.shape(): the mean adjoint is data-independent.
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kAvgPool; }
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace nshd::nn
