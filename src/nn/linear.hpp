// Fully-connected layer, plus Flatten and Dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

/// y = W x + b with W of shape [out_features, in_features].
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kLinear; }
  std::string name() const override {
    return "Linear(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) + ")";
  }
  std::int64_t macs_per_sample(const Shape& input_chw) const override {
    (void)input_chw;
    return in_features_ * out_features_;
  }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  Param weight_, bias_;
  Tensor cached_input_;
};

/// [N, C, H, W] (or [N, F]) -> [N, C*H*W].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  /// Pure relabeling: copies grad_out into grad_in (shapes differ, bytes
  /// don't).  Reads nothing from `in` but its shape.
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  bool inplace_eval() const override { return true; }
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training,
/// identity during inference.
///
/// The mask is a counter-based stream: element i of training step s is a pure
/// function mask_at(s, i) of (seed, s, i), where the seed is drawn once from
/// the construction-time Rng and the step counter lives in a checkpointable
/// tensor (append_state).  This makes masks bitwise reproducible at any
/// NSHD_THREADS, identical between the legacy and planned training paths
/// (both evaluate the same function), and exactly resumable after
/// kill-restore — with no stored mask tensor at all.
class Dropout final : public Layer {
 public:
  Dropout(float probability, util::Rng& rng)
      : probability_(probability), seed_(rng.next_u64()) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void forward_train_into(const TensorView& in, TensorView out,
                          Workspace& ws) override;
  /// Reads only grad_out (the mask is regenerated from the step counter).
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  void append_state(std::vector<Tensor*>& state) override {
    state.push_back(&step_state_);
  }
  bool inplace_eval() const override { return true; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerKind kind() const override { return LayerKind::kDropout; }
  std::string name() const override {
    return "Dropout(p=" + std::to_string(probability_) + ")";
  }

  float probability() const { return probability_; }

 private:
  float mask_at(std::uint64_t step, std::int64_t i) const;
  /// Shared by forward() and forward_train_into(): applies the step's mask
  /// and advances the checkpointed counter.
  void apply_mask_train(const float* in, float* out, std::int64_t numel);

  float probability_;
  std::uint64_t seed_;
  // Training-step counter, stored as a 1-element tensor so checkpoints carry
  // it (same pattern as Adam's step_count_).  Exact in float far beyond any
  // realistic step count.
  Tensor step_state_{Shape{1}};
  // Step the last training forward used, and its element count; backward
  // regenerates the identical mask from these.  cached_numel_ < 0 means the
  // last forward was inactive (eval or p <= 0), i.e. identity.
  std::uint64_t last_step_ = 0;
  std::int64_t cached_numel_ = -1;
};

}  // namespace nshd::nn
