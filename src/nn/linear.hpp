// Fully-connected layer, plus Flatten and Dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

/// y = W x + b with W of shape [out_features, in_features].
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kLinear; }
  std::string name() const override {
    return "Linear(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) + ")";
  }
  std::int64_t macs_per_sample(const Shape& input_chw) const override {
    (void)input_chw;
    return in_features_ * out_features_;
  }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  Param weight_, bias_;
  Tensor cached_input_;
};

/// [N, C, H, W] (or [N, F]) -> [N, C*H*W].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  bool inplace_eval() const override { return true; }
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training,
/// identity during inference.
class Dropout final : public Layer {
 public:
  Dropout(float probability, util::Rng& rng) : probability_(probability), rng_(&rng) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  bool inplace_eval() const override { return true; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerKind kind() const override { return LayerKind::kDropout; }
  std::string name() const override {
    return "Dropout(p=" + std::to_string(probability_) + ")";
  }

 private:
  float probability_;
  util::Rng* rng_;
  Tensor mask_;
};

}  // namespace nshd::nn
