// Serialization of a layer's persistent state (params + running stats).
//
// The primary format is the util::Checkpoint artifact (NSHDKPT1): a full
// per-tensor shape table plus CRCs, so a stale or corrupt file is rejected
// with a named LoadStatus instead of being loaded as garbage.  The flat
// float-blob form is kept for in-memory snapshots and legacy call sites.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "util/checkpoint.hpp"

namespace nshd::nn {

/// Collects all state tensors of `layer` (shape-tagged) into a checkpoint.
util::Checkpoint checkpoint_state(Layer& layer, std::string key = {},
                                  std::string meta = {});

/// Restores state previously produced by checkpoint_state.  Returns
/// kShapeMismatch (layer untouched) when the tensor count or any tensor's
/// dims differ — including same-numel reshapes, which the flat blob's
/// fingerprint could not distinguish.
util::LoadStatus load_state(Layer& layer, const util::Checkpoint& checkpoint);

/// Serializes all state tensors of `layer` into one flat blob.  The first
/// element is a fingerprint of the full per-tensor shape layout so that a
/// stale blob from a different architecture is rejected on load.
std::vector<float> save_state(Layer& layer);

/// Restores state previously produced by save_state.  Returns false (and
/// leaves the layer untouched) when the blob does not match the layer's
/// layout.  The fingerprint is compared as raw bits, so layouts whose hash
/// happens to form a NaN float pattern still round-trip.
bool load_state(Layer& layer, const std::vector<float>& blob);

/// Number of parameter floats (not counting running stats).
std::int64_t parameter_count(Layer& layer);

}  // namespace nshd::nn
