// Flat serialization of a layer's persistent state (params + running stats)
// into a single float blob, used with util::DiskCache to memoize the
// pretrained teacher CNNs.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace nshd::nn {

/// Serializes all state tensors of `layer` into one flat blob.  The first
/// element is a checksum of the tensor-count/shape layout so that a stale
/// cache from a different architecture is rejected on load.
std::vector<float> save_state(Layer& layer);

/// Restores state previously produced by save_state.  Returns false (and
/// leaves the layer untouched) when the blob does not match the layer's
/// layout.
bool load_state(Layer& layer, const std::vector<float>& blob);

/// Number of parameter floats (not counting running stats).
std::int64_t parameter_count(Layer& layer);

}  // namespace nshd::nn
