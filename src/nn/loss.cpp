#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace nshd::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  assert(logits.shape().rank() == 2);
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  assert(static_cast<std::int64_t>(labels.size()) == batch);

  LossResult result;
  result.probabilities = tensor::softmax(logits);
  result.grad_logits = result.probabilities;

  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total = 0.0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t label = labels[static_cast<std::size_t>(n)];
    assert(label >= 0 && label < classes);
    const float p = result.probabilities.at(n, label);
    total -= std::log(std::max(p, 1e-12f));
    result.grad_logits.at(n, label) -= 1.0f;
    if (tensor::argmax_row(result.probabilities, n) == label) ++result.correct;
  }
  for (std::int64_t i = 0; i < result.grad_logits.numel(); ++i)
    result.grad_logits[i] *= inv_batch;
  result.loss = total / static_cast<double>(batch);
  return result;
}

LossStats softmax_cross_entropy_into(const tensor::TensorView& logits,
                                     const std::vector<std::int64_t>& labels,
                                     tensor::TensorView grad_logits) {
  assert(logits.shape().rank() == 2);
  assert(grad_logits.shape() == logits.shape());
  assert(grad_logits.data() != logits.data());
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != batch)
    throw TrainingStateError("softmax_cross_entropy_into: " +
                             std::to_string(labels.size()) +
                             " labels for a batch of " + std::to_string(batch));

  LossStats stats;
  double total = 0.0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t label = labels[static_cast<std::size_t>(n)];
    if (label < 0 || label >= classes)
      throw TrainingStateError("softmax_cross_entropy_into: label " +
                               std::to_string(label) + " outside [0, " +
                               std::to_string(classes) + ")");
    const float* row = logits.data() + n * classes;
    float* g = grad_logits.data() + n * classes;
    // Row softmax with the exact float-op sequence of tensor::softmax at
    // temperature 1 (division by 1.0f is an identity), computed into the
    // gradient row instead of a fresh tensor.
    float hi = row[0];
    for (std::int64_t i = 1; i < classes; ++i) hi = std::max(hi, row[i]);
    double z = 0.0;
    for (std::int64_t i = 0; i < classes; ++i) {
      g[i] = std::exp((row[i] - hi) / 1.0f);
      z += g[i];
    }
    const auto inv = static_cast<float>(1.0 / z);
    for (std::int64_t i = 0; i < classes; ++i) g[i] *= inv;

    const float p = g[label];
    total -= std::log(std::max(p, 1e-12f));
    // Argmax before the onehot subtraction, first-max-wins — the order
    // softmax_cross_entropy evaluates it in.
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < classes; ++i)
      if (g[i] > g[best]) best = i;
    if (best == label) ++stats.correct;
    g[label] -= 1.0f;
  }
  const float inv_batch = 1.0f / static_cast<float>(batch);
  const std::int64_t numel = batch * classes;
  float* g = grad_logits.data();
  for (std::int64_t i = 0; i < numel; ++i) g[i] *= inv_batch;
  stats.loss = total / static_cast<double>(batch);
  return stats;
}

}  // namespace nshd::nn
