#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

#include "tensor/ops.hpp"

namespace nshd::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels) {
  assert(logits.shape().rank() == 2);
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  assert(static_cast<std::int64_t>(labels.size()) == batch);

  LossResult result;
  result.probabilities = tensor::softmax(logits);
  result.grad_logits = result.probabilities;

  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total = 0.0;
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t label = labels[static_cast<std::size_t>(n)];
    assert(label >= 0 && label < classes);
    const float p = result.probabilities.at(n, label);
    total -= std::log(std::max(p, 1e-12f));
    result.grad_logits.at(n, label) -= 1.0f;
    if (tensor::argmax_row(result.probabilities, n) == label) ++result.correct;
  }
  for (std::int64_t i = 0; i < result.grad_logits.numel(); ++i)
    result.grad_logits[i] *= inv_batch;
  result.loss = total / static_cast<double>(batch);
  return result;
}

}  // namespace nshd::nn
