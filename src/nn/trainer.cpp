#include "nn/trainer.hpp"

#include <cmath>
#include <cstring>

#include "tensor/ops.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace nshd::nn {

TrainReport train_classifier(Sequential& model, const data::Dataset& train,
                             const TrainConfig& config,
                             const std::function<void(const EpochStats&)>& on_epoch) {
  util::Rng rng(config.seed);
  Sgd optimizer(model.params(), config.learning_rate, config.momentum,
                config.weight_decay);
  data::BatchIterator batches(train, config.batch_size, rng);

  TrainReport report;
  const std::int64_t total_steps =
      std::max<std::int64_t>(1, config.epochs * batches.batches_per_epoch());
  std::int64_t step = 0;

  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    util::Stopwatch watch;
    batches.reset();
    tensor::Tensor images;
    std::vector<std::int64_t> labels;
    double loss_sum = 0.0;
    std::int64_t correct = 0, seen = 0, batch_count = 0;

    while (batches.next(images, labels)) {
      // Cosine learning-rate schedule.
      const double progress = static_cast<double>(step) / static_cast<double>(total_steps);
      const float lr = config.learning_rate *
                       (config.min_lr_fraction +
                        (1.0f - config.min_lr_fraction) *
                            0.5f * (1.0f + static_cast<float>(std::cos(progress * 3.14159265))));
      optimizer.set_learning_rate(lr);

      tensor::Tensor logits = model.forward(images, /*training=*/true);
      LossResult loss = softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      optimizer.step();

      loss_sum += loss.loss;
      correct += loss.correct;
      seen += static_cast<std::int64_t>(labels.size());
      ++batch_count;
      ++step;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / std::max<std::int64_t>(1, batch_count);
    stats.accuracy = static_cast<double>(correct) / std::max<std::int64_t>(1, seen);
    stats.seconds = watch.seconds();
    report.epochs.push_back(stats);
    report.final_train_accuracy = stats.accuracy;
    NSHD_LOG_INFO("epoch %lld: loss=%.4f acc=%.4f (%.1fs)",
                  static_cast<long long>(epoch), stats.loss, stats.accuracy,
                  stats.seconds);
    if (on_epoch) on_epoch(stats);
    if (config.target_train_accuracy > 0.0f &&
        stats.accuracy >= config.target_train_accuracy) {
      NSHD_LOG_INFO("early stop at epoch %lld (train acc %.4f)",
                    static_cast<long long>(epoch), stats.accuracy);
      break;
    }
  }
  return report;
}

double evaluate_classifier(Sequential& model, const data::Dataset& dataset,
                           std::int64_t batch_size) {
  util::Rng rng(1);
  data::BatchIterator batches(dataset, batch_size, rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t correct = 0, seen = 0;
  while (batches.next(images, labels)) {
    const tensor::Tensor logits = model.forward(images, /*training=*/false);
    for (std::int64_t n = 0; n < logits.shape()[0]; ++n) {
      if (tensor::argmax_row(logits, n) == labels[static_cast<std::size_t>(n)]) ++correct;
      ++seen;
    }
  }
  return static_cast<double>(correct) / std::max<std::int64_t>(1, seen);
}

tensor::Tensor predict_logits(Sequential& model, const data::Dataset& dataset,
                              std::int64_t batch_size) {
  util::Rng rng(1);
  data::BatchIterator batches(dataset, batch_size, rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  tensor::Tensor all;
  std::int64_t row = 0;
  while (batches.next(images, labels)) {
    const tensor::Tensor logits = model.forward(images, /*training=*/false);
    if (all.empty()) {
      all = tensor::Tensor(tensor::Shape{dataset.size(), logits.shape()[1]});
    }
    std::memcpy(all.data() + row * logits.shape()[1], logits.data(),
                static_cast<std::size_t>(logits.numel()) * sizeof(float));
    row += logits.shape()[0];
  }
  return all;
}

}  // namespace nshd::nn
