#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>

#include "data/pipeline.hpp"
#include "nn/plan.hpp"
#include "nn/train_plan.hpp"
#include "tensor/ops.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {

namespace {

bool all_finite(const std::vector<tensor::Tensor*>& state) {
  for (const tensor::Tensor* t : state)
    for (const float v : t->span())
      if (!std::isfinite(v)) return false;
  return true;
}

std::vector<tensor::Tensor> clone_state(const std::vector<tensor::Tensor*>& src) {
  std::vector<tensor::Tensor> out;
  out.reserve(src.size());
  for (const tensor::Tensor* t : src) out.push_back(*t);
  return out;
}

/// Copies snapshot tensors back into the live state; false on layout drift.
bool restore_state(const std::vector<tensor::Tensor>& snapshot,
                   const std::vector<tensor::Tensor*>& dst) {
  if (snapshot.size() != dst.size()) return false;
  for (std::size_t i = 0; i < dst.size(); ++i)
    if (snapshot[i].numel() != dst[i]->numel()) return false;
  for (std::size_t i = 0; i < dst.size(); ++i)
    std::memcpy(dst[i]->data(), snapshot[i].data(),
                static_cast<std::size_t>(dst[i]->numel()) * sizeof(float));
  return true;
}

}  // namespace

util::Checkpoint TrainCheckpoint::to_artifact(std::string key) const {
  util::Checkpoint artifact;
  artifact.key = std::move(key);
  char meta[160];
  // %a round-trips lr_scale bitwise through the text field.
  std::snprintf(meta, sizeof meta,
                "train|epochs_done=%lld;recoveries=%lld;lr_scale=%a;model_tensors=%zu",
                static_cast<long long>(epochs_done),
                static_cast<long long>(recoveries),
                static_cast<double>(lr_scale), model_state.size());
  artifact.meta = meta;
  artifact.tensors.reserve(model_state.size() + optimizer_state.size());
  for (const auto* bank : {&model_state, &optimizer_state}) {
    for (const tensor::Tensor& t : *bank) {
      util::CheckpointTensor ct;
      ct.dims = t.shape().dims();
      ct.values = t.storage();
      artifact.tensors.push_back(std::move(ct));
    }
  }
  return artifact;
}

std::optional<TrainCheckpoint> TrainCheckpoint::from_artifact(
    const util::Checkpoint& artifact) {
  long long epochs_done = 0, recoveries = 0;
  double lr_scale = 1.0;
  std::size_t model_tensors = 0;
  if (std::sscanf(artifact.meta.c_str(),
                  "train|epochs_done=%lld;recoveries=%lld;lr_scale=%la;model_tensors=%zu",
                  &epochs_done, &recoveries, &lr_scale, &model_tensors) != 4)
    return std::nullopt;
  if (model_tensors > artifact.tensors.size()) return std::nullopt;

  TrainCheckpoint tc;
  tc.epochs_done = epochs_done;
  tc.recoveries = recoveries;
  tc.lr_scale = static_cast<float>(lr_scale);
  for (std::size_t i = 0; i < artifact.tensors.size(); ++i) {
    const util::CheckpointTensor& ct = artifact.tensors[i];
    tensor::Tensor t(tensor::Shape(ct.dims), ct.values);
    (i < model_tensors ? tc.model_state : tc.optimizer_state).push_back(std::move(t));
  }
  return tc;
}

TrainReport train_classifier(Sequential& model, const data::Dataset& train,
                             const TrainConfig& config, const EpochHook& on_epoch,
                             const TrainCheckpoint* resume) {
  util::Rng rng(config.seed);
  Sgd optimizer(model.params(), config.learning_rate, config.momentum,
                config.weight_decay);
  // Batch assembly overlaps the training step through the prefetch pipeline;
  // its batch stream is bitwise identical to the legacy BatchIterator at
  // every depth (0 = synchronous).
  const int prefetch =
      config.prefetch_depth >= 0
          ? std::min(config.prefetch_depth, data::kMaxPrefetchDepth)
          : data::prefetch_depth_from_env();
  data::BatchPipeline batches(train, config.batch_size, rng, prefetch);

  // The planned path runs the whole step — training forward, fused
  // softmax-CE, backward — out of one preplanned workspace with zero heap
  // traffic; results are bitwise identical to the legacy loop below.
  std::optional<TrainingPlan> plan;
  if (config.planned && train.size() > 0)
    plan.emplace(model, train.sample_shape(), config.batch_size);

  std::vector<tensor::Tensor*> model_state;
  model.append_state(model_state);
  std::vector<tensor::Tensor*> optimizer_state;
  optimizer.append_state(optimizer_state);

  TrainReport report;
  std::int64_t first_epoch = 0;
  float lr_scale = 1.0f;
  std::int64_t recoveries = 0;

  if (resume != nullptr) {
    if (restore_state(resume->model_state, model_state) &&
        restore_state(resume->optimizer_state, optimizer_state)) {
      first_epoch = std::min(resume->epochs_done, config.epochs);
      lr_scale = resume->lr_scale;
      recoveries = resume->recoveries;
      report.resumed_from_epoch = first_epoch;
      // Replay the shuffle stream the skipped epochs consumed, so epoch
      // `first_epoch` draws exactly the batches it would have in an
      // uninterrupted run.
      for (std::int64_t e = 0; e < first_epoch; ++e) batches.reset();
      NSHD_LOG_INFO("resuming training at epoch %lld",
                    static_cast<long long>(first_epoch));
    } else {
      NSHD_LOG_WARN("resume checkpoint does not match the model layout; "
                    "training from scratch");
    }
  }

  // Rollback target for divergence recovery; before the first completed
  // epoch this is the initial (or resumed) state.
  TrainCheckpoint last_good;
  last_good.epochs_done = first_epoch;
  last_good.lr_scale = lr_scale;
  last_good.recoveries = recoveries;
  last_good.model_state = clone_state(model_state);
  last_good.optimizer_state = clone_state(optimizer_state);

  const std::int64_t batches_per_epoch = batches.batches_per_epoch();
  const std::int64_t total_steps =
      std::max<std::int64_t>(1, config.epochs * batches_per_epoch);
  std::int64_t step = first_epoch * batches_per_epoch;

  std::int64_t epoch = first_epoch;
  while (epoch < config.epochs) {
    util::Stopwatch watch;
    batches.reset();
    tensor::TensorView images;
    std::vector<std::int64_t> labels;
    double loss_sum = 0.0;
    std::int64_t correct = 0, seen = 0, batch_count = 0;

    while (batches.next(images, labels)) {
      // Cosine learning-rate schedule, scaled by the divergence backoff.
      const double progress = static_cast<double>(step) / static_cast<double>(total_steps);
      const float lr = config.learning_rate * lr_scale *
                       (config.min_lr_fraction +
                        (1.0f - config.min_lr_fraction) *
                            0.5f * (1.0f + static_cast<float>(std::cos(progress * 3.14159265))));
      optimizer.set_learning_rate(lr);

      double batch_loss = 0.0;
      std::int64_t batch_correct = 0;
      if (plan.has_value()) {
        const TrainStepStats stats = plan->step(images, labels);
        batch_loss = stats.loss;
        batch_correct = stats.correct;
      } else {
        tensor::Tensor batch = tensor::Tensor::from_view(images);
        tensor::Tensor logits = model.forward(batch, /*training=*/true);
        LossResult loss = softmax_cross_entropy(logits, labels);
        batch_loss = loss.loss;
        batch_correct = loss.correct;
        model.backward(loss.grad_logits);
      }
      if (util::fault::should_fire("trainer.nan_loss"))
        batch_loss = std::numeric_limits<double>::quiet_NaN();
      optimizer.step();

      loss_sum += batch_loss;
      correct += batch_correct;
      seen += static_cast<std::int64_t>(labels.size());
      ++batch_count;
      ++step;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / std::max<std::int64_t>(1, batch_count);
    stats.accuracy = static_cast<double>(correct) / std::max<std::int64_t>(1, seen);
    stats.seconds = watch.seconds();

    if (config.recover_divergence &&
        (!std::isfinite(stats.loss) || !all_finite(model_state))) {
      restore_state(last_good.model_state, model_state);
      restore_state(last_good.optimizer_state, optimizer_state);
      step = epoch * batches_per_epoch;  // rewind the schedule too
      if (recoveries >= config.max_divergence_retries) {
        report.diverged = true;
        report.divergence_recoveries = recoveries;
        NSHD_LOG_ERROR("epoch %lld diverged and retries are exhausted (%lld); "
                       "keeping the last finite weights",
                       static_cast<long long>(epoch),
                       static_cast<long long>(recoveries));
        return report;
      }
      ++recoveries;
      lr_scale *= config.divergence_backoff;
      NSHD_LOG_WARN("epoch %lld produced a non-finite loss/weight; rolled back "
                    "to epoch %lld, retrying with lr scale %.4g (recovery %lld)",
                    static_cast<long long>(epoch),
                    static_cast<long long>(last_good.epochs_done), lr_scale,
                    static_cast<long long>(recoveries));
      continue;  // retry the same epoch index
    }

    report.epochs.push_back(stats);
    report.final_train_accuracy = stats.accuracy;
    report.divergence_recoveries = recoveries;
    NSHD_LOG_INFO("epoch %lld: loss=%.4f acc=%.4f (%.1fs)",
                  static_cast<long long>(epoch), stats.loss, stats.accuracy,
                  stats.seconds);

    last_good.epochs_done = epoch + 1;
    last_good.lr_scale = lr_scale;
    last_good.recoveries = recoveries;
    last_good.model_state = clone_state(model_state);
    last_good.optimizer_state = clone_state(optimizer_state);
    if (on_epoch) on_epoch(stats, last_good);

    if (config.target_train_accuracy > 0.0f &&
        stats.accuracy >= config.target_train_accuracy) {
      NSHD_LOG_INFO("early stop at epoch %lld (train acc %.4f)",
                    static_cast<long long>(epoch), stats.accuracy);
      break;
    }
    ++epoch;
  }
  return report;
}

tensor::Tensor predict_logits(InferencePlan& plan, const data::Dataset& dataset,
                              std::int64_t batch_size) {
  const std::int64_t total = dataset.size();
  if (total == 0) return tensor::Tensor();
  const std::int64_t k = plan.out_features();
  const std::int64_t sample_numel = dataset.sample_shape().numel();
  const tensor::Shape& chw = plan.sample_chw();
  tensor::Tensor all(tensor::Shape{total, k});

  // Batches write disjoint logit rows; each leases its own plan workspace.
  const tensor::TensorView images = dataset.images.view();
  const tensor::TensorView rows = all.view();
  util::parallel_for(0, total, batch_size,
                     [&](std::int64_t begin, std::int64_t end) {
    const std::int64_t n = end - begin;
    const tensor::TensorView in(images.data() + begin * sample_numel,
                                tensor::Shape{n, chw[0], chw[1], chw[2]});
    tensor::TensorView out(rows.data() + begin * k, tensor::Shape{n, k});
    plan.run_batch(in, out);
  });
  return all;
}

double evaluate_classifier(InferencePlan& plan, const data::Dataset& dataset,
                           std::int64_t batch_size) {
  const std::int64_t total = dataset.size();
  if (total == 0) return 0.0;
  const tensor::Tensor logits = predict_logits(plan, dataset, batch_size);
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < total; ++n) {
    if (tensor::argmax_row(logits, n) == dataset.labels[static_cast<std::size_t>(n)])
      ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

double evaluate_classifier(Sequential& model, const data::Dataset& dataset,
                           std::int64_t batch_size) {
  if (dataset.size() == 0) return 0.0;
  InferencePlan plan(model, dataset.sample_shape(), model.size() - 1, batch_size);
  return evaluate_classifier(plan, dataset, batch_size);
}

tensor::Tensor predict_logits(Sequential& model, const data::Dataset& dataset,
                              std::int64_t batch_size) {
  if (dataset.size() == 0) return tensor::Tensor();
  InferencePlan plan(model, dataset.sample_shape(), model.size() - 1, batch_size);
  return predict_logits(plan, dataset, batch_size);
}

}  // namespace nshd::nn
