#include "nn/batchnorm.hpp"

#include <cassert>
#include <cmath>

namespace nshd::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Shape{channels}, "bn.gamma"),
      beta_(Shape{channels}, "bn.beta"),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}) {
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  const std::int64_t plane_count = batch * hw;

  Tensor output(input.shape());
  if (training) {
    cached_normalized_ = Tensor(input.shape());
    cached_inv_std_ = Tensor(Shape{channels_});
  }

  for (std::int64_t c = 0; c < channels_; ++c) {
    float mean_c, var_c;
    if (training) {
      double sum = 0.0, sq_sum = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        const float* plane = input.data() + (n * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          sum += plane[i];
          sq_sum += static_cast<double>(plane[i]) * plane[i];
        }
      }
      mean_c = static_cast<float>(sum / plane_count);
      var_c = static_cast<float>(sq_sum / plane_count - mean_c * static_cast<double>(mean_c));
      if (var_c < 0.0f) var_c = 0.0f;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] + momentum_ * mean_c;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var_c;
    } else {
      mean_c = running_mean_[c];
      var_c = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(var_c + epsilon_);
    if (training) cached_inv_std_[c] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* in_plane = input.data() + (n * channels_ + c) * hw;
      float* out_plane = output.data() + (n * channels_ + c) * hw;
      float* norm_plane = training
          ? cached_normalized_.data() + (n * channels_ + c) * hw
          : nullptr;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float x_hat = (in_plane[i] - mean_c) * inv_std;
        if (norm_plane != nullptr) norm_plane[i] = x_hat;
        out_plane[i] = g * x_hat + b;
      }
    }
  }
  return output;
}

void BatchNorm2d::forward_into(const TensorView& in, TensorView out,
                               Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  assert(out.shape() == in.shape());
  const std::int64_t batch = in.shape()[0];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];

  // Eval path of forward(): running statistics only, safe in-place because
  // each element is read once before being written.
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float mean_c = running_mean_[c];
    const float var_c = running_var_[c];
    const float inv_std = 1.0f / std::sqrt(var_c + epsilon_);
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* in_plane = in.data() + (n * channels_ + c) * hw;
      float* out_plane = out.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float x_hat = (in_plane[i] - mean_c) * inv_std;
        out_plane[i] = g * x_hat + b;
      }
    }
  }
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  assert(!cached_normalized_.empty() && "backward before forward(training=true)");
  const std::int64_t batch = grad_output.shape()[0];
  const std::int64_t hw = grad_output.shape()[2] * grad_output.shape()[3];
  const auto m = static_cast<float>(batch * hw);

  Tensor grad_input(grad_output.shape());
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Accumulate dgamma, dbeta and the two reduction terms of the BN
    // gradient: dx = (g*inv_std/m) * (m*dy - sum(dy) - x_hat*sum(dy*x_hat)).
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * hw;
      const float* xh = cached_normalized_.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float scale = gamma_.value[c] * cached_inv_std_[c] / m;
    const auto sdy = static_cast<float>(sum_dy);
    const auto sdyx = static_cast<float>(sum_dy_xhat);
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * hw;
      const float* xh = cached_normalized_.data() + (n * channels_ + c) * hw;
      float* dx = grad_input.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        dx[i] = scale * (m * dy[i] - sdy - xh[i] * sdyx);
      }
    }
  }
  return grad_input;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

}  // namespace nshd::nn
