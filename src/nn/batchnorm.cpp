#include "nn/batchnorm.hpp"

#include <cassert>
#include <cmath>

#include "tensor/simd.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {

namespace {

using tensor::simd::kWidth;
using tensor::simd::VF;

/// One pass over a plane: (sum x, sum x*x) via two 2-chain float vector
/// accumulators with a fixed reduction schedule plus a scalar tail.  The
/// caller combines per-plane partials in double, so the per-channel result
/// is deterministic and NSHD_THREADS-invariant (channels shard 1:1).
inline void plane_moments(const float* x, std::int64_t n, float& sum_out,
                          float& sq_out) {
  VF s0 = tensor::simd::vzero(), s1 = tensor::simd::vzero();
  VF q0 = tensor::simd::vzero(), q1 = tensor::simd::vzero();
  std::int64_t i = 0;
  for (; i + 2 * kWidth <= n; i += 2 * kWidth) {
    const VF a = tensor::simd::vload(x + i);
    const VF b = tensor::simd::vload(x + i + kWidth);
    s0 = tensor::simd::vadd(s0, a);
    s1 = tensor::simd::vadd(s1, b);
    q0 = tensor::simd::vfmadd(a, a, q0);
    q1 = tensor::simd::vfmadd(b, b, q1);
  }
  float s = tensor::simd::vhsum(tensor::simd::vadd(s0, s1));
  float q = tensor::simd::vhsum(tensor::simd::vadd(q0, q1));
  for (; i < n; ++i) {
    s += x[i];
    q += x[i] * x[i];
  }
  sum_out = s;
  sq_out = q;
}

/// One pass: (sum dy, dot(dy, x)) — the two reductions the batch-norm
/// backward needs, since sum(dy * x_hat) = inv_std * (dot(dy,x) - mean*sum(dy)).
inline void plane_grad_moments(const float* dy, const float* x, std::int64_t n,
                               float& sum_out, float& dot_out) {
  VF s0 = tensor::simd::vzero(), s1 = tensor::simd::vzero();
  VF d0 = tensor::simd::vzero(), d1 = tensor::simd::vzero();
  std::int64_t i = 0;
  for (; i + 2 * kWidth <= n; i += 2 * kWidth) {
    const VF g0 = tensor::simd::vload(dy + i);
    const VF g1 = tensor::simd::vload(dy + i + kWidth);
    s0 = tensor::simd::vadd(s0, g0);
    s1 = tensor::simd::vadd(s1, g1);
    d0 = tensor::simd::vfmadd(g0, tensor::simd::vload(x + i), d0);
    d1 = tensor::simd::vfmadd(g1, tensor::simd::vload(x + i + kWidth), d1);
  }
  float s = tensor::simd::vhsum(tensor::simd::vadd(s0, s1));
  float d = tensor::simd::vhsum(tensor::simd::vadd(d0, d1));
  for (; i < n; ++i) {
    s += dy[i];
    d += dy[i] * x[i];
  }
  sum_out = s;
  dot_out = d;
}

/// out[i] = a * x[i] + b.
inline void plane_affine(const float* x, float* out, std::int64_t n, float a,
                         float b) {
  const VF va = tensor::simd::vset1(a), vb = tensor::simd::vset1(b);
  std::int64_t i = 0;
  for (; i + kWidth <= n; i += kWidth)
    tensor::simd::vstore(out + i, tensor::simd::vfmadd(va, tensor::simd::vload(x + i), vb));
  for (; i < n; ++i) out[i] = a * x[i] + b;
}

/// out[i] = a * dy[i] + b * x[i] + c.
inline void plane_affine2(const float* dy, const float* x, float* out,
                          std::int64_t n, float a, float b, float c) {
  const VF va = tensor::simd::vset1(a), vb = tensor::simd::vset1(b);
  const VF vc = tensor::simd::vset1(c);
  std::int64_t i = 0;
  for (; i + kWidth <= n; i += kWidth) {
    VF acc = tensor::simd::vfmadd(va, tensor::simd::vload(dy + i), vc);
    acc = tensor::simd::vfmadd(vb, tensor::simd::vload(x + i), acc);
    tensor::simd::vstore(out + i, acc);
  }
  for (; i < n; ++i) out[i] = (a * dy[i] + c) + b * x[i];
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Shape{channels}, "bn.gamma"),
      beta_(Shape{channels}, "bn.beta"),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}),
      saved_mean_(Shape{channels}),
      saved_inv_std_(Shape{channels}) {
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

void BatchNorm2d::forward_train_impl(const float* in, float* out,
                                     std::int64_t batch, std::int64_t hw) {
  const std::int64_t plane_count = batch * hw;
  // One channel per iteration: statistics, running-stat update and the
  // normalize write all touch only channel c, so sharding over channels is
  // bitwise NSHD_THREADS-invariant (per-channel math stays serial).
  util::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      // Vectorized per-plane moments, combined across the batch in double.
      double sum = 0.0, sq_sum = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        float s, q;
        plane_moments(in + (n * channels_ + c) * hw, hw, s, q);
        sum += s;
        sq_sum += q;
      }
      const auto mean_c = static_cast<float>(sum / plane_count);
      auto var_c = static_cast<float>(sq_sum / plane_count -
                                      mean_c * static_cast<double>(mean_c));
      if (var_c < 0.0f) var_c = 0.0f;
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] + momentum_ * mean_c;
      running_var_[c] = (1.0f - momentum_) * running_var_[c] + momentum_ * var_c;
      const float inv_std = 1.0f / std::sqrt(var_c + epsilon_);
      saved_mean_[c] = mean_c;
      saved_inv_std_[c] = inv_std;
      // Normalize as one affine pass: g*(x - mean)*inv_std + b = a*x + b'.
      const float a = gamma_.value[c] * inv_std;
      const float b = beta_.value[c] - a * mean_c;
      for (std::int64_t n = 0; n < batch; ++n) {
        plane_affine(in + (n * channels_ + c) * hw,
                     out + (n * channels_ + c) * hw, hw, a, b);
      }
    }
  });
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];

  Tensor output(input.shape());
  if (training) {
    cached_input_ = input;
    forward_train_impl(input.data(), output.data(), batch, hw);
    return output;
  }
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float mean_c = running_mean_[c];
    const float var_c = running_var_[c];
    const float inv_std = 1.0f / std::sqrt(var_c + epsilon_);
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* in_plane = input.data() + (n * channels_ + c) * hw;
      float* out_plane = output.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float x_hat = (in_plane[i] - mean_c) * inv_std;
        out_plane[i] = g * x_hat + b;
      }
    }
  }
  return output;
}

void BatchNorm2d::forward_into(const TensorView& in, TensorView out,
                               Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  assert(out.shape() == in.shape());
  const std::int64_t batch = in.shape()[0];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];

  // Eval path of forward(): running statistics only, safe in-place because
  // each element is read once before being written.
  for (std::int64_t c = 0; c < channels_; ++c) {
    const float mean_c = running_mean_[c];
    const float var_c = running_var_[c];
    const float inv_std = 1.0f / std::sqrt(var_c + epsilon_);
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < batch; ++n) {
      const float* in_plane = in.data() + (n * channels_ + c) * hw;
      float* out_plane = out.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        const float x_hat = (in_plane[i] - mean_c) * inv_std;
        out_plane[i] = g * x_hat + b;
      }
    }
  }
}

void BatchNorm2d::forward_train_into(const TensorView& in, TensorView out,
                                     Workspace& ws) {
  (void)ws;
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  assert(out.shape() == in.shape());
  forward_train_impl(in.data(), out.data(), in.shape()[0],
                     in.shape()[2] * in.shape()[3]);
}

void BatchNorm2d::backward_into(const TensorView& in,
                                const TensorView& grad_out, TensorView grad_in,
                                Workspace& ws) {
  (void)ws;
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  assert(grad_out.shape() == in.shape());
  assert(grad_in.shape() == in.shape());
  const std::int64_t batch = in.shape()[0];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];
  const auto m = static_cast<float>(batch * hw);

  // Nothing is cached beyond saved_mean_/saved_inv_std_: the reductions use
  // sum(dy * x_hat) = inv_std * (dot(dy, x) - mean * sum(dy)) so x_hat is
  // never materialized, and dx folds into one two-operand affine pass.  One
  // channel per iteration (single writer for gamma/beta grads and the
  // channel's dx planes) keeps the shard thread-invariant.
  util::parallel_for(0, channels_, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      const float mean_c = saved_mean_[c];
      const float inv_std = saved_inv_std_[c];
      double sum_dy = 0.0, dot_dy_x = 0.0;
      for (std::int64_t n = 0; n < batch; ++n) {
        float s, d;
        plane_grad_moments(grad_out.data() + (n * channels_ + c) * hw,
                           in.data() + (n * channels_ + c) * hw, hw, s, d);
        sum_dy += s;
        dot_dy_x += d;
      }
      const double sum_dy_xhat =
          static_cast<double>(inv_std) *
          (dot_dy_x - static_cast<double>(mean_c) * sum_dy);
      gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
      beta_.grad[c] += static_cast<float>(sum_dy);

      // dx = (g*inv_std/m) * (m*dy - sum(dy) - x_hat*sum(dy*x_hat))
      //    = A*dy + B*x + C  with x_hat = (x - mean)*inv_std folded in.
      const float scale = gamma_.value[c] * inv_std / m;
      const auto sdy = static_cast<float>(sum_dy);
      const auto sdyx = static_cast<float>(sum_dy_xhat);
      const float ca = scale * m;
      const float cb2 = -scale * sdyx * inv_std;
      const float cc = scale * (sdyx * inv_std * mean_c - sdy);
      for (std::int64_t n = 0; n < batch; ++n) {
        plane_affine2(grad_out.data() + (n * channels_ + c) * hw,
                      in.data() + (n * channels_ + c) * hw,
                      grad_in.data() + (n * channels_ + c) * hw, hw, ca, cb2,
                      cc);
      }
    }
  });
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != cached_input_.shape())
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(cached_input_.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(),
                ws);
  return grad_input;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

}  // namespace nshd::nn
