#include "nn/plan.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nshd::nn {

namespace {
Shape with_batch(const Shape& chw, std::int64_t batch) {
  std::vector<std::int64_t> dims;
  dims.reserve(chw.rank() + 1);
  dims.push_back(batch);
  for (std::size_t i = 0; i < chw.rank(); ++i) dims.push_back(chw[i]);
  return Shape(std::move(dims));
}

Shape replace_batch(const Shape& shape, std::int64_t batch) {
  std::vector<std::int64_t> dims = shape.dims();
  assert(!dims.empty());
  dims[0] = batch;
  return Shape(std::move(dims));
}
}  // namespace

InferencePlan::InferencePlan(Sequential& net, Shape sample_chw,
                             std::size_t last_layer, std::int64_t max_batch)
    : net_(&net),
      sample_chw_(std::move(sample_chw)),
      last_layer_(last_layer),
      max_batch_(max_batch) {
  assert(max_batch_ >= 1);
  // Shape inference once, at plan-build time.  output_shape_at throws on an
  // out-of-range cut, same as the legacy forward_to.
  const Shape in_one = with_batch(sample_chw_, 1);
  out_shape_one_ = net_->output_shape_at(in_one, last_layer_);
  out_numel_per_sample_ = out_shape_one_.numel();
  planned_floats_ = static_cast<std::size_t>(std::max<std::int64_t>(
      0, net_->scratch_floats_to(with_batch(sample_chw_, max_batch_),
                                 last_layer_)));
}

Shape InferencePlan::output_shape(std::int64_t n) const {
  return replace_batch(out_shape_one_, n);
}

std::unique_ptr<Workspace> InferencePlan::acquire_workspace() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto ws = std::move(free_.back());
      free_.pop_back();
      return ws;
    }
    ++total_workspaces_;
  }
  return std::make_unique<Workspace>(planned_floats_);
}

void InferencePlan::release_workspace(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  peak_floats_ = std::max(peak_floats_, ws->peak_floats());
  // A lease that grew past the planned budget (an oversized batch with
  // n > max_batch) is destroyed instead of pooled: pooling it would pin the
  // burst's arena forever and inflate steady-state memory.  Its peak was
  // folded into peak_floats_ above, so high-water reporting stays accurate.
  if (ws->capacity_floats() > planned_floats_) {
    --total_workspaces_;
    return;
  }
  free_.push_back(std::move(ws));
}

void InferencePlan::run_batch(const TensorView& in, TensorView out) {
  assert(in.shape().rank() == sample_chw_.rank() + 1);
  const std::int64_t batch = in.shape()[0];
  assert(out.numel() == batch * out_numel_per_sample_);
  if (batch == 0) return;

  // An oversized batch (n > max_batch) needs more arena than the planned
  // budget.  It gets a throwaway workspace sized for the burst instead of a
  // pooled lease: growing a pooled workspace would pin the burst's memory in
  // the pool forever (steady-state inflation after one spike).
  if (batch > max_batch_) {
    const auto scale = static_cast<std::size_t>(
        (batch + max_batch_ - 1) / max_batch_);
    Workspace burst(planned_floats_ * scale);
    net_->forward_into_to(in, out, burst, last_layer_);
    std::lock_guard<std::mutex> lock(mutex_);
    peak_floats_ = std::max(peak_floats_, burst.peak_floats());
    return;
  }

  std::unique_ptr<Workspace> ws = acquire_workspace();
  ws->reset();
  try {
    net_->forward_into_to(in, out, *ws, last_layer_);
  } catch (...) {
    // A throwing layer (fault injection, bad_alloc) must not corrupt the
    // pool: the lease goes back — reset() on reacquire wipes it — so the
    // workspace count and peak accounting survive and the plan keeps
    // serving retries.  The exception still propagates to the caller.
    release_workspace(std::move(ws));
    throw;
  }
  release_workspace(std::move(ws));
}

Tensor InferencePlan::run_batch(const Tensor& in) {
  const std::int64_t batch = in.shape().rank() > 0 ? in.shape()[0] : 0;
  Tensor out(output_shape(batch));
  if (batch > 0) run_batch(in.view(), out.view());
  return out;
}

std::size_t InferencePlan::peak_workspace_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t peak = peak_floats_;
  for (const auto& ws : free_) peak = std::max(peak, ws->peak_floats());
  return peak * sizeof(float);
}

std::size_t InferencePlan::workspace_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_workspaces_;
}

}  // namespace nshd::nn
