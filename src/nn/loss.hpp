// Softmax cross-entropy loss with fused gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace nshd::nn {

struct LossResult {
  double loss = 0.0;                 // mean over the batch
  tensor::Tensor probabilities;      // [N, K] softmax outputs
  tensor::Tensor grad_logits;        // [N, K] d(mean loss)/d(logits)
  std::int64_t correct = 0;          // argmax == label count
};

/// Computes mean softmax-CE over a batch of logits [N, K] with integer
/// labels; grad_logits = (softmax - onehot) / N.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

}  // namespace nshd::nn
