// Softmax cross-entropy loss with fused gradient.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/view.hpp"

namespace nshd::nn {

struct LossResult {
  double loss = 0.0;                 // mean over the batch
  tensor::Tensor probabilities;      // [N, K] softmax outputs
  tensor::Tensor grad_logits;        // [N, K] d(mean loss)/d(logits)
  std::int64_t correct = 0;          // argmax == label count
};

/// Computes mean softmax-CE over a batch of logits [N, K] with integer
/// labels; grad_logits = (softmax - onehot) / N.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& labels);

/// Loss + accuracy of the zero-alloc variant below.
struct LossStats {
  double loss = 0.0;
  std::int64_t correct = 0;
};

/// Zero-alloc softmax-CE: writes grad_logits = (softmax - onehot) / N into
/// caller memory (same shape as logits, must not alias it) and returns
/// loss/correct.  Float-op order matches softmax_cross_entropy exactly, so
/// results are bitwise identical to the allocating path.  Throws
/// TrainingStateError on a label outside [0, K).
LossStats softmax_cross_entropy_into(const tensor::TensorView& logits,
                                     const std::vector<std::int64_t>& labels,
                                     tensor::TensorView grad_logits);

}  // namespace nshd::nn
