#include "nn/quant_plan.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {

namespace {

using tensor::quant::CalibStatus;
using tensor::quant::QuantParams;

Shape with_batch(const Shape& chw, std::int64_t batch) {
  std::vector<std::int64_t> dims;
  dims.reserve(chw.rank() + 1);
  dims.push_back(batch);
  for (std::size_t i = 0; i < chw.rank(); ++i) dims.push_back(chw[i]);
  return Shape(std::move(dims));
}

Shape replace_batch(const Shape& shape, std::int64_t batch) {
  std::vector<std::int64_t> dims = shape.dims();
  assert(!dims.empty());
  dims[0] = batch;
  return Shape(std::move(dims));
}

/// Floats needed to carve `bytes` bytes out of the float arena.
std::int64_t bytes_to_floats(std::int64_t bytes) { return (bytes + 3) / 4; }

std::uint8_t* as_u8(float* p) { return reinterpret_cast<std::uint8_t*>(p); }
std::int32_t* as_s32(float* p) { return reinterpret_cast<std::int32_t*>(p); }

/// Fixed element grain for the parallel u8 clamp (ReLU) loop.
constexpr std::int64_t kElemGrain = 1 << 15;

}  // namespace

QuantizedInferencePlan::QuantizedInferencePlan(Sequential& net, Shape sample_chw,
                                               std::size_t last_layer,
                                               std::int64_t max_batch,
                                               Options options)
    : net_(&net),
      sample_chw_(std::move(sample_chw)),
      last_layer_(last_layer),
      max_batch_(max_batch),
      options_(options) {
  assert(max_batch_ >= 1);
  if (last_layer_ >= net_->size()) {
    throw std::out_of_range("QuantizedInferencePlan: last_layer out of range");
  }
  // Boundary shapes once, at plan-build time (batch dim == 1 throughout).
  shapes_.reserve(last_layer_ + 2);
  shapes_.push_back(with_batch(sample_chw_, 1));
  for (std::size_t i = 0; i <= last_layer_; ++i) {
    shapes_.push_back(net_->layer(i).output_shape(shapes_.back()));
  }
  out_shape_one_ = shapes_.back();
  out_numel_per_sample_ = out_shape_one_.numel();
  for (const Shape& s : shapes_) {
    max_boundary_numel_ = std::max(max_boundary_numel_, s.numel());
  }
  classify_layers();
  planned_floats_ = planned_floats_for(max_batch_);
}

void QuantizedInferencePlan::classify_layers() {
  classes_.assign(last_layer_ + 1, LayerClass::kFallback);
  weight_index_.assign(last_layer_ + 1, -1);
  for (std::size_t i = 0; i <= last_layer_; ++i) {
    Layer& layer = net_->layer(i);
    switch (layer.kind()) {
      case LayerKind::kConv: {
        auto& conv = static_cast<Conv2d&>(layer);
        std::vector<Param*> params = conv.params();
        const Tensor& w = params[0]->value;
        qweights_.push_back(tensor::quant::quantize_weights_per_channel(
            w.data(), conv.out_channels(), w.numel() / conv.out_channels()));
        weight_index_[i] = static_cast<int>(qweights_.size()) - 1;
        classes_[i] = LayerClass::kConvS8;
        break;
      }
      case LayerKind::kLinear: {
        auto& lin = static_cast<Linear&>(layer);
        qweights_.push_back(tensor::quant::quantize_weights_per_channel(
            lin.weight().value.data(), lin.out_features(), lin.in_features()));
        weight_index_[i] = static_cast<int>(qweights_.size()) - 1;
        classes_[i] = LayerClass::kLinearS8;
        break;
      }
      case LayerKind::kActivation: {
        const Activation act = static_cast<ActivationLayer&>(layer).activation();
        classes_[i] = (act == Activation::kReLU || act == Activation::kReLU6)
                          ? LayerClass::kReluQ
                          : LayerClass::kFallback;
        break;
      }
      case LayerKind::kMaxPool:
        classes_[i] = LayerClass::kMaxPoolQ;
        break;
      case LayerKind::kFlatten:
      case LayerKind::kDropout:
        classes_[i] = LayerClass::kPassQ;  // identity at eval in both reps
        break;
      default:
        classes_[i] = LayerClass::kFallback;
        break;
    }
  }
}

const CalibrationReport& QuantizedInferencePlan::calibrate(
    const TensorView& images, std::int64_t batch_size) {
  assert(images.shape().rank() == sample_chw_.rank() + 1);
  const std::int64_t total = images.shape()[0];
  batch_size = std::max<std::int64_t>(
      1, std::min<std::int64_t>(batch_size, max_batch_));

  const std::size_t boundaries = last_layer_ + 2;
  minmax_.assign(boundaries, tensor::quant::MinMaxObserver());
  ema_.assign(boundaries, tensor::quant::MovingAverageObserver(options_.momentum));
  auto observe = [&](std::size_t b, const float* x, std::int64_t n) {
    if (options_.observer == ObserverKind::kMinMax) {
      minmax_[b].observe(x, n);
    } else {
      ema_[b].observe(x, n);
    }
  };

  const std::int64_t sample_numel = shapes_[0].numel();
  std::unique_ptr<Workspace> ws = acquire_workspace();
  ws->reset();
  {
    // Batches run serially, in order, so both observer kinds are
    // deterministic functions of (images, batch_size).
    Workspace::Frame frame(*ws);
    float* slab[2] = {ws->alloc(batch_size * max_boundary_numel_),
                      ws->alloc(batch_size * max_boundary_numel_)};
    for (std::int64_t b0 = 0; b0 < total; b0 += batch_size) {
      const std::int64_t n = std::min<std::int64_t>(batch_size, total - b0);
      const float* cur = images.data() + b0 * sample_numel;
      int cur_slab = -1;  // -1: still pointing into the caller's images
      observe(0, cur, n * sample_numel);
      for (std::size_t i = 0; i <= last_layer_; ++i) {
        Layer& layer = net_->layer(i);
        const Shape in_shape = replace_batch(shapes_[i], n);
        const Shape out_shape = replace_batch(shapes_[i + 1], n);
        float* dst;
        int dst_slab;
        if (layer.inplace_eval() && cur_slab >= 0) {
          dst = const_cast<float*>(cur);
          dst_slab = cur_slab;
        } else {
          dst_slab = cur_slab == 0 ? 1 : 0;
          dst = slab[dst_slab];
        }
        layer.forward_into(TensorView(const_cast<float*>(cur), in_shape),
                           TensorView(dst, out_shape), *ws);
        cur = dst;
        cur_slab = dst_slab;
        observe(i + 1, cur, out_shape.numel());
      }
    }
  }
  release_workspace(std::move(ws));

  compile();
  report_.calibrated = true;
  return report_;
}

tensor::quant::CalibStatus QuantizedInferencePlan::boundary_params(
    std::size_t boundary, QuantParams* qp) {
  const tensor::quant::Range& range = options_.observer == ObserverKind::kMinMax
                                          ? minmax_[boundary].range()
                                          : ema_[boundary].range();
  const CalibStatus status = tensor::quant::activation_params(range, qp);
  report_.boundary_status[boundary] = status;
  return status;
}

void QuantizedInferencePlan::compile() {
  steps_.clear();
  report_.int8_layers = 0;
  report_.fallback_layers = 0;
  report_.calibration_fallbacks = 0;
  report_.boundary_status.assign(last_layer_ + 2, CalibStatus::kOk);

  bool u8 = false;
  QuantParams cur;
  for (std::size_t i = 0; i <= last_layer_; ++i) {
    LayerClass cls = classes_[i];
    const Shape& in_shape = shapes_[i];
    const Shape& out_shape = shapes_[i + 1];

    if (cls == LayerClass::kConvS8 || cls == LayerClass::kLinearS8) {
      QuantParams in_q = cur;
      QuantParams out_q;
      bool ok = u8 || boundary_params(i, &in_q) == CalibStatus::kOk;
      if (ok) ok = boundary_params(i + 1, &out_q) == CalibStatus::kOk;
      if (!ok) {
        // Typed calibration failure: this layer runs f32 and is COUNTED —
        // the no-silent-fallback contract.
        ++report_.calibration_fallbacks;
        cls = LayerClass::kFallback;
      } else {
        if (!u8) {
          Step q;
          q.kind = Step::Kind::kQuantize;
          q.in_shape = in_shape;
          q.out_shape = in_shape;
          q.out_q = in_q;
          steps_.push_back(std::move(q));
        }
        Step st;
        st.kind = cls == LayerClass::kConvS8 ? Step::Kind::kConvS8
                                             : Step::Kind::kLinearS8;
        st.layer = i;
        st.in_shape = in_shape;
        st.out_shape = out_shape;
        st.in_q = in_q;
        st.out_q = out_q;
        st.weights = weight_index_[i];
        const tensor::quant::QuantizedWeights& qw =
            qweights_[static_cast<std::size_t>(st.weights)];
        st.rows = qw.rows;
        st.cols = qw.cols;
        if (cls == LayerClass::kConvS8) {
          auto& conv = static_cast<Conv2d&>(net_->layer(i));
          st.geom = {.channels = conv.in_channels(),
                     .in_h = in_shape[2],
                     .in_w = in_shape[3],
                     .kernel_h = conv.kernel(),
                     .kernel_w = conv.kernel(),
                     .stride = conv.stride(),
                     .pad = conv.pad()};
        }
        st.mult.resize(static_cast<std::size_t>(qw.rows));
        st.sub.resize(static_cast<std::size_t>(qw.rows));
        st.bias.assign(static_cast<std::size_t>(qw.rows), 0.0f);
        const float* bias = nullptr;
        if (cls == LayerClass::kConvS8) {
          auto& conv = static_cast<Conv2d&>(net_->layer(i));
          if (conv.has_bias()) bias = conv.params()[1]->value.data();
        } else {
          bias = static_cast<Linear&>(net_->layer(i)).bias().value.data();
        }
        for (std::int64_t o = 0; o < qw.rows; ++o) {
          st.mult[static_cast<std::size_t>(o)] =
              in_q.scale * qw.scales[static_cast<std::size_t>(o)];
          st.sub[static_cast<std::size_t>(o)] =
              in_q.zero_point * qw.row_sums[static_cast<std::size_t>(o)];
          if (bias != nullptr) st.bias[static_cast<std::size_t>(o)] = bias[o];
        }
        steps_.push_back(std::move(st));
        u8 = true;
        cur = out_q;
        ++report_.int8_layers;
        continue;
      }
    }

    if (cls == LayerClass::kReluQ || cls == LayerClass::kMaxPoolQ) {
      if (u8) {
        Step st;
        st.kind = cls == LayerClass::kReluQ ? Step::Kind::kReluQ
                                            : Step::Kind::kMaxPoolQ;
        st.layer = i;
        st.in_shape = in_shape;
        st.out_shape = out_shape;
        st.in_q = cur;
        st.out_q = cur;  // scale-preserving: params propagate unchanged
        if (cls == LayerClass::kReluQ) {
          st.clamp_lo = static_cast<std::uint8_t>(
              std::min(255, std::max(0, cur.zero_point)));
          const Activation act =
              static_cast<ActivationLayer&>(net_->layer(i)).activation();
          if (act == Activation::kReLU6) {
            // Quantization is monotone, so clamping the codes at q(6) equals
            // quantizing min(x, 6).
            st.clamp_hi = tensor::quant::quantize_value(6.0f, cur);
          }
        } else {
          auto& pool = static_cast<MaxPool2d&>(net_->layer(i));
          st.geom = {.channels = in_shape[1],
                     .in_h = in_shape[2],
                     .in_w = in_shape[3],
                     .kernel_h = pool.kernel(),
                     .kernel_w = pool.kernel(),
                     .stride = pool.stride(),
                     .pad = 0};
        }
        steps_.push_back(std::move(st));
        ++report_.int8_layers;
        continue;
      }
      // Policy (not a failure): a scale-preserving op never *enters* u8 on
      // its own — a quantize/dequantize sandwich around it would add error
      // for no kernel win.  Runs f32, counted in fallback_layers below.
      cls = LayerClass::kFallback;
    }

    if (cls == LayerClass::kPassQ) continue;  // identity in either rep

    // f32 fallback layer; leave u8 first if needed.
    if (u8) {
      Step dq;
      dq.kind = Step::Kind::kDequant;
      dq.in_shape = in_shape;
      dq.out_shape = in_shape;
      dq.in_q = cur;
      steps_.push_back(std::move(dq));
      u8 = false;
    }
    Step st;
    st.kind = Step::Kind::kF32;
    st.layer = i;
    st.in_shape = in_shape;
    st.out_shape = out_shape;
    steps_.push_back(std::move(st));
    ++report_.fallback_layers;
  }

  // Dequantize at the cut: the HD projection consumes f32 features.
  if (u8) {
    Step dq;
    dq.kind = Step::Kind::kDequant;
    dq.in_shape = shapes_.back();
    dq.out_shape = shapes_.back();
    dq.in_q = cur;
    steps_.push_back(std::move(dq));
  }
}

std::size_t QuantizedInferencePlan::planned_floats_for(std::int64_t batch) const {
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  const std::int64_t slab = batch * max_boundary_numel_;
  std::int64_t total = 2 * (slab + align);                    // f32 ping-pong
  total += 2 * (bytes_to_floats(slab) + align);               // u8 ping-pong
  // Largest transient: any layer's f32 scratch (calibration runs the whole
  // prefix in f32; fallback steps run single layers), or a conv step's
  // im2row + s32 accumulator carve.
  std::int64_t scratch = 0;
  for (std::size_t i = 0; i <= last_layer_; ++i) {
    const Shape in_shape = replace_batch(shapes_[i], batch);
    scratch = std::max(scratch, net_->layer(i).scratch_floats(in_shape));
    if (classes_[i] == LayerClass::kConvS8) {
      auto& conv = static_cast<const Conv2d&>(net_->layer(i));
      tensor::ConvGeometry g{.channels = conv.in_channels(),
                             .in_h = shapes_[i][2],
                             .in_w = shapes_[i][3],
                             .kernel_h = conv.kernel(),
                             .kernel_w = conv.kernel(),
                             .stride = conv.stride(),
                             .pad = conv.pad()};
      // Patch rows carry the weight matrix's padded K stride (cols16).
      const std::int64_t crows16 =
          qweights_[static_cast<std::size_t>(weight_index_[i])].cols16;
      const std::int64_t conv_scratch =
          batch * bytes_to_floats(crows16 * g.col_cols()) +  // u8 im2row
          batch * shapes_[i + 1].numel() +                   // s32 acc
          2 * align;
      scratch = std::max(scratch, conv_scratch);
    } else if (classes_[i] == LayerClass::kLinearS8) {
      scratch = std::max(scratch, batch * shapes_[i + 1].numel() + 2 * align);
    }
  }
  total += scratch + 4 * align;
  return static_cast<std::size_t>(total);
}

Shape QuantizedInferencePlan::output_shape(std::int64_t n) const {
  return replace_batch(out_shape_one_, n);
}

std::unique_ptr<Workspace> QuantizedInferencePlan::acquire_workspace() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto ws = std::move(free_.back());
      free_.pop_back();
      return ws;
    }
    ++total_workspaces_;
  }
  return std::make_unique<Workspace>(planned_floats_);
}

void QuantizedInferencePlan::release_workspace(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(mutex_);
  peak_floats_ = std::max(peak_floats_, ws->peak_floats());
  if (ws->capacity_floats() > planned_floats_) {
    --total_workspaces_;
    return;
  }
  free_.push_back(std::move(ws));
}

void QuantizedInferencePlan::run_batch(const TensorView& in, TensorView out) {
  if (!report_.calibrated) {
    throw std::logic_error(
        "QuantizedInferencePlan: calibrate() must run before run_batch()");
  }
  assert(in.shape().rank() == sample_chw_.rank() + 1);
  const std::int64_t batch = in.shape()[0];
  assert(out.numel() == batch * out_numel_per_sample_);
  if (batch == 0) return;

  // Oversized batches get a throwaway burst arena, exactly as InferencePlan:
  // pooling it would pin the burst's memory forever.
  if (batch > max_batch_) {
    Workspace burst(planned_floats_for(batch));
    execute(in, out, burst);
    std::lock_guard<std::mutex> lock(mutex_);
    peak_floats_ = std::max(peak_floats_, burst.peak_floats());
    return;
  }

  std::unique_ptr<Workspace> ws = acquire_workspace();
  ws->reset();
  try {
    execute(in, out, *ws);
  } catch (...) {
    release_workspace(std::move(ws));
    throw;
  }
  release_workspace(std::move(ws));
}

Tensor QuantizedInferencePlan::run_batch(const Tensor& in) {
  const std::int64_t batch = in.shape().rank() > 0 ? in.shape()[0] : 0;
  Tensor out(output_shape(batch));
  if (batch > 0) run_batch(in.view(), out.view());
  return out;
}

void QuantizedInferencePlan::execute(const TensorView& in, TensorView out,
                                     Workspace& ws) const {
  const std::int64_t batch = in.shape()[0];
  const std::int64_t slab_numel = batch * max_boundary_numel_;
  float* fslab[2] = {ws.alloc(slab_numel), ws.alloc(slab_numel)};
  std::uint8_t* qslab[2] = {as_u8(ws.alloc(bytes_to_floats(slab_numel))),
                            as_u8(ws.alloc(bytes_to_floats(slab_numel)))};

  const float* cur_f = in.data();
  int cur_fslab = -1;  // -1 while cur_f still aliases the caller's input
  const std::uint8_t* cur_q = nullptr;
  int cur_qslab = -1;

  for (std::size_t s = 0; s < steps_.size(); ++s) {
    const Step& st = steps_[s];
    const bool final_step = s + 1 == steps_.size();
    const std::int64_t in_per = st.in_shape.numel();
    const std::int64_t out_per = st.out_shape.numel();

    switch (st.kind) {
      case Step::Kind::kQuantize: {
        const int dst_slab = cur_qslab == 0 ? 1 : 0;
        std::uint8_t* dst = qslab[dst_slab];
        const float* src = cur_f;
        const QuantParams qp = st.out_q;
        util::parallel_for(0, batch, 1, [=](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t n = b0; n < b1; ++n) {
            tensor::quant::quantize_u8(src + n * in_per, dst + n * in_per,
                                       in_per, qp);
          }
        });
        cur_q = dst;
        cur_qslab = dst_slab;
        break;
      }
      case Step::Kind::kDequant: {
        float* dst;
        if (final_step) {
          dst = out.data();
        } else {
          const int dst_slab = cur_fslab == 0 ? 1 : 0;
          dst = fslab[dst_slab];
          cur_fslab = dst_slab;
        }
        const std::uint8_t* src = cur_q;
        const QuantParams qp = st.in_q;
        util::parallel_for(0, batch, 1, [=](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t n = b0; n < b1; ++n) {
            tensor::quant::dequantize_u8(src + n * in_per, dst + n * in_per,
                                         in_per, qp);
          }
        });
        cur_f = dst;
        break;
      }
      case Step::Kind::kConvS8: {
        const tensor::ConvGeometry& g = st.geom;
        const std::int64_t cols = g.col_cols();
        const std::int64_t rows = st.rows;  // out channels
        const tensor::quant::QuantizedWeights& qw =
            qweights_[static_cast<std::size_t>(st.weights)];
        // Patch rows use the weight matrix's padded K stride (cols16), so
        // the s16*u8 gemm runs whole simd strips with no scalar tail — the
        // zero-padded weight lanes annihilate the zp-filled patch padding.
        const std::int64_t crows16 = qw.cols16;
        // Per-sample carve happens serially up front (Workspace is not
        // thread-safe); the per-sample regions are disjoint so the sample
        // loop parallelizes with grain 1.
        Workspace::Frame frame(ws);
        std::uint8_t* rows_buf =
            as_u8(ws.alloc(batch * bytes_to_floats(crows16 * cols)));
        std::int32_t* acc_buf = as_s32(ws.alloc(batch * out_per));
        const std::int64_t rows_stride = bytes_to_floats(crows16 * cols) * 4;
        const int dst_slab = cur_qslab == 0 ? 1 : 0;
        std::uint8_t* dst = qslab[dst_slab];
        const std::uint8_t* src = cur_q;
        const auto zp_in = static_cast<std::uint8_t>(
            std::min(255, std::max(0, st.in_q.zero_point)));
        const QuantParams out_q = st.out_q;
        const std::int16_t* wq = qw.data16.data();
        const float* mult = st.mult.data();
        const std::int32_t* sub = st.sub.data();
        const float* bias = st.bias.data();
        util::parallel_for(0, batch, 1, [=](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t n = b0; n < b1; ++n) {
            std::uint8_t* patch = rows_buf + n * rows_stride;
            std::int32_t* acc = acc_buf + n * out_per;
            tensor::quant::im2row_u8(src + n * in_per, g, zp_in, patch,
                                     crows16);
            tensor::gemm_s16_u8(wq, crows16, patch, crows16, acc, rows,
                                crows16, cols);
            std::uint8_t* out_n = dst + n * out_per;
            for (std::int64_t o = 0; o < rows; ++o) {
              tensor::quant::requantize_row_u8(acc + o * cols, cols, sub[o],
                                               mult[o], bias[o], out_q,
                                               out_n + o * cols, 1);
            }
          }
        });
        cur_q = dst;
        cur_qslab = dst_slab;
        break;
      }
      case Step::Kind::kLinearS8: {
        const tensor::quant::QuantizedWeights& qw =
            qweights_[static_cast<std::size_t>(st.weights)];
        Workspace::Frame frame(ws);
        std::int32_t* acc = as_s32(ws.alloc(batch * st.rows));
        // acc[o, n] = W_s8[o,:] . x_u8[n,:]; activations sit unpadded in the
        // slab, so pass the true K and let the kernel take its scalar tail.
        tensor::gemm_s16_u8(qw.data16.data(), qw.cols16, cur_q, st.cols, acc,
                            st.rows, st.cols, batch);
        const int dst_slab = cur_qslab == 0 ? 1 : 0;
        std::uint8_t* dst = qslab[dst_slab];
        for (std::int64_t o = 0; o < st.rows; ++o) {
          // Accumulator row o is contiguous over samples; the u8 store
          // scatters back to [n, o] layout with stride rows.
          tensor::quant::requantize_row_u8(
              acc + o * batch, batch, st.sub[static_cast<std::size_t>(o)],
              st.mult[static_cast<std::size_t>(o)],
              st.bias[static_cast<std::size_t>(o)], st.out_q, dst + o,
              st.rows);
        }
        cur_q = dst;
        cur_qslab = dst_slab;
        break;
      }
      case Step::Kind::kReluQ: {
        // Exact in u8: max with the zero point (and min with q(6) for
        // ReLU6); runs in place on the current slab.
        auto* buf = const_cast<std::uint8_t*>(cur_q);
        const std::uint8_t lo = st.clamp_lo, hi = st.clamp_hi;
        util::parallel_for(0, batch * in_per, kElemGrain,
                           [=](std::int64_t e0, std::int64_t e1) {
                             tensor::quant::clamp_u8(buf + e0, e1 - e0, lo, hi);
                           });
        break;
      }
      case Step::Kind::kMaxPoolQ: {
        // Monotone window max — exact in u8.
        const tensor::ConvGeometry& g = st.geom;
        const std::int64_t channels = g.channels;
        const std::int64_t oh = st.out_shape[2], ow = st.out_shape[3];
        const std::int64_t kk = g.kernel_h, stride = g.stride;
        const int dst_slab = cur_qslab == 0 ? 1 : 0;
        std::uint8_t* dst = qslab[dst_slab];
        const std::uint8_t* src = cur_q;
        const std::int64_t in_h = g.in_h, in_w = g.in_w;
        util::parallel_for(0, batch, 1, [=](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t n = b0; n < b1; ++n) {
            tensor::quant::max_pool2d_u8(src + n * in_per, channels, in_h,
                                         in_w, kk, stride, dst + n * out_per,
                                         oh, ow);
          }
        });
        cur_q = dst;
        cur_qslab = dst_slab;
        break;
      }
      case Step::Kind::kF32: {
        Layer& layer = net_->layer(st.layer);
        const Shape in_shape = replace_batch(st.in_shape, batch);
        const Shape out_shape = replace_batch(st.out_shape, batch);
        float* dst;
        int dst_slab = cur_fslab;
        if (final_step) {
          dst = out.data();
        } else if (layer.inplace_eval() && cur_fslab >= 0) {
          dst = const_cast<float*>(cur_f);
        } else {
          dst_slab = cur_fslab == 0 ? 1 : 0;
          dst = fslab[dst_slab];
        }
        layer.forward_into(TensorView(const_cast<float*>(cur_f), in_shape),
                           TensorView(dst, out_shape), ws);
        cur_f = dst;
        if (!final_step) cur_fslab = dst_slab;
        break;
      }
    }
  }

  // Compile guarantees a non-empty tape ends by writing f32 — via a final
  // kDequant/kF32 targeting `out` directly.  Two leftovers: an all-pass
  // prefix (empty tape) and a tape whose last op step was followed only by
  // skipped pass layers with the result parked in a slab.
  if (steps_.empty() || (cur_f != out.data())) {
    std::memcpy(out.data(), cur_f,
                static_cast<std::size_t>(batch * out_numel_per_sample_) *
                    sizeof(float));
  }
}

std::size_t QuantizedInferencePlan::peak_workspace_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t peak = peak_floats_;
  for (const auto& ws : free_) peak = std::max(peak, ws->peak_floats());
  return peak * sizeof(float);
}

std::size_t QuantizedInferencePlan::workspace_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_workspaces_;
}

}  // namespace nshd::nn
