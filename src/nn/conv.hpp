// Convolution layers: dense Conv2d (im2col + GEMM) and DepthwiseConv2d.
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

/// Standard 2-D convolution, NCHW activations, OIHW weights, square kernel.
class Conv2d final : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool bias, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  std::int64_t scratch_floats(const Shape& input) const override;
  std::int64_t train_scratch_floats(const Shape& input) const override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kConv; }
  std::string name() const override;
  std::int64_t macs_per_sample(const Shape& input_chw) const override;

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }
  bool has_bias() const { return has_bias_; }

 private:
  tensor::ConvGeometry geometry(std::int64_t in_h, std::int64_t in_w) const;

  std::int64_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;  // [O, I*KH*KW] flattened for direct GEMM use
  Param bias_;    // [O]
  Tensor cached_input_;
};

/// Depthwise 2-D convolution (groups == channels), weights [C, KH*KW].
class DepthwiseConv2d final : public Layer {
 public:
  DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad, util::Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  std::int64_t train_scratch_floats(const Shape& input) const override;
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;
  LayerKind kind() const override { return LayerKind::kDepthwiseConv; }
  std::string name() const override;
  std::int64_t macs_per_sample(const Shape& input_chw) const override;

  std::int64_t channels() const { return channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 private:
  std::int64_t channels_, kernel_, stride_, pad_;
  Param weight_;  // [C, KH*KW]
  Tensor cached_input_;
};

}  // namespace nshd::nn
