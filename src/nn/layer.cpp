#include "nn/layer.hpp"

namespace nshd::nn {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "Conv";
    case LayerKind::kDepthwiseConv: return "DepthwiseConv";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kActivation: return "Activation";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kDropout: return "Dropout";
    case LayerKind::kBlock: return "Block";
  }
  return "?";
}

void zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.zero();
}

}  // namespace nshd::nn
