#include "nn/layer.hpp"

#include <cassert>
#include <cstring>

namespace nshd::nn {

void Layer::backward_into(const TensorView& in, const TensorView& grad_out,
                          TensorView grad_in, Workspace& ws) {
  (void)in;
  (void)grad_out;
  (void)grad_in;
  (void)ws;
  throw TrainingStateError("backward_into is not implemented for " + name());
}

Workspace& legacy_train_workspace() {
  thread_local Workspace ws;
  return ws;
}

void Layer::forward_into(const TensorView& in, TensorView out,
                         Workspace& scratch) {
  (void)scratch;
  // Allocating fallback so new layer types work under plans before they get
  // a workspace-native implementation.
  Tensor result = forward(Tensor::from_view(in), /*training=*/false);
  assert(result.numel() == out.numel() && "forward_into shape mismatch");
  if (result.numel() > 0) {
    std::memcpy(out.data(), result.data(),
                static_cast<std::size_t>(result.numel()) * sizeof(float));
  }
}

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "Conv";
    case LayerKind::kDepthwiseConv: return "DepthwiseConv";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kActivation: return "Activation";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kDropout: return "Dropout";
    case LayerKind::kBlock: return "Block";
  }
  return "?";
}

void zero_grads(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.zero();
}

}  // namespace nshd::nn
