// Sequential layer container with the "cut at index k" operation the paper
// relies on to form feature extractors (Sec. IV-A).
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace nshd::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;

  /// Forward through layers [0, last_layer] inclusive (inference mode).
  /// `last_layer` = size()-1 is equivalent to full forward.
  Tensor forward_to(const Tensor& input, std::size_t last_layer);

  /// Workspace-backed inference through layers [0, last_layer] inclusive.
  /// Intermediates ping-pong between two workspace slabs sized at the
  /// largest intermediate; in-place-capable layers (activation, eval
  /// batch-norm, flatten, dropout, SE) reuse the current slab.  `in` is
  /// never written; the final layer writes straight into `out`.
  void forward_into_to(const TensorView& in, TensorView out, Workspace& ws,
                       std::size_t last_layer);

  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  std::int64_t scratch_floats(const Shape& input) const override;

  /// Workspace floats needed by forward_into_to with this input shape:
  /// two ping-pong slabs plus the largest per-layer scratch.
  std::int64_t scratch_floats_to(const Shape& input,
                                 std::size_t last_layer) const;

  Tensor backward(const Tensor& grad_output) override;

  /// Training forward for the planned path: every boundary activation is
  /// pinned in `ws` (no Frame — the buffers must survive until
  /// backward_into) and recorded on an internal tape together with `in` and
  /// `out`.  Call backward_into with the same `in` before the workspace is
  /// reset; the tape is single-use.
  void forward_train_into(const TensorView& in, TensorView out,
                          Workspace& ws) override;

  /// Reverse walk over the tape: gradients ping-pong between two slabs sized
  /// at the largest internal boundary; layer i consumes the pinned activation
  /// tape_[i].  Throws TrainingStateError when the tape is missing, already
  /// consumed, or `in`/`grad_out` do not match it.
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;

  /// Floats forward_train_into + backward_into draw from the workspace:
  /// all pinned boundaries (own tape plus every nested container's, summed
  /// via train_pinned_floats — sibling blocks hold their pins at once), two
  /// gradient slabs, plus the largest per-layer transient scratch.
  std::int64_t train_scratch_floats(const Shape& input) const override;

  /// Internal boundary activations pinned from forward_train_into until
  /// backward_into, including nested containers' tapes.
  std::int64_t train_pinned_floats(const Shape& input) const override;

  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;

  /// Output shape after layer index `last_layer` (inclusive).
  Shape output_shape_at(const Shape& input, std::size_t last_layer) const;

  LayerKind kind() const override { return LayerKind::kBlock; }
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  std::int64_t macs_per_sample(const Shape& input_chw) const override;

  void append_state(std::vector<Tensor*>& state) override {
    for (auto& layer : layers_) layer->append_state(state);
  }

 private:
  std::vector<LayerPtr> layers_;
  // Training tape: views of the input, every internal boundary activation
  // (pinned in the caller's workspace) and the output of the last
  // forward_train_into.  Valid until consumed by backward_into.
  std::vector<TensorView> tape_;
  bool tape_valid_ = false;
};

}  // namespace nshd::nn
