// Sequential layer container with the "cut at index k" operation the paper
// relies on to form feature extractors (Sec. IV-A).
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace nshd::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input, bool training) override;

  /// Forward through layers [0, last_layer] inclusive (inference mode).
  /// `last_layer` = size()-1 is equivalent to full forward.
  Tensor forward_to(const Tensor& input, std::size_t last_layer);

  Tensor backward(const Tensor& grad_output) override;

  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override;

  /// Output shape after layer index `last_layer` (inclusive).
  Shape output_shape_at(const Shape& input, std::size_t last_layer) const;

  LayerKind kind() const override { return LayerKind::kBlock; }
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  std::int64_t macs_per_sample(const Shape& input_chw) const override;

  void append_state(std::vector<Tensor*>& state) override {
    for (auto& layer : layers_) layer->append_state(state);
  }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace nshd::nn
