#include "nn/conv.hpp"

#include <algorithm>
#include <cassert>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace nshd::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(Shape{out_channels, in_channels * kernel * kernel}, "conv.weight"),
      bias_(Shape{bias ? out_channels : 0}, "conv.bias") {
  kaiming_normal(weight_.value, in_channels * kernel * kernel, rng);
}

tensor::ConvGeometry Conv2d::geometry(std::int64_t in_h, std::int64_t in_w) const {
  return {.channels = in_channels_,
          .in_h = in_h,
          .in_w = in_w,
          .kernel_h = kernel_,
          .kernel_w = kernel_,
          .stride = stride_,
          .pad = pad_};
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == in_channels_);
  const std::int64_t batch = input.shape()[0];
  const auto geom = geometry(input.shape()[2], input.shape()[3]);
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t col_rows = geom.col_rows(), col_cols = geom.col_cols();

  if (training) cached_input_ = input;

  Tensor output(Shape{batch, out_channels_, out_h, out_w});
  std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
  const std::int64_t in_stride = in_channels_ * geom.in_h * geom.in_w;
  const std::int64_t out_stride = out_channels_ * out_h * out_w;
  for (std::int64_t n = 0; n < batch; ++n) {
    tensor::im2col(input.data() + n * in_stride, geom, col.data());
    // out[n] = W[O, col_rows] * col[col_rows, col_cols]
    tensor::gemm(weight_.value.data(), col.data(), output.data() + n * out_stride,
                 out_channels_, col_rows, col_cols);
    if (has_bias_) {
      float* out_n = output.data() + n * out_stride;
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float b = bias_.value[o];
        float* plane = out_n + o * out_h * out_w;
        for (std::int64_t i = 0; i < out_h * out_w; ++i) plane[i] += b;
      }
    }
  }
  return output;
}

void Conv2d::forward_into(const TensorView& in, TensorView out,
                          Workspace& scratch) {
  assert(in.shape().rank() == 4 && in.shape()[1] == in_channels_);
  const std::int64_t batch = in.shape()[0];
  const auto geom = geometry(in.shape()[2], in.shape()[3]);
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t col_rows = geom.col_rows(), col_cols = geom.col_cols();
  assert(out.shape() == Shape({batch, out_channels_, out_h, out_w}));

  // For a pointwise conv (k=1, s=1, p=0) the im2col matrix IS the input
  // plane [C, H*W], so the copy is skipped and the gemm reads the input
  // directly — same operands, bitwise-identical output.
  const bool pointwise = kernel_ == 1 && stride_ == 1 && pad_ == 0;
  // Same im2col + GEMM sequence as forward(); the col buffer persists in the
  // workspace across samples instead of being reallocated per call.  im2col
  // writes every element (padding included), so it needs no zeroing.
  Workspace::Frame frame(scratch);
  float* col = pointwise ? nullptr : scratch.alloc(col_rows * col_cols);
  const std::int64_t in_stride = in_channels_ * geom.in_h * geom.in_w;
  const std::int64_t out_stride = out_channels_ * out_h * out_w;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* rhs;
    if (pointwise) {
      rhs = in.data() + n * in_stride;
    } else {
      tensor::im2col(in.data() + n * in_stride, geom, col);
      rhs = col;
    }
    tensor::gemm(weight_.value.data(), rhs, out.data() + n * out_stride,
                 out_channels_, col_rows, col_cols);
    if (has_bias_) {
      float* out_n = out.data() + n * out_stride;
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float b = bias_.value[o];
        float* plane = out_n + o * out_h * out_w;
        for (std::int64_t i = 0; i < out_h * out_w; ++i) plane[i] += b;
      }
    }
  }
}

std::int64_t Conv2d::scratch_floats(const Shape& input) const {
  assert(input.rank() == 4);
  if (kernel_ == 1 && stride_ == 1 && pad_ == 0) return 0;  // pointwise: no col
  const auto geom = geometry(input[2], input[3]);
  return geom.col_rows() * geom.col_cols();
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty() && "backward before forward(training=true)");
  const Tensor& input = cached_input_;
  const std::int64_t batch = input.shape()[0];
  const auto geom = geometry(input.shape()[2], input.shape()[3]);
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t col_rows = geom.col_rows(), col_cols = geom.col_cols();
  assert(grad_output.shape() == Shape({batch, out_channels_, out_h, out_w}));

  Tensor grad_input(input.shape());
  std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
  std::vector<float> col_grad(static_cast<std::size_t>(col_rows * col_cols));
  const std::int64_t in_stride = in_channels_ * geom.in_h * geom.in_w;
  const std::int64_t out_stride = out_channels_ * out_h * out_w;

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* gout = grad_output.data() + n * out_stride;
    // dW += gout[O, cols] * col[rows, cols]^T  -> use gemm_bt.
    tensor::im2col(input.data() + n * in_stride, geom, col.data());
    tensor::gemm_bt(gout, col.data(), weight_.grad.data(), out_channels_,
                    col_cols, col_rows, /*accumulate=*/true);
    if (has_bias_) {
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float* plane = gout + o * out_h * out_w;
        float sum = 0.0f;
        for (std::int64_t i = 0; i < out_h * out_w; ++i) sum += plane[i];
        bias_.grad[o] += sum;
      }
    }
    // dcol = W^T[rows, O] * gout[O, cols]
    tensor::gemm_at(weight_.value.data(), gout, col_grad.data(), col_rows,
                    out_channels_, col_cols);
    tensor::col2im(col_grad.data(), geom, grad_input.data() + n * in_stride);
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

Shape Conv2d::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], out_channels_,
               tensor::conv_out_dim(input[2], kernel_, stride_, pad_),
               tensor::conv_out_dim(input[3], kernel_, stride_, pad_)};
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ")";
}

std::int64_t Conv2d::macs_per_sample(const Shape& input_chw) const {
  assert(input_chw.rank() == 3);
  const std::int64_t out_h = tensor::conv_out_dim(input_chw[1], kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(input_chw[2], kernel_, stride_, pad_);
  return out_channels_ * out_h * out_w * in_channels_ * kernel_ * kernel_;
}

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{channels, kernel * kernel}, "dwconv.weight") {
  kaiming_normal(weight_.value, kernel * kernel, rng);
}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t in_h = input.shape()[2], in_w = input.shape()[3];
  const std::int64_t out_h = tensor::conv_out_dim(in_h, kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(in_w, kernel_, stride_, pad_);

  if (training) cached_input_ = input;

  Tensor output(Shape{batch, channels_, out_h, out_w});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* in_plane = input.data() + (n * channels_ + c) * in_h * in_w;
      const float* w = weight_.value.data() + c * kernel_ * kernel_;
      float* out_plane = output.data() + (n * channels_ + c) * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          float sum = 0.0f;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ - pad_ + kh;
            if (ih < 0 || ih >= in_h) continue;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ - pad_ + kw;
              if (iw < 0 || iw >= in_w) continue;
              sum += in_plane[ih * in_w + iw] * w[kh * kernel_ + kw];
            }
          }
          out_plane[oh * out_w + ow] = sum;
        }
      }
    }
  }
  return output;
}

void DepthwiseConv2d::forward_into(const TensorView& in, TensorView out,
                                   Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  const std::int64_t batch = in.shape()[0];
  const std::int64_t in_h = in.shape()[2], in_w = in.shape()[3];
  const std::int64_t out_h = tensor::conv_out_dim(in_h, kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(in_w, kernel_, stride_, pad_);
  assert(out.shape() == Shape({batch, channels_, out_h, out_w}));

  // Interior output columns (every kernel tap lands in-bounds):
  //   ow*stride - pad >= 0             -> ow >= ceil(pad / stride)
  //   ow*stride - pad + kernel <= in_w -> ow <  (in_w - kernel + pad)/stride + 1
  const std::int64_t ow_lo = std::min(out_w, (pad_ + stride_ - 1) / stride_);
  const std::int64_t ow_hi =
      std::max(ow_lo, std::min(out_w, (in_w - kernel_ + pad_) / stride_ + 1));

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* in_plane = in.data() + (n * channels_ + c) * in_h * in_w;
      const float* w = weight_.value.data() + c * kernel_ * kernel_;
      float* out_plane = out.data() + (n * channels_ + c) * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        const std::int64_t ih0 = oh * stride_ - pad_;
        float* out_row = out_plane + oh * out_w;
        // Border columns (and fully-clipped rows) take the guarded path;
        // it matches forward() tap for tap.
        const auto guarded = [&](std::int64_t w0, std::int64_t w1) {
          for (std::int64_t ow = w0; ow < w1; ++ow) {
            float sum = 0.0f;
            for (std::int64_t kh = 0; kh < kernel_; ++kh) {
              const std::int64_t ih = ih0 + kh;
              if (ih < 0 || ih >= in_h) continue;
              for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                const std::int64_t iw = ow * stride_ - pad_ + kw;
                if (iw < 0 || iw >= in_w) continue;
                sum += in_plane[ih * in_w + iw] * w[kh * kernel_ + kw];
              }
            }
            out_row[ow] = sum;
          }
        };
        if (ih0 >= 0 && ih0 + kernel_ <= in_h && ow_lo < ow_hi) {
          guarded(0, ow_lo);
          guarded(ow_hi, out_w);
          // Interior: tap-major with no bounds checks.  Each output element
          // still accumulates its taps in (kh, kw) order starting from zero —
          // the identical float-addition sequence as the guarded loop — but
          // the inner trip is contiguous over ow and vectorizes.
          const std::int64_t count = ow_hi - ow_lo;
          for (std::int64_t i = 0; i < count; ++i) out_row[ow_lo + i] = 0.0f;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const float* src_row = in_plane + (ih0 + kh) * in_w;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const float wv = w[kh * kernel_ + kw];
              const float* src = src_row + ow_lo * stride_ - pad_ + kw;
              float* dst = out_row + ow_lo;
              if (stride_ == 1) {
                for (std::int64_t i = 0; i < count; ++i) dst[i] += wv * src[i];
              } else {
                for (std::int64_t i = 0; i < count; ++i)
                  dst[i] += wv * src[i * stride_];
              }
            }
          }
        } else {
          guarded(0, out_w);
        }
      }
    }
  }
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty());
  const Tensor& input = cached_input_;
  const std::int64_t batch = input.shape()[0];
  const std::int64_t in_h = input.shape()[2], in_w = input.shape()[3];
  const std::int64_t out_h = grad_output.shape()[2], out_w = grad_output.shape()[3];

  Tensor grad_input(input.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* in_plane = input.data() + (n * channels_ + c) * in_h * in_w;
      const float* gout_plane = grad_output.data() + (n * channels_ + c) * out_h * out_w;
      const float* w = weight_.value.data() + c * kernel_ * kernel_;
      float* gw = weight_.grad.data() + c * kernel_ * kernel_;
      float* gin_plane = grad_input.data() + (n * channels_ + c) * in_h * in_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow) {
          const float g = gout_plane[oh * out_w + ow];
          if (g == 0.0f) continue;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ - pad_ + kh;
            if (ih < 0 || ih >= in_h) continue;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ - pad_ + kw;
              if (iw < 0 || iw >= in_w) continue;
              gw[kh * kernel_ + kw] += g * in_plane[ih * in_w + iw];
              gin_plane[ih * in_w + iw] += g * w[kh * kernel_ + kw];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param*> DepthwiseConv2d::params() { return {&weight_}; }

Shape DepthwiseConv2d::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], channels_,
               tensor::conv_out_dim(input[2], kernel_, stride_, pad_),
               tensor::conv_out_dim(input[3], kernel_, stride_, pad_)};
}

std::string DepthwiseConv2d::name() const {
  return "DepthwiseConv2d(" + std::to_string(channels_) +
         ", k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) + ")";
}

std::int64_t DepthwiseConv2d::macs_per_sample(const Shape& input_chw) const {
  assert(input_chw.rank() == 3);
  const std::int64_t out_h = tensor::conv_out_dim(input_chw[1], kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(input_chw[2], kernel_, stride_, pad_);
  return channels_ * out_h * out_w * kernel_ * kernel_;
}

}  // namespace nshd::nn
