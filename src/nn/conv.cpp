#include "nn/conv.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/simd.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {

namespace {

namespace simd = tensor::simd;

// Interior depthwise forward row, stride 1.  Output-major: each output
// element accumulates its K*K taps in (kh, kw) order — the same per-element
// mul/add sequence as the guarded border path, so planned inference
// bitstreams are unchanged — while reading each input row once per kh
// instead of once per tap.
template <int K>
void dw_fwd_row_s1(const float* in_row0, std::int64_t in_w, const float* w,
                   float* dst, std::int64_t count) {
  std::int64_t i = 0;
  for (; i + simd::kWidth <= count; i += simd::kWidth) {
    simd::VF acc = simd::vzero();
    for (int kh = 0; kh < K; ++kh) {
      const float* src = in_row0 + kh * in_w + i;
      for (int kw = 0; kw < K; ++kw)
        acc = simd::vfmadd(simd::vset1(w[kh * K + kw]), simd::vload(src + kw),
                           acc);
    }
    simd::vstore(dst + i, acc);
  }
  for (; i < count; ++i) {
    float sum = 0.0f;
    for (int kh = 0; kh < K; ++kh) {
      const float* src = in_row0 + kh * in_w + i;
      for (int kw = 0; kw < K; ++kw) sum += w[kh * K + kw] * src[kw];
    }
    dst[i] = sum;
  }
}

// Interior depthwise backward row for one kh, stride 1.  One fused pass over
// the row accumulates all K kw-tap dW partial sums in vector lanes and adds
// the shifted dX saxpy, instead of a separate dot + saxpy sweep per tap.
// The traversal is fixed, so results are deterministic and thread-count
// invariant; the per-element reduction order differs from the guarded path,
// which is fine for training-only gradients (no goldens lock them).
template <int K>
void dw_bwd_row_s1(const float* g, const float* src, float* dst,
                   const float* wrow, float* gwrow, std::int64_t count) {
  simd::VF acc[K];
  for (int kw = 0; kw < K; ++kw) acc[kw] = simd::vzero();
  std::int64_t i = 0;
  for (; i + simd::kWidth <= count; i += simd::kWidth) {
    const simd::VF gv = simd::vload(g + i);
    for (int kw = 0; kw < K; ++kw)
      acc[kw] = simd::vfmadd(gv, simd::vload(src + i + kw), acc[kw]);
    // The K overlapping read-modify-write spans are applied in kw order, so
    // each dst element sees a fixed accumulation sequence.
    for (int kw = 0; kw < K; ++kw) {
      float* d = dst + i + kw;
      simd::vstore(d, simd::vfmadd(simd::vset1(wrow[kw]), gv, simd::vload(d)));
    }
  }
  float tail[K] = {};
  for (; i < count; ++i) {
    const float gs = g[i];
    for (int kw = 0; kw < K; ++kw) {
      tail[kw] += gs * src[i + kw];
      dst[i + kw] += wrow[kw] * gs;
    }
  }
  for (int kw = 0; kw < K; ++kw)
    gwrow[kw] += simd::vhsum(acc[kw]) + tail[kw];
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_(Shape{out_channels, in_channels * kernel * kernel}, "conv.weight"),
      bias_(Shape{bias ? out_channels : 0}, "conv.bias") {
  kaiming_normal(weight_.value, in_channels * kernel * kernel, rng);
}

tensor::ConvGeometry Conv2d::geometry(std::int64_t in_h, std::int64_t in_w) const {
  return {.channels = in_channels_,
          .in_h = in_h,
          .in_w = in_w,
          .kernel_h = kernel_,
          .kernel_w = kernel_,
          .stride = stride_,
          .pad = pad_};
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == in_channels_);
  const std::int64_t batch = input.shape()[0];
  const auto geom = geometry(input.shape()[2], input.shape()[3]);
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t col_rows = geom.col_rows(), col_cols = geom.col_cols();

  if (training) cached_input_ = input;

  Tensor output(Shape{batch, out_channels_, out_h, out_w});
  std::vector<float> col(static_cast<std::size_t>(col_rows * col_cols));
  const std::int64_t in_stride = in_channels_ * geom.in_h * geom.in_w;
  const std::int64_t out_stride = out_channels_ * out_h * out_w;
  for (std::int64_t n = 0; n < batch; ++n) {
    tensor::im2col(input.data() + n * in_stride, geom, col.data());
    // out[n] = W[O, col_rows] * col[col_rows, col_cols]
    tensor::gemm(weight_.value.data(), col.data(), output.data() + n * out_stride,
                 out_channels_, col_rows, col_cols);
    if (has_bias_) {
      float* out_n = output.data() + n * out_stride;
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float b = bias_.value[o];
        float* plane = out_n + o * out_h * out_w;
        for (std::int64_t i = 0; i < out_h * out_w; ++i) plane[i] += b;
      }
    }
  }
  return output;
}

void Conv2d::forward_into(const TensorView& in, TensorView out,
                          Workspace& scratch) {
  assert(in.shape().rank() == 4 && in.shape()[1] == in_channels_);
  const std::int64_t batch = in.shape()[0];
  const auto geom = geometry(in.shape()[2], in.shape()[3]);
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t col_rows = geom.col_rows(), col_cols = geom.col_cols();
  assert(out.shape() == Shape({batch, out_channels_, out_h, out_w}));

  // For a pointwise conv (k=1, s=1, p=0) the im2col matrix IS the input
  // plane [C, H*W], so the copy is skipped and the gemm reads the input
  // directly — same operands, bitwise-identical output.
  const bool pointwise = kernel_ == 1 && stride_ == 1 && pad_ == 0;
  // Same im2col + GEMM sequence as forward(); the col buffer persists in the
  // workspace across samples instead of being reallocated per call.  im2col
  // writes every element (padding included), so it needs no zeroing.
  Workspace::Frame frame(scratch);
  float* col = pointwise ? nullptr : scratch.alloc(col_rows * col_cols);
  const std::int64_t in_stride = in_channels_ * geom.in_h * geom.in_w;
  const std::int64_t out_stride = out_channels_ * out_h * out_w;
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* rhs;
    if (pointwise) {
      rhs = in.data() + n * in_stride;
    } else {
      tensor::im2col(in.data() + n * in_stride, geom, col);
      rhs = col;
    }
    tensor::gemm(weight_.value.data(), rhs, out.data() + n * out_stride,
                 out_channels_, col_rows, col_cols);
    if (has_bias_) {
      float* out_n = out.data() + n * out_stride;
      for (std::int64_t o = 0; o < out_channels_; ++o) {
        const float b = bias_.value[o];
        float* plane = out_n + o * out_h * out_w;
        for (std::int64_t i = 0; i < out_h * out_w; ++i) plane[i] += b;
      }
    }
  }
}

std::int64_t Conv2d::scratch_floats(const Shape& input) const {
  assert(input.rank() == 4);
  if (kernel_ == 1 && stride_ == 1 && pad_ == 0) return 0;  // pointwise: no col
  const auto geom = geometry(input[2], input[3]);
  return geom.col_rows() * geom.col_cols();
}

std::int64_t Conv2d::train_scratch_floats(const Shape& input) const {
  assert(input.rank() == 4);
  const auto geom = geometry(input[2], input[3]);
  const std::int64_t chunks =
      util::chunk_count(0, input[0], kTrainSampleGrain);
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  // Per chunk: dW partial, bias partial, and (non-pointwise) col + col_grad.
  std::int64_t per_chunk =
      out_channels_ * geom.col_rows() + out_channels_ + 2 * align;
  if (!(kernel_ == 1 && stride_ == 1 && pad_ == 0))
    per_chunk += 2 * geom.col_rows() * geom.col_cols() + 2 * align;
  return chunks * per_chunk;
}

void Conv2d::backward_into(const TensorView& in, const TensorView& grad_out,
                           TensorView grad_in, Workspace& ws) {
  assert(in.shape().rank() == 4 && in.shape()[1] == in_channels_);
  const std::int64_t batch = in.shape()[0];
  const auto geom = geometry(in.shape()[2], in.shape()[3]);
  const std::int64_t out_h = geom.out_h(), out_w = geom.out_w();
  const std::int64_t col_rows = geom.col_rows(), col_cols = geom.col_cols();
  assert(grad_out.shape() == Shape({batch, out_channels_, out_h, out_w}));
  assert(grad_in.shape() == in.shape());

  const bool pointwise = kernel_ == 1 && stride_ == 1 && pad_ == 0;
  const std::int64_t in_stride = in_channels_ * geom.in_h * geom.in_w;
  const std::int64_t out_stride = out_channels_ * out_h * out_w;
  const std::int64_t w_numel = out_channels_ * col_rows;
  const std::int64_t chunks = util::chunk_count(0, batch, kTrainSampleGrain);

  // Deterministic data-parallel accumulation: the batch is sharded into
  // fixed sample chunks; each chunk accumulates dW/db into its own zeroed
  // partial, and the partials are reduced serially in chunk-index order —
  // the same float-add sequence at every NSHD_THREADS.  Buffers are carved
  // out serially up front because Workspace::alloc is not thread-safe.
  Workspace::Frame frame(ws);
  std::vector<float*> dw(static_cast<std::size_t>(chunks));
  std::vector<float*> db(static_cast<std::size_t>(chunks), nullptr);
  std::vector<float*> col(static_cast<std::size_t>(chunks), nullptr);
  std::vector<float*> col_grad(static_cast<std::size_t>(chunks), nullptr);
  for (std::int64_t c = 0; c < chunks; ++c) {
    dw[c] = ws.alloc(w_numel);
    std::memset(dw[c], 0, static_cast<std::size_t>(w_numel) * sizeof(float));
    if (has_bias_) {
      db[c] = ws.alloc(out_channels_);
      std::memset(db[c], 0,
                  static_cast<std::size_t>(out_channels_) * sizeof(float));
    }
    if (!pointwise) {
      col[c] = ws.alloc(col_rows * col_cols);
      col_grad[c] = ws.alloc(col_rows * col_cols);
    }
  }

  util::parallel_for_chunks(0, batch, kTrainSampleGrain,
                            [&](std::int64_t ci, std::int64_t nb,
                                std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n) {
      const float* gout = grad_out.data() + n * out_stride;
      float* gin = grad_in.data() + n * in_stride;
      // dW_chunk += gout[O, cols] * col[rows, cols]^T — gemm_bt_packed (the
      // K axis is the whole output plane, where the packed kernel is ~2x the
      // dot-product form).  For a pointwise conv the col matrix IS the input
      // plane [C, H*W], so im2col is skipped and dX lands straight in
      // grad_in: col2im is the identity there, and writing x instead of
      // accumulating into zeros is bitwise equal.
      if (pointwise) {
        tensor::gemm_bt_packed(gout, in.data() + n * in_stride, dw[ci],
                               out_channels_, col_cols, col_rows,
                               /*accumulate=*/true);
      } else {
        tensor::im2col(in.data() + n * in_stride, geom, col[ci]);
        tensor::gemm_bt_packed(gout, col[ci], dw[ci], out_channels_, col_cols,
                               col_rows, /*accumulate=*/true);
      }
      if (has_bias_) {
        for (std::int64_t o = 0; o < out_channels_; ++o) {
          const float* plane = gout + o * out_h * out_w;
          float sum = 0.0f;
          for (std::int64_t i = 0; i < out_h * out_w; ++i) sum += plane[i];
          db[ci][o] += sum;
        }
      }
      // dcol = W^T[rows, O] * gout[O, cols]
      if (pointwise) {
        tensor::gemm_at(weight_.value.data(), gout, gin, col_rows,
                        out_channels_, col_cols);
      } else {
        tensor::gemm_at(weight_.value.data(), gout, col_grad[ci], col_rows,
                        out_channels_, col_cols);
        std::memset(gin, 0, static_cast<std::size_t>(in_stride) * sizeof(float));
        tensor::col2im(col_grad[ci], geom, gin);
      }
    }
  });

  for (std::int64_t c = 0; c < chunks; ++c) {
    float* wg = weight_.grad.data();
    const float* part = dw[c];
    for (std::int64_t i = 0; i < w_numel; ++i) wg[i] += part[i];
    if (has_bias_) {
      for (std::int64_t o = 0; o < out_channels_; ++o)
        bias_.grad[o] += db[c][o];
    }
  }
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != output_shape(cached_input_.shape()))
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(cached_input_.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(),
                ws);
  return grad_input;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

Shape Conv2d::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], out_channels_,
               tensor::conv_out_dim(input[2], kernel_, stride_, pad_),
               tensor::conv_out_dim(input[3], kernel_, stride_, pad_)};
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ")";
}

std::int64_t Conv2d::macs_per_sample(const Shape& input_chw) const {
  assert(input_chw.rank() == 3);
  const std::int64_t out_h = tensor::conv_out_dim(input_chw[1], kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(input_chw[2], kernel_, stride_, pad_);
  return out_channels_ * out_h * out_w * in_channels_ * kernel_ * kernel_;
}

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 util::Rng& rng)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Shape{channels, kernel * kernel}, "dwconv.weight") {
  kaiming_normal(weight_.value, kernel * kernel, rng);
}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t in_h = input.shape()[2], in_w = input.shape()[3];
  const std::int64_t out_h = tensor::conv_out_dim(in_h, kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(in_w, kernel_, stride_, pad_);

  if (training) cached_input_ = input;

  // Delegates to forward_into so both training paths execute the exact same
  // kernel.  A duplicated scalar loop is only bitwise-equal by codegen luck:
  // FMA contraction is per-loop, and -march=native builds rounded the two
  // copies differently for kernel 5 (caught by the bench parity gate).
  Tensor output(Shape{batch, channels_, out_h, out_w});
  Workspace& ws = legacy_train_workspace();
  forward_into(input.view(), output.view(), ws);
  return output;
}

void DepthwiseConv2d::forward_into(const TensorView& in, TensorView out,
                                   Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  const std::int64_t batch = in.shape()[0];
  const std::int64_t in_h = in.shape()[2], in_w = in.shape()[3];
  const std::int64_t out_h = tensor::conv_out_dim(in_h, kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(in_w, kernel_, stride_, pad_);
  assert(out.shape() == Shape({batch, channels_, out_h, out_w}));

  // Interior output columns (every kernel tap lands in-bounds):
  //   ow*stride - pad >= 0             -> ow >= ceil(pad / stride)
  //   ow*stride - pad + kernel <= in_w -> ow <  (in_w - kernel + pad)/stride + 1
  const std::int64_t ow_lo = std::min(out_w, (pad_ + stride_ - 1) / stride_);
  const std::int64_t ow_hi =
      std::max(ow_lo, std::min(out_w, (in_w - kernel_ + pad_) / stride_ + 1));

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* in_plane = in.data() + (n * channels_ + c) * in_h * in_w;
      const float* w = weight_.value.data() + c * kernel_ * kernel_;
      float* out_plane = out.data() + (n * channels_ + c) * out_h * out_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        const std::int64_t ih0 = oh * stride_ - pad_;
        float* out_row = out_plane + oh * out_w;
        // Border columns (and fully-clipped rows) take the guarded path;
        // it matches forward() tap for tap.
        const auto guarded = [&](std::int64_t w0, std::int64_t w1) {
          for (std::int64_t ow = w0; ow < w1; ++ow) {
            float sum = 0.0f;
            for (std::int64_t kh = 0; kh < kernel_; ++kh) {
              const std::int64_t ih = ih0 + kh;
              if (ih < 0 || ih >= in_h) continue;
              for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                const std::int64_t iw = ow * stride_ - pad_ + kw;
                if (iw < 0 || iw >= in_w) continue;
                sum += in_plane[ih * in_w + iw] * w[kh * kernel_ + kw];
              }
            }
            out_row[ow] = sum;
          }
        };
        if (ih0 >= 0 && ih0 + kernel_ <= in_h && ow_lo < ow_hi) {
          guarded(0, ow_lo);
          guarded(ow_hi, out_w);
          // Interior: no bounds checks.  Each output element still
          // accumulates its taps in (kh, kw) order starting from zero — the
          // identical float-addition sequence as the guarded loop — via the
          // output-major SIMD kernel for the common stride-1 kernel sizes,
          // or the tap-major fallback otherwise.
          const std::int64_t count = ow_hi - ow_lo;
          const float* in_row0 =
              in_plane + ih0 * in_w + (ow_lo * stride_ - pad_);
          if (stride_ == 1 && kernel_ == 3) {
            dw_fwd_row_s1<3>(in_row0, in_w, w, out_row + ow_lo, count);
          } else if (stride_ == 1 && kernel_ == 5) {
            dw_fwd_row_s1<5>(in_row0, in_w, w, out_row + ow_lo, count);
          } else {
            for (std::int64_t i = 0; i < count; ++i) out_row[ow_lo + i] = 0.0f;
            for (std::int64_t kh = 0; kh < kernel_; ++kh) {
              const float* src_row = in_plane + (ih0 + kh) * in_w;
              for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                const float wv = w[kh * kernel_ + kw];
                const float* src = src_row + ow_lo * stride_ - pad_ + kw;
                float* dst = out_row + ow_lo;
                if (stride_ == 1) {
                  for (std::int64_t i = 0; i < count; ++i) dst[i] += wv * src[i];
                } else {
                  for (std::int64_t i = 0; i < count; ++i)
                    dst[i] += wv * src[i * stride_];
                }
              }
            }
          }
        } else {
          guarded(0, out_w);
        }
      }
    }
  }
}

std::int64_t DepthwiseConv2d::train_scratch_floats(const Shape& input) const {
  assert(input.rank() == 4);
  const std::int64_t chunks =
      util::chunk_count(0, input[0], kTrainSampleGrain);
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  return chunks * (channels_ * kernel_ * kernel_ + align);
}

void DepthwiseConv2d::backward_into(const TensorView& in,
                                    const TensorView& grad_out,
                                    TensorView grad_in, Workspace& ws) {
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  const std::int64_t batch = in.shape()[0];
  const std::int64_t in_h = in.shape()[2], in_w = in.shape()[3];
  const std::int64_t out_h = grad_out.shape()[2], out_w = grad_out.shape()[3];
  assert(grad_out.shape() ==
         Shape({batch, channels_, out_h, out_w}));
  assert(grad_in.shape() == in.shape());

  const std::int64_t w_numel = channels_ * kernel_ * kernel_;
  const std::int64_t chunks = util::chunk_count(0, batch, kTrainSampleGrain);
  const std::int64_t sample_stride = channels_ * in_h * in_w;

  // Same chunked-partial scheme as Conv2d::backward_into: per-chunk dW
  // buffers (allocated serially — Workspace is not thread-safe) reduced in
  // chunk-index order; grad_in rows are disjoint per sample.
  Workspace::Frame frame(ws);
  std::vector<float*> dw(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) {
    dw[c] = ws.alloc(w_numel);
    std::memset(dw[c], 0, static_cast<std::size_t>(w_numel) * sizeof(float));
  }

  // Interior output columns (same derivation as forward_into): every kernel
  // tap lands in-bounds, so the hot path runs tap-major with no bounds
  // checks — a vector dot per tap for dW and a shifted saxpy for dX.
  const std::int64_t ow_lo = std::min(out_w, (pad_ + stride_ - 1) / stride_);
  const std::int64_t ow_hi =
      std::max(ow_lo, std::min(out_w, (in_w - kernel_ + pad_) / stride_ + 1));

  util::parallel_for_chunks(0, batch, kTrainSampleGrain,
                            [&](std::int64_t ci, std::int64_t nb,
                                std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n) {
      float* gin_sample = grad_in.data() + n * sample_stride;
      std::memset(gin_sample, 0,
                  static_cast<std::size_t>(sample_stride) * sizeof(float));
      for (std::int64_t c = 0; c < channels_; ++c) {
        const float* in_plane = in.data() + (n * channels_ + c) * in_h * in_w;
        const float* gout_plane =
            grad_out.data() + (n * channels_ + c) * out_h * out_w;
        const float* w = weight_.value.data() + c * kernel_ * kernel_;
        float* gw = dw[ci] + c * kernel_ * kernel_;
        float* gin_plane = gin_sample + c * in_h * in_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih0 = oh * stride_ - pad_;
          const float* g_row = gout_plane + oh * out_w;
          // Border columns (and clipped rows) take the guarded per-output
          // path; the accumulation order within each gw/gin element is
          // fixed by the loop structure, so the result is deterministic
          // and thread-count invariant (samples are chunk-disjoint).
          const auto guarded = [&](std::int64_t w0, std::int64_t w1) {
            for (std::int64_t ow = w0; ow < w1; ++ow) {
              const float g = g_row[ow];
              if (g == 0.0f) continue;
              for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                const std::int64_t ih = ih0 + kh;
                if (ih < 0 || ih >= in_h) continue;
                for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                  const std::int64_t iw = ow * stride_ - pad_ + kw;
                  if (iw < 0 || iw >= in_w) continue;
                  gw[kh * kernel_ + kw] += g * in_plane[ih * in_w + iw];
                  gin_plane[ih * in_w + iw] += g * w[kh * kernel_ + kw];
                }
              }
            }
          };
          if (ih0 >= 0 && ih0 + kernel_ <= in_h && ow_lo < ow_hi) {
            guarded(0, ow_lo);
            guarded(ow_hi, out_w);
            const std::int64_t count = ow_hi - ow_lo;
            const float* g_int = g_row + ow_lo;
            if (stride_ == 1 && (kernel_ == 3 || kernel_ == 5)) {
              const std::int64_t base = ow_lo - pad_;
              for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                const float* src = in_plane + (ih0 + kh) * in_w + base;
                float* dst = gin_plane + (ih0 + kh) * in_w + base;
                if (kernel_ == 3) {
                  dw_bwd_row_s1<3>(g_int, src, dst, w + kh * 3, gw + kh * 3,
                                   count);
                } else {
                  dw_bwd_row_s1<5>(g_int, src, dst, w + kh * 5, gw + kh * 5,
                                   count);
                }
              }
            } else {
              for (std::int64_t kh = 0; kh < kernel_; ++kh) {
                const float* src_row = in_plane + (ih0 + kh) * in_w;
                float* gin_row = gin_plane + (ih0 + kh) * in_w;
                for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                  const std::int64_t off = ow_lo * stride_ - pad_ + kw;
                  const float wv = w[kh * kernel_ + kw];
                  if (stride_ == 1) {
                    gw[kh * kernel_ + kw] +=
                        tensor::dot(g_int, src_row + off, count);
                    float* dst = gin_row + off;
                    for (std::int64_t i = 0; i < count; ++i)
                      dst[i] += wv * g_int[i];
                  } else {
                    float sum = 0.0f;
                    const float* src = src_row + off;
                    float* dst = gin_row + off;
                    for (std::int64_t i = 0; i < count; ++i) {
                      sum += g_int[i] * src[i * stride_];
                      dst[i * stride_] += wv * g_int[i];
                    }
                    gw[kh * kernel_ + kw] += sum;
                  }
                }
              }
            }
          } else {
            guarded(0, out_w);
          }
        }
      }
    }
  });

  float* wg = weight_.grad.data();
  for (std::int64_t c = 0; c < chunks; ++c) {
    const float* part = dw[c];
    for (std::int64_t i = 0; i < w_numel; ++i) wg[i] += part[i];
  }
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != output_shape(cached_input_.shape()))
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(cached_input_.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(),
                ws);
  return grad_input;
}

std::vector<Param*> DepthwiseConv2d::params() { return {&weight_}; }

Shape DepthwiseConv2d::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], channels_,
               tensor::conv_out_dim(input[2], kernel_, stride_, pad_),
               tensor::conv_out_dim(input[3], kernel_, stride_, pad_)};
}

std::string DepthwiseConv2d::name() const {
  return "DepthwiseConv2d(" + std::to_string(channels_) +
         ", k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) + ")";
}

std::int64_t DepthwiseConv2d::macs_per_sample(const Shape& input_chw) const {
  assert(input_chw.rank() == 3);
  const std::int64_t out_h = tensor::conv_out_dim(input_chw[1], kernel_, stride_, pad_);
  const std::int64_t out_w = tensor::conv_out_dim(input_chw[2], kernel_, stride_, pad_);
  return channels_ * out_h * out_w * kernel_ * kernel_;
}

}  // namespace nshd::nn
