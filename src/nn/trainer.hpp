// Mini-batch CNN trainer: the "pretraining" step the paper buys for free by
// downloading ImageNet weights.
#pragma once

#include <functional>

#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Cosine-anneal the learning rate to lr*min_lr_fraction over the run.
  float min_lr_fraction = 0.05f;
  /// Stop early once training accuracy reaches this level (0 disables).
  float target_train_accuracy = 0.995f;
  std::uint64_t seed = 7;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  double seconds = 0.0;
};

struct TrainReport {
  std::vector<EpochStats> epochs;
  double final_train_accuracy = 0.0;
};

/// Trains `model` (ending in a [N, K] logit layer) on `train` with SGD and a
/// cosine schedule.  `on_epoch` (optional) observes progress.
TrainReport train_classifier(Sequential& model, const data::Dataset& train,
                             const TrainConfig& config,
                             const std::function<void(const EpochStats&)>& on_epoch = {});

/// Inference accuracy of `model` on `dataset` (batched, eval mode).
double evaluate_classifier(Sequential& model, const data::Dataset& dataset,
                           std::int64_t batch_size = 64);

/// Full-model logits for every sample (eval mode), shape [N, K].
tensor::Tensor predict_logits(Sequential& model, const data::Dataset& dataset,
                              std::int64_t batch_size = 64);

}  // namespace nshd::nn
