// Mini-batch CNN trainer: the "pretraining" step the paper buys for free by
// downloading ImageNet weights.  Hardened for long runs: a non-finite epoch
// rolls back to the last finite snapshot with a learning-rate backoff, and
// every completed epoch yields a TrainCheckpoint from which a killed run
// resumes bitwise (given the same config, seed, and the deterministic
// thread pool).
#pragma once

#include <functional>
#include <optional>

#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/plan.hpp"
#include "nn/sequential.hpp"
#include "util/checkpoint.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Cosine-anneal the learning rate to lr*min_lr_fraction over the run.
  float min_lr_fraction = 0.05f;
  /// Stop early once training accuracy reaches this level (0 disables).
  float target_train_accuracy = 0.995f;
  std::uint64_t seed = 7;
  /// Divergence recovery: on a non-finite epoch loss or weight, roll back to
  /// the last finite epoch and retry that epoch with the learning rate
  /// scaled by divergence_backoff (bounded by max_divergence_retries).
  bool recover_divergence = true;
  std::int64_t max_divergence_retries = 3;
  float divergence_backoff = 0.5f;
  /// Use the zero-alloc planned training path (TrainingPlan over
  /// forward_train_into/backward_into).  false falls back to the legacy
  /// allocating Layer::forward/backward loop.  Both paths share one gradient
  /// bitstream, so the final weights are bitwise identical either way.
  bool planned = true;
  /// Batches the data::BatchPipeline assembles ahead of the training step;
  /// 0 fills synchronously, -1 reads NSHD_PREFETCH (default 1).  The batch
  /// stream is bitwise identical at every depth.
  int prefetch_depth = -1;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  double seconds = 0.0;
};

struct TrainReport {
  std::vector<EpochStats> epochs;  // only epochs run by this call
  double final_train_accuracy = 0.0;
  /// Number of rollback-and-retry recoveries performed.
  std::int64_t divergence_recoveries = 0;
  /// True when retries were exhausted; weights hold the last finite state.
  bool diverged = false;
  /// Epochs skipped because a resume checkpoint covered them.
  std::int64_t resumed_from_epoch = 0;
};

/// A resumable snapshot of a training run taken after a completed epoch.
/// Contains everything the loop needs to continue bitwise: model state
/// (params + running stats), optimizer state (momentum buffers), and the
/// schedule counters.  Convertible to a util::Checkpoint for disk.
struct TrainCheckpoint {
  std::int64_t epochs_done = 0;
  float lr_scale = 1.0f;  // accumulated divergence backoff
  std::int64_t recoveries = 0;
  std::vector<tensor::Tensor> model_state;
  std::vector<tensor::Tensor> optimizer_state;

  util::Checkpoint to_artifact(std::string key = {}) const;
  /// Rebuilds the snapshot; nullopt when the artifact's meta is not a
  /// trainer checkpoint.
  static std::optional<TrainCheckpoint> from_artifact(const util::Checkpoint& artifact);
};

/// Observes progress after each completed (finite) epoch; the checkpoint
/// argument resumes the run from exactly this point when passed back in.
using EpochHook = std::function<void(const EpochStats&, const TrainCheckpoint&)>;

/// Trains `model` (ending in a [N, K] logit layer) on `train` with SGD and a
/// cosine schedule.  When `resume` is given (and matches the model layout),
/// epochs [0, resume->epochs_done) are skipped and the rng/schedule streams
/// are fast-forwarded so the remaining epochs match an uninterrupted run
/// bitwise.  Fault site: "trainer.nan_loss" (injects a NaN batch loss).
TrainReport train_classifier(Sequential& model, const data::Dataset& train,
                             const TrainConfig& config,
                             const EpochHook& on_epoch = {},
                             const TrainCheckpoint* resume = nullptr);

/// Inference accuracy of `model` on `dataset` (batched, eval mode, via a
/// one-shot full-net InferencePlan).  An empty dataset evaluates to 0.0.
double evaluate_classifier(Sequential& model, const data::Dataset& dataset,
                           std::int64_t batch_size = 64);

/// Plan-reusing overload for repeated evaluation of the same model.
double evaluate_classifier(InferencePlan& plan, const data::Dataset& dataset,
                           std::int64_t batch_size = 64);

/// Full-model logits for every sample (eval mode), shape [N, K].
/// An empty dataset yields an empty tensor.
tensor::Tensor predict_logits(Sequential& model, const data::Dataset& dataset,
                              std::int64_t batch_size = 64);

/// Plan-reusing overload; batches run in parallel with per-worker
/// workspaces and write disjoint rows of the result.
tensor::Tensor predict_logits(InferencePlan& plan, const data::Dataset& dataset,
                              std::int64_t batch_size = 64);

}  // namespace nshd::nn
