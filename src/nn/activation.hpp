// Activation layers: ReLU (VGG), ReLU6 (MobileNetV2), SiLU/swish
// (EfficientNet) and Sigmoid (squeeze-excitation gate).
#pragma once

#include "nn/layer.hpp"

namespace nshd::nn {

enum class Activation { kReLU, kReLU6, kSiLU, kSigmoid };

const char* to_string(Activation act);

class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Activation act) : act_(act) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  bool inplace_eval() const override { return true; }
  Shape output_shape(const Shape& input) const override { return input; }
  LayerKind kind() const override { return LayerKind::kActivation; }
  std::string name() const override { return to_string(act_); }

  Activation activation() const { return act_; }

 private:
  Activation act_;
  Tensor cached_input_;
};

/// Scalar activation evaluations, shared with SE-block internals.
float activate(Activation act, float x);
float activate_grad(Activation act, float x);

}  // namespace nshd::nn
