#include "nn/train_plan.hpp"

#include <limits>
#include <string>

#include "util/fault.hpp"

namespace nshd::nn {

TrainingPlan::TrainingPlan(Sequential& net, Shape sample_chw,
                           std::int64_t max_batch)
    : net_(&net), sample_chw_(sample_chw), max_batch_(max_batch) {
  if (sample_chw_.rank() != 3)
    throw TrainingStateError("TrainingPlan: sample shape must be CHW, got " +
                             sample_chw_.to_string());
  if (max_batch_ < 1)
    throw TrainingStateError("TrainingPlan: max_batch must be >= 1, got " +
                             std::to_string(max_batch_));
  const Shape batched{max_batch_, sample_chw_[0], sample_chw_[1],
                      sample_chw_[2]};
  const Shape out = net_->output_shape(batched);
  if (out.rank() != 2 || out[0] != max_batch_)
    throw TrainingStateError(
        "TrainingPlan: net must produce [N, classes] logits, got " +
        out.to_string());
  classes_ = out[1];

  // One budget for the whole step: the net's own training scratch (pinned
  // tape + gradient slabs + layer scratch) plus the three buffers the plan
  // itself pins — logits, logit grads, and the input gradient sink.
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  const std::int64_t planned =
      net_->train_scratch_floats(batched) +
      2 * (max_batch_ * classes_ + align) + (batched.numel() + align);
  planned_floats_ = static_cast<std::size_t>(planned);
  ws_.reserve(planned_floats_);
}

TrainStepStats TrainingPlan::step(const TensorView& images,
                                  const std::vector<std::int64_t>& labels) {
  if (images.shape().rank() != 4 || images.shape()[1] != sample_chw_[0] ||
      images.shape()[2] != sample_chw_[1] ||
      images.shape()[3] != sample_chw_[2])
    throw TrainingStateError("TrainingPlan::step: images shape " +
                             images.shape().to_string() +
                             " does not match the planned sample shape " +
                             sample_chw_.to_string());
  const std::int64_t batch = images.shape()[0];
  if (batch < 1)
    throw TrainingStateError("TrainingPlan::step: empty batch");
  if (static_cast<std::int64_t>(labels.size()) != batch)
    throw TrainingStateError(
        "TrainingPlan::step: " + std::to_string(labels.size()) +
        " labels for a batch of " + std::to_string(batch));

  // The arena is recycled wholesale between steps; everything below —
  // logits, the training tape pinned by forward_train_into, the logit
  // gradient, and the input-gradient sink — lives in it.
  ws_.reset();
  TensorView logits = ws_.alloc_view(Shape{batch, classes_});
  net_->forward_train_into(images, logits, ws_);

  TensorView grad = ws_.alloc_view(Shape{batch, classes_});
  const LossStats stats = softmax_cross_entropy_into(logits, labels, grad);

  if (util::fault::should_fire("train.grad_nan"))
    grad.data()[0] = std::numeric_limits<float>::quiet_NaN();

  TensorView grad_in = ws_.alloc_view(images.shape());
  net_->backward_into(images, grad, grad_in, ws_);

  return TrainStepStats{stats.loss, stats.correct};
}

}  // namespace nshd::nn
