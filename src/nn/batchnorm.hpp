// Batch normalization over the channel axis of NCHW activations.
#pragma once

#include "nn/layer.hpp"

namespace nshd::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  void forward_train_into(const TensorView& in, TensorView out,
                          Workspace& ws) override;
  void backward_into(const TensorView& in, const TensorView& grad_out,
                     TensorView grad_in, Workspace& ws) override;
  bool inplace_eval() const override { return true; }
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override { return input; }
  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  std::string name() const override {
    return "BatchNorm2d(" + std::to_string(channels_) + ")";
  }

  std::int64_t channels() const { return channels_; }
  /// Running statistics, exposed for serialization.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  void append_state(std::vector<Tensor*>& state) override {
    state.push_back(&gamma_.value);
    state.push_back(&beta_.value);
    state.push_back(&running_mean_);
    state.push_back(&running_var_);
  }

 private:
  /// Training forward shared by forward() and forward_train_into(): computes
  /// batch statistics into saved_mean_/saved_inv_std_, folds them into the
  /// running stats, and normalizes.  Channels are independent (one writer per
  /// channel everywhere), so the per-channel shard is bitwise invariant.
  void forward_train_impl(const float* in, float* out, std::int64_t batch,
                          std::int64_t hw);

  std::int64_t channels_;
  float momentum_, epsilon_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Batch statistics of the last training forward; backward recomputes
  // x_hat = (x - mean) * inv_std from them with the exact forward expression,
  // so no [N, C, H, W] normalized cache is needed.
  Tensor saved_mean_, saved_inv_std_;
  // Legacy-path cache (planned path passes the pinned activation instead).
  Tensor cached_input_;
};

}  // namespace nshd::nn
