// Batch normalization over the channel axis of NCHW activations.
#pragma once

#include "nn/layer.hpp"

namespace nshd::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_into(const TensorView& in, TensorView out,
                    Workspace& scratch) override;
  bool inplace_eval() const override { return true; }
  std::vector<Param*> params() override;
  Shape output_shape(const Shape& input) const override { return input; }
  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  std::string name() const override {
    return "BatchNorm2d(" + std::to_string(channels_) + ")";
  }

  std::int64_t channels() const { return channels_; }
  /// Running statistics, exposed for serialization.
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  void append_state(std::vector<Tensor*>& state) override {
    state.push_back(&gamma_.value);
    state.push_back(&beta_.value);
    state.push_back(&running_mean_);
    state.push_back(&running_var_);
  }

 private:
  std::int64_t channels_;
  float momentum_, epsilon_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // Cached state for backward.
  Tensor cached_normalized_;   // x_hat
  Tensor cached_inv_std_;      // per-channel 1/sqrt(var+eps)
};

}  // namespace nshd::nn
