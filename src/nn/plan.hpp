// Shape-inferred execution plan for batched eval inference.
//
// An InferencePlan binds a Sequential prefix ([0, last_layer]) to a fixed
// per-sample input shape.  Construction runs shape inference once and sizes
// a workspace budget (ping-pong slabs + the largest per-layer scratch, see
// Sequential::scratch_floats_to); run_batch then executes the whole prefix
// without a single heap allocation on the hot path.  Plans are safe to call
// from multiple threads concurrently: each run_batch leases a Workspace from
// an internal pool (one per concurrent caller) and all layer forward_into
// implementations are mutation-free in eval mode.
//
// The plan produces bitwise-identical results to the legacy allocating
// Sequential::forward_to — layers reuse the exact same kernels and loop
// order — so the extractor and evaluator rewires in core/ and nn/trainer
// are pure performance changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/sequential.hpp"

namespace nshd::nn {

class InferencePlan {
 public:
  /// Plans layers [0, last_layer] of `net` for per-sample CHW shape
  /// `sample_chw`.  `max_batch` only sizes the pre-reserved workspaces;
  /// run_batch accepts any batch.  A batch larger than max_batch grows its
  /// leased arena for the call, and that oversized lease is then released
  /// rather than pooled, so one burst never inflates steady-state memory.
  /// The net must outlive the plan and must not be mutated (trained)
  /// while plans over it are in use.
  InferencePlan(Sequential& net, Shape sample_chw, std::size_t last_layer,
                std::int64_t max_batch = 32);

  InferencePlan(const InferencePlan&) = delete;
  InferencePlan& operator=(const InferencePlan&) = delete;

  const Shape& sample_chw() const { return sample_chw_; }
  std::size_t last_layer() const { return last_layer_; }
  std::int64_t max_batch() const { return max_batch_; }

  /// Output shape for a batch of `n` samples (batch axis replaces dim 0 of
  /// the inferred single-sample output shape).
  Shape output_shape(std::int64_t n) const;

  /// Per-sample output element count.
  std::int64_t out_features() const { return out_numel_per_sample_; }

  /// Runs eval inference on `in` = [N, C, H, W], writing into `out`
  /// (numel must equal output_shape(N).numel()).  Thread-safe.
  void run_batch(const TensorView& in, TensorView out);

  /// Allocating convenience wrapper; the output Tensor is still produced by
  /// the planned (workspace) path.
  Tensor run_batch(const Tensor& in);

  /// Shape-inferred workspace budget reserved per leased workspace.
  std::size_t planned_workspace_bytes() const {
    return planned_floats_ * sizeof(float);
  }

  /// Observed high-water usage across all workspaces this plan has leased.
  std::size_t peak_workspace_bytes() const;

  /// Number of workspaces alive (pooled + leased).  Tracks the maximum
  /// concurrency seen, minus oversized leases that were released.
  std::size_t workspace_count() const;

 private:
  std::unique_ptr<Workspace> acquire_workspace();
  void release_workspace(std::unique_ptr<Workspace> ws);

  Sequential* net_;
  Shape sample_chw_;
  std::size_t last_layer_;
  std::int64_t max_batch_;
  Shape out_shape_one_;  // output shape for batch == 1
  std::int64_t out_numel_per_sample_ = 0;
  std::size_t planned_floats_ = 0;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> free_;  // idle leases
  std::size_t total_workspaces_ = 0;
  std::size_t peak_floats_ = 0;  // folded in as leases return
};

}  // namespace nshd::nn
