#include "nn/serialize.hpp"

#include <cstring>

#include "util/cache.hpp"

namespace nshd::nn {

namespace {
/// A layout fingerprint: hash of the sequence of full tensor shapes.
/// Hashing dims (not just numel) makes a transposed/reshaped layout with
/// equal element counts a mismatch instead of a garbage load.
std::uint64_t layout_hash(const std::vector<Tensor*>& state) {
  std::string desc;
  for (const Tensor* t : state) {
    for (const std::int64_t d : t->shape().dims()) {
      desc += std::to_string(d);
      desc += 'x';
    }
    desc += ',';
  }
  return util::fnv1a64(desc);
}

/// The hash folded to 32 bits, as stored in the blob's header float slot.
std::uint32_t fingerprint_bits(const std::vector<Tensor*>& state) {
  const std::uint64_t h = layout_hash(state);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}
}  // namespace

util::Checkpoint checkpoint_state(Layer& layer, std::string key, std::string meta) {
  std::vector<Tensor*> state;
  layer.append_state(state);
  util::Checkpoint checkpoint;
  checkpoint.key = std::move(key);
  checkpoint.meta = std::move(meta);
  checkpoint.tensors.reserve(state.size());
  for (const Tensor* t : state) {
    util::CheckpointTensor ct;
    ct.dims = t->shape().dims();
    ct.values = t->storage();
    checkpoint.tensors.push_back(std::move(ct));
  }
  return checkpoint;
}

util::LoadStatus load_state(Layer& layer, const util::Checkpoint& checkpoint) {
  std::vector<Tensor*> state;
  layer.append_state(state);
  if (checkpoint.tensors.size() != state.size())
    return util::LoadStatus::kShapeMismatch;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (checkpoint.tensors[i].dims != state[i]->shape().dims() ||
        checkpoint.tensors[i].values.size() !=
            static_cast<std::size_t>(state[i]->numel()))
      return util::LoadStatus::kShapeMismatch;
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    std::memcpy(state[i]->data(), checkpoint.tensors[i].values.data(),
                checkpoint.tensors[i].values.size() * sizeof(float));
  }
  return util::LoadStatus::kOk;
}

std::vector<float> save_state(Layer& layer) {
  std::vector<Tensor*> state;
  layer.append_state(state);
  std::vector<float> blob;
  std::int64_t total = 1;
  for (const Tensor* t : state) total += t->numel();
  blob.reserve(static_cast<std::size_t>(total));
  float fingerprint;
  const std::uint32_t bits = fingerprint_bits(state);
  std::memcpy(&fingerprint, &bits, sizeof fingerprint);
  blob.push_back(fingerprint);
  for (const Tensor* t : state)
    blob.insert(blob.end(), t->storage().begin(), t->storage().end());
  return blob;
}

bool load_state(Layer& layer, const std::vector<float>& blob) {
  std::vector<Tensor*> state;
  layer.append_state(state);
  std::int64_t total = 1;
  for (const Tensor* t : state) total += t->numel();
  if (static_cast<std::int64_t>(blob.size()) != total) return false;
  if (blob.empty()) return false;
  // Compare the fingerprint as raw bits: a float != float comparison is
  // always true when the hash bits form a NaN pattern, which used to reject
  // valid cached weights forever.
  std::uint32_t stored_bits;
  std::memcpy(&stored_bits, &blob[0], sizeof stored_bits);
  if (stored_bits != fingerprint_bits(state)) return false;
  std::size_t offset = 1;
  for (Tensor* t : state) {
    std::memcpy(t->data(), blob.data() + offset,
                static_cast<std::size_t>(t->numel()) * sizeof(float));
    offset += static_cast<std::size_t>(t->numel());
  }
  return true;
}

std::int64_t parameter_count(Layer& layer) {
  std::int64_t total = 0;
  for (const Param* p : layer.params()) total += p->value.numel();
  return total;
}

}  // namespace nshd::nn
