#include "nn/serialize.hpp"

#include <cstring>

#include "util/cache.hpp"

namespace nshd::nn {

namespace {
/// A layout fingerprint: hash of the sequence of tensor sizes.
float layout_fingerprint(const std::vector<Tensor*>& state) {
  std::string desc;
  for (const Tensor* t : state) {
    desc += std::to_string(t->numel());
    desc += ',';
  }
  const std::uint64_t h = util::fnv1a64(desc);
  float f;
  const auto low = static_cast<std::uint32_t>(h ^ (h >> 32));
  std::memcpy(&f, &low, sizeof f);
  return f;
}
}  // namespace

std::vector<float> save_state(Layer& layer) {
  std::vector<Tensor*> state;
  layer.append_state(state);
  std::vector<float> blob;
  std::int64_t total = 1;
  for (const Tensor* t : state) total += t->numel();
  blob.reserve(static_cast<std::size_t>(total));
  blob.push_back(layout_fingerprint(state));
  for (const Tensor* t : state)
    blob.insert(blob.end(), t->storage().begin(), t->storage().end());
  return blob;
}

bool load_state(Layer& layer, const std::vector<float>& blob) {
  std::vector<Tensor*> state;
  layer.append_state(state);
  std::int64_t total = 1;
  for (const Tensor* t : state) total += t->numel();
  if (static_cast<std::int64_t>(blob.size()) != total) return false;
  if (blob.empty() || blob[0] != layout_fingerprint(state)) return false;
  std::size_t offset = 1;
  for (Tensor* t : state) {
    std::memcpy(t->data(), blob.data() + offset,
                static_cast<std::size_t>(t->numel()) * sizeof(float));
    offset += static_cast<std::size_t>(t->numel());
  }
  return true;
}

std::int64_t parameter_count(Layer& layer) {
  std::int64_t total = 0;
  for (const Param* p : layer.params()) total += p->value.numel();
  return total;
}

}  // namespace nshd::nn
