#include "nn/pool.hpp"

#include <cassert>
#include <limits>

namespace nshd::nn {

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4);
  const std::int64_t batch = input.shape()[0], channels = input.shape()[1];
  const std::int64_t in_h = input.shape()[2], in_w = input.shape()[3];
  const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
  const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
  assert(out_h >= 1 && out_w >= 1);

  Tensor output(Shape{batch, channels, out_h, out_w});
  if (training) {
    cached_input_shape_ = input.shape();
    cached_argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  }

  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      const std::int64_t plane_base = (n * channels + c) * in_h * in_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ + kh;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ + kw;
              const float v = plane[ih * in_w + iw];
              if (v > best) {
                best = v;
                best_idx = ih * in_w + iw;
              }
            }
          }
          output[out_idx] = best;
          if (training) cached_argmax_[static_cast<std::size_t>(out_idx)] = plane_base + best_idx;
        }
      }
    }
  }
  return output;
}

void MaxPool2d::forward_into(const TensorView& in, TensorView out,
                             Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4);
  const std::int64_t batch = in.shape()[0], channels = in.shape()[1];
  const std::int64_t in_h = in.shape()[2], in_w = in.shape()[3];
  const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
  const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
  assert(out.shape() == Shape({batch, channels, out_h, out_w}));

  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in.data() + (n * channels + c) * in_h * in_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ + kh;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ + kw;
              const float v = plane[ih * in_w + iw];
              if (v > best) best = v;
            }
          }
          out[out_idx] = best;
        }
      }
    }
  }
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  assert(!cached_argmax_.empty());
  Tensor grad_input(cached_input_shape_);
  const float* gout = grad_output.data();
  for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[cached_argmax_[static_cast<std::size_t>(i)]] += gout[i];
  }
  return grad_input;
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], input[1], (input[2] - kernel_) / stride_ + 1,
               (input[3] - kernel_) / stride_ + 1};
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4);
  const std::int64_t batch = input.shape()[0], channels = input.shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  if (training) cached_input_shape_ = input.shape();

  Tensor output(Shape{batch, channels, 1, 1});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      output[n * channels + c] = static_cast<float>(sum / hw);
    }
  }
  return output;
}

void GlobalAvgPool::forward_into(const TensorView& in, TensorView out,
                                 Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4);
  const std::int64_t batch = in.shape()[0], channels = in.shape()[1];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];
  assert(out.shape() == Shape({batch, channels, 1, 1}));

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in.data() + (n * channels + c) * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      out[n * channels + c] = static_cast<float>(sum / hw);
    }
  }
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  assert(cached_input_shape_.rank() == 4);
  const std::int64_t batch = cached_input_shape_[0];
  const std::int64_t channels = cached_input_shape_[1];
  const std::int64_t hw = cached_input_shape_[2] * cached_input_shape_[3];
  Tensor grad_input(cached_input_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float g = grad_output[n * channels + c] * inv;
      float* plane = grad_input.data() + (n * channels + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], input[1], 1, 1};
}

}  // namespace nshd::nn
