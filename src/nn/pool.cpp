#include "nn/pool.hpp"

#include <cassert>
#include <cstring>
#include <limits>

#include "util/thread_pool.hpp"

namespace nshd::nn {

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4);
  const std::int64_t batch = input.shape()[0], channels = input.shape()[1];
  const std::int64_t in_h = input.shape()[2], in_w = input.shape()[3];
  const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
  const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
  assert(out_h >= 1 && out_w >= 1);
  if (training) cached_input_ = input;

  Tensor output(Shape{batch, channels, out_h, out_w});
  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ + kh;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ + kw;
              const float v = plane[ih * in_w + iw];
              if (v > best) best = v;
            }
          }
          output[out_idx] = best;
        }
      }
    }
  }
  return output;
}

void MaxPool2d::forward_into(const TensorView& in, TensorView out,
                             Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4);
  const std::int64_t batch = in.shape()[0], channels = in.shape()[1];
  const std::int64_t in_h = in.shape()[2], in_w = in.shape()[3];
  const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
  const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
  assert(out.shape() == Shape({batch, channels, out_h, out_w}));

  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in.data() + (n * channels + c) * in_h * in_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t ih = oh * stride_ + kh;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t iw = ow * stride_ + kw;
              const float v = plane[ih * in_w + iw];
              if (v > best) best = v;
            }
          }
          out[out_idx] = best;
        }
      }
    }
  }
}

void MaxPool2d::backward_into(const TensorView& in, const TensorView& grad_out,
                              TensorView grad_in, Workspace& ws) {
  (void)ws;
  assert(in.shape().rank() == 4);
  const std::int64_t batch = in.shape()[0], channels = in.shape()[1];
  const std::int64_t in_h = in.shape()[2], in_w = in.shape()[3];
  const std::int64_t out_h = (in_h - kernel_) / stride_ + 1;
  const std::int64_t out_w = (in_w - kernel_) / stride_ + 1;
  assert(grad_out.shape() == Shape({batch, channels, out_h, out_w}));
  assert(grad_in.shape() == in.shape());

  const float* src = in.data();
  const float* gout = grad_out.data();
  float* gin = grad_in.data();
  const std::int64_t in_plane = in_h * in_w;
  const std::int64_t out_plane = out_h * out_w;
  // Samples are independent (every pooled window stays inside one plane), so
  // chunking over the batch is bitwise thread-invariant: within a sample the
  // scatter runs in the same flat (c, oh, ow) order as the serial pass.  The
  // argmax is recomputed with the exact forward selection loop (first-max
  // wins via `v > best`), which reproduces the cached-index behaviour.
  util::parallel_for(0, batch, kTrainSampleGrain,
                     [&](std::int64_t nb, std::int64_t ne) {
    for (std::int64_t n = nb; n < ne; ++n) {
      float* gsample = gin + n * channels * in_plane;
      std::memset(gsample, 0,
                  static_cast<std::size_t>(channels * in_plane) * sizeof(float));
      for (std::int64_t c = 0; c < channels; ++c) {
        const float* plane = src + (n * channels + c) * in_plane;
        const float* gsrc = gout + (n * channels + c) * out_plane;
        float* gplane = gsample + c * in_plane;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            float best = -std::numeric_limits<float>::infinity();
            std::int64_t best_idx = 0;
            for (std::int64_t kh = 0; kh < kernel_; ++kh) {
              const std::int64_t ih = oh * stride_ + kh;
              for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                const std::int64_t iw = ow * stride_ + kw;
                const float v = plane[ih * in_w + iw];
                if (v > best) {
                  best = v;
                  best_idx = ih * in_w + iw;
                }
              }
            }
            gplane[best_idx] += gsrc[oh * out_w + ow];
          }
        }
      }
    }
  });
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != output_shape(cached_input_.shape()))
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(cached_input_.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(),
                ws);
  return grad_input;
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], input[1], (input[2] - kernel_) / stride_ + 1,
               (input[3] - kernel_) / stride_ + 1};
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4);
  const std::int64_t batch = input.shape()[0], channels = input.shape()[1];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];
  if (training) cached_input_shape_ = input.shape();

  Tensor output(Shape{batch, channels, 1, 1});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      output[n * channels + c] = static_cast<float>(sum / hw);
    }
  }
  return output;
}

void GlobalAvgPool::forward_into(const TensorView& in, TensorView out,
                                 Workspace& scratch) {
  (void)scratch;
  assert(in.shape().rank() == 4);
  const std::int64_t batch = in.shape()[0], channels = in.shape()[1];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];
  assert(out.shape() == Shape({batch, channels, 1, 1}));

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = in.data() + (n * channels + c) * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      out[n * channels + c] = static_cast<float>(sum / hw);
    }
  }
}

void GlobalAvgPool::backward_into(const TensorView& in,
                                  const TensorView& grad_out,
                                  TensorView grad_in, Workspace& ws) {
  (void)ws;
  // Only in.shape() is read — the adjoint of a mean is data-independent.
  assert(in.shape().rank() == 4);
  const std::int64_t batch = in.shape()[0], channels = in.shape()[1];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];
  assert(grad_out.shape() == Shape({batch, channels, 1, 1}));
  assert(grad_in.shape() == in.shape());

  const float* gout = grad_out.data();
  float* gin = grad_in.data();
  const float inv = 1.0f / static_cast<float>(hw);
  // Pure writes, one plane per iteration: bitwise invariant under chunking.
  util::parallel_for(0, batch * channels, kTrainSampleGrain,
                     [&](std::int64_t pb, std::int64_t pe) {
    for (std::int64_t p = pb; p < pe; ++p) {
      const float g = gout[p] * inv;
      float* plane = gin + p * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  });
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  // Caches only the input shape (the adjoint needs nothing else), so this
  // wrapper runs the same data-independent fill as backward_into directly.
  if (cached_input_shape_.rank() != 4)
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  const std::int64_t batch = cached_input_shape_[0];
  const std::int64_t channels = cached_input_shape_[1];
  if (grad_output.shape() != Shape({batch, channels, 1, 1}))
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_shape_.to_string());
  const std::int64_t hw = cached_input_shape_[2] * cached_input_shape_[3];
  Tensor grad_input(cached_input_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float g = grad_output[n * channels + c] * inv;
      float* plane = grad_input.data() + (n * channels + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

Shape GlobalAvgPool::output_shape(const Shape& input) const {
  assert(input.rank() == 4);
  return Shape{input[0], input[1], 1, 1};
}

}  // namespace nshd::nn
