// First-order optimizers: SGD with momentum + weight decay, and Adam.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace nshd::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void step() = 0;

  /// Collects every tensor that must be persisted to resume an interrupted
  /// run bitwise (momentum/moment buffers, step counters).  Mirrors
  /// Layer::append_state; stateless optimizers append nothing.
  virtual void append_state(std::vector<tensor::Tensor*>& state) { (void)state; }

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

 protected:
  std::vector<Param*> params_;
  float learning_rate_ = 0.01f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

  void append_state(std::vector<tensor::Tensor*>& state) override {
    for (tensor::Tensor& v : velocity_) state.push_back(&v);
  }

 private:
  float momentum_, weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  void append_state(std::vector<tensor::Tensor*>& state) override {
    for (tensor::Tensor& m : m_) state.push_back(&m);
    for (tensor::Tensor& v : v_) state.push_back(&v);
    state.push_back(&step_count_);
  }

 private:
  float beta1_, beta2_, epsilon_, weight_decay_;
  /// Step counter as a [1] tensor so it rides along in append_state (exact
  /// as a float for any realistic run length).
  tensor::Tensor step_count_{tensor::Shape{1}};
  std::vector<tensor::Tensor> m_, v_;
};

}  // namespace nshd::nn
