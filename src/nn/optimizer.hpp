// First-order optimizers: SGD with momentum + weight decay, and Adam.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace nshd::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void step() = 0;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

 protected:
  std::vector<Param*> params_;
  float learning_rate_ = 0.01f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_, weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_, beta2_, epsilon_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
};

}  // namespace nshd::nn
