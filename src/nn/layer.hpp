// Layer abstraction for the from-scratch deep-learning substrate.
//
// The paper consumes PyTorch models; this reproduction implements the
// minimum viable training framework instead: explicit forward/backward per
// layer, mutable parameter slots with gradient buffers, and a Sequential
// container that supports the paper's "cut at layer index k" operation
// (Sec. IV-A) for building feature extractors.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"

namespace nshd::nn {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;
using tensor::Workspace;

/// Violation of the training-state contract: backward called before
/// forward(training=true), a grad_output that does not match the cached
/// batch, or a planned step driven out of order.  Typed (instead of an
/// assert) so release builds fail loudly rather than reading stale caches.
class TrainingStateError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Fixed chunk grains for the deterministic data-parallel backward path.
/// Gradient accumulation shards the batch into kTrainSampleGrain-sample
/// chunks with per-chunk partial buffers reduced in chunk-index order, and
/// elementwise adjoints split into kTrainElemGrain-element chunks — both are
/// functions of the work only, so results are bitwise identical at every
/// NSHD_THREADS (see DESIGN.md "Planned training & gradient accumulation").
inline constexpr std::int64_t kTrainSampleGrain = 8;
inline constexpr std::int64_t kTrainElemGrain = 1 << 14;

/// A trainable parameter: value plus an accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;
  std::string name;

  explicit Param(Shape shape, std::string param_name = {})
      : value(shape), grad(std::move(shape)), name(std::move(param_name)) {}
};

/// Structural kind of a layer; used by the hardware census (src/hw) to
/// attribute MACs/bytes and by model indexing.
enum class LayerKind {
  kConv,
  kDepthwiseConv,
  kBatchNorm,
  kActivation,
  kMaxPool,
  kAvgPool,
  kLinear,
  kFlatten,
  kDropout,
  kBlock,  // composite (inverted residual / MBConv / SE)
};

const char* to_string(LayerKind kind);

/// Base class for all layers.  Layers own their parameters and cache
/// whatever forward state their backward pass needs; backward must be called
/// with the same batch that was last forwarded with training=true.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output.  `training` toggles batch-norm statistics
  /// accumulation and dropout.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates the loss gradient; accumulates into param grads and returns
  /// the gradient with respect to the input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only forward writing into caller-provided memory.  Must match
  /// forward(input, /*training=*/false) bitwise.  `out` may alias `in` only
  /// when inplace_eval() is true.  Layer-local temporaries come from
  /// `scratch` and must be released (Frame) before returning; implementations
  /// must not mutate layer state so plans can run concurrently.
  /// The default materializes Tensors and forwards — correct but allocating.
  virtual void forward_into(const TensorView& in, TensorView out,
                            Workspace& scratch);

  /// Upper bound on the floats this layer allocs from `scratch` during one
  /// forward_into with the given (batch-full) input shape.  Used by plans to
  /// pre-size workspaces; an underestimate only costs an extra arena block.
  virtual std::int64_t scratch_floats(const Shape& input) const {
    (void)input;
    return 0;
  }

  /// Training-mode forward writing into caller-provided memory.  Must match
  /// forward(input, /*training=*/true) bitwise.  Unlike the legacy forward,
  /// this does NOT cache the input — the planned training path (TrainingPlan
  /// via Sequential::forward_train_into) pins boundary activations in the
  /// workspace and hands them back to backward_into, so no layer copies its
  /// input.  Layers whose training math equals eval math (conv, linear,
  /// pool, activation, SE, flatten) inherit the forward_into default;
  /// batch-norm (batch statistics), dropout (mask stream) and containers
  /// (tape) override.
  virtual void forward_train_into(const TensorView& in, TensorView out,
                                  Workspace& ws) {
    forward_into(in, out, ws);
  }

  /// Backward pass writing into caller-provided memory: accumulates into
  /// param grads and writes d(loss)/d(input) to `grad_in`.  `in` must be the
  /// exact activation the matching forward_train_into consumed (the planned
  /// path passes the pinned tape entry; the legacy backward() wrappers pass
  /// their cached copy), and `grad_in` must not alias `in` or `grad_out`.
  /// Layer-local temporaries come from `ws` (Frame-scoped).  Implementations
  /// shard sample/element loops through util::parallel_for with fixed grains
  /// and reduce per-chunk gradient partials in chunk-index order, so the
  /// accumulated grads are bitwise NSHD_THREADS-invariant.
  virtual void backward_into(const TensorView& in, const TensorView& grad_out,
                             TensorView grad_in, Workspace& ws);

  /// Upper bound on the floats this layer allocs from `ws` across one
  /// forward_train_into + backward_into pair (excluding pinned activations,
  /// which the container accounts for).  Defaults to scratch_floats.
  virtual std::int64_t train_scratch_floats(const Shape& input) const {
    return scratch_floats(input);
  }

  /// Floats that stay allocated in `ws` from forward_train_into until the
  /// matching backward_into consumes them (a container's pinned activation
  /// tape; leaves recompute instead of pinning, so the default is 0).
  /// Containers must SUM this across nested layers — unlike transient
  /// scratch, pins held by sibling blocks are all live at once.
  virtual std::int64_t train_pinned_floats(const Shape& input) const {
    (void)input;
    return 0;
  }

  /// True when forward_into tolerates out.data() == in.data() (elementwise
  /// or copy-free layers); lets the plan scheduler reuse buffers.
  virtual bool inplace_eval() const { return false; }

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Output shape for a given input shape (both include the batch axis).
  virtual Shape output_shape(const Shape& input) const = 0;

  virtual LayerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Multiply-accumulate count for a single sample with the given
  /// (batch-less) input shape; default 0 for op-free layers.
  virtual std::int64_t macs_per_sample(const Shape& input_chw) const {
    (void)input_chw;
    return 0;
  }

  /// Collects every tensor that must be persisted to reproduce inference:
  /// parameter values plus non-trainable state (batch-norm running stats).
  /// Containers recurse; the default implementation appends param values.
  virtual void append_state(std::vector<Tensor*>& state) {
    for (Param* p : params()) state.push_back(&p->value);
  }

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;
  Layer(Layer&&) = default;
  Layer& operator=(Layer&&) = default;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Zeroes gradients of all params in the list.
void zero_grads(const std::vector<Param*>& params);

/// Thread-local scratch arena backing the legacy allocating backward()
/// wrappers, which now delegate to backward_into so both training paths
/// share one gradient bitstream.  Each leaf wrapper reset()s it on entry;
/// that is safe because leaf wrappers never nest (containers recurse through
/// their children's wrappers, not through their own workspace use).
Workspace& legacy_train_workspace();

}  // namespace nshd::nn
