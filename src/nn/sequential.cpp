#include "nn/sequential.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <string>

namespace nshd::nn {

namespace {
void check_layer_index(std::size_t index, std::size_t size, const char* what) {
  // Throw (instead of asserting) so an out-of-range cut from a sweep config
  // surfaces as a catchable failure, not release-mode UB.
  if (index >= size)
    throw std::out_of_range(std::string(what) + ": layer index " +
                            std::to_string(index) + " >= size " +
                            std::to_string(size));
}
}  // namespace

Sequential& Sequential::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::forward_to(const Tensor& input, std::size_t last_layer) {
  check_layer_index(last_layer, layers_.size(), "Sequential::forward_to");
  Tensor x = input;
  for (std::size_t i = 0; i <= last_layer; ++i) {
    x = layers_[i]->forward(x, /*training=*/false);
  }
  return x;
}

void Sequential::forward_into_to(const TensorView& in, TensorView out,
                                 Workspace& ws, std::size_t last_layer) {
  check_layer_index(last_layer, layers_.size(), "Sequential::forward_into_to");

  // Shape pass: the two ping-pong slabs are sized at the largest
  // intermediate output (the final output lands in `out` directly).
  std::vector<Shape> shapes(last_layer + 1);
  Shape s = in.shape();
  std::int64_t max_inter = 0;
  for (std::size_t i = 0; i <= last_layer; ++i) {
    s = layers_[i]->output_shape(s);
    shapes[i] = s;
    if (i < last_layer) max_inter = std::max(max_inter, s.numel());
  }
  assert(out.numel() == shapes[last_layer].numel());

  Workspace::Frame frame(ws);
  float* slabs[2] = {ws.alloc(max_inter), ws.alloc(max_inter)};

  TensorView cur = in;
  int cur_slab = -1;  // -1: still reading the caller's (read-only) input
  for (std::size_t i = 0; i <= last_layer; ++i) {
    Layer& layer = *layers_[i];
    TensorView target;
    int target_slab = cur_slab;
    if (i == last_layer) {
      target = TensorView(out.data(), shapes[i]);
    } else if (layer.inplace_eval() && cur_slab >= 0) {
      // Relabel the slab in place; numel is preserved by in-place layers.
      target = TensorView(cur.data(), shapes[i]);
    } else {
      target_slab = cur_slab == 0 ? 1 : 0;
      target = TensorView(slabs[target_slab], shapes[i]);
    }
    layer.forward_into(cur, target, ws);
    cur = target;
    cur_slab = target_slab;
  }
}

void Sequential::forward_into(const TensorView& in, TensorView out,
                              Workspace& scratch) {
  if (layers_.empty()) {
    assert(out.numel() == in.numel());
    if (out.data() != in.data() && in.numel() > 0) {
      std::memcpy(out.data(), in.data(),
                  static_cast<std::size_t>(in.numel()) * sizeof(float));
    }
    return;
  }
  forward_into_to(in, out, scratch, layers_.size() - 1);
}

std::int64_t Sequential::scratch_floats(const Shape& input) const {
  if (layers_.empty()) return 0;
  return scratch_floats_to(input, layers_.size() - 1);
}

std::int64_t Sequential::scratch_floats_to(const Shape& input,
                                           std::size_t last_layer) const {
  check_layer_index(last_layer, layers_.size(), "Sequential::scratch_floats_to");
  Shape s = input;
  std::int64_t max_inter = 0, max_layer_scratch = 0;
  for (std::size_t i = 0; i <= last_layer; ++i) {
    max_layer_scratch =
        std::max(max_layer_scratch, layers_[i]->scratch_floats(s));
    s = layers_[i]->output_shape(s);
    if (i < last_layer) max_inter = std::max(max_inter, s.numel());
  }
  // Slack for the arena rounding each alloc up to its alignment quantum.
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  return 2 * (max_inter + align) + max_layer_scratch;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::forward_train_into(const TensorView& in, TensorView out,
                                    Workspace& ws) {
  tape_.clear();
  tape_.push_back(in);
  if (layers_.empty()) {
    assert(out.numel() == in.numel());
    if (out.data() != in.data() && in.numel() > 0) {
      std::memcpy(out.data(), in.data(),
                  static_cast<std::size_t>(in.numel()) * sizeof(float));
    }
    tape_.push_back(out);
    tape_valid_ = true;
    return;
  }
  // Every boundary activation gets its own pinned span (deliberately no
  // Frame and no in-place reuse: backward_into needs each layer's exact
  // input preserved).  The last layer writes straight into `out`.
  Shape s = in.shape();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    s = layers_[i]->output_shape(s);
    TensorView target;
    if (i + 1 == layers_.size()) {
      assert(out.numel() == s.numel());
      target = TensorView(out.data(), s);
    } else {
      target = ws.alloc_view(s);
    }
    layers_[i]->forward_train_into(tape_.back(), target, ws);
    tape_.push_back(target);
  }
  tape_valid_ = true;
}

void Sequential::backward_into(const TensorView& in, const TensorView& grad_out,
                               TensorView grad_in, Workspace& ws) {
  if (!tape_valid_)
    throw TrainingStateError(
        "Sequential::backward_into before forward_train_into (or tape "
        "already consumed)");
  if (tape_.front().data() != in.data() || tape_.front().shape() != in.shape())
    throw TrainingStateError(
        "Sequential::backward_into: input does not match the training tape");
  if (grad_out.shape() != tape_.back().shape())
    throw TrainingStateError(
        "Sequential::backward_into: grad_output shape " +
        grad_out.shape().to_string() + " does not match the forward output " +
        tape_.back().shape().to_string());
  tape_valid_ = false;  // single-use: the slab walk clobbers nothing pinned,
                        // but the tape's activations die with the next reset

  if (layers_.empty()) {
    assert(grad_in.numel() == grad_out.numel());
    if (grad_in.data() != grad_out.data() && grad_out.numel() > 0) {
      std::memcpy(grad_in.data(), grad_out.data(),
                  static_cast<std::size_t>(grad_out.numel()) * sizeof(float));
    }
    return;
  }

  // Gradients ping-pong between two slabs sized at the largest internal
  // boundary; the first layer writes straight into grad_in.  Layer-local
  // scratch (chunk partials, col buffers) nests in per-layer Frames inside
  // this one, so the pinned tape below stays untouched.
  Workspace::Frame frame(ws);
  std::int64_t max_inter = 0;
  for (std::size_t i = 1; i + 1 < tape_.size(); ++i)
    max_inter = std::max(max_inter, tape_[i].numel());
  float* slabs[2] = {ws.alloc(max_inter), ws.alloc(max_inter)};

  TensorView g = grad_out;
  int cur_slab = -1;  // -1: still reading the caller's grad_out
  for (std::size_t i = layers_.size(); i-- > 0;) {
    TensorView target;
    if (i == 0) {
      target = TensorView(grad_in.data(), tape_[0].shape());
    } else {
      const int t = cur_slab == 0 ? 1 : 0;
      target = TensorView(slabs[t], tape_[i].shape());
      cur_slab = t;
    }
    layers_[i]->backward_into(tape_[i], g, target, ws);
    g = target;
  }
}

std::int64_t Sequential::train_pinned_floats(const Shape& input) const {
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  Shape s = input;
  std::int64_t pinned = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    pinned += layers_[i]->train_pinned_floats(s);
    s = layers_[i]->output_shape(s);
    if (i + 1 < layers_.size()) pinned += s.numel() + align;
  }
  return pinned;
}

std::int64_t Sequential::train_scratch_floats(const Shape& input) const {
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  Shape s = input;
  std::int64_t max_inter = 0, max_transient = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    // A nested container's pins are already summed via train_pinned_floats;
    // only its transient (frame-scoped) share competes for the max.
    max_transient = std::max(max_transient,
                             layers_[i]->train_scratch_floats(s) -
                                 layers_[i]->train_pinned_floats(s));
    s = layers_[i]->output_shape(s);
    if (i + 1 < layers_.size()) max_inter = std::max(max_inter, s.numel());
  }
  return train_pinned_floats(input) + 2 * (max_inter + align) + max_transient;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

Shape Sequential::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& layer : layers_) s = layer->output_shape(s);
  return s;
}

Shape Sequential::output_shape_at(const Shape& input, std::size_t last_layer) const {
  check_layer_index(last_layer, layers_.size(), "Sequential::output_shape_at");
  Shape s = input;
  for (std::size_t i = 0; i <= last_layer; ++i) s = layers_[i]->output_shape(s);
  return s;
}

std::int64_t Sequential::macs_per_sample(const Shape& input_chw) const {
  // Walk batch-less CHW shapes through the stack, accumulating per-layer MACs.
  // Works because every layer's output_shape handles rank-4 with batch; wrap
  // in a fake batch of 1.
  Shape s{1, input_chw[0], input_chw.rank() > 1 ? input_chw[1] : 1,
          input_chw.rank() > 2 ? input_chw[2] : 1};
  std::int64_t total = 0;
  for (const auto& layer : layers_) {
    if (layer->kind() == LayerKind::kFlatten || layer->kind() == LayerKind::kLinear) {
      // Linear layers operate on [N, F]; flatten first.
      if (s.rank() == 4) s = Shape{s[0], s.numel() / s[0]};
    }
    const Shape chw = s.rank() == 4 ? Shape{s[1], s[2], s[3]} : Shape{s[1]};
    total += layer->macs_per_sample(chw);
    s = layer->output_shape(s);
  }
  return total;
}

}  // namespace nshd::nn
