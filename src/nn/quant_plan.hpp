// INT8 execution plan for batched eval inference.
//
// A QuantizedInferencePlan mirrors InferencePlan (same Sequential prefix,
// same Workspace-pool discipline, same thread-safety contract) but executes
// int8-capable layers on the widening u8×s8 kernels in tensor/simd.hpp and
// tensor/gemm.cpp.  Construction quantizes weights per-channel (keeping a
// pre-widened, K-padded s16 copy) and compiles a step tape by tracking the
// activation *representation* through the prefix: the input edge is
// quantized to u8, conv/linear run gemm_s16_u8 over a u8 im2row lowering —
// both operands K-padded to whole simd strips, so the tiled kernel never
// touches a scalar tail — with a per-row requantization epilogue
// (quant::requantize_row_u8), ReLU/ReLU6 and
// MaxPool stay in u8 (exact, scale-preserving), Flatten/Dropout vanish, and
// any other layer falls back to its f32 forward_into with explicit
// dequantize/quantize transition steps around the f32 segment.  The cut
// boundary feeding the HD projection is dequantized back to f32, so the
// plan is a drop-in for InferencePlan wherever features are consumed.
//
// Activation scales come from calibrate(): N batches run through the f32
// layers while observers fold per-boundary ranges; run_batch before
// calibration throws.  A boundary whose calibration fails (typed
// CalibStatus — non-finite range, zero scale, both fault-injectable) forces
// the layers that needed it onto the f32 path AND increments
// calibration_fallbacks — fallback is never silent.
//
// Determinism: integer accumulation is exact, the requant epilogue is a
// fixed per-element formula, and all parallel loops use fixed grains, so
// quantized outputs are bitwise invariant across NSHD_THREADS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/quant.hpp"

namespace nshd::nn {

/// Per-boundary calibration outcome plus plan-level fallback accounting.
/// boundary_status[b] is the status of the activation entering layer b
/// (b = 0 is the network input; b = last_layer+1 is the cut output); a
/// boundary the compiled tape never quantizes stays kOk.
struct CalibrationReport {
  std::vector<tensor::quant::CalibStatus> boundary_status;
  std::int64_t int8_layers = 0;           // layers executing on int8 kernels
  std::int64_t fallback_layers = 0;       // layers executing in f32
  std::int64_t calibration_fallbacks = 0; // int8-capable layers forced to f32
                                          // by a failed boundary calibration
  bool calibrated = false;

  bool clean() const { return calibrated && calibration_fallbacks == 0; }
};

enum class ObserverKind { kMinMax, kMovingAverage };

struct QuantPlanOptions {
  ObserverKind observer = ObserverKind::kMinMax;
  float momentum = 0.1f;  // MovingAverage only
};

class QuantizedInferencePlan {
 public:
  using Options = QuantPlanOptions;

  /// Plans layers [0, last_layer] of `net` for per-sample CHW shape
  /// `sample_chw`.  Weights are quantized immediately (per-channel symmetric
  /// s8); activation scales require calibrate().  The net must outlive the
  /// plan and must not be mutated while the plan is in use — reloading HD
  /// state (manifold/class bank) is fine, retraining the CNN prefix is not.
  QuantizedInferencePlan(Sequential& net, Shape sample_chw,
                         std::size_t last_layer, std::int64_t max_batch = 32,
                         Options options = Options());

  QuantizedInferencePlan(const QuantizedInferencePlan&) = delete;
  QuantizedInferencePlan& operator=(const QuantizedInferencePlan&) = delete;

  /// Runs `images` = [N, C, H, W] through the f32 layers in serial
  /// batch_size slices, folding every boundary range into the observers,
  /// then fixes activation scales and compiles the int8 tape.  Deterministic
  /// for a given (images, batch_size) — batches run in order.  May be called
  /// again to re-calibrate.  Returns the report (also kept on the plan).
  const CalibrationReport& calibrate(const TensorView& images,
                                     std::int64_t batch_size = 32);

  bool calibrated() const { return report_.calibrated; }
  const CalibrationReport& report() const { return report_; }
  std::int64_t int8_layers() const { return report_.int8_layers; }
  std::int64_t fallback_layers() const { return report_.fallback_layers; }
  std::int64_t calibration_fallbacks() const {
    return report_.calibration_fallbacks;
  }

  const Shape& sample_chw() const { return sample_chw_; }
  std::size_t last_layer() const { return last_layer_; }
  std::int64_t max_batch() const { return max_batch_; }
  Shape output_shape(std::int64_t n) const;
  std::int64_t out_features() const { return out_numel_per_sample_; }

  /// Runs quantized eval inference on `in` = [N, C, H, W], writing f32
  /// features into `out`.  Thread-safe (workspace pool, as InferencePlan).
  /// Throws std::logic_error if calibrate() has not run.
  void run_batch(const TensorView& in, TensorView out);
  Tensor run_batch(const Tensor& in);

  std::size_t planned_workspace_bytes() const {
    return planned_floats_ * sizeof(float);
  }
  std::size_t peak_workspace_bytes() const;
  std::size_t workspace_count() const;

 private:
  enum class LayerClass { kConvS8, kLinearS8, kReluQ, kMaxPoolQ, kPassQ, kFallback };

  struct Step {
    enum class Kind { kQuantize, kDequant, kConvS8, kLinearS8, kReluQ, kMaxPoolQ, kF32 };
    Kind kind;
    std::size_t layer = 0;  // source layer (op and kF32 steps)
    Shape in_shape, out_shape;  // per-sample shapes with batch dim == 1
    tensor::quant::QuantParams in_q, out_q;
    std::uint8_t clamp_lo = 0, clamp_hi = 255;  // kReluQ
    tensor::ConvGeometry geom;                  // kConvS8
    std::int64_t rows = 0, cols = 0;            // weight rows / K per row
    int weights = -1;                           // index into qweights_
    std::vector<float> mult;                    // per-row s_in * s_w
    std::vector<std::int32_t> sub;              // per-row zp_in * row_sum_w
    std::vector<float> bias;                    // per-row f32 bias (or 0)
  };

  void classify_layers();
  tensor::quant::CalibStatus boundary_params(std::size_t boundary,
                                             tensor::quant::QuantParams* qp);
  void compile();
  std::size_t planned_floats_for(std::int64_t batch) const;
  void execute(const TensorView& in, TensorView out, Workspace& ws) const;

  std::unique_ptr<Workspace> acquire_workspace();
  void release_workspace(std::unique_ptr<Workspace> ws);

  Sequential* net_;
  Shape sample_chw_;
  std::size_t last_layer_;
  std::int64_t max_batch_;
  Options options_;

  std::vector<Shape> shapes_;  // boundary shapes (batch dim == 1), size last+2
  std::vector<LayerClass> classes_;
  std::vector<int> weight_index_;  // per layer, -1 when not conv/linear
  std::vector<tensor::quant::QuantizedWeights> qweights_;
  std::vector<tensor::quant::MinMaxObserver> minmax_;
  std::vector<tensor::quant::MovingAverageObserver> ema_;

  std::vector<Step> steps_;
  CalibrationReport report_;

  Shape out_shape_one_;
  std::int64_t out_numel_per_sample_ = 0;
  std::int64_t max_boundary_numel_ = 0;  // per sample, across all boundaries
  std::size_t planned_floats_ = 0;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Workspace>> free_;
  std::size_t total_workspaces_ = 0;
  std::size_t peak_floats_ = 0;
};

}  // namespace nshd::nn
