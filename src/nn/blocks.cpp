#include "nn/blocks.hpp"

#include <cassert>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {

SqueezeExcite::SqueezeExcite(std::int64_t channels, std::int64_t reduced,
                             Activation act, util::Rng& rng)
    : channels_(channels),
      reduced_(reduced),
      act_(act),
      w1_(Shape{reduced, channels}, "se.w1"),
      b1_(Shape{reduced}, "se.b1"),
      w2_(Shape{channels, reduced}, "se.w2"),
      b2_(Shape{channels}, "se.b2") {
  kaiming_normal(w1_.value, channels, rng);
  kaiming_normal(w2_.value, reduced, rng);
}

Tensor SqueezeExcite::forward(const Tensor& input, bool training) {
  assert(input.shape().rank() == 4 && input.shape()[1] == channels_);
  const std::int64_t batch = input.shape()[0];
  const std::int64_t hw = input.shape()[2] * input.shape()[3];

  Tensor pooled(Shape{batch, channels_});
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* plane = input.data() + (n * channels_ + c) * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      pooled.at(n, c) = static_cast<float>(sum / hw);
    }
  }

  Tensor hidden(Shape{batch, reduced_});
  tensor::gemm_bt(pooled.data(), w1_.value.data(), hidden.data(), batch,
                  channels_, reduced_);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t r = 0; r < reduced_; ++r) hidden.at(n, r) += b1_.value[r];

  Tensor hidden_act(Shape{batch, reduced_});
  for (std::int64_t i = 0; i < hidden.numel(); ++i)
    hidden_act[i] = activate(act_, hidden[i]);

  Tensor gate_pre(Shape{batch, channels_});
  tensor::gemm_bt(hidden_act.data(), w2_.value.data(), gate_pre.data(), batch,
                  reduced_, channels_);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t c = 0; c < channels_; ++c) gate_pre.at(n, c) += b2_.value[c];

  Tensor gate(Shape{batch, channels_});
  for (std::int64_t i = 0; i < gate.numel(); ++i)
    gate[i] = activate(Activation::kSigmoid, gate_pre[i]);

  Tensor output(input.shape());
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float s = gate.at(n, c);
      const float* in_plane = input.data() + (n * channels_ + c) * hw;
      float* out_plane = output.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) out_plane[i] = in_plane[i] * s;
    }
  }

  if (training) cached_input_ = input;
  return output;
}

void SqueezeExcite::forward_into(const TensorView& in, TensorView out,
                                 Workspace& scratch) {
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  assert(out.numel() == in.numel());
  const std::int64_t batch = in.shape()[0];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];

  // Same op order as forward(); the gate is fully computed from the input
  // before the scale loop, so running in place over `in` is safe.
  Workspace::Frame frame(scratch);
  float* pooled = scratch.alloc(batch * channels_);
  float* hidden = scratch.alloc(batch * reduced_);
  float* hidden_act = scratch.alloc(batch * reduced_);
  float* gate_pre = scratch.alloc(batch * channels_);
  float* gate = scratch.alloc(batch * channels_);

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float* plane = in.data() + (n * channels_ + c) * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      pooled[n * channels_ + c] = static_cast<float>(sum / hw);
    }
  }

  tensor::gemm_bt(pooled, w1_.value.data(), hidden, batch, channels_, reduced_);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t r = 0; r < reduced_; ++r)
      hidden[n * reduced_ + r] += b1_.value[r];

  for (std::int64_t i = 0; i < batch * reduced_; ++i)
    hidden_act[i] = activate(act_, hidden[i]);

  tensor::gemm_bt(hidden_act, w2_.value.data(), gate_pre, batch, reduced_,
                  channels_);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t c = 0; c < channels_; ++c)
      gate_pre[n * channels_ + c] += b2_.value[c];

  for (std::int64_t i = 0; i < batch * channels_; ++i)
    gate[i] = activate(Activation::kSigmoid, gate_pre[i]);

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float s = gate[n * channels_ + c];
      const float* in_plane = in.data() + (n * channels_ + c) * hw;
      float* out_plane = out.data() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) out_plane[i] = in_plane[i] * s;
    }
  }
}

std::int64_t SqueezeExcite::scratch_floats(const Shape& input) const {
  assert(input.rank() == 4);
  const std::int64_t batch = input[0];
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  return batch * (3 * channels_ + 2 * reduced_) + 5 * align;
}

std::int64_t SqueezeExcite::train_scratch_floats(const Shape& input) const {
  assert(input.rank() == 4);
  const std::int64_t batch = input[0];
  const auto align = static_cast<std::int64_t>(Workspace::kAlignFloats);
  // Five recomputed forward intermediates plus five gradient buffers.
  return batch * (6 * channels_ + 4 * reduced_) + 10 * align;
}

void SqueezeExcite::backward_into(const TensorView& in,
                                  const TensorView& grad_out,
                                  TensorView grad_in, Workspace& ws) {
  assert(in.shape().rank() == 4 && in.shape()[1] == channels_);
  assert(grad_out.shape() == in.shape());
  assert(grad_in.shape() == in.shape());
  const std::int64_t batch = in.shape()[0];
  const std::int64_t hw = in.shape()[2] * in.shape()[3];

  Workspace::Frame frame(ws);
  float* pooled = ws.alloc(batch * channels_);
  float* hidden = ws.alloc(batch * reduced_);
  float* hidden_act = ws.alloc(batch * reduced_);
  float* gate_pre = ws.alloc(batch * channels_);
  float* gate = ws.alloc(batch * channels_);
  float* grad_gate = ws.alloc(batch * channels_);
  float* grad_gate_pre = ws.alloc(batch * channels_);
  float* grad_hidden_act = ws.alloc(batch * reduced_);
  float* grad_hidden = ws.alloc(batch * reduced_);
  float* grad_pooled = ws.alloc(batch * channels_);

  // Recompute the forward intermediates with the exact forward expressions —
  // same inputs, same op order, so every value is bitwise equal to what a
  // cached-tensor implementation would have stored.
  util::parallel_for(0, batch * channels_, kTrainSampleGrain,
                     [&](std::int64_t pb, std::int64_t pe) {
    for (std::int64_t p = pb; p < pe; ++p) {
      const float* plane = in.data() + p * hw;
      double sum = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) sum += plane[i];
      pooled[p] = static_cast<float>(sum / hw);
    }
  });
  tensor::gemm_bt(pooled, w1_.value.data(), hidden, batch, channels_, reduced_);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t r = 0; r < reduced_; ++r)
      hidden[n * reduced_ + r] += b1_.value[r];
  for (std::int64_t i = 0; i < batch * reduced_; ++i)
    hidden_act[i] = activate(act_, hidden[i]);
  tensor::gemm_bt(hidden_act, w2_.value.data(), gate_pre, batch, reduced_,
                  channels_);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t c = 0; c < channels_; ++c)
      gate_pre[n * channels_ + c] += b2_.value[c];
  for (std::int64_t i = 0; i < batch * channels_; ++i)
    gate[i] = activate(Activation::kSigmoid, gate_pre[i]);

  // y[n,c,i] = x[n,c,i] * s[n,c].
  // dL/dx gets the direct term here; the gate path adds more below.  One
  // (n, c) plane per iteration — single writer for gin and grad_gate.
  util::parallel_for(0, batch * channels_, kTrainSampleGrain,
                     [&](std::int64_t pb, std::int64_t pe) {
    for (std::int64_t p = pb; p < pe; ++p) {
      const float s = gate[p];
      const float* gout = grad_out.data() + p * hw;
      const float* in_plane = in.data() + p * hw;
      float* gin = grad_in.data() + p * hw;
      double acc = 0.0;
      for (std::int64_t i = 0; i < hw; ++i) {
        gin[i] = gout[i] * s;
        acc += static_cast<double>(gout[i]) * in_plane[i];
      }
      grad_gate[p] = static_cast<float>(acc);
    }
  });

  // Through the sigmoid.
  for (std::int64_t i = 0; i < batch * channels_; ++i)
    grad_gate_pre[i] =
        grad_gate[i] * activate_grad(Activation::kSigmoid, gate_pre[i]);

  // Expand FC: gate_pre = hidden_act * W2^T + b2.
  tensor::gemm_at(grad_gate_pre, hidden_act, w2_.grad.data(), channels_,
                  batch, reduced_, /*accumulate=*/true);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t c = 0; c < channels_; ++c)
      b2_.grad[c] += grad_gate_pre[n * channels_ + c];

  tensor::gemm(grad_gate_pre, w2_.value.data(), grad_hidden_act, batch,
               channels_, reduced_);

  // Through the mid activation.
  for (std::int64_t i = 0; i < batch * reduced_; ++i)
    grad_hidden[i] = grad_hidden_act[i] * activate_grad(act_, hidden[i]);

  // Reduce FC: hidden = pooled * W1^T + b1.
  tensor::gemm_at(grad_hidden, pooled, w1_.grad.data(), reduced_, batch,
                  channels_, /*accumulate=*/true);
  for (std::int64_t n = 0; n < batch; ++n)
    for (std::int64_t r = 0; r < reduced_; ++r)
      b1_.grad[r] += grad_hidden[n * reduced_ + r];

  tensor::gemm(grad_hidden, w1_.value.data(), grad_pooled, batch, reduced_,
               channels_);

  // Pool adjoint: broadcast back over HW.
  const float inv = 1.0f / static_cast<float>(hw);
  util::parallel_for(0, batch * channels_, kTrainSampleGrain,
                     [&](std::int64_t pb, std::int64_t pe) {
    for (std::int64_t p = pb; p < pe; ++p) {
      const float g = grad_pooled[p] * inv;
      float* gin = grad_in.data() + p * hw;
      for (std::int64_t i = 0; i < hw; ++i) gin[i] += g;
    }
  });
}

Tensor SqueezeExcite::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != cached_input_.shape())
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(cached_input_.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(),
                ws);
  return grad_input;
}

std::int64_t SqueezeExcite::macs_per_sample(const Shape& input_chw) const {
  (void)input_chw;
  // Two small FCs plus the channel-wise scale.
  const std::int64_t hw = input_chw.rank() == 3 ? input_chw[1] * input_chw[2] : 1;
  return channels_ * reduced_ * 2 + channels_ * hw;
}

MBConvBlock::MBConvBlock(const MBConvConfig& config, util::Rng& rng)
    : config_(config),
      residual_(config.stride == 1 && config.in_channels == config.out_channels) {
  const std::int64_t expanded = config.in_channels * config.expand_ratio;
  if (config.expand_ratio != 1) {
    body_.emplace<Conv2d>(config.in_channels, expanded, 1, 1, 0, /*bias=*/false, rng);
    body_.emplace<BatchNorm2d>(expanded);
    body_.emplace<ActivationLayer>(config.activation);
  }
  body_.emplace<DepthwiseConv2d>(expanded, config.kernel, config.stride,
                                 config.kernel / 2, rng);
  body_.emplace<BatchNorm2d>(expanded);
  body_.emplace<ActivationLayer>(config.activation);
  if (config.use_se) {
    const std::int64_t reduced =
        std::max<std::int64_t>(1, expanded / config.se_reduction);
    body_.emplace<SqueezeExcite>(expanded, reduced, config.activation, rng);
  }
  body_.emplace<Conv2d>(expanded, config.out_channels, 1, 1, 0, /*bias=*/false, rng);
  body_.emplace<BatchNorm2d>(config.out_channels);
}

Tensor MBConvBlock::forward(const Tensor& input, bool training) {
  Tensor out = body_.forward(input, training);
  if (residual_) {
    assert(out.shape() == input.shape());
    float* po = out.data();
    const float* pi = input.data();
    for (std::int64_t i = 0; i < out.numel(); ++i) po[i] += pi[i];
  }
  return out;
}

void MBConvBlock::forward_into(const TensorView& in, TensorView out,
                               Workspace& scratch) {
  // The body never writes `in` (its first layer is a conv, and the scheduler
  // treats the caller's input as read-only), so the residual source survives.
  body_.forward_into(in, out, scratch);
  if (residual_) {
    assert(out.shape() == in.shape());
    float* po = out.data();
    const float* pi = in.data();
    const std::int64_t n = out.numel();
    for (std::int64_t i = 0; i < n; ++i) po[i] += pi[i];
  }
}

std::int64_t MBConvBlock::scratch_floats(const Shape& input) const {
  return body_.scratch_floats(input);
}

std::int64_t MBConvBlock::train_scratch_floats(const Shape& input) const {
  return body_.train_scratch_floats(input);
}

std::int64_t MBConvBlock::train_pinned_floats(const Shape& input) const {
  return body_.train_pinned_floats(input);
}

void MBConvBlock::forward_train_into(const TensorView& in, TensorView out,
                                     Workspace& ws) {
  // The body pins its boundary activations (including `in`) on its tape;
  // backward_into must later receive this same `in`.
  body_.forward_train_into(in, out, ws);
  if (residual_) {
    assert(out.shape() == in.shape());
    float* po = out.data();
    const float* pi = in.data();
    util::parallel_for(0, out.numel(), kTrainElemGrain,
                       [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) po[i] += pi[i];
    });
  }
}

void MBConvBlock::backward_into(const TensorView& in,
                                const TensorView& grad_out,
                                TensorView grad_in, Workspace& ws) {
  body_.backward_into(in, grad_out, grad_in, ws);
  if (residual_) {
    // Skip-connection adjoint: one add per element, chunk-safe.
    float* pg = grad_in.data();
    const float* po = grad_out.data();
    util::parallel_for(0, grad_in.numel(), kTrainElemGrain,
                       [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) pg[i] += po[i];
    });
  }
}

Tensor MBConvBlock::backward(const Tensor& grad_output) {
  Tensor grad_in = body_.backward(grad_output);
  if (residual_) {
    float* pg = grad_in.data();
    const float* po = grad_output.data();
    for (std::int64_t i = 0; i < grad_in.numel(); ++i) pg[i] += po[i];
  }
  return grad_in;
}

Shape MBConvBlock::output_shape(const Shape& input) const {
  return body_.output_shape(input);
}

std::string MBConvBlock::name() const {
  return std::string(config_.use_se ? "MBConv" : "InvertedResidual") + "(" +
         std::to_string(config_.in_channels) + "->" +
         std::to_string(config_.out_channels) +
         ", e=" + std::to_string(config_.expand_ratio) +
         ", s=" + std::to_string(config_.stride) + ")";
}

}  // namespace nshd::nn
