// Weight initialization schemes.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace nshd::nn {

/// Kaiming/He normal init: N(0, sqrt(2 / fan_in)); the right default for
/// ReLU-family networks.
void kaiming_normal(Tensor& weight, std::int64_t fan_in, util::Rng& rng);

/// Xavier/Glorot uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& weight, std::int64_t fan_in, std::int64_t fan_out,
                    util::Rng& rng);

}  // namespace nshd::nn
