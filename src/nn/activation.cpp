#include "nn/activation.hpp"

#include <cassert>
#include <cmath>

namespace nshd::nn {

const char* to_string(Activation act) {
  switch (act) {
    case Activation::kReLU: return "ReLU";
    case Activation::kReLU6: return "ReLU6";
    case Activation::kSiLU: return "SiLU";
    case Activation::kSigmoid: return "Sigmoid";
  }
  return "?";
}

float activate(Activation act, float x) {
  switch (act) {
    case Activation::kReLU: return x > 0.0f ? x : 0.0f;
    case Activation::kReLU6: return x < 0.0f ? 0.0f : (x > 6.0f ? 6.0f : x);
    case Activation::kSiLU: return x / (1.0f + std::exp(-x));
    case Activation::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
  }
  return 0.0f;
}

float activate_grad(Activation act, float x) {
  switch (act) {
    case Activation::kReLU: return x > 0.0f ? 1.0f : 0.0f;
    case Activation::kReLU6: return (x > 0.0f && x < 6.0f) ? 1.0f : 0.0f;
    case Activation::kSiLU: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f + x * (1.0f - s));
    }
    case Activation::kSigmoid: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f - s);
    }
  }
  return 0.0f;
}

Tensor ActivationLayer::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor output(input.shape());
  const float* in = input.data();
  float* out = output.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = activate(act_, in[i]);
  return output;
}

void ActivationLayer::forward_into(const TensorView& in, TensorView out,
                                   Workspace& scratch) {
  (void)scratch;
  assert(out.numel() == in.numel());
  const float* src = in.data();
  float* dst = out.data();
  const std::int64_t n = in.numel();
  // Dispatch hoisted out of the loop: each branch applies the exact scalar
  // expression from activate(), so results stay bitwise identical while the
  // piecewise-linear kinds vectorize.
  switch (act_) {
    case Activation::kReLU:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = x > 0.0f ? x : 0.0f;
      }
      break;
    case Activation::kReLU6:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = x < 0.0f ? 0.0f : (x > 6.0f ? 6.0f : x);
      }
      break;
    case Activation::kSiLU:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = x / (1.0f + std::exp(-x));
      }
      break;
    case Activation::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = 1.0f / (1.0f + std::exp(-x));
      }
      break;
  }
}

Tensor ActivationLayer::backward(const Tensor& grad_output) {
  assert(!cached_input_.empty());
  Tensor grad_input(grad_output.shape());
  const float* gout = grad_output.data();
  const float* in = cached_input_.data();
  float* gin = grad_input.data();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) gin[i] = gout[i] * activate_grad(act_, in[i]);
  return grad_input;
}

}  // namespace nshd::nn
