#include "nn/activation.hpp"

#include <cassert>
#include <cmath>

#include "util/thread_pool.hpp"

namespace nshd::nn {

const char* to_string(Activation act) {
  switch (act) {
    case Activation::kReLU: return "ReLU";
    case Activation::kReLU6: return "ReLU6";
    case Activation::kSiLU: return "SiLU";
    case Activation::kSigmoid: return "Sigmoid";
  }
  return "?";
}

float activate(Activation act, float x) {
  switch (act) {
    case Activation::kReLU: return x > 0.0f ? x : 0.0f;
    case Activation::kReLU6: return x < 0.0f ? 0.0f : (x > 6.0f ? 6.0f : x);
    case Activation::kSiLU: return x / (1.0f + std::exp(-x));
    case Activation::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
  }
  return 0.0f;
}

float activate_grad(Activation act, float x) {
  switch (act) {
    case Activation::kReLU: return x > 0.0f ? 1.0f : 0.0f;
    case Activation::kReLU6: return (x > 0.0f && x < 6.0f) ? 1.0f : 0.0f;
    case Activation::kSiLU: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f + x * (1.0f - s));
    }
    case Activation::kSigmoid: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f - s);
    }
  }
  return 0.0f;
}

Tensor ActivationLayer::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor output(input.shape());
  const float* in = input.data();
  float* out = output.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = activate(act_, in[i]);
  return output;
}

void ActivationLayer::forward_into(const TensorView& in, TensorView out,
                                   Workspace& scratch) {
  (void)scratch;
  assert(out.numel() == in.numel());
  const float* src = in.data();
  float* dst = out.data();
  const std::int64_t n = in.numel();
  // Dispatch hoisted out of the loop: each branch applies the exact scalar
  // expression from activate(), so results stay bitwise identical while the
  // piecewise-linear kinds vectorize.
  switch (act_) {
    case Activation::kReLU:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = x > 0.0f ? x : 0.0f;
      }
      break;
    case Activation::kReLU6:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = x < 0.0f ? 0.0f : (x > 6.0f ? 6.0f : x);
      }
      break;
    case Activation::kSiLU:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = x / (1.0f + std::exp(-x));
      }
      break;
    case Activation::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) {
        const float x = src[i];
        dst[i] = 1.0f / (1.0f + std::exp(-x));
      }
      break;
  }
}

void ActivationLayer::backward_into(const TensorView& in,
                                    const TensorView& grad_out,
                                    TensorView grad_in, Workspace& ws) {
  (void)ws;
  assert(grad_out.numel() == in.numel() && grad_in.numel() == in.numel());
  const float* src = in.data();
  const float* gout = grad_out.data();
  float* gin = grad_in.data();
  // One write per element and no accumulation, so chunking over elements is
  // trivially bitwise thread-invariant.  Each branch applies the exact
  // scalar expression of activate_grad(), dispatch hoisted like forward_into.
  switch (act_) {
    case Activation::kReLU:
      util::parallel_for(0, in.numel(), kTrainElemGrain,
                         [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
          gin[i] = gout[i] * (src[i] > 0.0f ? 1.0f : 0.0f);
      });
      break;
    case Activation::kReLU6:
      util::parallel_for(0, in.numel(), kTrainElemGrain,
                         [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
          gin[i] = gout[i] * ((src[i] > 0.0f && src[i] < 6.0f) ? 1.0f : 0.0f);
      });
      break;
    case Activation::kSiLU:
      util::parallel_for(0, in.numel(), kTrainElemGrain,
                         [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const float x = src[i];
          const float s = 1.0f / (1.0f + std::exp(-x));
          gin[i] = gout[i] * (s * (1.0f + x * (1.0f - s)));
        }
      });
      break;
    case Activation::kSigmoid:
      util::parallel_for(0, in.numel(), kTrainElemGrain,
                         [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          const float x = src[i];
          const float s = 1.0f / (1.0f + std::exp(-x));
          gin[i] = gout[i] * (s * (1.0f - s));
        }
      });
      break;
  }
}

Tensor ActivationLayer::backward(const Tensor& grad_output) {
  if (cached_input_.empty())
    throw TrainingStateError(name() +
                             "::backward before forward(training=true)");
  if (grad_output.shape() != cached_input_.shape())
    throw TrainingStateError(name() + "::backward: grad_output shape " +
                             grad_output.shape().to_string() +
                             " does not match the cached batch " +
                             cached_input_.shape().to_string());
  Tensor grad_input(grad_output.shape());
  Workspace& ws = legacy_train_workspace();
  ws.reset();
  backward_into(cached_input_.view(), grad_output.view(), grad_input.view(), ws);
  return grad_input;
}

}  // namespace nshd::nn
