// Portable fixed-width SIMD layer for the f32 and packed-bit kernels.
//
// One ISA is selected at compile time — AVX2+FMA, SSE2, NEON, or a scalar
// fallback — and the vector width `kWidth` is a compile-time constant, so
// every kernel built on this header has a single, fixed accumulation order
// per binary.  That is the determinism contract: results are bitwise
// reproducible for a given build (and invariant to NSHD_THREADS, which only
// moves fixed-boundary chunks between workers), but may differ across ISAs
// because lane count and FMA contraction differ.  The portable default build
// selects SSE2 on x86-64; configure with -DNSHD_NATIVE=ON to unlock AVX2+FMA
// where the build machine has it.
//
// The abstraction is deliberately tiny: a vector-of-float value type `VF`
// with load/store/broadcast, add/sub/mul/fmadd, a fixed-order horizontal
// sum, and two bitmap helpers (`signed_load`, `signed_set1`) that apply a
// per-lane ±1 sign taken from the low `kWidth` bits of a packed bipolar
// word.  The sign helpers are what turn the HD encode/similarity loops from
// per-set-bit scalar gathers into straight-line vector code: bit=1 keeps
// the lane, bit=0 flips its sign bit (bipolar -1), with no branches and no
// dependence on the bit population.
//
// Int8 widening family (quantized inference): every ISA block also defines
// a 16-byte activation type `VQA` (u8 values zero-extended to s16 lanes), an
// s32 accumulator `VS32`, and `madd_s8(acc, a, b)` which sign-extends 16 s8
// weights, multiplies lane-wise against the widened activations, and adds
// horizontal s16 pairs into s32 lanes (`madd_epi16` style).  Unlike the
// hardware `maddubs` instruction, the explicit extend-then-madd sequence
// never saturates (u8*s8 pair sums reach 255*127*2 = 64770 > s16 max), so
// the kernels are EXACT over the full u8 x s8 domain — every ISA computes
// the same integers and thread-count invariance is free.  The s32 lanes are
// overflow-safe for dots up to n ~= 2^19 at the |a|=255, |b|=127 corner;
// callers here keep n below ~10^4 (im2col rows, HD dimensions).
// `load_s16` / `madd_s16` are the pre-widened flavor: the weight operand is
// sign-extended to s16 once outside the hot loop (tensor/gemm.cpp keeps a
// widened copy per call or per plan), so the inner GEMM iteration spends no
// shuffle-port work on widening at all.
#pragma once

#include <cstdint>

#if defined(NSHD_SIMD_FORCE_SCALAR)
#define NSHD_SIMD_SCALAR 1
#elif defined(__AVX2__) && defined(__FMA__)
#define NSHD_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#define NSHD_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define NSHD_SIMD_NEON 1
#include <arm_neon.h>
#else
#define NSHD_SIMD_SCALAR 1
#endif

namespace nshd::tensor::simd {

#if defined(NSHD_SIMD_AVX2)

inline constexpr int kWidth = 8;
inline constexpr const char* kIsaName = "avx2+fma";

struct VF {
  __m256 v;
};

inline VF vzero() { return {_mm256_setzero_ps()}; }
inline VF vset1(float x) { return {_mm256_set1_ps(x)}; }
inline VF vload(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void vstore(float* p, VF a) { _mm256_storeu_ps(p, a.v); }
inline VF vadd(VF a, VF b) { return {_mm256_add_ps(a.v, b.v)}; }
inline VF vsub(VF a, VF b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline VF vmul(VF a, VF b) { return {_mm256_mul_ps(a.v, b.v)}; }
/// a*b + c (fused on this ISA).
inline VF vfmadd(VF a, VF b, VF c) { return {_mm256_fmadd_ps(a.v, b.v, c.v)}; }

/// Fixed-order horizontal sum: low and high 128-bit halves are added
/// lane-wise, then reduced pairwise — the order never varies at runtime.
inline float vhsum(VF a) {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

namespace detail {
inline __m256i lane_signflip(std::uint64_t bits) {
  // Lane l gets 0x80000000 when bit l is CLEAR (bipolar -1), 0 when set.
  const __m256i lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i b = _mm256_set1_epi32(static_cast<int>(bits & 0xFFu));
  const __m256i set = _mm256_cmpeq_epi32(_mm256_and_si256(b, lane_bit), lane_bit);
  return _mm256_andnot_si256(set, _mm256_set1_epi32(static_cast<int>(0x80000000u)));
}
}  // namespace detail

/// Lane l: bit l of `bits` set -> +p[l], clear -> -p[l].
inline VF signed_load(const float* p, std::uint64_t bits) {
  return {_mm256_xor_ps(_mm256_loadu_ps(p),
                        _mm256_castsi256_ps(detail::lane_signflip(bits)))};
}

/// Lane l: bit l of `bits` set -> +x, clear -> -x.
inline VF signed_set1(float x, std::uint64_t bits) {
  return {_mm256_xor_ps(_mm256_set1_ps(x),
                        _mm256_castsi256_ps(detail::lane_signflip(bits)))};
}

/// 16 u8 activations widened to sixteen s16 lanes.
struct VQA {
  __m256i v;
};
/// Eight s32 accumulator lanes.
struct VS32 {
  __m256i v;
};

inline VS32 vqzero() { return {_mm256_setzero_si256()}; }
inline VQA widen_u8(const std::uint8_t* p) {
  return {_mm256_cvtepu8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
}
/// acc += pairwise sums of a[l] * sign_extend(b[l]) over 16 lanes (exact).
inline VS32 madd_s8(VS32 acc, VQA a, const std::int8_t* b) {
  const __m256i bw = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
  return {_mm256_add_epi32(acc.v, _mm256_madd_epi16(a.v, bw))};
}
inline std::int32_t vs32_hsum(VS32 a) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(a.v),
                            _mm256_extracti128_si256(a.v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}
/// 16 pre-widened s16 lanes (weights sign-extended ahead of the hot loop).
inline VQA load_s16(const std::int16_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
/// acc += pairwise sums of a[l] * b[l] over 16 s16 lanes.  Exact: both
/// operands fit s16, so the madd's 32-bit pair sums cannot saturate.
inline VS32 madd_s16(VS32 acc, VQA a, VQA b) {
  return {_mm256_add_epi32(acc.v, _mm256_madd_epi16(a.v, b.v))};
}
/// out[0..3] = hsum(a), hsum(b), hsum(c), hsum(d) in one shuffle tree —
/// integer adds, so regrouping lanes is exact; much cheaper than four
/// independent vs32_hsum reductions when a tile retires 4+ outputs at once.
inline void vs32_hsum4(VS32 a, VS32 b, VS32 c, VS32 d, std::int32_t* out) {
  const __m256i t0 = _mm256_hadd_epi32(a.v, b.v);
  const __m256i t1 = _mm256_hadd_epi32(c.v, d.v);
  const __m256i t2 = _mm256_hadd_epi32(t0, t1);
  const __m128i s = _mm_add_epi32(_mm256_castsi256_si128(t2),
                                  _mm256_extracti128_si256(t2, 1));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

#elif defined(NSHD_SIMD_SSE2)

inline constexpr int kWidth = 4;
inline constexpr const char* kIsaName = "sse2";

struct VF {
  __m128 v;
};

inline VF vzero() { return {_mm_setzero_ps()}; }
inline VF vset1(float x) { return {_mm_set1_ps(x)}; }
inline VF vload(const float* p) { return {_mm_loadu_ps(p)}; }
inline void vstore(float* p, VF a) { _mm_storeu_ps(p, a.v); }
inline VF vadd(VF a, VF b) { return {_mm_add_ps(a.v, b.v)}; }
inline VF vsub(VF a, VF b) { return {_mm_sub_ps(a.v, b.v)}; }
inline VF vmul(VF a, VF b) { return {_mm_mul_ps(a.v, b.v)}; }
/// a*b + c.  SSE2 has no FMA: two roundings, fixed per build.
inline VF vfmadd(VF a, VF b, VF c) { return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)}; }

inline float vhsum(VF a) {
  __m128 s = _mm_add_ps(a.v, _mm_movehl_ps(a.v, a.v));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

namespace detail {
inline __m128i lane_signflip(std::uint64_t bits) {
  const __m128i lane_bit = _mm_setr_epi32(1, 2, 4, 8);
  const __m128i b = _mm_set1_epi32(static_cast<int>(bits & 0xFu));
  const __m128i set = _mm_cmpeq_epi32(_mm_and_si128(b, lane_bit), lane_bit);
  return _mm_andnot_si128(set, _mm_set1_epi32(static_cast<int>(0x80000000u)));
}
}  // namespace detail

inline VF signed_load(const float* p, std::uint64_t bits) {
  return {_mm_xor_ps(_mm_loadu_ps(p), _mm_castsi128_ps(detail::lane_signflip(bits)))};
}

inline VF signed_set1(float x, std::uint64_t bits) {
  return {_mm_xor_ps(_mm_set1_ps(x), _mm_castsi128_ps(detail::lane_signflip(bits)))};
}

/// 16 u8 activations widened to s16 (two 8-lane halves).
struct VQA {
  __m128i lo, hi;
};
struct VS32 {
  __m128i v;
};

inline VS32 vqzero() { return {_mm_setzero_si128()}; }
inline VQA widen_u8(const std::uint8_t* p) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i z = _mm_setzero_si128();
  return {_mm_unpacklo_epi8(raw, z), _mm_unpackhi_epi8(raw, z)};
}
inline VS32 madd_s8(VS32 acc, VQA a, const std::int8_t* b) {
  // Sign-extend s8 -> s16 with the unpack-with-self + arithmetic-shift
  // idiom (SSE2 has no cvtepi8).
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i blo = _mm_srai_epi16(_mm_unpacklo_epi8(raw, raw), 8);
  const __m128i bhi = _mm_srai_epi16(_mm_unpackhi_epi8(raw, raw), 8);
  const __m128i v = _mm_add_epi32(acc.v, _mm_madd_epi16(a.lo, blo));
  return {_mm_add_epi32(v, _mm_madd_epi16(a.hi, bhi))};
}
inline std::int32_t vs32_hsum(VS32 a) {
  __m128i s = _mm_add_epi32(a.v, _mm_shuffle_epi32(a.v, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}
inline VQA load_s16(const std::int16_t* p) {
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 8))};
}
inline VS32 madd_s16(VS32 acc, VQA a, VQA b) {
  const __m128i v = _mm_add_epi32(acc.v, _mm_madd_epi16(a.lo, b.lo));
  return {_mm_add_epi32(v, _mm_madd_epi16(a.hi, b.hi))};
}
/// 4x4 lane transpose of the accumulators, then three vertical adds.
inline void vs32_hsum4(VS32 a, VS32 b, VS32 c, VS32 d, std::int32_t* out) {
  const __m128i t0 = _mm_unpacklo_epi32(a.v, b.v);  // a0 b0 a1 b1
  const __m128i t1 = _mm_unpacklo_epi32(c.v, d.v);  // c0 d0 c1 d1
  const __m128i t2 = _mm_unpackhi_epi32(a.v, b.v);  // a2 b2 a3 b3
  const __m128i t3 = _mm_unpackhi_epi32(c.v, d.v);  // c2 d2 c3 d3
  const __m128i r0 = _mm_unpacklo_epi64(t0, t1);
  const __m128i r1 = _mm_unpackhi_epi64(t0, t1);
  const __m128i r2 = _mm_unpacklo_epi64(t2, t3);
  const __m128i r3 = _mm_unpackhi_epi64(t2, t3);
  const __m128i s = _mm_add_epi32(_mm_add_epi32(r0, r1), _mm_add_epi32(r2, r3));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

#elif defined(NSHD_SIMD_NEON)

inline constexpr int kWidth = 4;
inline constexpr const char* kIsaName = "neon";

struct VF {
  float32x4_t v;
};

inline VF vzero() { return {vdupq_n_f32(0.0f)}; }
inline VF vset1(float x) { return {vdupq_n_f32(x)}; }
inline VF vload(const float* p) { return {vld1q_f32(p)}; }
inline void vstore(float* p, VF a) { vst1q_f32(p, a.v); }
inline VF vadd(VF a, VF b) { return {vaddq_f32(a.v, b.v)}; }
inline VF vsub(VF a, VF b) { return {vsubq_f32(a.v, b.v)}; }
inline VF vmul(VF a, VF b) { return {vmulq_f32(a.v, b.v)}; }
inline VF vfmadd(VF a, VF b, VF c) { return {vfmaq_f32(c.v, a.v, b.v)}; }

inline float vhsum(VF a) {
  float32x2_t s = vadd_f32(vget_low_f32(a.v), vget_high_f32(a.v));
  return vget_lane_f32(vpadd_f32(s, s), 0);
}

namespace detail {
inline uint32x4_t lane_signflip(std::uint64_t bits) {
  const uint32x4_t lane_bit = {1u, 2u, 4u, 8u};
  const uint32x4_t b = vdupq_n_u32(static_cast<std::uint32_t>(bits & 0xFu));
  const uint32x4_t set = vceqq_u32(vandq_u32(b, lane_bit), lane_bit);
  return vbicq_u32(vdupq_n_u32(0x80000000u), set);
}
}  // namespace detail

inline VF signed_load(const float* p, std::uint64_t bits) {
  return {vreinterpretq_f32_u32(
      veorq_u32(vreinterpretq_u32_f32(vld1q_f32(p)), detail::lane_signflip(bits)))};
}

inline VF signed_set1(float x, std::uint64_t bits) {
  return {vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(vdupq_n_f32(x)),
                                          detail::lane_signflip(bits)))};
}

struct VQA {
  int16x8_t lo, hi;
};
struct VS32 {
  int32x4_t v;
};

inline VS32 vqzero() { return {vdupq_n_s32(0)}; }
inline VQA widen_u8(const std::uint8_t* p) {
  const uint8x16_t raw = vld1q_u8(p);
  return {vreinterpretq_s16_u16(vmovl_u8(vget_low_u8(raw))),
          vreinterpretq_s16_u16(vmovl_u8(vget_high_u8(raw)))};
}
inline VS32 madd_s8(VS32 acc, VQA a, const std::int8_t* b) {
  const int8x16_t raw = vld1q_s8(b);
  const int16x8_t blo = vmovl_s8(vget_low_s8(raw));
  const int16x8_t bhi = vmovl_s8(vget_high_s8(raw));
  int32x4_t v = vmlal_s16(acc.v, vget_low_s16(a.lo), vget_low_s16(blo));
  v = vmlal_s16(v, vget_high_s16(a.lo), vget_high_s16(blo));
  v = vmlal_s16(v, vget_low_s16(a.hi), vget_low_s16(bhi));
  v = vmlal_s16(v, vget_high_s16(a.hi), vget_high_s16(bhi));
  return {v};
}
inline std::int32_t vs32_hsum(VS32 a) {
  const int32x2_t s = vadd_s32(vget_low_s32(a.v), vget_high_s32(a.v));
  return vget_lane_s32(vpadd_s32(s, s), 0);
}
inline VQA load_s16(const std::int16_t* p) {
  return {vld1q_s16(p), vld1q_s16(p + 8)};
}
inline VS32 madd_s16(VS32 acc, VQA a, VQA b) {
  int32x4_t v = vmlal_s16(acc.v, vget_low_s16(a.lo), vget_low_s16(b.lo));
  v = vmlal_s16(v, vget_high_s16(a.lo), vget_high_s16(b.lo));
  v = vmlal_s16(v, vget_low_s16(a.hi), vget_low_s16(b.hi));
  v = vmlal_s16(v, vget_high_s16(a.hi), vget_high_s16(b.hi));
  return {v};
}
inline void vs32_hsum4(VS32 a, VS32 b, VS32 c, VS32 d, std::int32_t* out) {
#if defined(__aarch64__)
  const int32x4_t ab = vpaddq_s32(a.v, b.v);  // a01 a23 b01 b23
  const int32x4_t cd = vpaddq_s32(c.v, d.v);
  vst1q_s32(out, vpaddq_s32(ab, cd));
#else
  out[0] = vs32_hsum(a);
  out[1] = vs32_hsum(b);
  out[2] = vs32_hsum(c);
  out[3] = vs32_hsum(d);
#endif
}

#else  // scalar fallback

inline constexpr int kWidth = 4;
inline constexpr const char* kIsaName = "scalar";

// Four explicit lanes so tail handling and accumulation order match the
// vector ISAs' structure; plain loops the compiler may or may not fold.
struct VF {
  float v[4];
};

inline VF vzero() { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
inline VF vset1(float x) { return {{x, x, x, x}}; }
inline VF vload(const float* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void vstore(float* p, VF a) {
  for (int l = 0; l < 4; ++l) p[l] = a.v[l];
}
inline VF vadd(VF a, VF b) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline VF vsub(VF a, VF b) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline VF vmul(VF a, VF b) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline VF vfmadd(VF a, VF b, VF c) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] * b.v[l] + c.v[l];
  return r;
}
inline float vhsum(VF a) { return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]); }

namespace detail {
inline float flip(float x, bool keep) {
  // Sign-bit flip without branching on the value itself.
  return keep ? x : -x;
}
}  // namespace detail

inline VF signed_load(const float* p, std::uint64_t bits) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = detail::flip(p[l], (bits >> l) & 1u);
  return r;
}

inline VF signed_set1(float x, std::uint64_t bits) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = detail::flip(x, (bits >> l) & 1u);
  return r;
}

// 16 explicit widened lanes / 4 accumulator lanes so the structure mirrors
// the vector ISAs; integer accumulation is exact, so lane assignment does
// not change results.
struct VQA {
  std::int16_t v[16];
};
struct VS32 {
  std::int32_t v[4];
};

inline VS32 vqzero() { return {{0, 0, 0, 0}}; }
inline VQA widen_u8(const std::uint8_t* p) {
  VQA r;
  for (int l = 0; l < 16; ++l) r.v[l] = static_cast<std::int16_t>(p[l]);
  return r;
}
inline VS32 madd_s8(VS32 acc, VQA a, const std::int8_t* b) {
  for (int l = 0; l < 16; ++l)
    acc.v[l & 3] += static_cast<std::int32_t>(a.v[l]) * b[l];
  return acc;
}
inline std::int32_t vs32_hsum(VS32 a) {
  return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]);
}
inline VQA load_s16(const std::int16_t* p) {
  VQA r;
  for (int l = 0; l < 16; ++l) r.v[l] = p[l];
  return r;
}
inline VS32 madd_s16(VS32 acc, VQA a, VQA b) {
  for (int l = 0; l < 16; ++l)
    acc.v[l & 3] += static_cast<std::int32_t>(a.v[l]) * b.v[l];
  return acc;
}
inline void vs32_hsum4(VS32 a, VS32 b, VS32 c, VS32 d, std::int32_t* out) {
  out[0] = vs32_hsum(a);
  out[1] = vs32_hsum(b);
  out[2] = vs32_hsum(c);
  out[3] = vs32_hsum(d);
}

#endif

/// Serial signed-accumulation dot of a float vector against a packed bipolar
/// word stream: sum over i of (bit_i ? +m[i] : -m[i]), for `dim` elements
/// with the words' low bits mapping to low indices.  Shared by the HD
/// kernels (hd::dot, RandomProjection rows) so they agree on one
/// accumulation order.  Uses four rotating vector accumulators (fixed
/// schedule) plus a scalar tail.
inline float signed_sum(const float* m, const std::uint64_t* words, std::int64_t dim) {
  const std::int64_t full_words = dim >> 6;
  VF acc0 = vzero(), acc1 = vzero(), acc2 = vzero(), acc3 = vzero();
  constexpr int kGroups = 64 / kWidth;
  for (std::int64_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = words[w];
    const float* base = m + (w << 6);
    for (int g = 0; g < kGroups; g += 4) {
      acc0 = vadd(acc0, signed_load(base + (g + 0) * kWidth, bits));
      bits >>= kWidth;
      acc1 = vadd(acc1, signed_load(base + (g + 1) * kWidth, bits));
      bits >>= kWidth;
      acc2 = vadd(acc2, signed_load(base + (g + 2) * kWidth, bits));
      bits >>= kWidth;
      acc3 = vadd(acc3, signed_load(base + (g + 3) * kWidth, bits));
      bits >>= kWidth;
    }
  }
  // Whole kWidth groups of the partial tail word stay on the vector path —
  // their loads end at or before m + dim — so the scalar remainder is at
  // most kWidth - 1 elements instead of up to 63.
  const std::int64_t tail_base = full_words << 6;
  std::int64_t i = tail_base;
  std::uint64_t bits = tail_base < dim ? words[full_words] : 0;
  for (; i + kWidth <= dim; i += kWidth) {
    acc0 = vadd(acc0, signed_load(m + i, bits));
    bits >>= kWidth;
  }
  float sum = vhsum(vadd(vadd(acc0, acc1), vadd(acc2, acc3)));
  for (; i < dim; ++i, bits >>= 1) {
    sum += (bits & 1u) ? m[i] : -m[i];
  }
  return sum;
}

/// Bytes consumed per int8 madd step — uniform across ISAs so every build
/// partitions a dot identically.
inline constexpr std::int64_t kDotBytes = 16;

/// Exact widening dot: sum over i of u8 a[i] * s8 b[i], s32 result.  Two
/// rotating accumulators over 32-byte strips, a single-accumulator 16-byte
/// step, then a scalar tail — integer arithmetic, so the value is identical
/// on every ISA and for every thread count.
inline std::int32_t dot_u8s8(const std::uint8_t* a, const std::int8_t* b,
                             std::int64_t n) {
  VS32 acc0 = vqzero(), acc1 = vqzero();
  std::int64_t i = 0;
  for (; i + 2 * kDotBytes <= n; i += 2 * kDotBytes) {
    acc0 = madd_s8(acc0, widen_u8(a + i), b + i);
    acc1 = madd_s8(acc1, widen_u8(a + i + kDotBytes), b + i + kDotBytes);
  }
  for (; i + kDotBytes <= n; i += kDotBytes) {
    acc0 = madd_s8(acc0, widen_u8(a + i), b + i);
  }
  std::int32_t sum = vs32_hsum(acc0) + vs32_hsum(acc1);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

}  // namespace nshd::tensor::simd
