// Portable fixed-width SIMD layer for the f32 and packed-bit kernels.
//
// One ISA is selected at compile time — AVX2+FMA, SSE2, NEON, or a scalar
// fallback — and the vector width `kWidth` is a compile-time constant, so
// every kernel built on this header has a single, fixed accumulation order
// per binary.  That is the determinism contract: results are bitwise
// reproducible for a given build (and invariant to NSHD_THREADS, which only
// moves fixed-boundary chunks between workers), but may differ across ISAs
// because lane count and FMA contraction differ.  The portable default build
// selects SSE2 on x86-64; configure with -DNSHD_NATIVE=ON to unlock AVX2+FMA
// where the build machine has it.
//
// The abstraction is deliberately tiny: a vector-of-float value type `VF`
// with load/store/broadcast, add/sub/mul/fmadd, a fixed-order horizontal
// sum, and two bitmap helpers (`signed_load`, `signed_set1`) that apply a
// per-lane ±1 sign taken from the low `kWidth` bits of a packed bipolar
// word.  The sign helpers are what turn the HD encode/similarity loops from
// per-set-bit scalar gathers into straight-line vector code: bit=1 keeps
// the lane, bit=0 flips its sign bit (bipolar -1), with no branches and no
// dependence on the bit population.
#pragma once

#include <cstdint>

#if defined(NSHD_SIMD_FORCE_SCALAR)
#define NSHD_SIMD_SCALAR 1
#elif defined(__AVX2__) && defined(__FMA__)
#define NSHD_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#define NSHD_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define NSHD_SIMD_NEON 1
#include <arm_neon.h>
#else
#define NSHD_SIMD_SCALAR 1
#endif

namespace nshd::tensor::simd {

#if defined(NSHD_SIMD_AVX2)

inline constexpr int kWidth = 8;
inline constexpr const char* kIsaName = "avx2+fma";

struct VF {
  __m256 v;
};

inline VF vzero() { return {_mm256_setzero_ps()}; }
inline VF vset1(float x) { return {_mm256_set1_ps(x)}; }
inline VF vload(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void vstore(float* p, VF a) { _mm256_storeu_ps(p, a.v); }
inline VF vadd(VF a, VF b) { return {_mm256_add_ps(a.v, b.v)}; }
inline VF vsub(VF a, VF b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline VF vmul(VF a, VF b) { return {_mm256_mul_ps(a.v, b.v)}; }
/// a*b + c (fused on this ISA).
inline VF vfmadd(VF a, VF b, VF c) { return {_mm256_fmadd_ps(a.v, b.v, c.v)}; }

/// Fixed-order horizontal sum: low and high 128-bit halves are added
/// lane-wise, then reduced pairwise — the order never varies at runtime.
inline float vhsum(VF a) {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

namespace detail {
inline __m256i lane_signflip(std::uint64_t bits) {
  // Lane l gets 0x80000000 when bit l is CLEAR (bipolar -1), 0 when set.
  const __m256i lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i b = _mm256_set1_epi32(static_cast<int>(bits & 0xFFu));
  const __m256i set = _mm256_cmpeq_epi32(_mm256_and_si256(b, lane_bit), lane_bit);
  return _mm256_andnot_si256(set, _mm256_set1_epi32(static_cast<int>(0x80000000u)));
}
}  // namespace detail

/// Lane l: bit l of `bits` set -> +p[l], clear -> -p[l].
inline VF signed_load(const float* p, std::uint64_t bits) {
  return {_mm256_xor_ps(_mm256_loadu_ps(p),
                        _mm256_castsi256_ps(detail::lane_signflip(bits)))};
}

/// Lane l: bit l of `bits` set -> +x, clear -> -x.
inline VF signed_set1(float x, std::uint64_t bits) {
  return {_mm256_xor_ps(_mm256_set1_ps(x),
                        _mm256_castsi256_ps(detail::lane_signflip(bits)))};
}

#elif defined(NSHD_SIMD_SSE2)

inline constexpr int kWidth = 4;
inline constexpr const char* kIsaName = "sse2";

struct VF {
  __m128 v;
};

inline VF vzero() { return {_mm_setzero_ps()}; }
inline VF vset1(float x) { return {_mm_set1_ps(x)}; }
inline VF vload(const float* p) { return {_mm_loadu_ps(p)}; }
inline void vstore(float* p, VF a) { _mm_storeu_ps(p, a.v); }
inline VF vadd(VF a, VF b) { return {_mm_add_ps(a.v, b.v)}; }
inline VF vsub(VF a, VF b) { return {_mm_sub_ps(a.v, b.v)}; }
inline VF vmul(VF a, VF b) { return {_mm_mul_ps(a.v, b.v)}; }
/// a*b + c.  SSE2 has no FMA: two roundings, fixed per build.
inline VF vfmadd(VF a, VF b, VF c) { return {_mm_add_ps(_mm_mul_ps(a.v, b.v), c.v)}; }

inline float vhsum(VF a) {
  __m128 s = _mm_add_ps(a.v, _mm_movehl_ps(a.v, a.v));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

namespace detail {
inline __m128i lane_signflip(std::uint64_t bits) {
  const __m128i lane_bit = _mm_setr_epi32(1, 2, 4, 8);
  const __m128i b = _mm_set1_epi32(static_cast<int>(bits & 0xFu));
  const __m128i set = _mm_cmpeq_epi32(_mm_and_si128(b, lane_bit), lane_bit);
  return _mm_andnot_si128(set, _mm_set1_epi32(static_cast<int>(0x80000000u)));
}
}  // namespace detail

inline VF signed_load(const float* p, std::uint64_t bits) {
  return {_mm_xor_ps(_mm_loadu_ps(p), _mm_castsi128_ps(detail::lane_signflip(bits)))};
}

inline VF signed_set1(float x, std::uint64_t bits) {
  return {_mm_xor_ps(_mm_set1_ps(x), _mm_castsi128_ps(detail::lane_signflip(bits)))};
}

#elif defined(NSHD_SIMD_NEON)

inline constexpr int kWidth = 4;
inline constexpr const char* kIsaName = "neon";

struct VF {
  float32x4_t v;
};

inline VF vzero() { return {vdupq_n_f32(0.0f)}; }
inline VF vset1(float x) { return {vdupq_n_f32(x)}; }
inline VF vload(const float* p) { return {vld1q_f32(p)}; }
inline void vstore(float* p, VF a) { vst1q_f32(p, a.v); }
inline VF vadd(VF a, VF b) { return {vaddq_f32(a.v, b.v)}; }
inline VF vsub(VF a, VF b) { return {vsubq_f32(a.v, b.v)}; }
inline VF vmul(VF a, VF b) { return {vmulq_f32(a.v, b.v)}; }
inline VF vfmadd(VF a, VF b, VF c) { return {vfmaq_f32(c.v, a.v, b.v)}; }

inline float vhsum(VF a) {
  float32x2_t s = vadd_f32(vget_low_f32(a.v), vget_high_f32(a.v));
  return vget_lane_f32(vpadd_f32(s, s), 0);
}

namespace detail {
inline uint32x4_t lane_signflip(std::uint64_t bits) {
  const uint32x4_t lane_bit = {1u, 2u, 4u, 8u};
  const uint32x4_t b = vdupq_n_u32(static_cast<std::uint32_t>(bits & 0xFu));
  const uint32x4_t set = vceqq_u32(vandq_u32(b, lane_bit), lane_bit);
  return vbicq_u32(vdupq_n_u32(0x80000000u), set);
}
}  // namespace detail

inline VF signed_load(const float* p, std::uint64_t bits) {
  return {vreinterpretq_f32_u32(
      veorq_u32(vreinterpretq_u32_f32(vld1q_f32(p)), detail::lane_signflip(bits)))};
}

inline VF signed_set1(float x, std::uint64_t bits) {
  return {vreinterpretq_f32_u32(veorq_u32(vreinterpretq_u32_f32(vdupq_n_f32(x)),
                                          detail::lane_signflip(bits)))};
}

#else  // scalar fallback

inline constexpr int kWidth = 4;
inline constexpr const char* kIsaName = "scalar";

// Four explicit lanes so tail handling and accumulation order match the
// vector ISAs' structure; plain loops the compiler may or may not fold.
struct VF {
  float v[4];
};

inline VF vzero() { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
inline VF vset1(float x) { return {{x, x, x, x}}; }
inline VF vload(const float* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void vstore(float* p, VF a) {
  for (int l = 0; l < 4; ++l) p[l] = a.v[l];
}
inline VF vadd(VF a, VF b) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] + b.v[l];
  return r;
}
inline VF vsub(VF a, VF b) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] - b.v[l];
  return r;
}
inline VF vmul(VF a, VF b) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] * b.v[l];
  return r;
}
inline VF vfmadd(VF a, VF b, VF c) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = a.v[l] * b.v[l] + c.v[l];
  return r;
}
inline float vhsum(VF a) { return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]); }

namespace detail {
inline float flip(float x, bool keep) {
  // Sign-bit flip without branching on the value itself.
  return keep ? x : -x;
}
}  // namespace detail

inline VF signed_load(const float* p, std::uint64_t bits) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = detail::flip(p[l], (bits >> l) & 1u);
  return r;
}

inline VF signed_set1(float x, std::uint64_t bits) {
  VF r;
  for (int l = 0; l < 4; ++l) r.v[l] = detail::flip(x, (bits >> l) & 1u);
  return r;
}

#endif

/// Serial signed-accumulation dot of a float vector against a packed bipolar
/// word stream: sum over i of (bit_i ? +m[i] : -m[i]), for `dim` elements
/// with the words' low bits mapping to low indices.  Shared by the HD
/// kernels (hd::dot, RandomProjection rows) so they agree on one
/// accumulation order.  Uses four rotating vector accumulators (fixed
/// schedule) plus a scalar tail.
inline float signed_sum(const float* m, const std::uint64_t* words, std::int64_t dim) {
  const std::int64_t full_words = dim >> 6;
  VF acc0 = vzero(), acc1 = vzero(), acc2 = vzero(), acc3 = vzero();
  constexpr int kGroups = 64 / kWidth;
  for (std::int64_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = words[w];
    const float* base = m + (w << 6);
    for (int g = 0; g < kGroups; g += 4) {
      acc0 = vadd(acc0, signed_load(base + (g + 0) * kWidth, bits));
      bits >>= kWidth;
      acc1 = vadd(acc1, signed_load(base + (g + 1) * kWidth, bits));
      bits >>= kWidth;
      acc2 = vadd(acc2, signed_load(base + (g + 2) * kWidth, bits));
      bits >>= kWidth;
      acc3 = vadd(acc3, signed_load(base + (g + 3) * kWidth, bits));
      bits >>= kWidth;
    }
  }
  // Whole kWidth groups of the partial tail word stay on the vector path —
  // their loads end at or before m + dim — so the scalar remainder is at
  // most kWidth - 1 elements instead of up to 63.
  const std::int64_t tail_base = full_words << 6;
  std::int64_t i = tail_base;
  std::uint64_t bits = tail_base < dim ? words[full_words] : 0;
  for (; i + kWidth <= dim; i += kWidth) {
    acc0 = vadd(acc0, signed_load(m + i, bits));
    bits >>= kWidth;
  }
  float sum = vhsum(vadd(vadd(acc0, acc1), vadd(acc2, acc3)));
  for (; i < dim; ++i, bits >>= 1) {
    sum += (bits & 1u) ? m[i] : -m[i];
  }
  return sum;
}

}  // namespace nshd::tensor::simd
