// Single-precision GEMM kernels.
//
// All heavy math in the NN substrate funnels through these routines:
// convolution (via im2col), linear layers, HD random projection, class
// hypervector similarity banks.  The kernel is a cache-blocked ikj loop that
// GCC auto-vectorizes well at -O3; it is not BLAS-fast but is more than
// sufficient for the scaled-down models this reproduction trains.
#pragma once

#include <cstdint>

namespace nshd::tensor {

/// C[M,N] = A[M,K] * B[K,N] (+ C if accumulate).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[M,K] * B[N,K]^T (+ C if accumulate).
void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[K,M]^T * B[K,N] (+ C if accumulate).
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

/// y[M] = A[M,N] * x[N].
void gemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n);

/// y[N] = A[M,N]^T * x[M].
void gemv_t(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n);

/// Dot product of two length-n vectors.
float dot(const float* a, const float* b, std::int64_t n);

}  // namespace nshd::tensor
