// Single-precision GEMM kernels.
//
// All heavy math in the NN substrate funnels through these routines:
// convolution (via im2col), linear layers, HD random projection, class
// hypervector similarity banks.  The kernels are register-blocked
// micro-kernels on the fixed-width SIMD layer (tensor/simd.hpp): `gemm`
// packs B into NR-wide panels through a per-thread Workspace and holds a
// 4-row x 2-vector C tile in registers across the whole K loop; `gemm_bt`
// runs 2x4 blocks of vectorized dot products; `gemv`/`gemv_t`/`dot` use
// multi-accumulator vector loops.  Every C element has one fixed
// accumulation order per binary — independent of NSHD_THREADS, because
// parallel chunk boundaries depend only on the range and grain.  Both the
// legacy layer `forward` and the planned `forward_into` path call these
// same entry points, which keeps the plan-parity tests bitwise.
#pragma once

#include <cstdint>

namespace nshd::tensor {

/// C[M,N] = A[M,K] * B[K,N] (+ C if accumulate).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[M,K] * B[N,K]^T (+ C if accumulate).
void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

/// Same contract as gemm_bt, but transpose-packs B into the `gemm` panel
/// format and runs the register-tiled micro-kernel — roughly 2x faster when
/// K is large (the dW = dOut * col^T shape in conv/linear backward).  The
/// per-element reduction order differs from gemm_bt's (sequential K chain
/// instead of lane-split + hsum), though it is still fixed and
/// NSHD_THREADS-invariant; use only where bitwise compatibility with
/// gemm_bt outputs is not required (gradient accumulation).
void gemm_bt_packed(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[K,M]^T * B[K,N] (+ C if accumulate).
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

/// y[M] = A[M,N] * x[N].
void gemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n);

/// y[N] = A[M,N]^T * x[M].
void gemv_t(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n);

/// Dot product of two length-n vectors.
float dot(const float* a, const float* b, std::int64_t n);

}  // namespace nshd::tensor
