// Single-precision GEMM kernels.
//
// All heavy math in the NN substrate funnels through these routines:
// convolution (via im2col), linear layers, HD random projection, class
// hypervector similarity banks.  The kernels are register-blocked
// micro-kernels on the fixed-width SIMD layer (tensor/simd.hpp): `gemm`
// packs B into NR-wide panels through a per-thread Workspace and holds a
// 4-row x 2-vector C tile in registers across the whole K loop; `gemm_bt`
// runs 2x4 blocks of vectorized dot products; `gemv`/`gemv_t`/`dot` use
// multi-accumulator vector loops.  Every C element has one fixed
// accumulation order per binary — independent of NSHD_THREADS, because
// parallel chunk boundaries depend only on the range and grain.  Both the
// legacy layer `forward` and the planned `forward_into` path call these
// same entry points, which keeps the plan-parity tests bitwise.
#pragma once

#include <cstdint>

namespace nshd::tensor {

/// C[M,N] = A[M,K] * B[K,N] (+ C if accumulate).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[M,K] * B[N,K]^T (+ C if accumulate).
void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

/// Same contract as gemm_bt, but transpose-packs B into the `gemm` panel
/// format and runs the register-tiled micro-kernel — roughly 2x faster when
/// K is large (the dW = dOut * col^T shape in conv/linear backward).  The
/// per-element reduction order differs from gemm_bt's (sequential K chain
/// instead of lane-split + hsum), though it is still fixed and
/// NSHD_THREADS-invariant; use only where bitwise compatibility with
/// gemm_bt outputs is not required (gradient accumulation).
void gemm_bt_packed(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool accumulate = false);

/// C[M,N] = A[K,M]^T * B[K,N] (+ C if accumulate).
void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate = false);

/// y[M] = A[M,N] * x[N].
void gemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n);

/// y[N] = A[M,N]^T * x[M].
void gemv_t(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n);

/// Dot product of two length-n vectors.
float dot(const float* a, const float* b, std::int64_t n);

/// Int8 GEMM in BT form: C_s32[M,N] = A_s8[M,K] * B_u8[N,K]^T.  A holds
/// quantized weight (or bipolar class-bank) rows, B holds quantized
/// activation rows — im2row patches or unpacked query bits — so both
/// operands stream contiguously along K with no packing step.  The weight
/// operand is sign-extended to s16 once per call, then a 4x2 register tile
/// shares each widened activation strip across 4 weight rows and each
/// weight strip across 2 activation columns (tensor/simd.hpp load_s16 /
/// madd_s16); accumulation is exact integer arithmetic, hence bitwise
/// invariant across NSHD_THREADS and identical on every ISA.
void gemm_s8(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c,
             std::int64_t m, std::int64_t k, std::int64_t n);

/// The same BT-form int8 GEMM with the weight operand already widened:
/// C_s32[M,N] = A_s16[M,K] * B_u8[N,K]^T, with row strides lda/ldb >= K.
/// Callers that keep widened weights around (the quantized inference plan
/// stores them per layer, zero-padded to a whole simd::kDotBytes strip)
/// skip the per-call widening pass entirely — and when `k` itself is
/// passed as the padded count, the kernel never runs a scalar K tail:
/// zero-padded weight lanes annihilate whatever initialized bytes sit in
/// the activation rows' padding.
void gemm_s16_u8(const std::int16_t* a, std::int64_t lda,
                 const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                 std::int64_t m, std::int64_t k, std::int64_t n);

}  // namespace nshd::tensor
