#include "tensor/quant.hpp"

#include <cstring>

#include "util/fault.hpp"

namespace nshd::tensor::quant {

const char* calib_status_name(CalibStatus status) {
  switch (status) {
    case CalibStatus::kOk: return "ok";
    case CalibStatus::kCalibNan: return "calib_nan";
    case CalibStatus::kScaleZero: return "scale_zero";
  }
  return "unknown";
}

Range batch_range(const float* x, std::int64_t n) {
  Range r;
  if (n <= 0) return r;
  r.seen = true;
  float lo = x[0], hi = x[0];
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i];
    if (!std::isfinite(v)) {
      r.finite = false;
      continue;
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  r.lo = lo;
  r.hi = hi;
  return r;
}

void MinMaxObserver::update(const Range& batch) {
  if (!batch.seen) return;
  range_.finite = range_.finite && batch.finite;
  if (!range_.seen) {
    range_.lo = batch.lo;
    range_.hi = batch.hi;
    range_.seen = true;
    return;
  }
  range_.lo = std::min(range_.lo, batch.lo);
  range_.hi = std::max(range_.hi, batch.hi);
}

void MovingAverageObserver::update(const Range& batch) {
  if (!batch.seen) return;
  range_.finite = range_.finite && batch.finite;
  if (!range_.seen) {
    range_.lo = batch.lo;
    range_.hi = batch.hi;
    range_.seen = true;
    return;
  }
  range_.lo += momentum_ * (batch.lo - range_.lo);
  range_.hi += momentum_ * (batch.hi - range_.hi);
}

CalibStatus activation_params(const Range& range, QuantParams* params) {
  bool bad = !range.seen || !range.finite || !std::isfinite(range.lo) ||
             !std::isfinite(range.hi);
  if (util::fault::should_fire("quant.calib_nan")) bad = true;
  if (bad) return CalibStatus::kCalibNan;
  const float lo = std::min(range.lo, 0.0f);
  const float hi = std::max(range.hi, 0.0f);
  float scale = (hi - lo) / 255.0f;
  if (util::fault::should_fire("quant.scale_zero")) scale = 0.0f;
  if (!(scale > 0.0f) || !std::isfinite(scale)) return CalibStatus::kScaleZero;
  params->scale = scale;
  params->zero_point = static_cast<std::int32_t>(
      std::min(255L, std::max(0L, std::lround(-lo / scale))));
  return CalibStatus::kOk;
}

QuantizedWeights quantize_weights_per_channel(const float* w, std::int64_t rows,
                                              std::int64_t cols) {
  QuantizedWeights qw;
  qw.rows = rows;
  qw.cols = cols;
  qw.cols16 = (cols + simd::kDotBytes - 1) / simd::kDotBytes * simd::kDotBytes;
  qw.data.resize(static_cast<std::size_t>(rows * cols));
  qw.data16.assign(static_cast<std::size_t>(rows * qw.cols16), 0);
  qw.scales.resize(static_cast<std::size_t>(rows));
  qw.row_sums.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = w + r * cols;
    float amax = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) amax = std::max(amax, std::fabs(src[j]));
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    qw.scales[static_cast<std::size_t>(r)] = scale;
    std::int8_t* dst = qw.data.data() + r * cols;
    std::int16_t* dst16 = qw.data16.data() + r * qw.cols16;
    std::int32_t sum = 0;
    const float inv = 1.0f / scale;
    for (std::int64_t j = 0; j < cols; ++j) {
      const long q = std::min(127L, std::max(-127L, std::lround(src[j] * inv)));
      dst[j] = static_cast<std::int8_t>(q);
      dst16[j] = static_cast<std::int16_t>(q);
      sum += static_cast<std::int32_t>(q);
    }
    qw.row_sums[static_cast<std::size_t>(r)] = sum;
  }
  return qw;
}

namespace {

/// Half-away-from-zero rounding of a pre-clamped float to s32 — identical to
/// std::lround over the clamped domain, but plain arithmetic the
/// auto-vectorizer handles.  The ±512 clamp keeps the float->int conversion
/// defined for any input (NaN funnels through std::max's first argument to
/// the low rail); every out-of-range value still saturates to the same u8
/// code lround would have produced after the caller's [0,255] clamp.
inline std::int32_t round_clamped(float r) {
  r = std::min(512.0f, std::max(-512.0f, r));
  return static_cast<std::int32_t>(r + (r >= 0.0f ? 0.5f : -0.5f));
}

}  // namespace

void quantize_u8(const float* x, std::uint8_t* q, std::int64_t n,
                 const QuantParams& qp) {
  const float inv = 1.0f / qp.scale;
  const std::int32_t zp = qp.zero_point;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t v = round_clamped(x[i] * inv) + zp;
    q[i] = static_cast<std::uint8_t>(std::min(255, std::max(0, v)));
  }
}

void requantize_row_u8(const std::int32_t* acc, std::int64_t n,
                       std::int32_t sub, float mult, float add,
                       const QuantParams& out, std::uint8_t* q,
                       std::int64_t qstride) {
  const float inv = 1.0f / out.scale;
  const float mult_q = mult * inv;
  const float add_q = add * inv;
  const std::int32_t zp = out.zero_point;
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int32_t v =
        round_clamped(requantize(acc[j], sub, mult_q, add_q)) + zp;
    q[j * qstride] = static_cast<std::uint8_t>(std::min(255, std::max(0, v)));
  }
}

void dequantize_u8(const std::uint8_t* q, float* x, std::int64_t n,
                   const QuantParams& qp) {
  const float scale = qp.scale;
  const std::int32_t zp = qp.zero_point;
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(static_cast<std::int32_t>(q[i]) - zp) * scale;
  }
}

void clamp_u8(std::uint8_t* x, std::int64_t n, std::uint8_t lo,
              std::uint8_t hi) {
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = std::min(hi, std::max(lo, x[i]));
  }
}

void max_pool2d_u8(const std::uint8_t* src, std::int64_t channels,
                   std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
                   std::int64_t stride, std::uint8_t* dst, std::int64_t out_h,
                   std::int64_t out_w) {
  const std::uint8_t* __restrict in = src;
  std::uint8_t* __restrict out = dst;
  const bool fast2 = kernel == 2 && stride == 2;
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::uint8_t* plane = in + c * in_h * in_w;
    std::uint8_t* oplane = out + c * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      std::uint8_t* orow = oplane + oy * out_w;
      if (fast2) {
        const std::uint8_t* r0 = plane + 2 * oy * in_w;
        const std::uint8_t* r1 = r0 + in_w;
        for (std::int64_t ox = 0; ox < out_w; ++ox) {
          const std::uint8_t a = std::max(r0[2 * ox], r0[2 * ox + 1]);
          const std::uint8_t b = std::max(r1[2 * ox], r1[2 * ox + 1]);
          orow[ox] = std::max(a, b);
        }
        continue;
      }
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        std::uint8_t best = 0;
        const std::uint8_t* win = plane + oy * stride * in_w + ox * stride;
        for (std::int64_t ky = 0; ky < kernel; ++ky, win += in_w) {
          for (std::int64_t kx = 0; kx < kernel; ++kx) {
            best = std::max(best, win[kx]);
          }
        }
        orow[ox] = best;
      }
    }
  }
}

namespace {

/// Kernel-width-specialized lowering (KW == 0 instantiates the runtime-width
/// fallback).  The dominant cost is the fully interior patch — every tap in
/// bounds — which collapses to channels * kernel_h fixed-size KW-byte copies
/// with zero per-byte index math; edge patches keep the branchy per-byte
/// path, but for stride-1 3x3 geometries they are a thin border.
template <int KW>
void im2row_u8_impl(const std::uint8_t* image, const ConvGeometry& g,
                    std::uint8_t zero_point, std::uint8_t* rows,
                    std::int64_t row_stride) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t H = g.in_h, W = g.in_w;
  const std::int64_t kh = g.kernel_h;
  const std::int64_t kw = KW > 0 ? KW : g.kernel_w;
  const std::int64_t crows = g.col_rows();
  const std::int64_t plane_sz = H * W;
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::int64_t iy0 = oy * g.stride - g.pad;
    const std::int64_t ky_lo = std::max<std::int64_t>(0, -iy0);
    const std::int64_t ky_hi = std::min<std::int64_t>(kh, H - iy0);
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      const std::int64_t ix0 = ox * g.stride - g.pad;
      std::uint8_t* const base = rows + (oy * ow + ox) * row_stride;
      std::uint8_t* dst = base;
      if (ix0 >= 0 && ix0 + kw <= W && ky_lo == 0 && ky_hi == kh) {
        const std::uint8_t* src = image + iy0 * W + ix0;
        // Odd widths copy one byte past each KW segment (a single 4-byte
        // store instead of 2+1 for KW == 3): the spilled byte lands on the
        // next segment (written right after), this patch's K-pad bytes
        // (zero_point-filled below), or the next patch's first byte (its
        // own lowering runs later).  Only the very last patch of the image
        // has nothing after it, so it takes exact-width copies.
        const bool last_patch = oy == oh - 1 && ox == ow - 1;
        if (KW == 3 && !last_patch) {
          for (std::int64_t c = 0; c < g.channels; ++c, src += plane_sz) {
            const std::uint8_t* r = src;
            for (std::int64_t ky = 0; ky < kh; ++ky, r += W, dst += kw) {
              std::memcpy(dst, r, 4);
            }
          }
          for (std::uint8_t* p = base + crows; p != base + row_stride; ++p)
            *p = zero_point;
          continue;
        }
        for (std::int64_t c = 0; c < g.channels; ++c, src += plane_sz) {
          const std::uint8_t* r = src;
          for (std::int64_t ky = 0; ky < kh; ++ky, r += W, dst += kw) {
            if constexpr (KW > 0) {
              std::memcpy(dst, r, KW);
            } else {
              for (std::int64_t kx = 0; kx < kw; ++kx) dst[kx] = r[kx];
            }
          }
        }
      } else {
        for (std::int64_t c = 0; c < g.channels; ++c) {
          const std::uint8_t* plane = image + c * plane_sz;
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (ky < ky_lo || ky >= ky_hi) {
              for (std::int64_t kx = 0; kx < kw; ++kx) *dst++ = zero_point;
              continue;
            }
            const std::uint8_t* row = plane + iy * W;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ix0 + kx;
              *dst++ = (ix < 0 || ix >= W) ? zero_point : row[ix];
            }
          }
        }
      }
      for (std::uint8_t* p = base + crows; p != base + row_stride; ++p)
        *p = zero_point;
    }
  }
}

}  // namespace

void im2row_u8(const std::uint8_t* image, const ConvGeometry& g,
               std::uint8_t zero_point, std::uint8_t* rows,
               std::int64_t row_stride) {
  if (row_stride == 0) row_stride = g.col_rows();
  switch (g.kernel_w) {
    case 1: return im2row_u8_impl<1>(image, g, zero_point, rows, row_stride);
    case 3: return im2row_u8_impl<3>(image, g, zero_point, rows, row_stride);
    case 5: return im2row_u8_impl<5>(image, g, zero_point, rows, row_stride);
    case 7: return im2row_u8_impl<7>(image, g, zero_point, rows, row_stride);
    default:
      return im2row_u8_impl<0>(image, g, zero_point, rows, row_stride);
  }
}

}  // namespace nshd::tensor::quant
