// Dense float tensor with value semantics.
//
// This is the numeric workhorse of the whole reproduction: CNN activations,
// gradients, projection matrices, class hypervector banks are all Tensors.
// Data is always contiguous row-major (NCHW for 4-D activations); views and
// strides are deliberately not supported — the op kernels in ops.hpp copy
// instead, which keeps the framework small and the indexing bug-free.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/view.hpp"

namespace nshd::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    assert(static_cast<std::int64_t>(data_.size()) == shape_.numel());
  }

  /// Deep copy of workspace- or caller-owned memory into owning storage.
  explicit Tensor(const TensorView& view) : shape_(view.shape()) {
    assert(reinterpret_cast<std::uintptr_t>(view.data()) % alignof(float) == 0 &&
           "misaligned view");
    assert((view.data() != nullptr || view.numel() == 0) && "null view");
    if (view.numel() > 0) data_.assign(view.data(), view.data() + view.numel());
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    Tensor t(std::move(shape));
    std::fill(t.data_.begin(), t.data_.end(), value);
    return t;
  }
  static Tensor from_view(const TensorView& view) { return Tensor(view); }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }
  const std::vector<float>& storage() const { return data_; }
  std::vector<float>& storage() { return data_; }

  /// Flat element access.
  float& operator[](std::int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D access for (rows, cols) matrices.
  float& at(std::int64_t r, std::int64_t c) {
    assert(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    assert(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// 4-D access for NCHW activations.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    assert(shape_.rank() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    assert(shape_.rank() == 4);
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Returns a copy with a different shape (same numel).
  Tensor reshaped(Shape new_shape) const {
    assert(new_shape.numel() == numel());
    return Tensor(std::move(new_shape), data_);
  }

  /// Mutable / read-only views over the whole tensor (no copy).
  TensorView view() { return TensorView(data_.data(), shape_); }
  TensorView view() const {
    // Views carry pointer semantics like std::span; callers of the planned
    // inference path treat input views as read-only.
    return TensorView(const_cast<float*>(data_.data()), shape_);
  }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  void zero() { fill(0.0f); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace nshd::tensor
