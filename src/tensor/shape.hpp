// Shape arithmetic for dense NCHW tensors.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

namespace nshd::tensor {

/// A dense tensor shape (row-major / C-contiguous).  Rank up to 4 is used in
/// practice: NCHW activations, OIHW conv kernels, (rows, cols) matrices and
/// flat vectors.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { check(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) { check(); }

  std::size_t rank() const { return dims_.size(); }

  std::int64_t operator[](std::size_t axis) const {
    assert(axis < dims_.size());
    return dims_[axis];
  }

  /// Total number of elements.
  std::int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void check() const {
    for ([[maybe_unused]] auto d : dims_) assert(d >= 0 && "negative dimension");
  }
  std::vector<std::int64_t> dims_;
};

/// Output spatial size of a convolution/pool: floor((in + 2p - k) / s) + 1.
constexpr std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                                    std::int64_t stride, std::int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace nshd::tensor
