#include "tensor/workspace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <mutex>

namespace nshd::tensor {

namespace {
constexpr std::size_t kMinBlockFloats = 4096;  // 16 KiB floor per block

// Upper bound on what the recycle pool may hold parked at once.  Large
// enough for the biggest training-plan arena in the zoo, small enough that
// the pool cannot hoard unbounded RSS when arena sizes keep growing.
constexpr std::size_t kPoolCapFloats = (std::size_t(1) << 30) / sizeof(float);

std::size_t align_up(std::size_t floats) {
  return (floats + Workspace::kAlignFloats - 1) & ~(Workspace::kAlignFloats - 1);
}

struct Parked {
  float* data;
  std::size_t capacity;  // floats
};

// Process-level recycle pool.  Intentionally leaked (static pointer, never
// deleted): static Workspaces may be destroyed after any function-local
// static pool object, and parking into a dead pool would be UB.  The
// still-reachable blocks are reclaimed by the OS at exit.
struct BlockPool {
  std::mutex mu;
  std::vector<Parked> parked;
  std::size_t total_floats = 0;

  // Smallest parked block that fits, and never one more than 2x the ask, so
  // a tiny arena cannot strand a training-plan-sized block it would never
  // fill.
  bool acquire(std::size_t need, Parked& out) {
    std::lock_guard<std::mutex> lock(mu);
    std::size_t best = parked.size();
    for (std::size_t i = 0; i < parked.size(); ++i) {
      if (parked[i].capacity < need || parked[i].capacity > 2 * need) continue;
      if (best == parked.size() || parked[i].capacity < parked[best].capacity)
        best = i;
    }
    if (best == parked.size()) return false;
    out = parked[best];
    parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(best));
    total_floats -= out.capacity;
    return true;
  }

  void release(float* data, std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (total_floats + capacity <= kPoolCapFloats) {
        parked.push_back({data, capacity});
        total_floats += capacity;
        return;
      }
    }
    std::free(data);
  }
};

BlockPool& pool() {
  static BlockPool* p = new BlockPool;
  return *p;
}
}  // namespace

Workspace::~Workspace() {
  for (Block& b : blocks_) pool().release(b.data.release(), b.alloc_capacity);
}

void Workspace::add_block(std::size_t floats) {
  // Geometric growth keeps the block list short when estimates were low.
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().capacity;
  const std::size_t capacity =
      std::max({align_up(floats), 2 * last, kMinBlockFloats});
  Block block;
  block.capacity = capacity;  // what this arena asked for, recycled or not
  Parked recycled;
  if (pool().acquire(capacity, recycled)) {
    block.data.reset(recycled.data);
    block.alloc_capacity = recycled.capacity;
  } else {
    block.data.reset(static_cast<float*>(
        std::aligned_alloc(kAlignBytes, capacity * sizeof(float))));
    assert(block.data != nullptr && "workspace allocation failed");
    block.alloc_capacity = capacity;
  }
  blocks_.push_back(std::move(block));
}

void Workspace::reserve(std::size_t floats) {
  if (floats > capacity_floats()) add_block(floats - capacity_floats());
}

float* Workspace::alloc(std::int64_t numel) {
  assert(numel >= 0);
  if (numel == 0) return nullptr;
  const std::size_t need = align_up(static_cast<std::size_t>(numel));
  // Advance to the first block that fits; skipped tails stay unused until
  // the next reset/Frame rewind.
  while (cur_block_ < blocks_.size() &&
         cur_offset_ + need > blocks_[cur_block_].capacity) {
    ++cur_block_;
    cur_offset_ = 0;
  }
  if (cur_block_ >= blocks_.size()) {
    add_block(need);
    cur_block_ = blocks_.size() - 1;
    cur_offset_ = 0;
  }
  float* out = blocks_[cur_block_].data.get() + cur_offset_;
  cur_offset_ += need;
  in_use_ += need;
  peak_ = std::max(peak_, in_use_);
  return out;
}

void Workspace::reset() {
  cur_block_ = 0;
  cur_offset_ = 0;
  in_use_ = 0;
}

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

std::size_t Workspace::pooled_blocks() {
  std::lock_guard<std::mutex> lock(pool().mu);
  return pool().parked.size();
}

std::size_t Workspace::pooled_floats() {
  std::lock_guard<std::mutex> lock(pool().mu);
  return pool().total_floats;
}

void Workspace::trim_pool() {
  std::lock_guard<std::mutex> lock(pool().mu);
  for (const Parked& p : pool().parked) std::free(p.data);
  pool().parked.clear();
  pool().total_floats = 0;
}

}  // namespace nshd::tensor
