#include "tensor/workspace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace nshd::tensor {

namespace {
constexpr std::size_t kMinBlockFloats = 4096;  // 16 KiB floor per block

std::size_t align_up(std::size_t floats) {
  return (floats + Workspace::kAlignFloats - 1) & ~(Workspace::kAlignFloats - 1);
}
}  // namespace

void Workspace::add_block(std::size_t floats) {
  // Geometric growth keeps the block list short when estimates were low.
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().capacity;
  const std::size_t capacity =
      std::max({align_up(floats), 2 * last, kMinBlockFloats});
  Block block;
  block.data.reset(static_cast<float*>(
      std::aligned_alloc(kAlignBytes, capacity * sizeof(float))));
  assert(block.data != nullptr && "workspace allocation failed");
  block.capacity = capacity;
  blocks_.push_back(std::move(block));
}

void Workspace::reserve(std::size_t floats) {
  if (floats > capacity_floats()) add_block(floats - capacity_floats());
}

float* Workspace::alloc(std::int64_t numel) {
  assert(numel >= 0);
  if (numel == 0) return nullptr;
  const std::size_t need = align_up(static_cast<std::size_t>(numel));
  // Advance to the first block that fits; skipped tails stay unused until
  // the next reset/Frame rewind.
  while (cur_block_ < blocks_.size() &&
         cur_offset_ + need > blocks_[cur_block_].capacity) {
    ++cur_block_;
    cur_offset_ = 0;
  }
  if (cur_block_ >= blocks_.size()) {
    add_block(need);
    cur_block_ = blocks_.size() - 1;
    cur_offset_ = 0;
  }
  float* out = blocks_[cur_block_].data.get() + cur_offset_;
  cur_offset_ += need;
  in_use_ += need;
  peak_ = std::max(peak_, in_use_);
  return out;
}

void Workspace::reset() {
  cur_block_ = 0;
  cur_offset_ = 0;
  in_use_ = 0;
}

std::size_t Workspace::capacity_floats() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

}  // namespace nshd::tensor
