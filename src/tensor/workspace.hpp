// Bump/arena allocator for the planned inference and training paths.
//
// A Workspace hands out 64-byte-aligned float spans with no per-allocation
// bookkeeping; the whole arena rewinds in O(1) via reset() (between batches)
// or a scoped Frame (between layers, so nested blocks reuse the same
// scratch).  Capacity never shrinks and growth appends new blocks instead of
// reallocating, so spans handed out earlier in a forward pass stay valid
// even when an estimate was low.  Peak usage is tracked in floats so plans
// can report their true high-water memory.
//
// Backing blocks are recycled through a process-level pool: a destroyed
// Workspace parks its blocks instead of freeing them, and the next arena
// that asks for a compatible size reuses the already-faulted pages.  A
// training plan's arena can run to ~hundreds of MiB, so rebuilding a plan
// (live reload, kill/resume, repeated benchmark reps) would otherwise pay
// the kernel page-fault cost of first-touching that memory every time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/view.hpp"

namespace nshd::tensor {

class Workspace {
 public:
  /// Alignment of every span handed out, in bytes.
  static constexpr std::size_t kAlignBytes = 64;
  static constexpr std::size_t kAlignFloats = kAlignBytes / sizeof(float);

  Workspace() = default;
  explicit Workspace(std::size_t initial_floats) { reserve(initial_floats); }
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Grows total capacity to at least `floats` (never shrinks, never moves
  /// previously handed-out spans).
  void reserve(std::size_t floats);

  /// A 64-byte-aligned span of `numel` floats, uninitialized.  Valid until
  /// the enclosing Frame unwinds or reset() is called.  numel 0 -> nullptr.
  float* alloc(std::int64_t numel);

  /// Allocates and wraps in a view of the given shape.
  TensorView alloc_view(Shape shape) {
    const std::int64_t n = shape.numel();
    return TensorView(alloc(n), std::move(shape));
  }

  /// Rewinds the arena to empty; capacity and peak are retained.
  void reset();

  std::size_t in_use_floats() const { return in_use_; }
  std::size_t peak_floats() const { return peak_; }
  std::size_t peak_bytes() const { return peak_ * sizeof(float); }
  std::size_t capacity_floats() const;
  std::size_t capacity_bytes() const { return capacity_floats() * sizeof(float); }

  /// Number of blocks currently parked in the process-level recycle pool
  /// and their total capacity in floats (testing/diagnostics).
  static std::size_t pooled_blocks();
  static std::size_t pooled_floats();
  /// Frees every parked block (testing; also bounds RSS after a burst of
  /// large plans has been torn down for good).
  static void trim_pool();

  /// Scoped rewind point: allocations made after construction are released
  /// when the Frame leaves scope.  Frames must nest (stack order).
  class Frame {
   public:
    explicit Frame(Workspace& ws)
        : ws_(&ws), block_(ws.cur_block_), offset_(ws.cur_offset_), in_use_(ws.in_use_) {}
    ~Frame() {
      ws_->cur_block_ = block_;
      ws_->cur_offset_ = offset_;
      ws_->in_use_ = in_use_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Workspace* ws_;
    std::size_t block_, offset_, in_use_;
  };

 private:
  struct FreeDeleter {
    void operator()(float* p) const { std::free(p); }
  };
  struct Block {
    std::unique_ptr<float[], FreeDeleter> data;
    // Usable capacity is what this arena asked for, even when the recycled
    // backing allocation is bigger — capacity_floats() must depend only on
    // the arena's own growth history (plan lease pools classify leases by
    // it), never on what happened to be parked in the recycle pool.
    std::size_t capacity = 0;        // usable floats
    std::size_t alloc_capacity = 0;  // true allocation size, re-parked as-is
  };

  void add_block(std::size_t floats);

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;   // block currently bumping
  std::size_t cur_offset_ = 0;  // floats used within cur_block_
  std::size_t in_use_ = 0;      // aligned floats across all blocks
  std::size_t peak_ = 0;
};

}  // namespace nshd::tensor
