#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "util/thread_pool.hpp"

namespace nshd::tensor {

namespace {
// Block sizes tuned for a ~32KB L1 / 1MB L2 core; correctness does not
// depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;
// Rows of C per parallel chunk.  Fixed (never derived from the thread
// count) so the partitioning — and with it every float — is identical for
// any NSHD_THREADS value.  Each chunk owns a disjoint row range of C.
constexpr std::int64_t kRowGrain = 16;
}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate) {
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    if (!accumulate)
      std::memset(c + r0 * n, 0, static_cast<std::size_t>((r1 - r0) * n) * sizeof(float));
    for (std::int64_t i0 = r0; i0 < r1; i0 += kBlockM) {
      const std::int64_t i1 = std::min(i0 + kBlockM, r1);
      for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
        const std::int64_t p1 = std::min(p0 + kBlockK, k);
        for (std::int64_t i = i0; i < i1; ++i) {
          float* ci = c + i * n;
          const float* ai = a + i * k;
          for (std::int64_t p = p0; p < p1; ++p) {
            const float aip = ai[p];
            if (aip == 0.0f) continue;
            const float* bp = b + p * n;
            for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
          }
        }
      }
    }
  });
}

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[i,p] * B[j,p]: rows of both operands are contiguous, so
  // a straight dot-product loop is cache-friendly.
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        float sum = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
        ci[j] = accumulate ? ci[j] + sum : sum;
      }
    }
  });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[p,i] * B[p,j].  Each chunk owns a row range of C and
  // walks p in full order, so per-element accumulation order matches the
  // serial kernel exactly.
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    if (!accumulate)
      std::memset(c + r0 * n, 0, static_cast<std::size_t>((r1 - r0) * n) * sizeof(float));
    for (std::int64_t p = 0; p < k; ++p) {
      const float* ap = a + p * m;
      const float* bp = b + p * n;
      for (std::int64_t i = r0; i < r1; ++i) {
        const float api = ap[i];
        if (api == 0.0f) continue;
        float* ci = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += api * bp[j];
      }
    }
  });
}

void gemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * n;
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) sum += ai[j] * x[j];
    y[i] = sum;
  }
}

void gemv_t(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n) {
  std::memset(y, 0, static_cast<std::size_t>(n) * sizeof(float));
  for (std::int64_t i = 0; i < m; ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    const float* ai = a + i * n;
    for (std::int64_t j = 0; j < n; ++j) y[j] += xi * ai[j];
  }
}

float dot(const float* a, const float* b, std::int64_t n) {
  float sum = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace nshd::tensor
