#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/simd.hpp"
#include "tensor/workspace.hpp"
#include "util/thread_pool.hpp"

namespace nshd::tensor {

namespace {

using simd::VF;
using simd::kWidth;

// Rows of C per parallel chunk.  Fixed (never derived from the thread
// count) so the partitioning — and with it every float — is identical for
// any NSHD_THREADS value.  Each chunk owns a disjoint row range of C.
constexpr std::int64_t kRowGrain = 16;
// Rows per parallel chunk for gemv (rows are cheap: one dot each).
constexpr std::int64_t kGemvGrain = 16;
// Columns of y per parallel chunk for gemv_t (chunks own disjoint y spans).
// Wide spans keep each chunk's walk over A close to a sequential stream —
// narrow ones turn the memory-bound kernel into strided hops — so the grain
// only splits matrices wide enough that fragmentation is amortized.
constexpr std::int64_t kGemvTColGrain = 4096;

// Micro-tile shape: MR rows by NRV vector registers of C accumulators held
// across the whole K loop (8 independent FMA chains).  kRowGrain is a
// multiple of MR so row grouping is identical for every chunk partition.
constexpr int MR = 4;
constexpr int NRV = 2;
constexpr std::int64_t NR = NRV * kWidth;
static_assert(kRowGrain % MR == 0);

// Per-thread arena for packed B panels.  Frame-scoped per call, so nested
// gemms (a worker thread calling gemm inside an outer parallel_for) each
// see their own stack of panels.
thread_local Workspace tl_pack_ws;

/// Packs row-major B[K,N] into column panels of NR contiguous floats per k
/// step, zero-padded past column N, so the micro-kernel's two B loads are
/// unit-stride regardless of n.
void pack_b_panels(const float* b, float* packed, std::int64_t k, std::int64_t n) {
  const std::int64_t panels = (n + NR - 1) / NR;
  util::parallel_for(0, panels, 1, [=](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t jp = q0; jp < q1; ++jp) {
      const std::int64_t j0 = jp * NR;
      const std::int64_t cols = std::min<std::int64_t>(NR, n - j0);
      float* dst = packed + jp * k * NR;
      for (std::int64_t p = 0; p < k; ++p, dst += NR) {
        const float* src = b + p * n + j0;
        for (std::int64_t jj = 0; jj < cols; ++jj) dst[jj] = src[jj];
        for (std::int64_t jj = cols; jj < NR; ++jj) dst[jj] = 0.0f;
      }
    }
  });
}

/// ROWS x NR register tile of A[i..i+ROWS) times one packed panel, written
/// to `tile` (row stride NR).  Accumulation runs p = 0..k in order within
/// each register lane, so every C element has one fixed summation order.
template <int ROWS>
inline void gemm_micro(const float* a, std::int64_t lda, const float* panel,
                       std::int64_t k, float* tile) {
  VF acc[ROWS][NRV];
  for (int r = 0; r < ROWS; ++r)
    for (int v = 0; v < NRV; ++v) acc[r][v] = simd::vzero();
  const float* bp = panel;
  for (std::int64_t p = 0; p < k; ++p, bp += NR) {
    const VF b0 = simd::vload(bp);
    const VF b1 = simd::vload(bp + kWidth);
    for (int r = 0; r < ROWS; ++r) {
      const VF ar = simd::vset1(a[r * lda + p]);
      acc[r][0] = simd::vfmadd(ar, b0, acc[r][0]);
      acc[r][1] = simd::vfmadd(ar, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    simd::vstore(tile + r * NR, acc[r][0]);
    simd::vstore(tile + r * NR + kWidth, acc[r][1]);
  }
}

/// Merges a ROWS x `cols` tile into C (only valid columns are touched, so
/// panel zero-padding never leaks past N).
template <int ROWS>
inline void store_tile(const float* tile, float* cbase, std::int64_t ldc,
                       std::int64_t cols, bool accumulate) {
  for (int r = 0; r < ROWS; ++r) {
    float* ci = cbase + r * ldc;
    const float* ti = tile + r * NR;
    if (accumulate) {
      for (std::int64_t jj = 0; jj < cols; ++jj) ci[jj] += ti[jj];
    } else {
      for (std::int64_t jj = 0; jj < cols; ++jj) ci[jj] = ti[jj];
    }
  }
}

/// ROWS x COLS block of dot products for the BT form: vector partials per
/// (i,j) pair over the shared K axis, fixed-order hsum, then a scalar K
/// tail — one summation order per element, independent of chunking.
template <int ROWS, int COLS>
inline void bt_tile(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                    std::int64_t k, float* out, std::int64_t ldo, bool accumulate) {
  VF acc[ROWS][COLS];
  for (int r = 0; r < ROWS; ++r)
    for (int cc = 0; cc < COLS; ++cc) acc[r][cc] = simd::vzero();
  std::int64_t p = 0;
  for (; p + kWidth <= k; p += kWidth) {
    VF av[ROWS];
    for (int r = 0; r < ROWS; ++r) av[r] = simd::vload(a + r * lda + p);
    for (int cc = 0; cc < COLS; ++cc) {
      const VF bv = simd::vload(b + cc * ldb + p);
      for (int r = 0; r < ROWS; ++r) acc[r][cc] = simd::vfmadd(av[r], bv, acc[r][cc]);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    for (int cc = 0; cc < COLS; ++cc) {
      float s = simd::vhsum(acc[r][cc]);
      for (std::int64_t q = p; q < k; ++q) s += a[r * lda + q] * b[cc * ldb + q];
      float* o = out + r * ldo + cc;
      *o = accumulate ? *o + s : s;
    }
  }
}

template <int ROWS>
inline void bt_dispatch_cols(std::int64_t cols, const float* a, std::int64_t lda,
                             const float* b, std::int64_t ldb, std::int64_t k,
                             float* out, std::int64_t ldo, bool accumulate) {
  switch (cols) {
    case 4: bt_tile<ROWS, 4>(a, lda, b, ldb, k, out, ldo, accumulate); break;
    case 3: bt_tile<ROWS, 3>(a, lda, b, ldb, k, out, ldo, accumulate); break;
    case 2: bt_tile<ROWS, 2>(a, lda, b, ldb, k, out, ldo, accumulate); break;
    default: bt_tile<ROWS, 1>(a, lda, b, ldb, k, out, ldo, accumulate); break;
  }
}

/// Multi-accumulator vector dot with a fixed reduction schedule: four
/// independent chains over 4*kWidth-wide strips, then one chain over
/// kWidth strips, pairwise-combined hsum, scalar tail.
inline float dot_kernel(const float* a, const float* b, std::int64_t n) {
  VF acc0 = simd::vzero(), acc1 = simd::vzero(), acc2 = simd::vzero(), acc3 = simd::vzero();
  std::int64_t i = 0;
  for (; i + 4 * kWidth <= n; i += 4 * kWidth) {
    acc0 = simd::vfmadd(simd::vload(a + i), simd::vload(b + i), acc0);
    acc1 = simd::vfmadd(simd::vload(a + i + kWidth), simd::vload(b + i + kWidth), acc1);
    acc2 = simd::vfmadd(simd::vload(a + i + 2 * kWidth), simd::vload(b + i + 2 * kWidth), acc2);
    acc3 = simd::vfmadd(simd::vload(a + i + 3 * kWidth), simd::vload(b + i + 3 * kWidth), acc3);
  }
  for (; i + kWidth <= n; i += kWidth)
    acc0 = simd::vfmadd(simd::vload(a + i), simd::vload(b + i), acc0);
  float s = simd::vhsum(simd::vadd(simd::vadd(acc0, acc1), simd::vadd(acc2, acc3)));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Transpose-packs row-major B[N,K] into the same NR-wide column panels
/// pack_b_panels produces for B^T[K,N]: panel jp interleaves rows
/// j0..j0+cols of B at each k step, zero-padded past column N.  Reads are
/// unit-stride per source row and the write scatter stays inside a
/// kPBlock*NR*4-byte window, so the pack runs at copy speed.
void pack_bt_panels(const float* b, float* packed, std::int64_t k, std::int64_t n) {
  const std::int64_t panels = (n + NR - 1) / NR;
  constexpr std::int64_t kPBlock = 128;
  util::parallel_for(0, panels, 1, [=](std::int64_t q0, std::int64_t q1) {
    for (std::int64_t jp = q0; jp < q1; ++jp) {
      const std::int64_t j0 = jp * NR;
      const std::int64_t cols = std::min<std::int64_t>(NR, n - j0);
      float* dst = packed + jp * k * NR;
      for (std::int64_t p0 = 0; p0 < k; p0 += kPBlock) {
        const std::int64_t p1 = std::min<std::int64_t>(k, p0 + kPBlock);
        for (std::int64_t jj = 0; jj < cols; ++jj) {
          const float* src = b + (j0 + jj) * k;
          for (std::int64_t p = p0; p < p1; ++p) dst[p * NR + jj] = src[p];
        }
        for (std::int64_t jj = cols; jj < NR; ++jj)
          for (std::int64_t p = p0; p < p1; ++p) dst[p * NR + jj] = 0.0f;
      }
    }
  });
}

/// Row loop shared by gemm and gemm_bt_packed once B is in panel form.
void gemm_packed_rows(const float* a, const float* packed, float* c,
                      std::int64_t m, std::int64_t k, std::int64_t n,
                      bool accumulate) {
  const std::int64_t panels = (n + NR - 1) / NR;
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    alignas(64) float tile[MR * NR];
    for (std::int64_t jp = 0; jp < panels; ++jp) {
      const float* panel = packed + jp * k * NR;
      const std::int64_t j0 = jp * NR;
      const std::int64_t cols = std::min<std::int64_t>(NR, n - j0);
      std::int64_t i = r0;
      for (; i + MR <= r1; i += MR) {
        gemm_micro<MR>(a + i * k, k, panel, k, tile);
        store_tile<MR>(tile, c + i * n + j0, n, cols, accumulate);
      }
      for (; i < r1; ++i) {
        gemm_micro<1>(a + i * k, k, panel, k, tile);
        store_tile<1>(tile, c + i * n + j0, n, cols, accumulate);
      }
    }
  });
}

/// R pre-widened s16 weight rows against C u8 activation rows — one output
/// tile of the BT-form int8 GEMM.  Each widened activation strip is shared
/// by all R madd chains and each weight strip by all C columns, so the
/// per-multiply widening cost falls as the tile grows; the weight operand
/// is sign-extended to s16 ahead of time (by the caller or the gemm_s8
/// wrapper), which keeps the inner iteration free of shuffle-port sign
/// extension entirely.  4x2 is the largest tile whose accumulators plus
/// operand strips stay in registers on every target ISA.  Exact integer
/// accumulation — no ordering caveats.
template <int R, int C>
inline void s16_tile(const std::int16_t* a, std::int64_t lda,
                     const std::uint8_t* b, std::int64_t ldb,
                     std::int32_t* c, std::int64_t ldc, std::int64_t k) {
  simd::VS32 acc[R][C];
  for (int r = 0; r < R; ++r)
    for (int j = 0; j < C; ++j) acc[r][j] = simd::vqzero();
  std::int64_t p = 0;
  for (; p + simd::kDotBytes <= k; p += simd::kDotBytes) {
    simd::VQA bv[C];
    for (int j = 0; j < C; ++j) bv[j] = simd::widen_u8(b + j * ldb + p);
    for (int r = 0; r < R; ++r) {
      const simd::VQA av = simd::load_s16(a + r * lda + p);
      for (int j = 0; j < C; ++j)
        acc[r][j] = simd::madd_s16(acc[r][j], av, bv[j]);
    }
  }
  auto tail = [&](int r, int j, std::int32_t s) {
    for (std::int64_t q = p; q < k; ++q) {
      s += static_cast<std::int32_t>(b[j * ldb + q]) *
           static_cast<std::int32_t>(a[r * lda + q]);
    }
    return s;
  };
  if constexpr (R == 4) {
    // Full-height tile: reduce all four row accumulators of each column in
    // one grouped shuffle tree.  At small K (conv1's K16 is two strips) the
    // per-output reduction dominates the tile, so this grouping matters.
    for (int j = 0; j < C; ++j) {
      std::int32_t s4[4];
      simd::vs32_hsum4(acc[0][j], acc[1][j], acc[2][j], acc[3][j], s4);
      for (int r = 0; r < 4; ++r) c[r * ldc + j] = tail(r, j, s4[r]);
    }
  } else {
    for (int r = 0; r < R; ++r)
      for (int j = 0; j < C; ++j)
        c[r * ldc + j] = tail(r, j, simd::vs32_hsum(acc[r][j]));
  }
}

/// One column group of C tiles (columns [j, j+C)) over the whole row range.
template <int C>
inline void s16_col_group(const std::int16_t* a, std::int64_t lda,
                          const std::uint8_t* b, std::int64_t ldb,
                          std::int32_t* c, std::int64_t k, std::int64_t n,
                          std::int64_t r0, std::int64_t r1, std::int64_t j) {
  std::int64_t i = r0;
  for (; i + 4 <= r1; i += 4)
    s16_tile<4, C>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
  for (; i < r1; ++i)
    s16_tile<1, C>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
}

/// Row-range tile driver shared by both int8 GEMM entry points.  C is
/// row-major [m, n] with no stride (ldc == n).
///
/// Two loop orders, same tiles, same results (each C entry is produced by
/// one identical tile invocation either way): rows-outer re-streams all of B
/// once per 4-row group, so it wants B cache-resident; columns-outer
/// re-streams the chunk's A rows once per column group, so it wants those in
/// L1.  Early conv layers (small weight matrix, huge patch panel) fall badly
/// off the rows-outer cliff — B's per-tile runs are a few cache lines, too
/// short for the prefetcher, and the whole panel is re-streamed m/4 times —
/// so pick whichever order keeps the smaller operand resident.
inline void s16_rows(const std::int16_t* a, std::int64_t lda,
                     const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                     std::int64_t k, std::int64_t n, std::int64_t r0,
                     std::int64_t r1) {
  const std::int64_t a_chunk_bytes = (r1 - r0) * lda * 2;
  if (n * ldb > a_chunk_bytes) {
    std::int64_t j = 0;
    for (; j + 3 <= n; j += 3) s16_col_group<3>(a, lda, b, ldb, c, k, n, r0, r1, j);
    if (j + 2 <= n) {
      s16_col_group<2>(a, lda, b, ldb, c, k, n, r0, r1, j);
      j += 2;
    }
    if (j < n) s16_col_group<1>(a, lda, b, ldb, c, k, n, r0, r1, j);
    return;
  }
  std::int64_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    std::int64_t j = 0;
    for (; j + 3 <= n; j += 3)
      s16_tile<4, 3>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
    if (j + 2 <= n) {
      s16_tile<4, 2>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
      j += 2;
    }
    if (j < n)
      s16_tile<4, 1>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
  }
  for (; i < r1; ++i) {
    std::int64_t j = 0;
    for (; j + 2 <= n; j += 2)
      s16_tile<1, 2>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
    if (j < n)
      s16_tile<1, 1>(a + i * lda, lda, b + j * ldb, ldb, c + i * n + j, n, k);
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  Workspace& ws = tl_pack_ws;
  Workspace::Frame frame(ws);
  const std::int64_t panels = (n + NR - 1) / NR;
  float* packed = ws.alloc(panels * k * NR);
  pack_b_panels(b, packed, k, n);
  gemm_packed_rows(a, packed, c, m, k, n, accumulate);
}

void gemm_bt_packed(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  Workspace& ws = tl_pack_ws;
  Workspace::Frame frame(ws);
  const std::int64_t panels = (n + NR - 1) / NR;
  float* packed = ws.alloc(panels * k * NR);
  pack_bt_panels(b, packed, k, n);
  gemm_packed_rows(a, packed, c, m, k, n, accumulate);
}

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[i,p] * B[j,p]: rows of both operands are contiguous, so
  // the tile is a 2x4 block of vectorized dot products (8 FMA chains).
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t j0 = 0; j0 < n; j0 += 4) {
      const std::int64_t cols = std::min<std::int64_t>(4, n - j0);
      const float* bj = b + j0 * k;
      std::int64_t i = r0;
      for (; i + 2 <= r1; i += 2)
        bt_dispatch_cols<2>(cols, a + i * k, k, bj, k, k, c + i * n + j0, n, accumulate);
      if (i < r1)
        bt_dispatch_cols<1>(cols, a + i * k, k, bj, k, k, c + i * n + j0, n, accumulate);
    }
  });
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[p,i] * B[p,j].  Walking A column-wise in the micro
  // kernel costs a strided scalar load per FMA, and B is re-streamed
  // unpacked for every row group — so instead transpose A once (cheap:
  // k*m floats vs the k*m*n FLOP gemm) and run the packed gemm kernel.
  // Per element the accumulation is the same p = 0..k FMA chain either
  // way, so the result is unchanged.
  if (m == 0 || n == 0) return;
  Workspace& ws = tl_pack_ws;
  Workspace::Frame frame(ws);
  float* at = ws.alloc(m * k);
  constexpr std::int64_t kBlock = 64;  // cache-blocked transpose
  for (std::int64_t p0 = 0; p0 < k; p0 += kBlock) {
    const std::int64_t p1 = std::min<std::int64_t>(k, p0 + kBlock);
    for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
      const std::int64_t i1 = std::min<std::int64_t>(m, i0 + kBlock);
      for (std::int64_t p = p0; p < p1; ++p)
        for (std::int64_t i = i0; i < i1; ++i) at[i * k + p] = a[p * m + i];
    }
  }
  gemm(at, b, c, m, k, n, accumulate);
}

void gemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n) {
  util::parallel_for(0, m, kGemvGrain, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) y[i] = dot_kernel(a + i * n, x, n);
  });
}

void gemv_t(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n) {
  // Chunks own disjoint column spans of y; rows are walked in order within
  // each chunk — 4 at a time, with chained fmadds that keep the exact
  // sequential i = 0..m accumulation order per y[j] — so the result is
  // identical regardless of the partition.  Blocking rows quarters the
  // passes over y and gives the prefetcher 4 concurrent row streams.
  util::parallel_for(0, n, kGemvTColGrain, [=](std::int64_t j0, std::int64_t j1) {
    std::memset(y + j0, 0, static_cast<std::size_t>(j1 - j0) * sizeof(float));
    std::int64_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float x0 = x[i], x1 = x[i + 1], x2 = x[i + 2], x3 = x[i + 3];
      if (x0 == 0.0f && x1 == 0.0f && x2 == 0.0f && x3 == 0.0f) continue;
      const float* a0 = a + i * n;
      const float* a1 = a0 + n;
      const float* a2 = a1 + n;
      const float* a3 = a2 + n;
      const VF v0 = simd::vset1(x0), v1 = simd::vset1(x1);
      const VF v2 = simd::vset1(x2), v3 = simd::vset1(x3);
      std::int64_t j = j0;
      for (; j + kWidth <= j1; j += kWidth) {
        VF acc = simd::vload(y + j);
        acc = simd::vfmadd(v0, simd::vload(a0 + j), acc);
        acc = simd::vfmadd(v1, simd::vload(a1 + j), acc);
        acc = simd::vfmadd(v2, simd::vload(a2 + j), acc);
        acc = simd::vfmadd(v3, simd::vload(a3 + j), acc);
        simd::vstore(y + j, acc);
      }
      for (; j < j1; ++j) {
        float t = y[j];
        t += x0 * a0[j];
        t += x1 * a1[j];
        t += x2 * a2[j];
        t += x3 * a3[j];
        y[j] = t;
      }
    }
    for (; i < m; ++i) {
      const float xi = x[i];
      if (xi == 0.0f) continue;
      const VF xv = simd::vset1(xi);
      const float* ai = a + i * n;
      std::int64_t j = j0;
      for (; j + kWidth <= j1; j += kWidth)
        simd::vstore(y + j, simd::vfmadd(xv, simd::vload(ai + j), simd::vload(y + j)));
      for (; j < j1; ++j) y[j] += xi * ai[j];
    }
  });
}

float dot(const float* a, const float* b, std::int64_t n) {
  return dot_kernel(a, b, n);
}

void gemm_s8(const std::int8_t* a, const std::uint8_t* b, std::int32_t* c,
             std::int64_t m, std::int64_t k, std::int64_t n) {
  // Widen the weight operand to s16 once up front — O(M*K) against the
  // O(M*K*N) madd work it strips out of the inner loop — then run the
  // tiled core.  The widened copy lives in the per-thread pack arena,
  // frame-scoped exactly like the f32 panel workspace.  Chunks own
  // disjoint row ranges of C; kRowGrain is a multiple of 4, so row
  // grouping is the same for every partition (and the integer sums are
  // order-exact anyway).
  if (m == 0 || n == 0) return;
  Workspace& ws = tl_pack_ws;
  Workspace::Frame frame(ws);
  const std::int64_t elems = m * k;
  auto* a16 = reinterpret_cast<std::int16_t*>(
      ws.alloc((elems * static_cast<std::int64_t>(sizeof(std::int16_t)) + 3) / 4));
  for (std::int64_t i = 0; i < elems; ++i) a16[i] = a[i];
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    s16_rows(a16, k, b, k, c, k, n, r0, r1);
  });
}

void gemm_s16_u8(const std::int16_t* a, std::int64_t lda,
                 const std::uint8_t* b, std::int64_t ldb, std::int32_t* c,
                 std::int64_t m, std::int64_t k, std::int64_t n) {
  if (m == 0 || n == 0) return;
  util::parallel_for(0, m, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
    s16_rows(a, lda, b, ldb, c, k, n, r0, r1);
  });
}

}  // namespace nshd::tensor
