#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace nshd::tensor {

namespace {
// Block sizes tuned for a ~32KB L1 / 1MB L2 core; correctness does not
// depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;
}  // namespace

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(i0 + kBlockM, m);
    for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::int64_t p1 = std::min(p0 + kBlockK, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * n;
        const float* ai = a + i * k;
        for (std::int64_t p = p0; p < p1; ++p) {
          const float aip = ai[p];
          if (aip == 0.0f) continue;
          const float* bp = b + p * n;
          for (std::int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
      }
    }
  }
}

void gemm_bt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[i,p] * B[j,p]: rows of both operands are contiguous, so
  // a straight dot-product loop is cache-friendly.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float sum = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
      ci[j] = accumulate ? ci[j] + sum : sum;
    }
  }
}

void gemm_at(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n, bool accumulate) {
  // C[i,j] = sum_p A[p,i] * B[p,j].
  if (!accumulate) std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t p = 0; p < k; ++p) {
    const float* ap = a + p * m;
    const float* bp = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float api = ap[i];
      if (api == 0.0f) continue;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

void gemv(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * n;
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) sum += ai[j] * x[j];
    y[i] = sum;
  }
}

void gemv_t(const float* a, const float* x, float* y, std::int64_t m, std::int64_t n) {
  std::memset(y, 0, static_cast<std::size_t>(n) * sizeof(float));
  for (std::int64_t i = 0; i < m; ++i) {
    const float xi = x[i];
    if (xi == 0.0f) continue;
    const float* ai = a + i * n;
    for (std::int64_t j = 0; j < n; ++j) y[j] += xi * ai[j];
  }
}

float dot(const float* a, const float* b, std::int64_t n) {
  float sum = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace nshd::tensor
