// Quantization primitives for the INT8 inference path.
//
// Scheme: activations are asymmetric per-tensor u8 (scale s, zero point zp;
// q = clamp(round(x/s) + zp, 0, 255)), weights are symmetric per-channel s8
// clamped to ±127 (one scale per output row, zero point 0).  With those
// choices an integer conv/linear accumulator relates to the real value by
//
//   y[o] = (acc[o] - zp_in * row_sum_w[o]) * (s_in * s_w[o]) + bias[o]
//
// which is the single requantization identity shared by the quantized plan
// epilogues and the HD classifier's bipolar scoring (`requantize`).  Padding
// in the u8 im2row lowering is written as zp_in, so padded taps contribute
// exactly zero after the zero-point correction — bit-for-bit the same as f32
// zero padding.
//
// Calibration: observers fold per-batch activation ranges (plain min/max or
// an exponential moving average) and `activation_params` converts a range
// into QuantParams with a *typed* status.  Non-finite ranges (kCalibNan) and
// degenerate ranges (kScaleZero) are injectable through the
// `quant.calib_nan` / `quant.scale_zero` fault sites; callers must surface
// these as counted fallbacks, never as a silent switch to f32.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/im2col.hpp"
#include "tensor/simd.hpp"

namespace nshd::tensor::quant {

/// Asymmetric u8 activation quantization parameters.
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Typed calibration outcome for one activation boundary.
enum class CalibStatus {
  kOk = 0,
  kCalibNan,    // observed range was empty or non-finite
  kScaleZero,   // observed range collapsed to a point (scale would be 0)
};

const char* calib_status_name(CalibStatus status);

/// Observed activation range.  `finite` goes (and stays) false if any
/// observed value was NaN/Inf.
struct Range {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  bool seen = false;
  bool finite = true;
};

/// Min/max of one batch of values (NaN/Inf poisons `finite`).
Range batch_range(const float* x, std::int64_t n);

/// Running min/max over every observed batch.
class MinMaxObserver {
 public:
  void update(const Range& batch);
  void observe(const float* x, std::int64_t n) { update(batch_range(x, n)); }
  const Range& range() const { return range_; }
  void reset() { range_ = Range{}; }

 private:
  Range range_;
};

/// Exponential moving average of per-batch min/max: the first batch
/// initializes the range, each later batch moves it by `momentum`.  Batch
/// order is fixed (calibration runs batches serially), so the result is
/// deterministic.
class MovingAverageObserver {
 public:
  explicit MovingAverageObserver(float momentum = 0.1f) : momentum_(momentum) {}
  void update(const Range& batch);
  void observe(const float* x, std::int64_t n) { update(batch_range(x, n)); }
  const Range& range() const { return range_; }
  void reset() { range_ = Range{}; }

 private:
  float momentum_;
  Range range_;
};

/// Converts an observed range into activation QuantParams.  The range is
/// widened to include 0 so the zero point is exactly representable.  On
/// kCalibNan / kScaleZero the output params are left untouched.
CalibStatus activation_params(const Range& range, QuantParams* params);

/// Per-channel symmetrically quantized weight matrix: row r of `data` holds
/// round(w[r,:] / scales[r]) clamped to ±127 (all-zero rows get scale 1.0),
/// and row_sums[r] caches the integer row sum for the zero-point correction.
/// `data16` carries the same rows pre-widened to s16 with stride `cols16`
/// (cols rounded up to a whole simd::kDotBytes strip, zero-padded) — the
/// operand gemm_s16_u8 consumes, so the inference plan never pays a
/// per-batch widening pass and never runs a scalar K tail.
struct QuantizedWeights {
  std::vector<std::int8_t> data;
  std::vector<std::int16_t> data16;
  std::vector<float> scales;
  std::vector<std::int32_t> row_sums;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t cols16 = 0;
};

QuantizedWeights quantize_weights_per_channel(const float* w, std::int64_t rows,
                                              std::int64_t cols);

/// Quantizes one value (round half away from zero, clamped to [0,255]).
inline std::uint8_t quantize_value(float x, const QuantParams& qp) {
  const long q = std::lround(x / qp.scale) + qp.zero_point;
  return static_cast<std::uint8_t>(std::min(255L, std::max(0L, q)));
}

inline float dequantize_value(std::uint8_t q, const QuantParams& qp) {
  return static_cast<float>(static_cast<std::int32_t>(q) - qp.zero_point) *
         qp.scale;
}

void quantize_u8(const float* x, std::uint8_t* q, std::int64_t n,
                 const QuantParams& qp);
void dequantize_u8(const std::uint8_t* q, float* x, std::int64_t n,
                   const QuantParams& qp);

/// The one requantization identity (see header comment): maps an integer
/// accumulator back to real units.  Conv/linear epilogues pass
/// sub = zp_in * row_sum_w[o], mult = s_in * s_w[o], add = bias[o]; the HD
/// classifier's bipolar score is requantize(acc, 0, 2, -row_sum) — exact,
/// because the operands are small integers.
inline float requantize(std::int32_t acc, std::int32_t sub, float mult,
                        float add) {
  return static_cast<float>(acc - sub) * mult + add;
}

/// Requantizes a row of integer accumulators straight to u8 output codes:
/// q[j*qstride] = clamp(round(requantize(acc[j], sub, mult, add) /
/// out.scale) + out.zero_point, 0, 255), rounding half away from zero.  The
/// output-scale division is folded into mult/add once per row and the
/// rounding is branch-free inline arithmetic (no libm lround call), so -O3
/// vectorizes the loop; a pre-round clamp to ±512 keeps the float->int
/// conversion defined for any input — including non-finite — without
/// changing any in-range code (both clamp rails land on saturated codes).
/// Shared by the conv and linear epilogues of the quantized inference plan.
void requantize_row_u8(const std::int32_t* acc, std::int64_t n,
                       std::int32_t sub, float mult, float add,
                       const QuantParams& out, std::uint8_t* q,
                       std::int64_t qstride);

/// In-place clamp of n u8 codes to [lo, hi] — the quantized ReLU / ReLU6
/// (lo = zero point, hi = the code of the saturation rail).  A free function
/// on purpose: the same loop written inline in a capturing lambda keeps
/// lo/hi/x as closure members, and because u8 stores may alias anything the
/// compiler reloads them every iteration instead of vectorizing.
void clamp_u8(std::uint8_t* x, std::int64_t n, std::uint8_t lo,
              std::uint8_t hi);

/// 2D max pooling over one sample of u8 planes ([channels, in_h, in_w] ->
/// [channels, out_h, out_w]), windows assumed in bounds (the plan only
/// compiles pools whose geometry divides evenly).  Monotone, so pooling
/// commutes with quantization — exact in u8.  The ubiquitous 2x2/stride-2
/// shape takes a branch-free fast path.
void max_pool2d_u8(const std::uint8_t* src, std::int64_t channels,
                   std::int64_t in_h, std::int64_t in_w, std::int64_t kernel,
                   std::int64_t stride, std::uint8_t* dst, std::int64_t out_h,
                   std::int64_t out_w);

/// u8 patch lowering for the int8 conv: writes one `row_stride`-byte row per
/// output position (0 -> exactly col_rows bytes), each holding that
/// position's contiguous K-patch — the TRANSPOSE of f32 im2col, shaped for
/// gemm_s8 / gemm_s16_u8.  Padding taps and the [col_rows, row_stride) K-pad
/// bytes are written as `zero_point`, so a K-padded gemm reads initialized
/// data (the zero-padded weight lanes annihilate it regardless of value).
void im2row_u8(const std::uint8_t* image, const ConvGeometry& geom,
               std::uint8_t zero_point, std::uint8_t* rows,
               std::int64_t row_stride = 0);

}  // namespace nshd::tensor::quant
