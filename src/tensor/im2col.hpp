// im2col / col2im: convolution lowering to GEMM.
//
// im2col unfolds input patches into a matrix so that a convolution becomes a
// single GEMM with the OIHW kernel flattened to [C_out, C_in*KH*KW]; col2im
// is its adjoint and is used for the input-gradient in backprop.
#pragma once

#include <cstdint>

namespace nshd::tensor {

struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  /// Rows of the unfolded matrix: channels * kernel_h * kernel_w.
  std::int64_t col_rows() const { return channels * kernel_h * kernel_w; }
  /// Columns of the unfolded matrix: out_h * out_w.
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Unfolds one image (CHW, contiguous) into `col` of shape
/// [col_rows, col_cols].  Out-of-bounds (padding) reads produce zeros.
void im2col(const float* image, const ConvGeometry& geom, float* col);

/// Adjoint of im2col: accumulates `col` back into `image` (must be
/// zero-initialized by the caller).
void col2im(const float* col, const ConvGeometry& geom, float* image);

}  // namespace nshd::tensor
