// Elementwise and reduction kernels on Tensors.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace nshd::tensor {

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);
/// a += b in place.
void add_inplace(Tensor& a, const Tensor& b);
/// a += alpha * b in place (axpy).
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);
/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// out = a * b elementwise (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
/// a *= s in place.
void scale_inplace(Tensor& a, float s);

/// Sum of all elements.
double sum(const Tensor& a);
/// Mean of all elements.
double mean(const Tensor& a);
/// Max element value.
float max_value(const Tensor& a);
/// Index of the max element (flat).
std::int64_t argmax(const Tensor& a);
/// Index of max within row r of a 2-D tensor.
std::int64_t argmax_row(const Tensor& a, std::int64_t row);
/// L2 norm.
double l2_norm(const Tensor& a);

/// True when every one of the `n` floats at `p` is finite (no NaN/Inf).
/// The numeric-health primitive behind the serving engine's post-inference
/// scan and the reload verification gate.
bool all_finite(const float* p, std::int64_t n);

/// Numerically stable softmax over the last axis of a 1-D or 2-D tensor.
Tensor softmax(const Tensor& logits);
/// Softmax with temperature: softmax(logits / t).
Tensor softmax(const Tensor& logits, float temperature);

/// Matrix transpose of a 2-D tensor.
Tensor transpose(const Tensor& a);

/// C = A[M,K] * B[K,N] for 2-D tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

}  // namespace nshd::tensor
