// Non-owning tensor view over contiguous row-major float storage.
//
// TensorView is the currency of the planned inference path: kernels write
// into workspace- or caller-owned memory instead of allocating fresh
// std::vector<float> storage per call.  A view carries pointer semantics —
// copying a view aliases the same memory — and deliberately has no
// const/mutable split (like std::span<float>); APIs that only read document
// it at the call site.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "tensor/shape.hpp"

namespace nshd::tensor {

class TensorView {
 public:
  TensorView() = default;

  TensorView(float* data, Shape shape) : data_(data), shape_(std::move(shape)) {
    assert((data_ != nullptr || shape_.numel() == 0) && "null view with elements");
  }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool empty() const { return shape_.numel() == 0; }

  float* data() const { return data_; }
  std::span<float> span() const {
    return {data_, static_cast<std::size_t>(numel())};
  }

  float& operator[](std::int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[i];
  }

  /// Same memory under a different shape (equal numel).
  TensorView reshaped(Shape new_shape) const {
    assert(new_shape.numel() == numel());
    return TensorView(data_, std::move(new_shape));
  }

 private:
  float* data_ = nullptr;
  Shape shape_;
};

}  // namespace nshd::tensor
