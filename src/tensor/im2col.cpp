#include "tensor/im2col.hpp"

namespace nshd::tensor {

void im2col(const float* image, const ConvGeometry& geom, float* col) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.channels; ++c) {
    const float* channel = image + c * geom.in_h * geom.in_w;
    for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < geom.kernel_w; ++kw, ++row) {
        float* out_row = col + row * (out_h * out_w);
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * geom.stride - geom.pad + kh;
          float* out_ptr = out_row + oh * out_w;
          if (ih < 0 || ih >= geom.in_h) {
            for (std::int64_t ow = 0; ow < out_w; ++ow) out_ptr[ow] = 0.0f;
            continue;
          }
          const float* in_row = channel + ih * geom.in_w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * geom.stride - geom.pad + kw;
            out_ptr[ow] = (iw >= 0 && iw < geom.in_w) ? in_row[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& geom, float* image) {
  const std::int64_t out_h = geom.out_h();
  const std::int64_t out_w = geom.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < geom.channels; ++c) {
    float* channel = image + c * geom.in_h * geom.in_w;
    for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < geom.kernel_w; ++kw, ++row) {
        const float* in_row_base = col + row * (out_h * out_w);
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * geom.stride - geom.pad + kh;
          if (ih < 0 || ih >= geom.in_h) continue;
          const float* in_ptr = in_row_base + oh * out_w;
          float* out_row = channel + ih * geom.in_w;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * geom.stride - geom.pad + kw;
            if (iw >= 0 && iw < geom.in_w) out_row[iw] += in_ptr[ow];
          }
        }
      }
    }
  }
}

}  // namespace nshd::tensor
