#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "tensor/gemm.hpp"

namespace nshd::tensor {

Tensor add(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  assert(a.shape() == b.shape());
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += alpha * pb[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] -= pb[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) po[i] *= pb[i];
  return out;
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] *= s;
}

double sum(const Tensor& a) {
  double total = 0.0;
  for (float x : a.span()) total += x;
  return total;
}

double mean(const Tensor& a) {
  return a.numel() == 0 ? 0.0 : sum(a) / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  assert(a.numel() > 0);
  return *std::max_element(a.span().begin(), a.span().end());
}

std::int64_t argmax(const Tensor& a) {
  assert(a.numel() > 0);
  const float* p = a.data();
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < a.numel(); ++i)
    if (p[i] > p[best]) best = i;
  return best;
}

std::int64_t argmax_row(const Tensor& a, std::int64_t row) {
  assert(a.shape().rank() == 2);
  const std::int64_t cols = a.shape()[1];
  const float* p = a.data() + row * cols;
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < cols; ++i)
    if (p[i] > p[best]) best = i;
  return best;
}

double l2_norm(const Tensor& a) {
  double total = 0.0;
  for (float x : a.span()) total += static_cast<double>(x) * x;
  return std::sqrt(total);
}

bool all_finite(const float* p, std::int64_t n) {
  // Branch-free accumulation: OR the exponent bits together and test once.
  // A float is non-finite iff its exponent field is all ones, so the scan
  // stays a straight-line loop the compiler can vectorize.
  std::uint32_t seen = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, p + i, sizeof(bits));
    const std::uint32_t exponent = bits & 0x7f800000u;
    seen |= static_cast<std::uint32_t>(exponent == 0x7f800000u);
  }
  return seen == 0;
}

Tensor softmax(const Tensor& logits) { return softmax(logits, 1.0f); }

Tensor softmax(const Tensor& logits, float temperature) {
  assert(temperature > 0.0f);
  assert(logits.shape().rank() == 1 || logits.shape().rank() == 2);
  const std::int64_t rows = logits.shape().rank() == 2 ? logits.shape()[0] : 1;
  const std::int64_t cols = logits.numel() / rows;
  Tensor out = logits;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* p = out.data() + r * cols;
    float hi = p[0];
    for (std::int64_t i = 1; i < cols; ++i) hi = std::max(hi, p[i]);
    double z = 0.0;
    for (std::int64_t i = 0; i < cols; ++i) {
      p[i] = std::exp((p[i] - hi) / temperature);
      z += p[i];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (std::int64_t i = 0; i < cols; ++i) p[i] *= inv;
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  assert(a.shape().rank() == 2);
  const std::int64_t rows = a.shape()[0];
  const std::int64_t cols = a.shape()[1];
  Tensor out(Shape{cols, rows});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c) out.at(c, r) = a.at(r, c);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.shape().rank() == 2 && b.shape().rank() == 2);
  assert(a.shape()[1] == b.shape()[0]);
  Tensor out(Shape{a.shape()[0], b.shape()[1]});
  gemm(a.data(), b.data(), out.data(), a.shape()[0], a.shape()[1], b.shape()[1]);
  return out;
}

}  // namespace nshd::tensor
