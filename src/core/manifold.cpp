#include "core/manifold.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"

namespace nshd::core {

namespace {
std::int64_t pooled_size_for(const tensor::Shape& chw, bool spatial) {
  if (spatial) {
    const std::int64_t ph = std::max<std::int64_t>(1, chw[1] / 2);
    const std::int64_t pw = std::max<std::int64_t>(1, chw[2] / 2);
    return chw[0] * ph * pw;
  }
  return chw.numel();
}
}  // namespace

ManifoldLearner::ManifoldLearner(const tensor::Shape& chw, const ManifoldConfig& config)
    : chw_(chw),
      config_(config),
      // Window-2 maxpool only where spatial extent can absorb it (the
      // paper's models pool 14x14 -> 7x7 maps); collapsing 2x2 -> 1x1 maps
      // starves the FC regressor of 3/4 of its information, so small maps
      // pass through unpooled.
      spatial_pool_(chw.rank() == 3 && (chw[1] >= 4 || chw[2] >= 4)),
      pooled_size_(pooled_size_for(chw, spatial_pool_)),
      weight_(tensor::Shape{config.output_features, pooled_size_}),
      bias_(tensor::Shape{config.output_features}) {
  assert(chw.rank() == 3);
  util::Rng rng(config.seed);
  const float stddev = std::sqrt(2.0f / static_cast<float>(pooled_size_));
  for (float& w : weight_.span()) w = rng.normal(0.0f, stddev);
}

tensor::Tensor ManifoldLearner::pool(const float* features) const {
  tensor::Tensor out(tensor::Shape{pooled_size_});
  if (spatial_pool_) {
    const std::int64_t c_count = chw_[0], h = chw_[1], w = chw_[2];
    const std::int64_t ph = std::max<std::int64_t>(1, h / 2);
    const std::int64_t pw = std::max<std::int64_t>(1, w / 2);
    std::int64_t o = 0;
    for (std::int64_t c = 0; c < c_count; ++c) {
      const float* plane = features + c * h * w;
      for (std::int64_t y = 0; y < ph; ++y) {
        for (std::int64_t x = 0; x < pw; ++x, ++o) {
          float best = plane[(2 * y) * w + 2 * x];
          if (2 * x + 1 < w) best = std::max(best, plane[(2 * y) * w + 2 * x + 1]);
          if (2 * y + 1 < h) {
            best = std::max(best, plane[(2 * y + 1) * w + 2 * x]);
            if (2 * x + 1 < w) best = std::max(best, plane[(2 * y + 1) * w + 2 * x + 1]);
          }
          out[o] = best;
        }
      }
    }
  } else {
    // Pass-through for spatially small activations.
    for (std::int64_t o = 0; o < pooled_size_; ++o) out[o] = features[o];
  }
  return out;
}

tensor::Tensor ManifoldLearner::pool(const tensor::Tensor& features) const {
  assert(features.numel() == chw_.numel());
  return pool(features.data());
}

tensor::Tensor ManifoldLearner::compress(const tensor::Tensor& pooled) const {
  assert(pooled.numel() == pooled_size_);
  tensor::Tensor v(tensor::Shape{config_.output_features});
  tensor::gemv(weight_.data(), pooled.data(), v.data(), config_.output_features,
               pooled_size_);
  for (std::int64_t i = 0; i < config_.output_features; ++i) v[i] += bias_[i];
  return v;
}

tensor::Tensor ManifoldLearner::forward(const float* features) const {
  return compress(pool(features));
}

tensor::Tensor ManifoldLearner::forward(const tensor::Tensor& features) const {
  assert(features.numel() == chw_.numel());
  return forward(features.data());
}

void ManifoldLearner::apply_hd_error(const hd::RandomProjection& projection,
                                     const tensor::Tensor& g_h,
                                     const tensor::Tensor& pre_sign,
                                     const tensor::Tensor& pooled) {
  assert(g_h.numel() == projection.dim());
  assert(pre_sign.numel() == projection.dim());
  assert(pooled.numel() == pooled_size_);

  tensor::Tensor masked = g_h;
  if (config_.ste == SteMode::kClipped) {
    // Saturating STE: the projection's pre-sign magnitudes scale with
    // sqrt(F_hat)*|v|, so clip adaptively at 3 sigma of this sample's
    // activations rather than at a fixed +-1.
    double sq = 0.0;
    for (float z : pre_sign.span()) sq += static_cast<double>(z) * z;
    const float clip =
        3.0f * static_cast<float>(std::sqrt(sq / static_cast<double>(pre_sign.numel()) + 1e-12));
    for (std::int64_t d = 0; d < masked.numel(); ++d) {
      if (std::fabs(pre_sign[d]) > clip) masked[d] = 0.0f;
    }
  }

  // Decode through the projection: g_v = P^T g_h.
  const tensor::Tensor g_v = projection.decode(masked);

  // SGD on the FC regressor: W -= lr * g_v p^T, b -= lr * g_v.
  const float lr = config_.learning_rate;
  for (std::int64_t o = 0; o < config_.output_features; ++o) {
    const float g = g_v[o];
    if (g == 0.0f) continue;
    float* row = weight_.data() + o * pooled_size_;
    const float step = lr * g;
    const float* p = pooled.data();
    for (std::int64_t i = 0; i < pooled_size_; ++i) row[i] -= step * p[i];
    bias_[o] -= step;
  }
}

}  // namespace nshd::core
