// NSHD — the paper's primary contribution (Secs. III-V).
//
// Pipeline:  image -> conv(x) (cut CNN, frozen) -> manifold Psi (maxpool+FC)
//            -> random-projection encoding Phi_P -> query hypervector H
//            -> similarity against class hypervectors M.
//
// Training (Algorithm 1): MASS retraining extended with knowledge
// distillation from the *full* CNN's logits.  The same per-sample update
// vector U drives both the class-hypervector update M += lambda U^T H and
// (decoded through the encoder with an STE) the manifold learner's FC
// update (Sec. V-C).
//
// The class doubles as the BaselineHD comparator: with `use_manifold=false`
// the encoder hashes the raw cut features through random hyperplanes (LSH,
// as in prior work [9]) and with `use_kd=false` training is plain MASS.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/feature_extractor.hpp"
#include "core/manifold.hpp"
#include "hd/classifier.hpp"
#include "hd/projection.hpp"
#include "models/zoo.hpp"

namespace nshd::core {

struct NshdConfig {
  std::int64_t dim = 3000;           // hypervector dimensionality D
  std::int64_t manifold_features = 100;  // F_hat
  float alpha = 0.7f;                // KD mixing weight (Algorithm 1 line 7-8)
  float temperature = 15.0f;         // KD softening t
  float learning_rate = 0.035f;      // lambda
  std::int64_t epochs = 12;
  bool use_kd = true;                // Fig. 8 ablation switch
  bool use_manifold = true;          // false => BaselineHD-style direct LSH
  bool train_manifold = true;        // Sec. V-C backprop on/off
  float manifold_learning_rate = 0.03f;
  SteMode ste = SteMode::kClipped;
  hd::Similarity similarity = hd::Similarity::kCosine;
  std::uint64_t seed = 33;
};

/// BaselineHD ([9]-style): extractor + LSH random hyperplanes, no manifold,
/// no distillation.
NshdConfig baseline_hd_config(std::int64_t dim = 3000);

struct NshdTrainStats {
  std::vector<double> epoch_train_accuracy;
  double seconds = 0.0;
};

/// Algorithm 1 applied to *precomputed* hypervectors (static encoder).
/// Used internally whenever the manifold is absent or frozen — encoding each
/// sample once instead of once per epoch — and directly by the
/// hyperparameter-grid benches.
struct KdRetrainConfig {
  float alpha = 0.7f;
  float temperature = 15.0f;
  float learning_rate = 0.035f;
  std::int64_t epochs = 12;
  bool use_kd = true;
  hd::Similarity similarity = hd::Similarity::kCosine;
  std::uint64_t seed = 33;
};

/// Runs Algorithm 1 epochs over cached sample hypervectors.
/// `teacher_logits` is the raw [N, K] teacher output (required when use_kd);
/// the classifier must already be initialized (bundling).
NshdTrainStats kd_retrain(hd::HdClassifier& classifier,
                          const std::vector<hd::Hypervector>& samples,
                          const std::vector<std::int64_t>& labels,
                          const tensor::Tensor* teacher_logits,
                          const KdRetrainConfig& config);

/// Cosine similarities live in [-1, 1]; they are mapped onto a logit-like
/// scale before temperature softening so the student's soft predictions are
/// commensurate with the teacher's soft labels (Algorithm 1 lines 4-5).
inline constexpr float kSimilarityLogitScale = 10.0f;

/// One Algorithm 1 update vector U from similarities and (optionally) the
/// teacher's logits for this sample:
///   soft_pred   = softmax(sims * scale / t)
///   soft_labels = softmax(teacher_logits / t)
///   U = (1-alpha) * (one_hot - sims) + alpha * (soft_labels - soft_pred).
/// Exposed for the manifold trainer and unit tests.
std::vector<float> kd_update_vector(const std::vector<float>& similarities,
                                    std::int64_t label,
                                    const float* teacher_logits, float alpha,
                                    float temperature);

class NshdModel {
 public:
  /// `extractor` is borrowed and must outlive the model; `cut_layer` selects
  /// the feature extraction depth (paper layer index).
  NshdModel(models::ZooModel& extractor, std::size_t cut_layer,
            const NshdConfig& config);

  /// Trains on materialized features.  `teacher_logits` ([N, K], from the
  /// full CNN) is required when config.use_kd is true.
  NshdTrainStats train(const ExtractedFeatures& features,
                       const std::vector<std::int64_t>& labels,
                       const tensor::Tensor* teacher_logits);

  /// Symbolization Phi_P(Psi(features)) of one raw feature row.
  hd::Hypervector symbolize(const float* features) const;

  /// Symbolizes every row of a feature matrix.
  std::vector<hd::Hypervector> symbolize_all(const ExtractedFeatures& features) const;

  /// Per-row numeric health of the symbolization pipeline, reported by
  /// symbolize_all_checked.  The distinction matters for degradation: bad
  /// *features* poison every downstream path (no honest answer exists), while
  /// a bad *encoding* (non-finite manifold output from corrupt FC weights)
  /// can still be served by a manifold-free HD fallback over the same raw
  /// features.
  enum class RowHealth : std::uint8_t {
    kClean = 0,
    kBadFeatures = 1,  // raw feature row carries NaN/Inf
    kBadEncoding = 2,  // manifold output non-finite (features were clean)
  };

  /// symbolize_all with a numeric-health scan of each encoder input.  The
  /// sign quantization inside hd::RandomProjection::encode silently absorbs
  /// NaN (any comparison with NaN is false), so non-finite values must be
  /// caught *before* encoding — this is the only place the serving engine
  /// can see them.  Hypervectors are produced for every row (poison rows
  /// included) so the output stays batch-shaped; health[i] tells the caller
  /// which rows to quarantine.  Bitwise identical to symbolize_all on clean
  /// rows for any thread count.
  std::vector<hd::Hypervector> symbolize_all_checked(
      const ExtractedFeatures& features, std::vector<RowHealth>& health) const;

  /// True when every trainable value (manifold FC weights/bias and the class
  /// bank) is finite.  Serving gates registration and checkpoint reload on
  /// this: a NaN weight would otherwise serve garbage without ever throwing.
  bool state_finite() const;

  /// Classification of one raw feature row.
  std::int64_t predict(const float* features) const;

  /// End-to-end single image [1, C, H, W].
  std::int64_t predict_image(const tensor::Tensor& image) const;

  /// Prepares the INT8 single-image path: builds a batch-1 quantized plan
  /// over the same cut and calibrates its activation scales on
  /// `calib_images` ([N, C, H, W]).  Returns the calibration report; a
  /// report with calibration_fallbacks > 0 still serves (the affected
  /// layers run f32 — counted, never silent).
  const nn::CalibrationReport& enable_quantized_inference(
      const tensor::TensorView& calib_images, std::int64_t calib_batch = 32);

  /// predict_image on the int8 extractor.  Throws std::logic_error unless
  /// enable_quantized_inference has run.
  std::int64_t predict_image_quantized(const tensor::Tensor& image) const;

  /// The int8 image plan, or nullptr before enable_quantized_inference.
  const nn::QuantizedInferencePlan* quantized_plan() const {
    return quantized_image_plan_.get();
  }

  /// Accuracy over a materialized feature set.
  double evaluate(const ExtractedFeatures& features,
                  const std::vector<std::int64_t>& labels) const;

  const NshdConfig& config() const { return config_; }
  std::size_t cut_layer() const { return cut_layer_; }
  const hd::HdClassifier& classifier() const { return classifier_; }
  hd::HdClassifier& classifier() { return classifier_; }
  const hd::RandomProjection& projection() const { return projection_; }
  const ManifoldLearner* manifold() const {
    return manifold_ ? &*manifold_ : nullptr;
  }
  /// Mutable access for reduction-ablation tooling that substitutes the FC
  /// weights (PCA / truncation baselines).
  ManifoldLearner* mutable_manifold() { return manifold_ ? &*manifold_ : nullptr; }
  models::ZooModel& extractor() const { return *extractor_; }

  /// Features entering the HD encoder (F_hat with manifold, raw F without).
  std::int64_t encoded_features() const { return projection_.features(); }

  /// Decodes class hypervector C_c back into the encoder's input feature
  /// space (P^T C_c / D) — the symbolic-interpretability primitive: decoded
  /// prototypes align with the per-class mean of the manifold outputs, so a
  /// class's "meaning" can be inspected in feature space (Sec. VII-E).
  tensor::Tensor decode_class_prototype(std::int64_t class_index) const;

  /// Serializes the trained state (manifold FC + class bank) into a flat
  /// blob; the projection is reproducible from the config seed and is not
  /// stored.  Pair with util::DiskCache to ship trained NSHD models.
  std::vector<float> save_state() const;

  /// Restores state produced by save_state on an identically-configured
  /// model; returns false (leaving the model unchanged) on layout mismatch.
  bool load_state(const std::vector<float>& blob);

 private:
  /// Runs Algorithm 1 line 3-9 for one sample; returns whether the
  /// pre-update prediction was correct.
  bool train_step(const float* feature_row, std::int64_t label,
                  const float* teacher_logits);

  models::ZooModel* extractor_;
  std::size_t cut_layer_;
  NshdConfig config_;
  tensor::Shape feature_chw_;
  /// Lazily-built batch-1 plan so repeated predict_image calls reuse one
  /// workspace instead of re-planning the extractor every time.
  mutable std::unique_ptr<nn::InferencePlan> image_plan_;
  /// INT8 batch-1 plan; present (and calibrated) only after
  /// enable_quantized_inference.
  mutable std::unique_ptr<nn::QuantizedInferencePlan> quantized_image_plan_;
  std::optional<ManifoldLearner> manifold_;
  hd::RandomProjection projection_;
  hd::HdClassifier classifier_;
};

}  // namespace nshd::core
