// Shared experiment context for the bench harnesses and examples.
//
// Owns the synthetic datasets, provisions pretrained teachers (disk-cached),
// and memoizes per-(model, cut) feature extractions and teacher logits so
// that the ten bench binaries do not redo each other's work.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/feature_extractor.hpp"
#include "core/nshd.hpp"
#include "data/synth_cifar.hpp"
#include "models/pretrained.hpp"
#include "util/cache.hpp"

namespace nshd::core {

struct ExperimentConfig {
  data::SynthCifarConfig dataset;
  std::int64_t test_samples_per_class = 50;
  nn::TrainConfig teacher;
  std::uint64_t model_seed = 11;

  /// The defaults used throughout the reproduction: SynthCIFAR-10,
  /// 200 train / 50 test per class, short-schedule teachers.
  static ExperimentConfig standard(std::int64_t num_classes = 10);
};

class ExperimentContext {
 public:
  explicit ExperimentContext(const ExperimentConfig& config);

  const data::Dataset& train() const { return split_.train; }
  const data::Dataset& test() const { return split_.test; }
  std::int64_t num_classes() const { return split_.train.num_classes; }
  const ExperimentConfig& config() const { return config_; }
  const util::DiskCache& cache() const { return cache_; }

  /// Pretrained zoo model (trains on first access, then disk-cached).
  models::ZooModel& model(const std::string& name);

  /// Shared execution plan for layers [0..cut] of a pretrained model; built
  /// once per (model, cut) and reused across every sweep cell, epoch, and
  /// split that extracts at this cut.
  nn::InferencePlan& plan(const std::string& name, std::size_t cut);

  /// Shared full-network plan (teacher logits, CNN test accuracy).
  nn::InferencePlan& full_plan(const std::string& name);

  /// Shared INT8 plan for layers [0..cut]; built once per (model, cut) and
  /// calibrated on the training images at first access.
  nn::QuantizedInferencePlan& quantized_plan(const std::string& name,
                                             std::size_t cut);

  /// Test-split features extracted through the quantized plan (memoized
  /// in-memory; they depend on the calibration pass, not just the weights,
  /// so they are never disk-cached).
  const ExtractedFeatures& quantized_test_features(const std::string& name,
                                                   std::size_t cut);

  /// Full-CNN logits on the training set, [N_train, K] (the KD teacher).
  const tensor::Tensor& teacher_train_logits(const std::string& name);

  /// Full-CNN accuracy on the held-out test set.
  double cnn_test_accuracy(const std::string& name);

  /// Features at a cut, materialized once per (model, cut, split).
  const ExtractedFeatures& train_features(const std::string& name, std::size_t cut);
  const ExtractedFeatures& test_features(const std::string& name, std::size_t cut);

  /// Builds and trains an NSHD variant; returns test accuracy.  A config
  /// that throws or yields a non-finite accuracy comes back with `failed`
  /// set (and the reason in `error`) instead of aborting the whole sweep.
  struct NshdRun {
    double test_accuracy = 0.0;
    double final_train_accuracy = 0.0;
    double train_seconds = 0.0;
    /// Test accuracy with the extractor on the int8 quantized plan (same
    /// trained HD head); -1 unless run_nshd was asked for the quantized arm.
    double quantized_test_accuracy = -1.0;
    bool failed = false;
    std::string error;
  };
  NshdRun run_nshd(const std::string& name, std::size_t cut, const NshdConfig& config,
                   bool with_quantized = false);

  /// VanillaHD (ID-level nonlinear encoding on raw pixels) test accuracy.
  double vanilla_hd_accuracy(std::int64_t dim, std::int64_t mass_epochs = 20);

  std::string dataset_key() const { return config_.dataset.cache_key("train"); }

 private:
  ExtractedFeatures& features_impl(const std::string& name, std::size_t cut,
                                   bool is_train);

  ExperimentConfig config_;
  util::DiskCache cache_;
  data::TrainTest split_;
  std::map<std::string, models::ZooModel> models_;
  // unique_ptr: a plan owns a mutex and is neither movable nor copyable.
  std::map<std::string, std::unique_ptr<nn::InferencePlan>> plans_;
  std::map<std::string, std::unique_ptr<nn::QuantizedInferencePlan>> qplans_;
  std::map<std::string, tensor::Tensor> teacher_logits_;
  std::map<std::string, double> cnn_accuracy_;
  std::map<std::string, ExtractedFeatures> features_;
};

}  // namespace nshd::core
