#include "core/feature_extractor.hpp"

#include <cassert>
#include <cstring>

namespace nshd::core {

ExtractedFeatures extract_features(models::ZooModel& model, std::size_t cut_layer,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size) {
  assert(cut_layer < model.feature_count);
  ExtractedFeatures out;
  out.cut_layer = cut_layer;
  out.chw = model.feature_shape_at(cut_layer);
  const std::int64_t f = out.chw.numel();
  out.values = tensor::Tensor(tensor::Shape{dataset.size(), f});

  util::Rng rng(1);
  data::BatchIterator batches(dataset, batch_size, rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t row = 0;
  while (batches.next(images, labels)) {
    const tensor::Tensor activations = model.net.forward_to(images, cut_layer);
    assert(activations.numel() == activations.shape()[0] * f);
    std::memcpy(out.values.data() + row * f, activations.data(),
                static_cast<std::size_t>(activations.numel()) * sizeof(float));
    row += activations.shape()[0];
  }
  return out;
}

tensor::Tensor extract_one(models::ZooModel& model, std::size_t cut_layer,
                           const tensor::Tensor& image) {
  assert(image.shape().rank() == 4 && image.shape()[0] == 1);
  const tensor::Tensor activations = model.net.forward_to(image, cut_layer);
  return activations.reshaped(tensor::Shape{activations.numel()});
}

}  // namespace nshd::core
