#include "core/feature_extractor.hpp"

#include <cassert>

#include "util/thread_pool.hpp"

namespace nshd::core {

namespace {

// The f32 and int8 plans share the run_batch contract (output_shape,
// out_features, sliced-view execution, internal workspace pool), so one
// batching loop serves both.
template <typename Plan>
ExtractedFeatures extract_features_impl(Plan& plan, const data::Dataset& dataset,
                                        std::int64_t batch_size) {
  assert(batch_size >= 1);
  ExtractedFeatures out;
  out.cut_layer = plan.last_layer();
  const tensor::Shape out_one = plan.output_shape(1);
  out.chw = tensor::Shape{out_one[1], out_one.rank() > 2 ? out_one[2] : 1,
                          out_one.rank() > 3 ? out_one[3] : 1};
  const std::int64_t f = plan.out_features();
  const std::int64_t total = dataset.size();
  out.values = tensor::Tensor(tensor::Shape{total, f});
  if (total == 0) return out;

  const tensor::Shape& chw = plan.sample_chw();
  assert(dataset.sample_shape() == chw && "dataset/plan shape mismatch");
  const std::int64_t sample_numel = chw.numel();
  // Views slice the dataset tensor and the output rows directly; batches
  // write disjoint row ranges, so running them in parallel (one leased
  // workspace each) is race-free and bitwise deterministic.
  const tensor::TensorView images = dataset.images.view();
  const tensor::TensorView values = out.values.view();
  util::parallel_for(0, total, batch_size,
                     [&](std::int64_t begin, std::int64_t end) {
    const std::int64_t n = end - begin;
    const tensor::TensorView in(images.data() + begin * sample_numel,
                                tensor::Shape{n, chw[0], chw[1], chw[2]});
    tensor::TensorView rows(values.data() + begin * f, tensor::Shape{n, f});
    plan.run_batch(in, rows);
  });
  return out;
}

}  // namespace

ExtractedFeatures extract_features(nn::InferencePlan& plan,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size) {
  return extract_features_impl(plan, dataset, batch_size);
}

ExtractedFeatures extract_features(nn::QuantizedInferencePlan& plan,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size) {
  return extract_features_impl(plan, dataset, batch_size);
}

ExtractedFeatures ExtractedFeatures::select_rows(
    const std::vector<std::int64_t>& rows) const {
  const std::int64_t f = values.shape()[1];
  ExtractedFeatures out;
  out.chw = chw;
  out.cut_layer = cut_layer;
  out.values =
      tensor::Tensor(tensor::Shape{static_cast<std::int64_t>(rows.size()), f});
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r] >= 0 && rows[r] < values.shape()[0]);
    std::copy_n(values.data() + rows[r] * f, f,
                out.values.data() + static_cast<std::int64_t>(r) * f);
  }
  return out;
}

ExtractedFeatures extract_features(models::ZooModel& model, std::size_t cut_layer,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size) {
  assert(cut_layer < model.feature_count);
  nn::InferencePlan plan(model.net, model.input_chw, cut_layer, batch_size);
  return extract_features(plan, dataset, batch_size);
}

tensor::Tensor extract_one(nn::InferencePlan& plan, const tensor::Tensor& image) {
  assert(image.shape().rank() == 4 && image.shape()[0] == 1);
  tensor::Tensor activations = plan.run_batch(image);
  return activations.reshaped(tensor::Shape{activations.numel()});
}

tensor::Tensor extract_one(nn::QuantizedInferencePlan& plan,
                           const tensor::Tensor& image) {
  assert(image.shape().rank() == 4 && image.shape()[0] == 1);
  tensor::Tensor activations = plan.run_batch(image);
  return activations.reshaped(tensor::Shape{activations.numel()});
}

tensor::Tensor extract_one(models::ZooModel& model, std::size_t cut_layer,
                           const tensor::Tensor& image) {
  assert(cut_layer < model.feature_count);
  nn::InferencePlan plan(model.net, model.input_chw, cut_layer, /*max_batch=*/1);
  return extract_one(plan, image);
}

}  // namespace nshd::core
