#include "core/experiment.hpp"

#include <cmath>
#include <cstring>
#include <exception>

#include "hd/vanilla.hpp"
#include "nn/trainer.hpp"
#include "util/log.hpp"

namespace nshd::core {

ExperimentConfig ExperimentConfig::standard(std::int64_t num_classes) {
  ExperimentConfig config;
  config.dataset.num_classes = num_classes;
  config.dataset.samples_per_class = num_classes >= 100 ? 40 : 200;
  config.test_samples_per_class = num_classes >= 100 ? 10 : 50;
  config.teacher.epochs = 12;
  config.teacher.batch_size = 32;
  config.teacher.learning_rate = 0.05f;
  config.teacher.target_train_accuracy = 0.995f;
  return config;
}

ExperimentContext::ExperimentContext(const ExperimentConfig& config)
    : config_(config),
      cache_(util::DiskCache::standard()),
      split_(data::make_synth_cifar_split(config.dataset,
                                          config.test_samples_per_class)) {}

models::ZooModel& ExperimentContext::model(const std::string& name) {
  auto it = models_.find(name);
  if (it != models_.end()) return it->second;

  models::PretrainOptions options;
  options.train = config_.teacher;
  options.dataset_key = dataset_key();
  options.model_seed = config_.model_seed;
  models::ZooModel m = models::pretrained_model(name, split_.train, options, cache_);
  return models_.emplace(name, std::move(m)).first->second;
}

nn::InferencePlan& ExperimentContext::plan(const std::string& name,
                                           std::size_t cut) {
  const std::string key = name + "|cut=" + std::to_string(cut);
  auto it = plans_.find(key);
  if (it != plans_.end()) return *it->second;
  // model() first: the plan must bind the *pretrained* weights' net.
  models::ZooModel& m = model(name);
  auto built = std::make_unique<nn::InferencePlan>(m.net, m.input_chw, cut);
  return *plans_.emplace(key, std::move(built)).first->second;
}

nn::InferencePlan& ExperimentContext::full_plan(const std::string& name) {
  models::ZooModel& m = model(name);
  return plan(name, m.net.size() - 1);
}

nn::QuantizedInferencePlan& ExperimentContext::quantized_plan(
    const std::string& name, std::size_t cut) {
  const std::string key = name + "|cut=" + std::to_string(cut);
  auto it = qplans_.find(key);
  if (it != qplans_.end()) return *it->second;
  models::ZooModel& m = model(name);
  auto built = std::make_unique<nn::QuantizedInferencePlan>(m.net, m.input_chw, cut);
  NSHD_LOG_INFO("%s: calibrating int8 plan at cut %zu on the training set",
                name.c_str(), cut);
  const nn::CalibrationReport& report =
      built->calibrate(split_.train.images.view());
  NSHD_LOG_INFO("%s cut=%zu: int8 plan calibrated (%lld int8 / %lld f32 layers, "
                "%lld calibration fallbacks)",
                name.c_str(), cut, static_cast<long long>(report.int8_layers),
                static_cast<long long>(report.fallback_layers),
                static_cast<long long>(report.calibration_fallbacks));
  return *qplans_.emplace(key, std::move(built)).first->second;
}

const ExtractedFeatures& ExperimentContext::quantized_test_features(
    const std::string& name, std::size_t cut) {
  const std::string key = name + "|cut=" + std::to_string(cut) + "|qtest";
  auto it = features_.find(key);
  if (it != features_.end()) return it->second;
  NSHD_LOG_INFO("%s: extracting int8 features at cut %zu (test split)",
                name.c_str(), cut);
  ExtractedFeatures feats = extract_features(quantized_plan(name, cut), split_.test);
  return features_.emplace(key, std::move(feats)).first->second;
}

const tensor::Tensor& ExperimentContext::teacher_train_logits(const std::string& name) {
  auto it = teacher_logits_.find(name);
  if (it != teacher_logits_.end()) return it->second;
  NSHD_LOG_INFO("%s: computing teacher logits on the training set", name.c_str());
  tensor::Tensor logits = nn::predict_logits(full_plan(name), split_.train);
  return teacher_logits_.emplace(name, std::move(logits)).first->second;
}

double ExperimentContext::cnn_test_accuracy(const std::string& name) {
  auto it = cnn_accuracy_.find(name);
  if (it != cnn_accuracy_.end()) return it->second;
  const double acc = nn::evaluate_classifier(full_plan(name), split_.test);
  cnn_accuracy_[name] = acc;
  return acc;
}

ExtractedFeatures& ExperimentContext::features_impl(const std::string& name,
                                                    std::size_t cut, bool is_train) {
  const std::string key = name + "|cut=" + std::to_string(cut) +
                          (is_train ? "|train" : "|test");
  auto it = features_.find(key);
  if (it != features_.end()) return it->second;

  models::ZooModel& m = model(name);
  const data::Dataset& ds = is_train ? split_.train : split_.test;

  // Disk cache: features change only when the model weights or dataset
  // change, both of which are in the key.
  const std::string disk_key =
      "features|" + key + "|" +
      models::pretrain_cache_key(name,
                                 {config_.teacher, dataset_key(), config_.model_seed},
                                 ds.num_classes) +
      "|" + config_.dataset.cache_key(is_train ? "train" : "test");

  ExtractedFeatures feats;
  feats.cut_layer = cut;
  feats.chw = m.feature_shape_at(cut);
  const std::int64_t f = feats.chw.numel();
  if (auto blob = cache_.get(disk_key);
      blob && static_cast<std::int64_t>(blob->size()) == ds.size() * f) {
    feats.values = tensor::Tensor(tensor::Shape{ds.size(), f}, std::move(*blob));
  } else {
    NSHD_LOG_INFO("%s: extracting features at cut %zu (%s split)", name.c_str(),
                  cut, is_train ? "train" : "test");
    feats = extract_features(plan(name, cut), ds);
    cache_.put(disk_key, feats.values.storage());
  }
  return features_.emplace(key, std::move(feats)).first->second;
}

const ExtractedFeatures& ExperimentContext::train_features(const std::string& name,
                                                           std::size_t cut) {
  return features_impl(name, cut, /*is_train=*/true);
}

const ExtractedFeatures& ExperimentContext::test_features(const std::string& name,
                                                          std::size_t cut) {
  return features_impl(name, cut, /*is_train=*/false);
}

ExperimentContext::NshdRun ExperimentContext::run_nshd(const std::string& name,
                                                       std::size_t cut,
                                                       const NshdConfig& config,
                                                       bool with_quantized) {
  NshdRun run;
  try {
    models::ZooModel& m = model(name);
    const ExtractedFeatures& train_feats = train_features(name, cut);
    const ExtractedFeatures& test_feats = test_features(name, cut);

    NshdModel nshd(m, cut, config);
    const tensor::Tensor* logits =
        config.use_kd ? &teacher_train_logits(name) : nullptr;
    const NshdTrainStats stats = nshd.train(train_feats, split_.train.labels, logits);

    run.test_accuracy = nshd.evaluate(test_feats, split_.test.labels);
    run.final_train_accuracy =
        stats.epoch_train_accuracy.empty() ? 0.0 : stats.epoch_train_accuracy.back();
    run.train_seconds = stats.seconds;
    if (with_quantized) {
      // Same trained HD head, int8 extractor: the accuracy delta vs
      // run.test_accuracy is exactly the quantization cost at this cut.
      run.quantized_test_accuracy =
          nshd.evaluate(quantized_test_features(name, cut), split_.test.labels);
    }
    if (!std::isfinite(run.test_accuracy) ||
        !std::isfinite(run.final_train_accuracy) ||
        (with_quantized && !std::isfinite(run.quantized_test_accuracy))) {
      run.failed = true;
      run.error = "non-finite accuracy";
    }
  } catch (const std::exception& e) {
    run = NshdRun{};
    run.failed = true;
    run.error = e.what();
  }
  if (run.failed) {
    NSHD_LOG_ERROR("%s cut=%zu: NSHD run failed (%s); marking the row failed "
                   "and continuing the sweep",
                   name.c_str(), cut, run.error.c_str());
  }
  return run;
}

double ExperimentContext::vanilla_hd_accuracy(std::int64_t dim,
                                              std::int64_t mass_epochs) {
  // Deterministic in (dataset, dim, epochs): memoize the scalar on disk so
  // repeated bench runs skip the expensive raw-pixel encoding.
  const std::string cache_key = "vanillahd|" + dataset_key() + "|d=" +
                                std::to_string(dim) + "|e=" +
                                std::to_string(mass_epochs);
  if (auto blob = cache_.get(cache_key); blob && blob->size() == 1) {
    return static_cast<double>((*blob)[0]);
  }
  const std::int64_t f = split_.train.sample_shape().numel();
  hd::IdLevelConfig enc_config;
  enc_config.dim = dim;
  const hd::IdLevelEncoder encoder(f, enc_config);

  auto encode_all = [&](const data::Dataset& ds) {
    std::vector<hd::Hypervector> out;
    out.reserve(static_cast<std::size_t>(ds.size()));
    const std::int64_t chw = ds.sample_shape().numel();
    for (std::int64_t i = 0; i < ds.size(); ++i) {
      out.push_back(encoder.encode(ds.images.data() + i * chw));
    }
    return out;
  };

  NSHD_LOG_INFO("VanillaHD: encoding %lld+%lld raw images (D=%lld)",
                static_cast<long long>(split_.train.size()),
                static_cast<long long>(split_.test.size()),
                static_cast<long long>(dim));
  const std::vector<hd::Hypervector> train_hv = encode_all(split_.train);
  const std::vector<hd::Hypervector> test_hv = encode_all(split_.test);

  hd::HdClassifier classifier(num_classes(), dim);
  hd::MassConfig mass;
  mass.epochs = mass_epochs;
  classifier.train(train_hv, split_.train.labels, mass);
  const double accuracy = classifier.evaluate(test_hv, split_.test.labels);
  cache_.put(cache_key, {static_cast<float>(accuracy)});
  return accuracy;
}

}  // namespace nshd::core
