// Feature extraction through a cut CNN (Sec. IV-A).
//
// NSHD takes a pretrained zoo model, keeps layers [0..cut] as the frozen
// feature extractor, and uses the *full* model separately as the KD teacher.
// Extraction is batched and materialized once per dataset — the features are
// reused across every retraining epoch, mirroring how the paper runs the
// extractor under TensorRT exactly once per input.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "models/zoo.hpp"

namespace nshd::core {

/// Materialized features: one row per sample, plus the CHW shape of the cut
/// activation (needed by the manifold pooling step).
struct ExtractedFeatures {
  tensor::Tensor values;    // [N, F] with F = C*H*W at the cut
  tensor::Shape chw;        // activation shape at the cut
  std::size_t cut_layer = 0;
};

/// Runs `model.net` layers [0..cut_layer] over every sample of `dataset`
/// (eval mode, batched).
ExtractedFeatures extract_features(models::ZooModel& model, std::size_t cut_layer,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size = 32);

/// Extracts a single image [1, C, H, W] -> flat [F].
tensor::Tensor extract_one(models::ZooModel& model, std::size_t cut_layer,
                           const tensor::Tensor& image);

}  // namespace nshd::core
