// Feature extraction through a cut CNN (Sec. IV-A).
//
// NSHD takes a pretrained zoo model, keeps layers [0..cut] as the frozen
// feature extractor, and uses the *full* model separately as the KD teacher.
// Extraction is batched and materialized once per dataset — the features are
// reused across every retraining epoch, mirroring how the paper runs the
// extractor under TensorRT exactly once per input.
//
// Extraction executes through an nn::InferencePlan: batches are sliced as
// TensorViews straight out of the dataset tensor and activations land
// directly in the output rows, so the hot loop performs no heap allocation
// or gather copies.  Batches run in parallel with per-worker workspaces;
// results are bitwise identical to the legacy allocating forward for any
// thread count.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "models/zoo.hpp"
#include "nn/plan.hpp"
#include "nn/quant_plan.hpp"

namespace nshd::core {

/// Materialized features: one row per sample, plus the CHW shape of the cut
/// activation (needed by the manifold pooling step).
struct ExtractedFeatures {
  tensor::Tensor values;    // [N, F] with F = C*H*W at the cut
  tensor::Shape chw;        // activation shape at the cut
  std::size_t cut_layer = 0;

  /// Copies the given rows (in order, duplicates allowed) into a new
  /// ExtractedFeatures carrying the same cut metadata.  Shared by the
  /// incremental-learning example and the online drift-stream tooling
  /// (base-class subsets, per-chunk slices).
  ExtractedFeatures select_rows(const std::vector<std::int64_t>& rows) const;
};

/// Runs a prebuilt plan over every sample of `dataset`.  Use this overload
/// when the same (model, cut) is extracted repeatedly — the plan's
/// workspaces are reused across calls.
ExtractedFeatures extract_features(nn::InferencePlan& plan,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size = 32);

/// INT8 variant: identical batching/slicing over a calibrated quantized
/// plan.  Features come back as f32 (the plan dequantizes at the cut), so
/// everything downstream — manifold, projection, class bank — is untouched.
ExtractedFeatures extract_features(nn::QuantizedInferencePlan& plan,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size = 32);

/// Convenience overload: builds a one-shot plan for layers [0..cut_layer]
/// of `model.net` and extracts through it.
ExtractedFeatures extract_features(models::ZooModel& model, std::size_t cut_layer,
                                   const data::Dataset& dataset,
                                   std::int64_t batch_size = 32);

/// Extracts a single image [1, C, H, W] -> flat [F] through a prebuilt plan
/// (a batch of one on the shared batched path).
tensor::Tensor extract_one(nn::InferencePlan& plan, const tensor::Tensor& image);

/// INT8 variant over a calibrated quantized plan.
tensor::Tensor extract_one(nn::QuantizedInferencePlan& plan,
                           const tensor::Tensor& image);

/// Convenience overload building a one-shot batch-1 plan.
tensor::Tensor extract_one(models::ZooModel& model, std::size_t cut_layer,
                           const tensor::Tensor& image);

}  // namespace nshd::core
