#include "core/nshd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace nshd::core {

NshdConfig baseline_hd_config(std::int64_t dim) {
  NshdConfig config;
  config.dim = dim;
  config.use_kd = false;
  config.use_manifold = false;
  config.train_manifold = false;
  return config;
}

namespace {
util::Rng make_projection_rng(std::uint64_t seed) { return util::Rng(seed * 7919 + 3); }

hd::RandomProjection make_projection(const tensor::Shape& chw,
                                     const std::optional<ManifoldLearner>& manifold,
                                     const NshdConfig& config) {
  util::Rng rng = make_projection_rng(config.seed);
  const std::int64_t features =
      manifold ? manifold->output_features() : chw.numel();
  return hd::RandomProjection(config.dim, features, rng);
}
}  // namespace

namespace {
/// Numerically stable softmax of k values scaled by 1/temperature.
void softened_softmax(const float* values, std::int64_t k, float scale,
                      float temperature, float* out) {
  float hi = values[0];
  for (std::int64_t c = 1; c < k; ++c) hi = std::max(hi, values[c]);
  double sum = 0.0;
  for (std::int64_t c = 0; c < k; ++c) {
    out[c] = std::exp((values[c] - hi) * scale / temperature);
    sum += out[c];
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (std::int64_t c = 0; c < k; ++c) out[c] *= inv;
}
}  // namespace

std::vector<float> kd_update_vector(const std::vector<float>& similarities,
                                    std::int64_t label,
                                    const float* teacher_logits, float alpha,
                                    float temperature) {
  const auto k = static_cast<std::int64_t>(similarities.size());
  const bool use_kd = teacher_logits != nullptr;
  std::vector<float> update(similarities.size());

  // Algorithm 1 lines 4-6: soften the student's similarity profile and the
  // teacher's logits with the same temperature, then take the difference.
  std::vector<float> soft_pred, soft_labels;
  if (use_kd) {
    soft_pred.resize(similarities.size());
    soft_labels.resize(similarities.size());
    softened_softmax(similarities.data(), k, kSimilarityLogitScale, temperature,
                     soft_pred.data());
    softened_softmax(teacher_logits, k, 1.0f, temperature, soft_labels.data());
  }

  for (std::int64_t c = 0; c < k; ++c) {
    const float sim = similarities[static_cast<std::size_t>(c)];
    const float one_hot = (c == label) ? 1.0f : 0.0f;
    float u = (1.0f - (use_kd ? alpha : 0.0f)) * (one_hot - sim);
    if (use_kd) {
      u += alpha * (soft_labels[static_cast<std::size_t>(c)] -
                    soft_pred[static_cast<std::size_t>(c)]);
    }
    update[static_cast<std::size_t>(c)] = u;
  }
  return update;
}

NshdTrainStats kd_retrain(hd::HdClassifier& classifier,
                          const std::vector<hd::Hypervector>& samples,
                          const std::vector<std::int64_t>& labels,
                          const tensor::Tensor* teacher_logits,
                          const KdRetrainConfig& config) {
  assert(samples.size() == labels.size());
  assert(!config.use_kd || teacher_logits != nullptr);
  util::Stopwatch watch;
  NshdTrainStats stats;
  const std::int64_t k = classifier.num_classes();
  util::Rng order_rng(config.seed + 17);
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<std::size_t> order =
        util::random_permutation(samples.size(), order_rng);
    std::int64_t correct = 0;
    for (std::size_t idx : order) {
      const std::vector<float> sims =
          classifier.similarities(samples[idx], config.similarity);
      std::int64_t best = 0;
      for (std::int64_t c = 1; c < k; ++c)
        if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)])
          best = c;
      if (best == labels[idx]) ++correct;
      const float* logits =
          config.use_kd
              ? teacher_logits->data() + static_cast<std::int64_t>(idx) * k
              : nullptr;
      const std::vector<float> update = kd_update_vector(
          sims, labels[idx], logits, config.alpha, config.temperature);
      classifier.apply_update(samples[idx], update, config.learning_rate);
    }
    stats.epoch_train_accuracy.push_back(static_cast<double>(correct) /
                                         static_cast<double>(samples.size()));
  }
  stats.seconds = watch.seconds();
  return stats;
}

NshdModel::NshdModel(models::ZooModel& extractor, std::size_t cut_layer,
                     const NshdConfig& config)
    : extractor_(&extractor),
      cut_layer_(cut_layer),
      config_(config),
      feature_chw_(extractor.feature_shape_at(cut_layer)),
      manifold_(config.use_manifold
                    ? std::optional<ManifoldLearner>(std::in_place, feature_chw_,
                                                     ManifoldConfig{
                                                         config.manifold_features,
                                                         config.manifold_learning_rate,
                                                         config.ste,
                                                         config.seed,
                                                     })
                    : std::nullopt),
      projection_(make_projection(feature_chw_, manifold_, config)),
      classifier_(extractor.num_classes, config.dim) {
  assert(cut_layer < extractor.feature_count);
}

hd::Hypervector NshdModel::symbolize(const float* features) const {
  if (manifold_) {
    return projection_.encode(manifold_->forward(features).data());
  }
  return projection_.encode(features);
}

std::vector<hd::Hypervector> NshdModel::symbolize_all(
    const ExtractedFeatures& features) const {
  const std::int64_t n = features.values.shape()[0];
  const std::int64_t f = features.values.shape()[1];
  std::vector<hd::Hypervector> out(static_cast<std::size_t>(n));
  // Sample-parallel like RandomProjection::encode_all: symbolize() is const
  // and mutation-free, samples write disjoint slots, and the fixed grain
  // keeps out[i] bitwise identical to the serial loop for any NSHD_THREADS.
  util::parallel_for(0, n, /*grain=*/1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      out[static_cast<std::size_t>(i)] =
          symbolize(features.values.data() + i * f);
    }
  });
  return out;
}

std::vector<hd::Hypervector> NshdModel::symbolize_all_checked(
    const ExtractedFeatures& features, std::vector<RowHealth>& health) const {
  const std::int64_t n = features.values.shape()[0];
  const std::int64_t f = features.values.shape()[1];
  std::vector<hd::Hypervector> out(static_cast<std::size_t>(n));
  health.assign(static_cast<std::size_t>(n), RowHealth::kClean);
  // Same sample-parallel schedule as symbolize_all; rows write disjoint
  // slots of `out` and `health`, so results stay thread-count invariant.
  util::parallel_for(0, n, /*grain=*/1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const float* row = features.values.data() + i * f;
      auto& row_health = health[static_cast<std::size_t>(i)];
      if (!tensor::all_finite(row, f)) row_health = RowHealth::kBadFeatures;
      if (manifold_) {
        const tensor::Tensor psi = manifold_->forward(row);
        if (row_health == RowHealth::kClean &&
            !tensor::all_finite(psi.data(), psi.numel())) {
          row_health = RowHealth::kBadEncoding;
        }
        out[static_cast<std::size_t>(i)] = projection_.encode(psi.data());
      } else {
        out[static_cast<std::size_t>(i)] = projection_.encode(row);
      }
    }
  });
  return out;
}

bool NshdModel::state_finite() const {
  if (manifold_) {
    if (!tensor::all_finite(manifold_->weight().data(),
                            manifold_->weight().numel()) ||
        !tensor::all_finite(manifold_->bias().data(),
                            manifold_->bias().numel())) {
      return false;
    }
  }
  return classifier_.bank_finite();
}

std::int64_t NshdModel::predict(const float* features) const {
  return classifier_.predict(symbolize(features), config_.similarity);
}

std::int64_t NshdModel::predict_image(const tensor::Tensor& image) const {
  if (!image_plan_) {
    image_plan_ = std::make_unique<nn::InferencePlan>(
        extractor_->net, extractor_->input_chw, cut_layer_, /*max_batch=*/1);
  }
  const tensor::Tensor features = extract_one(*image_plan_, image);
  return predict(features.data());
}

const nn::CalibrationReport& NshdModel::enable_quantized_inference(
    const tensor::TensorView& calib_images, std::int64_t calib_batch) {
  quantized_image_plan_ = std::make_unique<nn::QuantizedInferencePlan>(
      extractor_->net, extractor_->input_chw, cut_layer_, /*max_batch=*/1);
  return quantized_image_plan_->calibrate(calib_images, calib_batch);
}

std::int64_t NshdModel::predict_image_quantized(const tensor::Tensor& image) const {
  if (!quantized_image_plan_) {
    throw std::logic_error(
        "NshdModel: enable_quantized_inference() must run before "
        "predict_image_quantized()");
  }
  const tensor::Tensor features = extract_one(*quantized_image_plan_, image);
  return predict(features.data());
}

double NshdModel::evaluate(const ExtractedFeatures& features,
                           const std::vector<std::int64_t>& labels) const {
  const std::int64_t n = features.values.shape()[0];
  assert(static_cast<std::int64_t>(labels.size()) == n);
  if (n == 0) return 0.0;
  const std::int64_t f = features.values.shape()[1];
  // Refresh the classifier's lazy norm cache serially before the parallel
  // region (cosine predict reads it), then count matches per fixed chunk and
  // reduce in chunk order — same contract as HdClassifier::evaluate.
  (void)classifier_.class_norms();
  constexpr std::int64_t kGrain = 8;
  std::vector<std::int64_t> partial(
      static_cast<std::size_t>(util::chunk_count(0, n, kGrain)), 0);
  util::parallel_for_chunks(
      0, n, kGrain, [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
        std::int64_t hits = 0;
        for (std::int64_t i = b; i < e; ++i) {
          if (predict(features.values.data() + i * f) ==
              labels[static_cast<std::size_t>(i)])
            ++hits;
        }
        partial[static_cast<std::size_t>(chunk)] = hits;
      });
  std::int64_t correct = 0;
  for (const std::int64_t hits : partial) correct += hits;
  return static_cast<double>(correct) / static_cast<double>(n);
}

tensor::Tensor NshdModel::decode_class_prototype(std::int64_t class_index) const {
  assert(class_index >= 0 && class_index < classifier_.num_classes());
  tensor::Tensor class_hv(tensor::Shape{config_.dim});
  const float* row = classifier_.class_vector(class_index);
  for (std::int64_t d = 0; d < config_.dim; ++d) class_hv[d] = row[d];
  tensor::Tensor decoded = projection_.decode(class_hv);
  // Normalize by D so magnitudes are comparable across dimensionalities.
  const float inv = 1.0f / static_cast<float>(config_.dim);
  for (float& v : decoded.span()) v *= inv;
  return decoded;
}

std::vector<float> NshdModel::save_state() const {
  std::vector<float> blob;
  const std::int64_t manifold_numel =
      manifold_ ? manifold_->weight().numel() + manifold_->bias().numel() : 0;
  blob.reserve(static_cast<std::size_t>(1 + manifold_numel +
                                        classifier_.bank().numel()));
  // Layout fingerprint: sizes of the serialized sections.
  const float fingerprint =
      static_cast<float>(manifold_numel % 65536) * 131072.0f +
      static_cast<float>(classifier_.bank().numel() % 65536);
  blob.push_back(fingerprint);
  if (manifold_) {
    const auto& w = manifold_->weight().storage();
    const auto& b = manifold_->bias().storage();
    blob.insert(blob.end(), w.begin(), w.end());
    blob.insert(blob.end(), b.begin(), b.end());
  }
  const auto& bank = classifier_.bank().storage();
  blob.insert(blob.end(), bank.begin(), bank.end());
  return blob;
}

bool NshdModel::load_state(const std::vector<float>& blob) {
  const std::int64_t manifold_numel =
      manifold_ ? manifold_->weight().numel() + manifold_->bias().numel() : 0;
  const std::int64_t expected = 1 + manifold_numel + classifier_.bank().numel();
  if (static_cast<std::int64_t>(blob.size()) != expected) return false;
  const float fingerprint =
      static_cast<float>(manifold_numel % 65536) * 131072.0f +
      static_cast<float>(classifier_.bank().numel() % 65536);
  if (blob[0] != fingerprint) return false;
  std::size_t offset = 1;
  if (manifold_) {
    auto& w = manifold_->weight().storage();
    std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(offset), w.size(), w.begin());
    offset += w.size();
    auto& b = manifold_->bias().storage();
    std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(offset), b.size(), b.begin());
    offset += b.size();
  }
  auto& bank = classifier_.bank().storage();
  std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(offset), bank.size(), bank.begin());
  // The bank was overwritten behind the classifier's back; without this the
  // cosine path would keep serving the *previous* bank's cached norms.
  classifier_.invalidate_norms();
  return true;
}

bool NshdModel::train_step(const float* feature_row, std::int64_t label,
                           const float* teacher_logits) {
  const std::int64_t k = classifier_.num_classes();

  // Symbolize, keeping the intermediates the manifold update needs.
  tensor::Tensor pooled, compressed, pre_sign;
  hd::Hypervector h;
  if (manifold_) {
    pooled = manifold_->pool(feature_row);
    compressed = manifold_->compress(pooled);
    h = projection_.encode(compressed, pre_sign);
  } else {
    h = projection_.encode(feature_row);
  }

  // Algorithm 1 lines 3-8.
  const std::vector<float> sims = classifier_.similarities(h, config_.similarity);
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < k; ++c)
    if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;

  const std::vector<float> update = kd_update_vector(
      sims, label, config_.use_kd ? teacher_logits : nullptr, config_.alpha,
      config_.temperature);

  // Line 9: M += lambda U^T H.
  classifier_.apply_update(h, update, config_.learning_rate);

  // Sec. V-C: decode the class-hypervector error to the manifold layer.
  // The manifold is supervised by the ground-truth error component only:
  // the distillation term is a soft target for the class bank, not a
  // gradient of the compression objective, and feeding it through the
  // decoder destabilizes the FC regressor.
  if (manifold_ && config_.train_manifold) {
    const std::vector<float> gt_update =
        kd_update_vector(sims, label, /*teacher_logits=*/nullptr, 0.0f,
                         config_.temperature);
    const tensor::Tensor g_h = classifier_.query_gradient(gt_update);
    manifold_->apply_hd_error(projection_, g_h, pre_sign, pooled);
  }
  return best == label;
}

NshdTrainStats NshdModel::train(const ExtractedFeatures& features,
                                const std::vector<std::int64_t>& labels,
                                const tensor::Tensor* teacher_logits) {
  const std::int64_t n = features.values.shape()[0];
  const std::int64_t f = features.values.shape()[1];
  assert(static_cast<std::int64_t>(labels.size()) == n);
  assert(!config_.use_kd || teacher_logits != nullptr);
  assert(features.chw == feature_chw_ && "features extracted at a different cut");

  util::Stopwatch watch;
  NshdTrainStats stats;

  if (config_.use_kd) {
    assert(teacher_logits->shape()[0] == n);
  }

  // One-shot bundling initialization with the current (untrained) encoder.
  std::vector<hd::Hypervector> initial = symbolize_all(features);
  classifier_.bundle_init(initial, labels);

  KdRetrainConfig retrain;
  retrain.alpha = config_.alpha;
  retrain.temperature = config_.temperature;
  retrain.learning_rate = config_.learning_rate;
  retrain.epochs = config_.epochs;
  retrain.use_kd = config_.use_kd;
  retrain.similarity = config_.similarity;
  retrain.seed = config_.seed;

  // Static encoder (no manifold, or manifold frozen): hypervectors never
  // change across epochs, so retrain on the cached encodings.
  if (!manifold_ || !config_.train_manifold) {
    stats = kd_retrain(classifier_, initial, labels,
                       config_.use_kd ? teacher_logits : nullptr, retrain);
    stats.seconds = watch.seconds();
    return stats;
  }
  initial.clear();

  // Phase 1 — manifold fitting: online MASS epochs with ground-truth
  // updates only.  The distilled component is a soft target for the class
  // bank, not a gradient of the compression objective; training the FC
  // regressor against it is unstable (see DESIGN.md).
  util::Rng order_rng(config_.seed + 17);
  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<std::size_t> order =
        util::random_permutation(static_cast<std::size_t>(n), order_rng);
    std::int64_t correct = 0;
    for (std::size_t idx : order) {
      const float* row = features.values.data() + static_cast<std::int64_t>(idx) * f;
      if (train_step(row, labels[idx], /*teacher_logits=*/nullptr)) ++correct;
    }
    const double acc = static_cast<double>(correct) / static_cast<double>(n);
    stats.epoch_train_accuracy.push_back(acc);
    NSHD_LOG_DEBUG("nshd manifold epoch %lld: train acc %.4f",
                   static_cast<long long>(epoch), acc);
  }

  // Phase 2 — knowledge distillation (Algorithm 1) over the now-frozen
  // encoder: rebuild the bank by bundling and retrain it with the mixed
  // ground-truth + distilled updates on cached encodings.
  if (config_.use_kd) {
    const std::vector<hd::Hypervector> encoded = symbolize_all(features);
    classifier_.bundle_init(encoded, labels);
    const NshdTrainStats kd_stats =
        kd_retrain(classifier_, encoded, labels, teacher_logits, retrain);
    stats.epoch_train_accuracy.insert(stats.epoch_train_accuracy.end(),
                                      kd_stats.epoch_train_accuracy.begin(),
                                      kd_stats.epoch_train_accuracy.end());
  }
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace nshd::core
