// The manifold learner (Sec. IV-C / V-C): learning-driven feature
// compression between the CNN feature extractor and the HD encoder.
//
// Structure: maxpool(window 2) over the cut activation, then a single
// fully-connected regressor R^{F_pooled} -> R^{F_hat}.  Its weights are NOT
// trained by instrumenting the CNN; they are updated from class-hypervector
// errors decoded back through the HD encoder with a straight-through
// estimator for sign() (Sec. V-C).
#pragma once

#include <cstdint>

#include "hd/projection.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace nshd::core {

/// How the non-differentiable sign() is treated when decoding errors.
enum class SteMode {
  /// Clipped straight-through: pass gradient only where |pre-sign| is within
  /// 3 standard deviations (the BinaryNet-style saturating STE, adapted to
  /// the projection's scale).
  kClipped,
  /// Identity straight-through: pass all gradients (ablation).
  kIdentity,
};

struct ManifoldConfig {
  std::int64_t output_features = 100;  // F_hat; the paper uses 100
  float learning_rate = 0.03f;
  SteMode ste = SteMode::kClipped;
  std::uint64_t seed = 21;
};

class ManifoldLearner {
 public:
  /// `chw` is the cut-activation shape the learner pools; the FC input size
  /// is the pooled size.
  ManifoldLearner(const tensor::Shape& chw, const ManifoldConfig& config);

  /// maxpool(window 2) of a flat feature row.  Pools 2x2 spatially when the
  /// activation has spatial extent, otherwise pairwise over the flat vector
  /// (late VGG cuts are 1x1 spatial).
  tensor::Tensor pool(const float* features) const;
  tensor::Tensor pool(const tensor::Tensor& features) const;

  /// FC regressor: v = W p + b.
  tensor::Tensor compress(const tensor::Tensor& pooled) const;

  /// pool + compress in one call.
  tensor::Tensor forward(const float* features) const;
  tensor::Tensor forward(const tensor::Tensor& features) const;

  /// Applies one SGD update from an HD-space error signal (Sec. V-C):
  ///   g_v = P^T (g_h * STE-mask(pre_sign));  dW = g_v p^T;  db = g_v.
  /// `g_h` is d(loss)/d(H) from the classifier, `pre_sign` the cached
  /// projection activations for this sample, `pooled` the FC input.
  void apply_hd_error(const hd::RandomProjection& projection,
                      const tensor::Tensor& g_h, const tensor::Tensor& pre_sign,
                      const tensor::Tensor& pooled);

  std::int64_t input_features() const { return pooled_size_; }
  std::int64_t output_features() const { return config_.output_features; }
  std::int64_t raw_features() const { return chw_.numel(); }

  /// FC parameter count (Table II accounting).
  std::int64_t parameter_count() const {
    return pooled_size_ * config_.output_features + config_.output_features;
  }

  /// MACs per sample: the FC matvec (pooling is compare-only).
  std::int64_t macs_per_sample() const {
    return pooled_size_ * config_.output_features;
  }

  const tensor::Tensor& weight() const { return weight_; }
  tensor::Tensor& weight() { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }
  tensor::Tensor& bias() { return bias_; }

 private:
  tensor::Shape chw_;
  ManifoldConfig config_;
  bool spatial_pool_;
  std::int64_t pooled_size_;
  tensor::Tensor weight_;  // [F_hat, pooled]
  tensor::Tensor bias_;    // [F_hat]
};

}  // namespace nshd::core
