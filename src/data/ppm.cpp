#include "data/ppm.hpp"

#include <algorithm>
#include <fstream>
#include <vector>

namespace nshd::data {

namespace {
unsigned char to_byte(float normalized) {
  const float v = (normalized + 1.0f) * 0.5f * 255.0f;
  return static_cast<unsigned char>(std::clamp(v, 0.0f, 255.0f));
}

/// Copies sample `index` into an RGB byte buffer at (row, col) of a sheet
/// laid out as a grid of s-by-s tiles.
void blit(const Dataset& ds, std::int64_t index, std::vector<unsigned char>& rgb,
          std::int64_t sheet_w, std::int64_t row, std::int64_t col) {
  const std::int64_t s = ds.height();
  const std::int64_t chw = ds.sample_shape().numel();
  const float* img = ds.images.data() + index * chw;
  for (std::int64_t y = 0; y < s; ++y) {
    for (std::int64_t x = 0; x < s; ++x) {
      const std::int64_t py = row * s + y;
      const std::int64_t px = col * s + x;
      unsigned char* out = rgb.data() + 3 * (py * sheet_w + px);
      for (int c = 0; c < 3; ++c) out[c] = to_byte(img[c * s * s + y * s + x]);
    }
  }
}

bool write_p6(const std::string& path, std::int64_t w, std::int64_t h,
              const std::vector<unsigned char>& rgb) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "P6\n" << w << ' ' << h << "\n255\n";
  out.write(reinterpret_cast<const char*>(rgb.data()),
            static_cast<std::streamsize>(rgb.size()));
  return static_cast<bool>(out);
}
}  // namespace

bool write_ppm(const Dataset& dataset, std::int64_t index, const std::string& path) {
  const std::int64_t s = dataset.height();
  std::vector<unsigned char> rgb(static_cast<std::size_t>(3 * s * s));
  blit(dataset, index, rgb, s, 0, 0);
  return write_p6(path, s, s, rgb);
}

bool write_ppm_sheet(const Dataset& dataset, std::int64_t per_class,
                     const std::string& path) {
  const std::int64_t k = dataset.num_classes;
  const std::int64_t s = dataset.height();
  const std::int64_t sheet_w = per_class * s;
  const std::int64_t sheet_h = k * s;
  std::vector<unsigned char> rgb(static_cast<std::size_t>(3 * sheet_w * sheet_h), 0);

  std::vector<std::int64_t> placed(static_cast<std::size_t>(k), 0);
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    const std::int64_t label = dataset.labels[static_cast<std::size_t>(i)];
    std::int64_t& count = placed[static_cast<std::size_t>(label)];
    if (count >= per_class) continue;
    blit(dataset, i, rgb, sheet_w, label, count);
    ++count;
  }
  return write_p6(path, sheet_w, sheet_h, rgb);
}

}  // namespace nshd::data
