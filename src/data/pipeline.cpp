#include "data/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace nshd::data {

int prefetch_depth_from_env() {
  const char* env = std::getenv("NSHD_PREFETCH");
  if (env == nullptr) return 1;
  return util::parse_env_count("NSHD_PREFETCH", env, 0, kMaxPrefetchDepth, 1);
}

BatchPipeline::BatchPipeline(const Dataset& dataset, std::int64_t batch_size,
                             util::Rng& rng, int depth, bool shuffle)
    : dataset_(&dataset),
      batch_size_(std::max<std::int64_t>(1, batch_size)),
      rng_(&rng),
      shuffle_(shuffle),
      depth_(std::clamp(depth, 0, kMaxPrefetchDepth)),
      order_(util::iota_indices(static_cast<std::size_t>(dataset.size()))) {
  batches_per_epoch_ = (dataset_->size() + batch_size_ - 1) / batch_size_;
  chw_ = dataset_->size() > 0 ? dataset_->images.numel() / dataset_->size() : 0;
  // Same rng draw as the BatchIterator constructor.
  if (shuffle_) rng_->shuffle(order_);

  // depth batches in flight + the one the consumer is holding.
  const int nslots = depth_ == 0 ? 1 : depth_ + 1;
  slots_.resize(static_cast<std::size_t>(nslots));
  if (dataset_->size() > 0) {
    for (Slot& slot : slots_) {
      slot.images = tensor::Tensor(
          tensor::Shape{batch_size_, dataset_->channels(), dataset_->height(),
                        dataset_->width()});
      slot.labels.reserve(static_cast<std::size_t>(batch_size_));
    }
  }
  if (depth_ > 0) producer_ = std::thread([this] { producer_loop(); });
}

BatchPipeline::~BatchPipeline() {
  if (producer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    producer_.join();
  }
}

std::vector<std::size_t> BatchPipeline::batch_indices_locked(
    std::int64_t b) const {
  const auto begin = static_cast<std::size_t>(b * batch_size_);
  const std::size_t end =
      std::min(begin + static_cast<std::size_t>(batch_size_), order_.size());
  return {order_.begin() + static_cast<std::ptrdiff_t>(begin),
          order_.begin() + static_cast<std::ptrdiff_t>(end)};
}

void BatchPipeline::fill_slot(Slot& slot,
                              const std::vector<std::size_t>& indices) {
  if (util::fault::should_fire("train.prefetch_stall"))
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  slot.count = static_cast<std::int64_t>(indices.size());
  // Same per-sample memcpy as Dataset::gather, into the slot's leading rows.
  for (std::size_t i = 0; i < indices.size(); ++i) {
    std::memcpy(slot.images.data() + static_cast<std::int64_t>(i) * chw_,
                dataset_->images.data() +
                    static_cast<std::int64_t>(indices[i]) * chw_,
                static_cast<std::size_t>(chw_) * sizeof(float));
  }
  slot.labels.clear();
  for (std::size_t idx : indices) slot.labels.push_back(dataset_->labels[idx]);
}

void BatchPipeline::producer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t gen = generation_;
  std::int64_t p = 0;  // next batch of `gen` to fill
  const auto nslots = static_cast<std::int64_t>(slots_.size());
  for (;;) {
    cv_.wait(lock, [&] {
      return stop_ || generation_ != gen ||
             (p < batches_per_epoch_ && p - released_ < nslots);
    });
    if (stop_) return;
    if (generation_ != gen) {
      // reset() reshuffled and restarted the epoch; drop our position.
      gen = generation_;
      p = 0;
      continue;
    }
    // Snapshot the index slice under the lock (order_ may be reshuffled by a
    // concurrent reset(), which also bumps generation_ so this batch would
    // be discarded below).  The gather itself runs unlocked.
    const std::vector<std::size_t> indices = batch_indices_locked(p);
    Slot& slot = slots_[static_cast<std::size_t>(p % nslots)];
    lock.unlock();
    fill_slot(slot, indices);
    lock.lock();
    if (generation_ == gen) {
      produced_ = ++p;
      cv_.notify_all();
    }
  }
}

bool BatchPipeline::next(tensor::TensorView& images,
                         std::vector<std::int64_t>& labels) {
  if (depth_ == 0) {
    // Synchronous mode: fill the single slot inline, BatchIterator-style.
    if (handed_ >= batches_per_epoch_) return false;
    const std::vector<std::size_t> indices = batch_indices_locked(handed_);
    Slot& slot = slots_[0];
    fill_slot(slot, indices);
    ++handed_;
    images = tensor::TensorView(
        slot.images.data(),
        tensor::Shape{slot.count, dataset_->channels(), dataset_->height(),
                      dataset_->width()});
    labels = slot.labels;
    return true;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (has_borrow_) {
    // The previously handed-out slot is free for the producer again.
    ++released_;
    has_borrow_ = false;
    cv_.notify_all();
  }
  if (handed_ >= batches_per_epoch_) return false;
  cv_.wait(lock, [&] { return produced_ > handed_; });
  Slot& slot =
      slots_[static_cast<std::size_t>(handed_ %
                                      static_cast<std::int64_t>(slots_.size()))];
  ++handed_;
  has_borrow_ = true;
  images = tensor::TensorView(
      slot.images.data(),
      tensor::Shape{slot.count, dataset_->channels(), dataset_->height(),
                    dataset_->width()});
  labels = slot.labels;
  return true;
}

void BatchPipeline::reset() {
  if (depth_ == 0) {
    handed_ = 0;
    if (shuffle_) rng_->shuffle(order_);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
    produced_ = handed_ = released_ = 0;
    has_borrow_ = false;
    // Same rng draw as BatchIterator::reset(), on the calling thread.
    if (shuffle_) rng_->shuffle(order_);
  }
  cv_.notify_all();
}

}  // namespace nshd::data
