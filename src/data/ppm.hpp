// PPM (P6) export of dataset images, for eyeballing SynthCIFAR samples.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace nshd::data {

/// Writes sample `index` of `dataset` as a binary PPM.  Values are mapped
/// from the normalized [-1, 1] range back to [0, 255].  Returns false on
/// I/O failure.
bool write_ppm(const Dataset& dataset, std::int64_t index,
               const std::string& path);

/// Writes a grid of the first `count` samples of each class as one PPM
/// contact sheet (classes as rows).
bool write_ppm_sheet(const Dataset& dataset, std::int64_t per_class,
                     const std::string& path);

}  // namespace nshd::data
