// SynthCIFAR: a procedural stand-in for CIFAR-10 / CIFAR-100.
//
// The real CIFAR archives cannot be bundled here, so the evaluation uses a
// class-conditional generator that reproduces the properties the paper's
// experiments rely on:
//   * raw-pixel HD encoding performs poorly (heavy instance noise, spatial
//     jitter and distractor texture defeat holistic pixel encodings),
//   * convolutional features make the task learnable to high accuracy,
//   * earlier CNN layers yield weaker features than later ones.
//
// Each class is a composition of a shape prototype (drawn as an anti-aliased
// mask), a Gabor-like carrier texture, and a two-color palette; instances
// randomize position, scale, phase, palette, brightness, add a distractor
// patch and pixel noise, and flip horizontally.  The 100-class variant
// composes 10 shape families with 10 texture/palette families, mimicking the
// coarse/fine structure of CIFAR-100.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace nshd::data {

struct SynthCifarConfig {
  std::int64_t num_classes = 10;     // 10 or 100 (other values also work)
  std::int64_t samples_per_class = 200;
  std::int64_t image_size = 32;
  float noise_stddev = 0.65f;        // additive Gaussian pixel noise
  float jitter_fraction = 0.35f;     // max shape-center offset, fraction of size
  float distractor_strength = 0.95f; // amplitude of the random distractor patches
  std::uint64_t seed = 42;

  std::string cache_key(const char* split) const;
};

/// Generates a dataset; images are normalized to roughly zero mean / unit
/// variance per channel.  Deterministic in (config, split_seed_offset).
Dataset make_synth_cifar(const SynthCifarConfig& config,
                         std::uint64_t split_seed_offset = 0);

/// Convenience: train/test pair with disjoint instance randomness.
struct TrainTest {
  Dataset train;
  Dataset test;
};
TrainTest make_synth_cifar_split(const SynthCifarConfig& train_config,
                                 std::int64_t test_samples_per_class);

}  // namespace nshd::data
