// Double-buffered batch prefetch pipeline for the training loop.
//
// A BatchPipeline is a drop-in replacement for BatchIterator that overlaps
// batch assembly (index slicing + sample gather) with compute: a single
// producer thread fills a small ring of preallocated batch slots while the
// trainer consumes them, so the gather memcpy for batch k+1 happens during
// the forward/backward of batch k.  Depth 0 disables the thread entirely and
// fills synchronously on the caller — the scheduling degenerates to
// BatchIterator's.
//
// Determinism: the pipeline draws from the caller's Rng exactly like
// BatchIterator (one shuffle at construction, one per reset(), both on the
// calling thread) and batches are handed out strictly in epoch order, so the
// batch stream is bitwise identical at every prefetch depth, thread count,
// and to the legacy iterator.  Single consumer only: next()/reset() must be
// called from one thread.
//
// Fault site: "train.prefetch_stall" delays a batch fill (~25 ms), modeling
// a slow producer; consumers must block, not skip or reorder.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "tensor/view.hpp"

namespace nshd::data {

/// Upper bound on the prefetch depth accepted from NSHD_PREFETCH.
inline constexpr int kMaxPrefetchDepth = 8;

/// Prefetch depth from the NSHD_PREFETCH environment variable, strictly
/// validated over [0, kMaxPrefetchDepth] (0 = synchronous).  Default 1.
int prefetch_depth_from_env();

class BatchPipeline {
 public:
  /// `depth` batches are assembled ahead of the consumer (0 = synchronous,
  /// no producer thread).  `rng` must outlive the pipeline; it is only drawn
  /// from on the calling thread (construction and reset()), mirroring
  /// BatchIterator's stream draw for draw.
  BatchPipeline(const Dataset& dataset, std::int64_t batch_size,
                util::Rng& rng, int depth, bool shuffle = true);
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Hands out the next batch; returns false at epoch end.  `images` is a
  /// view into a pipeline-owned slot, valid until the next call to next(),
  /// reset(), or destruction; `labels` is copied into the caller's vector.
  bool next(tensor::TensorView& images, std::vector<std::int64_t>& labels);

  /// Restarts the epoch with a fresh shuffle (drawn on the calling thread).
  /// In-flight prefetched batches from the old epoch are discarded.
  void reset();

  std::int64_t batches_per_epoch() const { return batches_per_epoch_; }
  int depth() const { return depth_; }

 private:
  struct Slot {
    tensor::Tensor images;             // [batch_size, C, H, W], preallocated
    std::vector<std::int64_t> labels;  // of the `count` leading samples
    std::int64_t count = 0;
  };

  /// Copies the samples at `indices` into the slot's leading rows.  Runs
  /// outside the lock (dataset and slot are stable); carries the
  /// "train.prefetch_stall" fault probe.
  void fill_slot(Slot& slot, const std::vector<std::size_t>& indices);

  /// Index slice for epoch batch `b` of the current order_.  Lock held.
  std::vector<std::size_t> batch_indices_locked(std::int64_t b) const;

  void producer_loop();

  const Dataset* dataset_;
  std::int64_t batch_size_;
  util::Rng* rng_;
  bool shuffle_;
  int depth_;
  std::int64_t batches_per_epoch_ = 0;
  std::int64_t chw_ = 0;

  std::vector<Slot> slots_;

  // Everything below mutex_ is generation-local producer/consumer state.
  // order_ is read by the producer only under the lock (it snapshots the
  // batch's index slice before unlocking to gather), so reset() can
  // reshuffle safely.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::size_t> order_;
  std::uint64_t generation_ = 0;
  std::int64_t produced_ = 0;  // batches filled this generation
  std::int64_t handed_ = 0;    // batches returned to the consumer
  std::int64_t released_ = 0;  // handed-out slots the consumer is done with
  bool has_borrow_ = false;    // consumer currently holds a slot view
  bool stop_ = false;

  std::thread producer_;
};

}  // namespace nshd::data
