// In-memory labeled image dataset and batching utilities.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace nshd::data {

/// A dense image-classification dataset: NCHW float images in [~-1, 1]
/// (normalized) with integer labels.
struct Dataset {
  tensor::Tensor images;             // [N, C, H, W]
  std::vector<std::int64_t> labels;  // size N
  std::int64_t num_classes = 0;

  std::int64_t size() const { return images.empty() ? 0 : images.shape()[0]; }
  std::int64_t channels() const { return images.shape()[1]; }
  std::int64_t height() const { return images.shape()[2]; }
  std::int64_t width() const { return images.shape()[3]; }

  /// CHW shape of one sample.
  tensor::Shape sample_shape() const {
    return tensor::Shape{images.shape()[1], images.shape()[2], images.shape()[3]};
  }

  /// Copies the images at `indices` into a contiguous batch tensor.
  tensor::Tensor gather(const std::vector<std::size_t>& indices) const;

  /// Labels at `indices`.
  std::vector<std::int64_t> gather_labels(const std::vector<std::size_t>& indices) const;

  /// One sample as a [1, C, H, W] tensor.
  tensor::Tensor sample(std::int64_t index) const;
};

/// Iterates a dataset in shuffled mini-batches.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::int64_t batch_size, util::Rng& rng,
                bool shuffle = true);

  /// Fetches the next batch; returns false at epoch end.
  bool next(tensor::Tensor& images, std::vector<std::int64_t>& labels);

  /// Restarts the epoch with a fresh shuffle.
  void reset();

  std::int64_t batches_per_epoch() const;

 private:
  const Dataset* dataset_;
  std::int64_t batch_size_;
  util::Rng* rng_;
  bool shuffle_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace nshd::data
