#include "data/synth_cifar.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace nshd::data {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/// Shape family: returns a soft mask value in [0,1] for normalized
/// coordinates (u, v) in [-1, 1] relative to the shape center.
float shape_mask(int family, float u, float v, float size) {
  const float r = std::sqrt(u * u + v * v);
  auto soft = [](float signed_dist) {
    // Smoothstep edge of ~0.12 width for anti-aliasing.
    const float x = std::clamp(0.5f - signed_dist / 0.12f, 0.0f, 1.0f);
    return x * x * (3.0f - 2.0f * x);
  };
  switch (family % 10) {
    case 0:  // disc
      return soft(r - size);
    case 1:  // square
      return soft(std::max(std::fabs(u), std::fabs(v)) - size);
    case 2:  // ring
      return soft(std::fabs(r - size) - 0.18f * size);
    case 3:  // triangle (upward)
      return soft(std::max({-v - size, v - size + 2.0f * std::fabs(u)}) * 0.7f);
    case 4:  // cross
      return soft(std::min(std::fabs(u), std::fabs(v)) - 0.38f * size) *
             soft(std::max(std::fabs(u), std::fabs(v)) - size);
    case 5:  // horizontal bar
      return soft(std::fabs(v) - 0.42f * size) * soft(std::fabs(u) - size);
    case 6:  // diamond
      return soft(std::fabs(u) + std::fabs(v) - 1.2f * size);
    case 7:  // two discs
      return std::max(soft(std::hypot(u - 0.5f * size, v) - 0.55f * size),
                      soft(std::hypot(u + 0.5f * size, v) - 0.55f * size));
    case 8:  // crescent
      return std::max(0.0f, soft(r - size) - soft(std::hypot(u - 0.4f * size, v) - 0.8f * size));
    case 9:  // checker blob
      return soft(r - size) * (std::sin(u * 6.0f) * std::sin(v * 6.0f) > 0.0f ? 1.0f : 0.35f);
  }
  return 0.0f;
}

struct Palette {
  float fg[3];
  float bg[3];
  float carrier_theta;  // texture orientation
  float carrier_freq;   // texture spatial frequency
};

/// Deterministic per-family palette/texture parameters.
Palette texture_family(int family, util::Rng& class_rng) {
  Palette p{};
  const float hue = static_cast<float>(family % 10) / 10.0f * 2.0f * kPi;
  // Desaturated palettes: color alone is a weak cue, the shape/texture
  // composition carries most of the class identity (like natural images).
  const float saturation = 0.55f;
  p.fg[0] = 0.5f + saturation * 0.5f * std::cos(hue);
  p.fg[1] = 0.5f + saturation * 0.5f * std::cos(hue + 2.0f * kPi / 3.0f);
  p.fg[2] = 0.5f + saturation * 0.5f * std::cos(hue + 4.0f * kPi / 3.0f);
  p.bg[0] = 1.0f - p.fg[0];
  p.bg[1] = 1.0f - p.fg[1];
  p.bg[2] = 1.0f - p.fg[2];
  p.carrier_theta = static_cast<float>(family % 5) * kPi / 5.0f +
                    class_rng.uniform(-0.05f, 0.05f);
  p.carrier_freq = 2.0f + static_cast<float>(family % 4) * 1.5f;
  return p;
}

}  // namespace

std::string SynthCifarConfig::cache_key(const char* split) const {
  std::string key = "synthcifar|";
  key += std::to_string(num_classes) + "|" + std::to_string(samples_per_class) +
         "|" + std::to_string(image_size) + "|" + std::to_string(noise_stddev) +
         "|" + std::to_string(jitter_fraction) + "|" +
         std::to_string(distractor_strength) + "|" + std::to_string(seed) + "|" +
         split;
  return key;
}

Dataset make_synth_cifar(const SynthCifarConfig& config,
                         std::uint64_t split_seed_offset) {
  const std::int64_t k = config.num_classes;
  const std::int64_t per_class = config.samples_per_class;
  const std::int64_t n = k * per_class;
  const std::int64_t s = config.image_size;

  Dataset ds;
  ds.num_classes = k;
  ds.images = tensor::Tensor(tensor::Shape{n, 3, s, s});
  ds.labels.resize(static_cast<std::size_t>(n));

  util::Rng master(config.seed + 0x9e3779b9ULL * split_seed_offset);

  std::int64_t sample_index = 0;
  for (std::int64_t c = 0; c < k; ++c) {
    // Class identity: shape family and texture family.  For 10 classes the
    // two families coincide (like CIFAR-10's distinct categories); for 100
    // classes they form a 10x10 product (coarse x fine, like CIFAR-100).
    const int shape_fam = static_cast<int>(c % 10);
    const int texture_fam = static_cast<int>((c / 10 + c) % 10);
    util::Rng class_rng(config.seed * 1315423911ULL + static_cast<std::uint64_t>(c));
    const Palette pal = texture_family(texture_fam, class_rng);
    const float base_size = 0.45f + 0.25f * class_rng.next_float();

    for (std::int64_t i = 0; i < per_class; ++i, ++sample_index) {
      util::Rng rng = master.fork(static_cast<std::uint64_t>(c * 131071 + i) +
                                  split_seed_offset * 0x51ed2701ULL);
      const float cx = rng.uniform(-config.jitter_fraction, config.jitter_fraction);
      const float cy = rng.uniform(-config.jitter_fraction, config.jitter_fraction);
      const float scale = base_size * rng.uniform(0.65f, 1.3f);
      const float phase = rng.uniform(0.0f, 2.0f * kPi);
      const float freq_jitter = rng.uniform(0.8f, 1.25f);
      const float theta_jitter = rng.uniform(-0.35f, 0.35f);
      const float rotation = rng.uniform(-0.4f, 0.4f);  // shape rotation, rad
      const float brightness = rng.uniform(-0.2f, 0.2f);
      const float contrast = rng.uniform(0.75f, 1.25f);
      const bool flip = rng.bernoulli(0.5);
      // Distractors: random off-class blobs to defeat trivial pixel cues.
      struct Blob {
        float x, y, size;
        int family;
      };
      const Blob d1{rng.uniform(-0.7f, 0.7f), rng.uniform(-0.7f, 0.7f),
                    rng.uniform(0.15f, 0.32f), rng.uniform_int(0, 9)};
      const Blob d2{rng.uniform(-0.8f, 0.8f), rng.uniform(-0.8f, 0.8f),
                    rng.uniform(0.12f, 0.25f), rng.uniform_int(0, 9)};
      // Cutout occlusion: a gray square of random position/size.
      const float ox = rng.uniform(-0.8f, 0.8f), oy = rng.uniform(-0.8f, 0.8f);
      const float osize = rng.uniform(0.1f, 0.3f);
      const float cos_r = std::cos(rotation), sin_r = std::sin(rotation);
      const float theta = pal.carrier_theta + theta_jitter;
      const float freq = pal.carrier_freq * freq_jitter;

      float* img = ds.images.data() + sample_index * 3 * s * s;
      for (std::int64_t y = 0; y < s; ++y) {
        for (std::int64_t x = 0; x < s; ++x) {
          float u = (2.0f * static_cast<float>(x) / static_cast<float>(s - 1)) - 1.0f;
          const float v = (2.0f * static_cast<float>(y) / static_cast<float>(s - 1)) - 1.0f;
          if (flip) u = -u;

          // Rotate the shape's local frame.
          const float ru = cos_r * (u - cx) - sin_r * (v - cy);
          const float rv = sin_r * (u - cx) + cos_r * (v - cy);
          const float mask = shape_mask(shape_fam, ru, rv, scale);
          // Gabor-like carrier riding on the shape.
          const float t = std::cos(
              freq * (u * std::cos(theta) + v * std::sin(theta)) * kPi + phase);
          const float carrier = 0.5f + 0.5f * t;
          const float dmask = std::min(
              1.0f, config.distractor_strength *
                        (shape_mask(d1.family, u - d1.x, v - d1.y, d1.size) +
                         shape_mask(d2.family, u - d2.x, v - d2.y, d2.size)));
          const bool occluded =
              std::fabs(u - ox) < osize && std::fabs(v - oy) < osize;

          for (int ch = 0; ch < 3; ++ch) {
            float value = pal.bg[ch] * (1.0f - mask) + pal.fg[ch] * mask * carrier;
            value = value * (1.0f - dmask) + dmask * (0.5f + 0.5f * pal.bg[ch]);
            if (occluded) value = 0.5f;
            value = (value - 0.5f) * contrast + 0.5f + brightness;
            value += rng.normal(0.0f, config.noise_stddev);
            // Normalize to roughly [-1, 1].
            img[ch * s * s + y * s + x] = 2.0f * std::clamp(value, 0.0f, 1.0f) - 1.0f;
          }
        }
      }
      ds.labels[static_cast<std::size_t>(sample_index)] = c;
    }
  }
  return ds;
}

TrainTest make_synth_cifar_split(const SynthCifarConfig& train_config,
                                 std::int64_t test_samples_per_class) {
  TrainTest tt;
  tt.train = make_synth_cifar(train_config, /*split_seed_offset=*/0);
  SynthCifarConfig test_config = train_config;
  test_config.samples_per_class = test_samples_per_class;
  tt.test = make_synth_cifar(test_config, /*split_seed_offset=*/1);
  return tt;
}

}  // namespace nshd::data
