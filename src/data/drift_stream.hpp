// Drift injection over SynthCIFAR: the workload side of streaming online
// learning.
//
// A DriftStream turns the stationary SynthCIFAR generator into a
// non-stationary sample stream, chunk by chunk, under one of three drift
// regimes the online-learning literature distinguishes:
//
//   kLabelNoise   supervision quality decays: a linearly-ramped fraction of
//                 each chunk's labels is flipped to a uniformly random wrong
//                 class (clean labels are kept alongside, so accuracy can be
//                 measured against the truth).
//   kShift        gradual covariate shift: the generator's instance
//                 parameters (pixel noise, spatial jitter, distractor
//                 strength) ramp toward configured end-of-stream multipliers,
//                 so late chunks are drawn from a visibly harder
//                 distribution than the one the model trained on.
//   kNovelClass   open-world growth: from `novel_class_at` onward, chunks
//                 also contain samples of classes the model has never seen
//                 — the add_class() trigger for the versioned bank.
//
// Chunks are STATELESS and deterministic: chunk(step) depends only on
// (config, step), never on which chunks were generated before.  That is the
// property kill-resume rests on — a learning stream killed at step s and
// resumed from a bank snapshot replays chunks s..end bitwise-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synth_cifar.hpp"

namespace nshd::data {

enum class DriftMode {
  kNone,        // stationary stream (control)
  kLabelNoise,  // ramped label corruption
  kShift,       // gradual distribution shift
  kNovelClass,  // new classes appear mid-stream
};
const char* to_string(DriftMode mode);

struct DriftStreamConfig {
  SynthCifarConfig base;  // class/image parameters at stream start
  DriftMode mode = DriftMode::kNone;
  std::int64_t steps = 20;       // chunks in the stream
  std::int64_t chunk_size = 64;  // samples per chunk

  // kLabelNoise: corrupted fraction ramps linearly start -> end over the
  // stream.
  float label_noise_start = 0.0f;
  float label_noise_end = 0.5f;

  // kShift: generator parameters reach these multipliers of their base
  // values by the final step (1.0 = no shift).
  float shift_noise_scale = 2.5f;
  float shift_jitter_scale = 1.4f;
  float shift_distractor_scale = 1.8f;

  // kNovelClass: classes [base.num_classes, base.num_classes+novel_classes)
  // start appearing at step novel_class_at.
  std::int64_t novel_classes = 2;
  std::int64_t novel_class_at = 10;

  std::uint64_t seed = 99;  // stream-level randomness (order, noise, flips)
};

/// One stream chunk: `data.labels` are the (possibly corrupted) labels the
/// learner sees; `clean_labels` is the ground truth for accuracy-over-time.
struct DriftChunk {
  Dataset data;
  std::vector<std::int64_t> clean_labels;
  std::int64_t step = 0;
  float label_noise = 0.0f;  // corruption fraction applied to this chunk
  float drift01 = 0.0f;      // normalized stream position in [0, 1]
};

class DriftStream {
 public:
  explicit DriftStream(const DriftStreamConfig& config);

  /// Synthesizes chunk `step` (0-based).  Pure function of (config, step).
  DriftChunk chunk(std::int64_t step) const;

  /// Classes present anywhere in the stream (base + novel when applicable);
  /// `data.num_classes` of a chunk reports only the classes active *at that
  /// step*.
  std::int64_t total_classes() const;

  const DriftStreamConfig& config() const { return config_; }

 private:
  DriftStreamConfig config_;
};

}  // namespace nshd::data
