#include "data/drift_stream.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace nshd::data {

const char* to_string(DriftMode mode) {
  switch (mode) {
    case DriftMode::kNone: return "none";
    case DriftMode::kLabelNoise: return "label-noise";
    case DriftMode::kShift: return "shift";
    case DriftMode::kNovelClass: return "novel-class";
  }
  return "?";
}

namespace {

float lerp(float from, float to, float t) { return from + (to - from) * t; }

/// Per-step split_seed_offset, disjoint from the train (0) / test (1)
/// offsets the stationary pipeline uses.
constexpr std::uint64_t kStreamSeedBase = 1000;

}  // namespace

DriftStream::DriftStream(const DriftStreamConfig& config) : config_(config) {
  assert(config_.steps > 0 && config_.chunk_size > 0);
  assert(config_.base.num_classes > 0);
}

std::int64_t DriftStream::total_classes() const {
  return config_.base.num_classes +
         (config_.mode == DriftMode::kNovelClass ? config_.novel_classes : 0);
}

DriftChunk DriftStream::chunk(std::int64_t step) const {
  assert(step >= 0 && step < config_.steps);
  const float t = config_.steps <= 1
                      ? 0.0f
                      : static_cast<float>(step) /
                            static_cast<float>(config_.steps - 1);

  SynthCifarConfig gen = config_.base;
  std::int64_t active = gen.num_classes;
  if (config_.mode == DriftMode::kNovelClass && step >= config_.novel_class_at)
    active += config_.novel_classes;
  gen.num_classes = active;
  if (config_.mode == DriftMode::kShift) {
    gen.noise_stddev *= lerp(1.0f, config_.shift_noise_scale, t);
    gen.jitter_fraction =
        std::min(0.5f, gen.jitter_fraction * lerp(1.0f, config_.shift_jitter_scale, t));
    gen.distractor_strength *= lerp(1.0f, config_.shift_distractor_scale, t);
  }
  // Generate just enough balanced samples to cover the chunk, then take a
  // deterministic shuffled subset so chunk composition is not grouped by
  // class.  Everything is keyed on (config, step) only — see header.
  gen.samples_per_class = (config_.chunk_size + active - 1) / active;
  Dataset pool = make_synth_cifar(
      gen, kStreamSeedBase + static_cast<std::uint64_t>(step));

  util::Rng stream_rng(config_.seed);
  util::Rng rng = stream_rng.fork(static_cast<std::uint64_t>(step));
  std::vector<std::size_t> order = util::iota_indices(
      static_cast<std::size_t>(pool.size()));
  rng.shuffle(order);
  order.resize(static_cast<std::size_t>(
      std::min<std::int64_t>(config_.chunk_size, pool.size())));

  DriftChunk chunk;
  chunk.step = step;
  chunk.drift01 = t;
  chunk.data.images = pool.gather(order);
  chunk.data.labels = pool.gather_labels(order);
  chunk.data.num_classes = active;
  chunk.clean_labels = chunk.data.labels;

  if (config_.mode == DriftMode::kLabelNoise && active > 1) {
    chunk.label_noise =
        lerp(config_.label_noise_start, config_.label_noise_end, t);
    for (std::int64_t& label : chunk.data.labels) {
      if (!rng.bernoulli(static_cast<double>(chunk.label_noise))) continue;
      // Uniform over the *wrong* labels, so a flip always corrupts.
      const auto offset =
          1 + static_cast<std::int64_t>(rng.next_below(
                  static_cast<std::uint64_t>(active - 1)));
      label = (label + offset) % active;
    }
  }
  return chunk;
}

}  // namespace nshd::data
