#include "data/dataset.hpp"

#include <cassert>
#include <cstring>

namespace nshd::data {

tensor::Tensor Dataset::gather(const std::vector<std::size_t>& indices) const {
  const std::int64_t chw = images.numel() / size();
  tensor::Tensor batch(tensor::Shape{static_cast<std::int64_t>(indices.size()),
                                     images.shape()[1], images.shape()[2],
                                     images.shape()[3]});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(static_cast<std::int64_t>(indices[i]) < size());
    std::memcpy(batch.data() + static_cast<std::int64_t>(i) * chw,
                images.data() + static_cast<std::int64_t>(indices[i]) * chw,
                static_cast<std::size_t>(chw) * sizeof(float));
  }
  return batch;
}

std::vector<std::int64_t> Dataset::gather_labels(
    const std::vector<std::size_t>& indices) const {
  std::vector<std::int64_t> out;
  out.reserve(indices.size());
  for (std::size_t idx : indices) out.push_back(labels[idx]);
  return out;
}

tensor::Tensor Dataset::sample(std::int64_t index) const {
  return gather({static_cast<std::size_t>(index)});
}

BatchIterator::BatchIterator(const Dataset& dataset, std::int64_t batch_size,
                             util::Rng& rng, bool shuffle)
    : dataset_(&dataset),
      batch_size_(batch_size),
      rng_(&rng),
      shuffle_(shuffle),
      order_(util::iota_indices(static_cast<std::size_t>(dataset.size()))) {
  if (shuffle_) rng_->shuffle(order_);
}

bool BatchIterator::next(tensor::Tensor& images, std::vector<std::int64_t>& labels) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end = std::min(cursor_ + static_cast<std::size_t>(batch_size_),
                                   order_.size());
  const std::vector<std::size_t> indices(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                         order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  images = dataset_->gather(indices);
  labels = dataset_->gather_labels(indices);
  return true;
}

void BatchIterator::reset() {
  cursor_ = 0;
  if (shuffle_) rng_->shuffle(order_);
}

std::int64_t BatchIterator::batches_per_epoch() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

}  // namespace nshd::data
