// VanillaHD encoders for raw inputs — the standalone-HD baselines.
//
// The paper's introduction measures the state-of-the-art *non-linear
// encoding* (ID-level scheme from the DUAL line of work) directly on CIFAR
// pixels and reports 39.88% / 19.7%; Fig. 7's "VanillaHD" is that model.
// Each feature position gets a random base (ID) hypervector; feature values
// are quantized into Q levels whose hypervectors interpolate between two
// random endpoints by progressive bit flipping (so nearby levels stay
// similar); a sample is the majority bundle of position-bound level vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "hd/hypervector.hpp"
#include "util/rng.hpp"

namespace nshd::hd {

struct IdLevelConfig {
  std::int64_t dim = 3000;
  std::int64_t levels = 32;
  /// Feature value range mapped onto the level scale.
  float min_value = -1.0f;
  float max_value = 1.0f;
  std::uint64_t seed = 99;
};

class IdLevelEncoder {
 public:
  IdLevelEncoder(std::int64_t features, const IdLevelConfig& config);

  /// Non-linear (ID-level) encoding of a feature vector of length
  /// `features()`.
  Hypervector encode(const float* values) const;
  Hypervector encode(const tensor::Tensor& values) const;

  std::int64_t features() const { return features_; }
  std::int64_t dim() const { return config_.dim; }
  std::int64_t levels() const { return config_.levels; }

  /// Level index for a raw value (clamped).
  std::int64_t level_of(float value) const;

  /// Level hypervectors are built by flipping a fresh random subset of
  /// D/(2*(Q-1)) positions per step, so sim(L_0, L_q) decays linearly —
  /// exposed for tests of that invariant.
  const Hypervector& level_hv(std::int64_t level) const {
    return level_hvs_[static_cast<std::size_t>(level)];
  }
  const Hypervector& id_hv(std::int64_t feature) const {
    return id_hvs_[static_cast<std::size_t>(feature)];
  }

 private:
  std::int64_t features_;
  IdLevelConfig config_;
  std::vector<Hypervector> id_hvs_;
  std::vector<Hypervector> level_hvs_;
};

}  // namespace nshd::hd
