// Versioned, copy-on-write class bank for streaming online learning.
//
// The paper's hallmark HD capability — incremental class learning with no
// retraining — only matters in practice if updates can proceed *while
// prediction traffic is being served*.  VersionedBank wraps HdClassifier in
// an epoch-swap scheme:
//
//   readers   snapshot() is a single atomic shared-ptr load.  No mutex, no
//             reference-count games beyond shared_ptr itself: the returned
//             Version is immutable and its norm cache is always warm (the
//             writer warms it before publishing), so concurrent
//             similarities_all / predict_all calls never touch mutable
//             state.  A reader keeps scoring against its snapshot even if
//             ten newer versions publish meanwhile — bitwise-consistent,
//             never torn, never a mix of old bank rows and new norms.
//
//   writers   serialize on an internal mutex.  Every mutator copies the
//             published bank into a private shadow, mutates the shadow,
//             then runs the verify-then-swap gate (the PR 2 checkpoint /
//             PR 7 reload idiom, applied to in-memory updates):
//
//               1. finiteness — a NaN/Inf shadow bank is discarded, the
//                  published version stays live (UpdateStatus::kNonFinite);
//               2. accuracy   — when an UpdateGuard holdout is set, the
//                  shadow must not collapse relative to the published
//                  version's accuracy on the same holdout
//                  (UpdateStatus::kAccuracyCollapse);
//               3. norm warm  — the shadow's cosine norm cache is refreshed
//                  *before* the swap so no reader ever races the lazy
//                  refresh;
//               4. publish    — one atomic shared-ptr store.  A crash in
//                  this step (fault site online.publish_crash) is contained:
//                  the previous version remains published
//                  (UpdateStatus::kPublishFault).
//
// Crash-safe persistence rides on NSHDKPT1 (util/checkpoint): save_snapshot
// commits the published bank + version + stream cursor by atomic rename, so
// a killed learning stream resumes bitwise-identically from its last
// snapshot — same bank bits, same version counter, same stream position.
//
// Fault sites (see util/fault.hpp): online.update_nan poisons the shadow
// after mutation (exercises gate 1), online.publish_crash throws inside the
// swap (gate 4), online.snapshot_corrupt flips restored bank values in
// memory (exercises the restore-side finiteness gate).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hd/classifier.hpp"
#include "util/checkpoint.hpp"

#if defined(__SANITIZE_THREAD__)
#define NSHD_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NSHD_TSAN_ACTIVE 1
#endif
#endif

#if defined(NSHD_TSAN_ACTIVE)
extern "C" {
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
void AnnotateIgnoreWritesBegin(const char* file, int line);
void AnnotateIgnoreWritesEnd(const char* file, int line);
}
#endif

namespace nshd::hd {

namespace detail {

// libstdc++ 12's std::atomic<shared_ptr> guards its raw pointer word with an
// embedded spinlock, but the reader path (_Sp_atomic::load) releases that
// lock with a *relaxed* RMW — so ThreadSanitizer never sees a happens-before
// edge from a reader's internal pointer read to the next writer's pointer
// swap and reports a false race on exactly the load/store pattern
// VersionedBank::snapshot()/publish() relies on.  (Newer libstdc++ unlocks
// with release ordering when TSan is active, for this reason; the spinlock's
// RMW chain already orders the accesses on hardware.)  These scopes exclude
// only the plain pointer-word access inside the bracketed atomic call from
// race checking; the lock-word atomics stay instrumented, so every
// happens-before edge protecting the *pointed-to* Version is still built and
// enforced — a genuinely unsynchronized bank access would still be reported.
struct TsanIgnoreReadsScope {
#if defined(NSHD_TSAN_ACTIVE)
  TsanIgnoreReadsScope() { AnnotateIgnoreReadsBegin(__FILE__, __LINE__); }
  ~TsanIgnoreReadsScope() { AnnotateIgnoreReadsEnd(__FILE__, __LINE__); }
#endif
  TsanIgnoreReadsScope(const TsanIgnoreReadsScope&) = delete;
  TsanIgnoreReadsScope& operator=(const TsanIgnoreReadsScope&) = delete;
#if !defined(NSHD_TSAN_ACTIVE)
  TsanIgnoreReadsScope() = default;
#endif
};

struct TsanIgnoreWritesScope {
#if defined(NSHD_TSAN_ACTIVE)
  TsanIgnoreWritesScope() { AnnotateIgnoreWritesBegin(__FILE__, __LINE__); }
  ~TsanIgnoreWritesScope() { AnnotateIgnoreWritesEnd(__FILE__, __LINE__); }
#endif
  TsanIgnoreWritesScope(const TsanIgnoreWritesScope&) = delete;
  TsanIgnoreWritesScope& operator=(const TsanIgnoreWritesScope&) = delete;
#if !defined(NSHD_TSAN_ACTIVE)
  TsanIgnoreWritesScope() = default;
#endif
};

}  // namespace detail

/// Typed outcome of a VersionedBank mutator.  Everything except kOk leaves
/// the published version untouched — a failed update is invisible to
/// readers, not a corrupted bank.
enum class UpdateStatus {
  kOk,                // new version published
  kBadArgs,           // size/dim/index mismatch; nothing was mutated
  kNonFinite,         // shadow bank carried NaN/Inf -> rolled back
  kAccuracyCollapse,  // guard holdout accuracy collapsed -> rolled back
  kPublishFault,      // publish step faulted -> previous version stays live
};
const char* to_string(UpdateStatus status);

/// Verify-then-swap accuracy gate.  The finiteness gate always runs; the
/// accuracy gate runs only when `holdout` is non-empty, and only for
/// weight-space updates (mass_epoch / apply_update) — structural ops
/// (add_class / remove_class) change the label space itself, so the caller
/// re-arms the guard with a matching holdout afterwards.
struct UpdateGuard {
  std::vector<Hypervector> holdout;        // encoder-space holdout queries
  std::vector<std::int64_t> holdout_labels;
  /// Candidate accuracy may not fall more than this below the published
  /// version's accuracy on the same holdout...
  double max_accuracy_drop = 0.15;
  /// ...nor below this absolute floor.
  double min_accuracy = 0.0;
  Similarity metric = Similarity::kCosine;
};

class VersionedBank {
 public:
  /// One published, immutable epoch of the class bank.  `bank` is norm-warm
  /// by construction: scoring it concurrently is safe and lock-free.
  struct Version {
    HdClassifier bank;
    std::uint64_t version = 0;
  };
  using Snapshot = std::shared_ptr<const Version>;

  /// Seeds version 0 from a trained classifier (copied; the source is not
  /// retained).  Precondition: `initial` is finite — validate with
  /// bank_finite() first when the source is untrusted.
  explicit VersionedBank(const HdClassifier& initial);

  VersionedBank(const VersionedBank&) = delete;
  VersionedBank& operator=(const VersionedBank&) = delete;

  /// The current published version: one atomic load, zero locks.  Hold the
  /// snapshot for as long as consistency is needed; it never mutates.
  Snapshot snapshot() const {
    [[maybe_unused]] const detail::TsanIgnoreReadsScope shim;  // see detail:: note above
    return published_.load(std::memory_order_acquire);
  }

  std::uint64_t version() const { return snapshot()->version; }
  std::int64_t dim() const { return dim_; }
  std::int64_t num_classes() const { return snapshot()->bank.num_classes(); }

  /// Installs (or replaces) the accuracy guard and re-baselines the
  /// published version's accuracy against the new holdout.  Call after
  /// add_class/remove_class with a holdout matching the new label space.
  void set_guard(UpdateGuard guard);

  /// One MASS epoch over a chunk of the stream, gated and published as a
  /// new version.  `train_accuracy`, when non-null, receives the
  /// pre-update training accuracy of the shadow pass (meaningless unless
  /// kOk).
  UpdateStatus mass_epoch(const std::vector<Hypervector>& samples,
                          const std::vector<std::int64_t>& labels,
                          const MassConfig& config,
                          double* train_accuracy = nullptr);

  /// Single-sample update M += lr * u^T (outer) H, gated and published.
  UpdateStatus apply_update(const Hypervector& sample,
                            const std::vector<float>& update,
                            float learning_rate);

  /// One-shot class growth: bundles `samples` into a new class vector and
  /// publishes a K+1 bank.  `new_class`, when non-null, receives the new
  /// class index on kOk.
  UpdateStatus add_class(const std::vector<Hypervector>& samples,
                         std::int64_t* new_class = nullptr);

  /// Retires class `class_index`; classes above shift down by one.  The
  /// caller owns any label remapping and should re-arm the guard.
  UpdateStatus remove_class(std::int64_t class_index);

  /// Wholesale replacement (serving reload path): publishes a copy of
  /// `bank` as the next version, finiteness-gated but not accuracy-gated.
  UpdateStatus reseed(const HdClassifier& bank);

  /// Commits the published version to `path` as an NSHDKPT1 checkpoint
  /// (atomic rename; see util/checkpoint).  `cursor` is an opaque stream
  /// position (e.g. chunks consumed) stored in the metadata so a resumed
  /// stream knows where to pick up.  Returns false on IO failure.
  bool save_snapshot(const std::string& path, const std::string& key,
                     std::uint64_t cursor = 0) const;

  struct RestoreResult {
    util::LoadStatus status = util::LoadStatus::kNotFound;
    std::uint64_t version = 0;  // restored version counter (kOk only)
    std::uint64_t cursor = 0;   // restored stream position (kOk only)
  };

  /// Restores a save_snapshot artifact: fully verified (CRCs, key, shape,
  /// finiteness — fault site online.snapshot_corrupt exercises the latter)
  /// before the swap, so any failure leaves the live bank untouched.  On
  /// kOk the restored bank is published and the version counter continues
  /// from the snapshot, making kill-resume bitwise-identical.
  RestoreResult load_snapshot(const std::string& path, const std::string& key);

 private:
  /// The writer spine: copy the published bank, apply `mutate` to the
  /// shadow, run the verify-then-swap gate, publish.  `accuracy_gated`
  /// selects whether gate 2 applies (weight updates yes, structural and
  /// reseed/restore no).
  template <typename Mutate>
  UpdateStatus publish(Mutate&& mutate, bool accuracy_gated);

  /// Accuracy of `bank` on the guard holdout; -1 when no guard is set.
  /// Caller holds writer_mutex_.
  double guard_accuracy(const HdClassifier& bank) const;

  const std::int64_t dim_;
  /// Serializes writers; readers never touch it.
  mutable std::mutex writer_mutex_;
  /// Guarded by writer_mutex_: the gate config and the published version's
  /// accuracy on the current holdout (the rollback baseline).
  UpdateGuard guard_;
  double published_accuracy_ = -1.0;
  /// The epoch pointer.  Writers store (release) under writer_mutex_;
  /// readers load (acquire) lock-free.
  std::atomic<std::shared_ptr<const Version>> published_;
};

}  // namespace nshd::hd
