#include "hd/vanilla.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace nshd::hd {

IdLevelEncoder::IdLevelEncoder(std::int64_t features, const IdLevelConfig& config)
    : features_(features), config_(config) {
  assert(features > 0 && config.dim > 0 && config.levels >= 2);
  util::Rng rng(config.seed);

  id_hvs_.reserve(static_cast<std::size_t>(features));
  for (std::int64_t i = 0; i < features; ++i) {
    id_hvs_.push_back(Hypervector::random(config_.dim, rng));
  }

  // Level chain: start from a random hypervector and flip a disjoint-ish
  // random subset of D/(2*(Q-1)) positions per step; L_{Q-1} ends up roughly
  // orthogonal to L_0 while neighbours stay highly similar.
  level_hvs_.reserve(static_cast<std::size_t>(config_.levels));
  level_hvs_.push_back(Hypervector::random(config_.dim, rng));
  const std::int64_t flips_per_step =
      std::max<std::int64_t>(1, config_.dim / (2 * (config_.levels - 1)));
  for (std::int64_t q = 1; q < config_.levels; ++q) {
    Hypervector next = level_hvs_.back();
    for (std::int64_t f = 0; f < flips_per_step; ++f) {
      next.flip(static_cast<std::int64_t>(rng.next_below(
          static_cast<std::uint64_t>(config_.dim))));
    }
    level_hvs_.push_back(std::move(next));
  }
}

std::int64_t IdLevelEncoder::level_of(float value) const {
  const float span = config_.max_value - config_.min_value;
  const float unit = (value - config_.min_value) / span;
  const auto q = static_cast<std::int64_t>(
      std::floor(unit * static_cast<float>(config_.levels)));
  return std::clamp<std::int64_t>(q, 0, config_.levels - 1);
}

Hypervector IdLevelEncoder::encode(const float* values) const {
  // Majority bundle of id_i (x) level(v_i) without materializing each bound
  // hypervector.  Per dimension d the counter is 2*S_d - F where S_d counts
  // features whose bound bit (XNOR of id and level bits) is set, so only set
  // bits of each XNOR word need visiting.
  std::vector<std::int32_t> set_counts(static_cast<std::size_t>(config_.dim), 0);
  const std::size_t words = id_hvs_.front().word_count();
  for (std::int64_t i = 0; i < features_; ++i) {
    const std::uint64_t* id = id_hvs_[static_cast<std::size_t>(i)].words();
    const std::uint64_t* level =
        level_hvs_[static_cast<std::size_t>(level_of(values[i]))].words();
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = ~(id[w] ^ level[w]);
      // Mask the tail of the last word so padding never counts.
      if (w + 1 == words && (config_.dim & 63) != 0) {
        bits &= (1ULL << (config_.dim & 63)) - 1ULL;
      }
      const std::int64_t base = static_cast<std::int64_t>(w) << 6;
      while (bits != 0) {
        ++set_counts[static_cast<std::size_t>(base + std::countr_zero(bits))];
        bits &= bits - 1;
      }
    }
  }
  Hypervector out(config_.dim);
  const auto threshold = static_cast<std::int32_t>(features_);  // 2*S >= F
  for (std::int64_t d = 0; d < config_.dim; ++d) {
    out.set(d, 2 * set_counts[static_cast<std::size_t>(d)] >= threshold);
  }
  return out;
}

Hypervector IdLevelEncoder::encode(const tensor::Tensor& values) const {
  assert(values.numel() == features_);
  return encode(values.data());
}

}  // namespace nshd::hd
