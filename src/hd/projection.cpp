#include "hd/projection.hpp"

#include <cassert>

namespace nshd::hd {

RandomProjection::RandomProjection(std::int64_t dim, std::int64_t features,
                                   util::Rng& rng)
    : dim_(dim), features_(features), words_per_row_((features + 63) / 64) {
  assert(dim > 0 && features > 0);
  bits_.resize(static_cast<std::size_t>(dim_ * words_per_row_));
  for (auto& w : bits_) w = rng.next_u64();
  // Zero the padding bits of each row so row-sums are exact.
  const int tail = static_cast<int>(features_ & 63);
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1ULL;
    for (std::int64_t r = 0; r < dim_; ++r) {
      bits_[static_cast<std::size_t>((r + 1) * words_per_row_ - 1)] &= mask;
    }
  }
}

tensor::Tensor RandomProjection::project(const float* v) const {
  tensor::Tensor z(tensor::Shape{dim_});
  // Per row: sum_i P[r,i] * v[i] = 2 * sum_{bits set} v[i] - sum_all v.
  double total = 0.0;
  for (std::int64_t i = 0; i < features_; ++i) total += v[i];

  for (std::int64_t r = 0; r < dim_; ++r) {
    const std::uint64_t* row = bits_.data() + r * words_per_row_;
    double pos = 0.0;
    for (std::int64_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      const std::int64_t base = w << 6;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        pos += v[base + b];
        bits &= bits - 1;
      }
    }
    z[r] = static_cast<float>(2.0 * pos - total);
  }
  return z;
}

tensor::Tensor RandomProjection::project(const tensor::Tensor& v) const {
  assert(v.numel() == features_);
  return project(v.data());
}

Hypervector RandomProjection::encode(const float* v) const {
  const tensor::Tensor z = project(v);
  return Hypervector::from_sign(z);
}

Hypervector RandomProjection::encode(const tensor::Tensor& v) const {
  assert(v.numel() == features_);
  return encode(v.data());
}

Hypervector RandomProjection::encode(const tensor::Tensor& v,
                                     tensor::Tensor& pre_sign) const {
  assert(v.numel() == features_);
  pre_sign = project(v.data());
  return Hypervector::from_sign(pre_sign);
}

tensor::Tensor RandomProjection::decode(const tensor::Tensor& g_h) const {
  assert(g_h.numel() == dim_);
  tensor::Tensor g_v(tensor::Shape{features_});
  // g_v[i] = sum_r P[r,i] g_r = 2 * sum_{r: bit i set} g_r - sum_r g_r, so
  // only set bits need visiting.
  double total = 0.0;
  for (std::int64_t r = 0; r < dim_; ++r) total += g_h[r];
  for (std::int64_t r = 0; r < dim_; ++r) {
    const float g = g_h[r];
    if (g == 0.0f) continue;
    const std::uint64_t* row = bits_.data() + r * words_per_row_;
    for (std::int64_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      const std::int64_t base = w << 6;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        g_v[base + b] += g;
        bits &= bits - 1;
      }
    }
  }
  const auto t = static_cast<float>(total);
  for (std::int64_t i = 0; i < features_; ++i) g_v[i] = 2.0f * g_v[i] - t;
  return g_v;
}

}  // namespace nshd::hd
