#include "hd/projection.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "tensor/simd.hpp"
#include "util/thread_pool.hpp"

namespace nshd::hd {

namespace {
// Fixed parallel grains (rows of P for project, 64-feature words for
// decode, samples for encode_all).  Constants — never thread-count
// dependent — so the chunking and therefore every float is identical for
// any NSHD_THREADS value.
constexpr std::int64_t kRowGrain = 64;
constexpr std::int64_t kWordGrain = 1;
constexpr std::int64_t kSampleGrain = 1;
}  // namespace

RandomProjection::RandomProjection(std::int64_t dim, std::int64_t features,
                                   util::Rng& rng)
    : dim_(dim), features_(features), words_per_row_((features + 63) / 64) {
  assert(dim > 0 && features > 0);
  bits_.resize(static_cast<std::size_t>(dim_ * words_per_row_));
  for (auto& w : bits_) w = rng.next_u64();
  // Zero the padding bits of each row so row-sums are exact.
  const int tail = static_cast<int>(features_ & 63);
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1ULL;
    for (std::int64_t r = 0; r < dim_; ++r) {
      bits_[static_cast<std::size_t>((r + 1) * words_per_row_ - 1)] &= mask;
    }
  }
}

void RandomProjection::project_rows(const float* v, float* out, std::int64_t r0,
                                    std::int64_t r1) const {
  // Per row: sum_i P[r,i] * v[i], accumulated directly as a signed sum over
  // whole 64-bit words (sign-mask expansion).  The old 2*sum_set - total
  // split — and its per-sample serial `total` reduction — is gone entirely.
  for (std::int64_t r = r0; r < r1; ++r) {
    const std::uint64_t* row = bits_.data() + r * words_per_row_;
    out[r] = tensor::simd::signed_sum(v, row, features_);
  }
}

void RandomProjection::project_into(const float* v, float* out) const {
  // Rows are independent (disjoint writes into out), so chunks of rows
  // parallelize without changing any accumulation order.
  util::parallel_for(0, dim_, kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
    project_rows(v, out, r0, r1);
  });
}

tensor::Tensor RandomProjection::project(const float* v) const {
  tensor::Tensor z(tensor::Shape{dim_});
  project_into(v, z.data());
  return z;
}

tensor::Tensor RandomProjection::project(const tensor::Tensor& v) const {
  assert(v.numel() == features_);
  return project(v.data());
}

Hypervector RandomProjection::encode(const float* v) const {
  const tensor::Tensor z = project(v);
  return Hypervector::from_sign(z);
}

Hypervector RandomProjection::encode(const tensor::Tensor& v) const {
  assert(v.numel() == features_);
  return encode(v.data());
}

Hypervector RandomProjection::encode(const tensor::Tensor& v,
                                     tensor::Tensor& pre_sign) const {
  assert(v.numel() == features_);
  pre_sign = project(v.data());
  return Hypervector::from_sign(pre_sign);
}

std::vector<Hypervector> RandomProjection::encode_all(
    const std::vector<tensor::Tensor>& batch) const {
  std::vector<Hypervector> out(batch.size());
  // Samples are the parallel axis; each chunk reuses one pre-sign buffer
  // and runs the row kernel serially, which is bitwise identical to the
  // row-parallel encode() because rows never share accumulators.
  util::parallel_for(
      0, static_cast<std::int64_t>(batch.size()), kSampleGrain,
      [&](std::int64_t b, std::int64_t e) {
        std::vector<float> z(static_cast<std::size_t>(dim_));
        for (std::int64_t i = b; i < e; ++i) {
          assert(batch[static_cast<std::size_t>(i)].numel() == features_);
          project_rows(batch[static_cast<std::size_t>(i)].data(), z.data(), 0, dim_);
          out[static_cast<std::size_t>(i)] = Hypervector::from_sign(z.data(), dim_);
        }
      });
  return out;
}

tensor::Tensor RandomProjection::decode(const tensor::Tensor& g_h) const {
  assert(g_h.numel() == dim_);
  tensor::Tensor g_v(tensor::Shape{features_});
  // g_v[i] = sum_r P[r,i] * g_r, accumulated as signed broadcasts of g_r
  // over whole words.  Parallel over 64-feature words: each chunk owns a
  // disjoint feature range and walks rows in full order, so per-feature
  // accumulation order matches the serial kernel exactly.
  using tensor::simd::kWidth;
  float* out = g_v.data();
  util::parallel_for(
      0, words_per_row_, kWordGrain, [&](std::int64_t w0, std::int64_t w1) {
        for (std::int64_t w = w0; w < w1; ++w) {
          const std::int64_t base = w << 6;
          // A partial tail word runs the very same vector loop: its padding
          // bits are zeroed at construction, so the padding lanes of `acc`
          // just collect -g junk that the trimmed memcpy never copies out.
          const std::int64_t lanes = std::min<std::int64_t>(64, features_ - base);
          alignas(64) float acc[64] = {};
          for (std::int64_t r = 0; r < dim_; ++r) {
            const float g = g_h[r];
            if (g == 0.0f) continue;
            std::uint64_t bits = bits_[static_cast<std::size_t>(r * words_per_row_ + w)];
            for (int gr = 0; gr < 64 / kWidth; ++gr, bits >>= kWidth) {
              float* p = acc + gr * kWidth;
              tensor::simd::vstore(
                  p, tensor::simd::vadd(tensor::simd::vload(p),
                                        tensor::simd::signed_set1(g, bits)));
            }
          }
          std::memcpy(out + base, acc, static_cast<std::size_t>(lanes) * sizeof(float));
        }
      });
  return g_v;
}

}  // namespace nshd::hd
