#include "hd/projection.hpp"

#include <cassert>

#include "util/thread_pool.hpp"

namespace nshd::hd {

namespace {
// Fixed parallel grains (rows of P for project, 64-feature words for
// decode, samples for encode_all).  Constants — never thread-count
// dependent — so the chunking and therefore every float is identical for
// any NSHD_THREADS value.
constexpr std::int64_t kRowGrain = 64;
constexpr std::int64_t kWordGrain = 1;
constexpr std::int64_t kSampleGrain = 1;
}  // namespace

RandomProjection::RandomProjection(std::int64_t dim, std::int64_t features,
                                   util::Rng& rng)
    : dim_(dim), features_(features), words_per_row_((features + 63) / 64) {
  assert(dim > 0 && features > 0);
  bits_.resize(static_cast<std::size_t>(dim_ * words_per_row_));
  for (auto& w : bits_) w = rng.next_u64();
  // Zero the padding bits of each row so row-sums are exact.
  const int tail = static_cast<int>(features_ & 63);
  if (tail != 0) {
    const std::uint64_t mask = (1ULL << tail) - 1ULL;
    for (std::int64_t r = 0; r < dim_; ++r) {
      bits_[static_cast<std::size_t>((r + 1) * words_per_row_ - 1)] &= mask;
    }
  }
}

tensor::Tensor RandomProjection::project(const float* v) const {
  tensor::Tensor z(tensor::Shape{dim_});
  // Per row: sum_i P[r,i] * v[i] = 2 * sum_{bits set} v[i] - sum_all v.
  double total = 0.0;
  for (std::int64_t i = 0; i < features_; ++i) total += v[i];

  // Rows are independent (disjoint writes into z), so chunks of rows
  // parallelize without changing any accumulation order.
  float* out = z.data();
  util::parallel_for(0, dim_, kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::uint64_t* row = bits_.data() + r * words_per_row_;
      double pos = 0.0;
      for (std::int64_t w = 0; w < words_per_row_; ++w) {
        std::uint64_t bits = row[w];
        const std::int64_t base = w << 6;
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          pos += v[base + b];
          bits &= bits - 1;
        }
      }
      out[r] = static_cast<float>(2.0 * pos - total);
    }
  });
  return z;
}

tensor::Tensor RandomProjection::project(const tensor::Tensor& v) const {
  assert(v.numel() == features_);
  return project(v.data());
}

Hypervector RandomProjection::encode(const float* v) const {
  const tensor::Tensor z = project(v);
  return Hypervector::from_sign(z);
}

Hypervector RandomProjection::encode(const tensor::Tensor& v) const {
  assert(v.numel() == features_);
  return encode(v.data());
}

Hypervector RandomProjection::encode(const tensor::Tensor& v,
                                     tensor::Tensor& pre_sign) const {
  assert(v.numel() == features_);
  pre_sign = project(v.data());
  return Hypervector::from_sign(pre_sign);
}

std::vector<Hypervector> RandomProjection::encode_all(
    const std::vector<tensor::Tensor>& batch) const {
  std::vector<Hypervector> out(batch.size());
  // Samples are independent; the nested project() inside encode() runs
  // inline on whichever worker owns the sample chunk.
  util::parallel_for(
      0, static_cast<std::int64_t>(batch.size()), kSampleGrain,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          assert(batch[static_cast<std::size_t>(i)].numel() == features_);
          out[static_cast<std::size_t>(i)] =
              encode(batch[static_cast<std::size_t>(i)].data());
        }
      });
  return out;
}

tensor::Tensor RandomProjection::decode(const tensor::Tensor& g_h) const {
  assert(g_h.numel() == dim_);
  tensor::Tensor g_v(tensor::Shape{features_});
  // g_v[i] = sum_r P[r,i] g_r = 2 * sum_{r: bit i set} g_r - sum_r g_r, so
  // only set bits need visiting.
  double total = 0.0;
  for (std::int64_t r = 0; r < dim_; ++r) total += g_h[r];
  // Parallel over 64-feature words: each chunk owns a disjoint feature
  // range and walks rows in full order, so per-feature accumulation order
  // matches the serial kernel exactly.
  float* out = g_v.data();
  util::parallel_for(
      0, words_per_row_, kWordGrain, [&](std::int64_t w0, std::int64_t w1) {
        for (std::int64_t r = 0; r < dim_; ++r) {
          const float g = g_h[r];
          if (g == 0.0f) continue;
          const std::uint64_t* row = bits_.data() + r * words_per_row_;
          for (std::int64_t w = w0; w < w1; ++w) {
            std::uint64_t bits = row[w];
            const std::int64_t base = w << 6;
            while (bits != 0) {
              const int b = std::countr_zero(bits);
              out[base + b] += g;
              bits &= bits - 1;
            }
          }
        }
      });
  const auto t = static_cast<float>(total);
  for (std::int64_t i = 0; i < features_; ++i) g_v[i] = 2.0f * g_v[i] - t;
  return g_v;
}

}  // namespace nshd::hd
