// HD classification model: class hypervectors, one-shot bundling, MASS
// retraining (CascadeHD [3]), and similarity-based inference.
#pragma once

#include <cstdint>
#include <vector>

#include "hd/hypervector.hpp"
#include "tensor/tensor.hpp"

namespace nshd::hd {

/// Similarity metric between a (float) class hypervector and a bipolar
/// query.
enum class Similarity {
  kDot,     // raw dot product / D
  kCosine,  // dot / (||C|| * ||H||), the default for MASS
};

struct MassConfig {
  float learning_rate = 0.035f;
  std::int64_t epochs = 20;
  Similarity similarity = Similarity::kCosine;
  std::uint64_t seed = 5;
};

/// The class-hypervector bank M = [C_0 ... C_{k-1}], stored as floats during
/// training (the paper quantizes only for deployment).
class HdClassifier {
 public:
  HdClassifier(std::int64_t num_classes, std::int64_t dim);

  std::int64_t num_classes() const { return num_classes_; }
  std::int64_t dim() const { return dim_; }

  /// One-shot initialization: bundle every sample hypervector into its class
  /// centroid (classic HD learning).
  void bundle_init(const std::vector<Hypervector>& samples,
                   const std::vector<std::int64_t>& labels);

  /// Incremental class learning — the hallmark HD capability: appends a new
  /// class whose hypervector is the bundle of `samples`, without touching
  /// (or retraining) the existing bank.  Returns the new class index.
  std::int64_t add_class(const std::vector<Hypervector>& samples);

  /// Removes class `c`; classes above shift down by one.  The inverse of
  /// add_class for streaming workloads that retire classes at runtime.
  /// Cached norms are erased in step with the bank rows (never invalidated),
  /// so the cosine path stays warm across a removal.
  void remove_class(std::int64_t c);

  /// Class-wise similarity vector delta(M, H), using the configured metric.
  /// Cosine values land in [-1, 1].
  std::vector<float> similarities(const Hypervector& query, Similarity metric) const;

  /// argmax of similarities().
  std::int64_t predict(const Hypervector& query, Similarity metric = Similarity::kCosine) const;

  /// Batched inference: similarity of every query against the whole bank,
  /// returned as an [n, K] tensor.  Queries are unpacked to floats in
  /// fixed-size blocks and scored with one gemm_bt per block — the backbone
  /// of evaluate(), evaluate_quantized(), and the mass_epoch prediction
  /// pass.  Bitwise identical for any NSHD_THREADS.
  tensor::Tensor similarities_all(const std::vector<Hypervector>& queries,
                                  Similarity metric = Similarity::kCosine) const;

  /// Row-wise argmax of similarities_all() (first maximum wins).
  std::vector<std::int64_t> predict_all(const std::vector<Hypervector>& queries,
                                        Similarity metric = Similarity::kCosine) const;

  /// One MASS epoch over the training set; returns training accuracy before
  /// updates (so convergence is observable).  Update rule (Sec. V-A):
  ///   U = one_hot - delta(M, H);  M += lr * U^T (outer) H.
  double mass_epoch(const std::vector<Hypervector>& samples,
                    const std::vector<std::int64_t>& labels,
                    const MassConfig& config);

  /// One epoch of classic perceptron-style HD retraining (the pre-MASS
  /// scheme of VoiceHD-era work [12]): only on mispredicted samples, add H
  /// to the true class and subtract it from the wrongly-predicted class.
  /// Kept as an ablation baseline against MASS's class-wise scaling.
  double perceptron_epoch(const std::vector<Hypervector>& samples,
                          const std::vector<std::int64_t>& labels,
                          float learning_rate,
                          Similarity metric = Similarity::kCosine);

  /// Full MASS retraining: bundling init happens first if the bank is empty.
  void train(const std::vector<Hypervector>& samples,
             const std::vector<std::int64_t>& labels, const MassConfig& config);

  /// Inference accuracy over a labeled set.
  double evaluate(const std::vector<Hypervector>& samples,
                  const std::vector<std::int64_t>& labels,
                  Similarity metric = Similarity::kCosine) const;

  /// Applies M += lr * u^T (outer) H for one sample given its update vector
  /// u (length K).  Exposed for the knowledge-distillation trainer.
  /// Cached cosine norms are maintained incrementally (||C + aH||^2 =
  /// ||C||^2 + 2a C.H + a^2 D) instead of being invalidated; when the
  /// caller already knows the raw dot products C_c . H (mass_epoch does,
  /// from the similarity pass) it passes them via `raw_dots` to skip the
  /// recomputation.
  void apply_update(const Hypervector& sample, const std::vector<float>& update,
                    float learning_rate,
                    const std::vector<double>* raw_dots = nullptr);

  /// Cached per-class L2 norms (refreshed if stale).  Exposed so tests can
  /// assert the incremental maintenance in apply_update() matches a full
  /// recompute.
  const std::vector<float>& class_norms() const {
    if (!norms_valid_) refresh_norms();
    audit_norms();
    return norms_;
  }

  /// Marks the cached norms stale.  Must be called by anyone who writes the
  /// bank storage directly (e.g. restoring a snapshot through bank()) —
  /// otherwise cosine similarities keep using the old norms.  The sanitizer
  /// trees enforce this contract: under NSHD_NORM_AUDIT (defined whenever
  /// NSHD_SANITIZE is set) every read of the cache re-verifies it against a
  /// full recompute and aborts on a stale or drifting entry, so a missing
  /// invalidate_norms() call dies at the first poisoned read instead of
  /// silently serving wrong cosines (the PR 6 load_state bug, at the source).
  void invalidate_norms() { norms_valid_ = false; }

  /// Gradient of the loss with respect to the query hypervector under the
  /// update vector u: g_h[d] = -sum_i u_i * M[i][d] / normalizer_i.  Used by
  /// the manifold-learner backprop (Sec. V-C).
  tensor::Tensor query_gradient(const std::vector<float>& update) const;

  /// Numeric health of the class bank: true when every class-hypervector
  /// component is finite.  A NaN/Inf bank serves garbage similarities (or
  /// silently absorbs into the argmax), so the serving engine gates
  /// register/reload on this and the numeric-health scan treats a non-finite
  /// similarity row as a bank fault.
  bool bank_finite() const;

  float* class_vector(std::int64_t c) { return bank_.data() + c * dim_; }
  const float* class_vector(std::int64_t c) const { return bank_.data() + c * dim_; }
  const tensor::Tensor& bank() const { return bank_; }
  tensor::Tensor& bank() { return bank_; }

  /// Deployment quantization: binarize class vectors to packed bipolar form
  /// (used by the FPGA path; inference then is pure popcount).
  std::vector<Hypervector> quantized_classes() const;

  /// Prediction with a binarized bank (Hamming similarity).
  static std::int64_t predict_quantized(const std::vector<Hypervector>& classes,
                                        const Hypervector& query);

  /// Accuracy of the deployment-quantized (binarized) class bank — the
  /// Vitis-AI quantization path of Sec. VI-B, whose accuracy impact the
  /// paper reports as "very minor".
  double evaluate_quantized(const std::vector<Hypervector>& samples,
                            const std::vector<std::int64_t>& labels) const;

 private:
  std::int64_t num_classes_, dim_;
  tensor::Tensor bank_;                 // [K, D]
  mutable std::vector<float> norms_;    // cached L2 norms per class
  mutable std::vector<double> norm_sq_; // squared norms, double to bound drift
  mutable bool norms_valid_ = false;
  void refresh_norms() const;
  /// NSHD_NORM_AUDIT builds: when the cache claims validity, every cached
  /// norm must match a full recompute from the bank within float-rounding
  /// tolerance; aborts otherwise.  No-op (empty inline) in regular builds.
  void audit_norms() const;
  /// Raw per-class dot products M . H for one query (unpack + gemv).
  std::vector<double> raw_dots(const Hypervector& query) const;
  /// Similarity vector from raw dots; refreshes norms first for cosine.
  std::vector<float> sims_from_raw(const std::vector<double>& raw,
                                   Similarity metric) const;
  /// Expands queries[b..e) into consecutive float rows of `qf` (+/-1 each).
  void unpack_block(const std::vector<Hypervector>& queries, std::int64_t b,
                    std::int64_t e, float* qf) const;
  /// One row of similarities from one row of raw (float) dots.  Assumes
  /// norms are already fresh when `metric` is cosine.
  void sims_row(const float* raw, float* out, Similarity metric) const;
};

}  // namespace nshd::hd
