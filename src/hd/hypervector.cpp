#include "hd/hypervector.hpp"

#include <bit>
#include <cassert>

namespace nshd::hd {

void Hypervector::mask_tail() {
  const int tail = static_cast<int>(dim_ & 63);
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1ULL;
  }
}

Hypervector Hypervector::random(std::int64_t dim, util::Rng& rng) {
  Hypervector h(dim);
  for (auto& w : h.words_) w = rng.next_u64();
  h.mask_tail();
  return h;
}

Hypervector Hypervector::from_sign(const float* values, std::int64_t dim) {
  Hypervector h(dim);
  for (std::int64_t i = 0; i < dim; ++i) {
    if (values[i] >= 0.0f) h.words_[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
  }
  return h;
}

Hypervector Hypervector::from_sign(const tensor::Tensor& values) {
  return from_sign(values.data(), values.numel());
}

tensor::Tensor Hypervector::to_tensor() const {
  tensor::Tensor t(tensor::Shape{dim_});
  for (std::int64_t i = 0; i < dim_; ++i) t[i] = get(i);
  return t;
}

Hypervector Hypervector::bind(const Hypervector& other) const {
  assert(dim_ == other.dim_);
  Hypervector out(dim_);
  // Bipolar multiply: (+1,+1)->+1, (-1,-1)->+1, else -1 == XNOR of bits.
  for (std::size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = ~(words_[w] ^ other.words_[w]);
  }
  out.mask_tail();
  return out;
}

std::int64_t Hypervector::hamming(const Hypervector& other) const {
  assert(dim_ == other.dim_);
  std::int64_t distance = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    distance += std::popcount(words_[w] ^ other.words_[w]);
  }
  return distance;
}

std::int64_t Hypervector::dot(const Hypervector& other) const {
  return dim_ - 2 * hamming(other);
}

double dot(const float* m, const Hypervector& h) {
  // dot = 2 * sum(m where bit=+1) - sum(all m): the full sum vectorizes and
  // only set bits need individual visits.
  const std::int64_t dim = h.dim();
  double total = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) total += m[i];

  const std::uint64_t* words = h.words();
  double positive = 0.0;
  const auto word_count = static_cast<std::int64_t>(h.word_count());
  for (std::int64_t w = 0; w < word_count; ++w) {
    std::uint64_t bits = words[w];
    const std::int64_t base = w << 6;
    while (bits != 0) {
      positive += m[base + std::countr_zero(bits)];
      bits &= bits - 1;
    }
  }
  return 2.0 * positive - total;
}

void axpy(float* m, float alpha, const Hypervector& h) {
  // m += alpha * h  ==  m -= alpha everywhere, then m += 2*alpha at +1 bits.
  const std::int64_t dim = h.dim();
  for (std::int64_t i = 0; i < dim; ++i) m[i] -= alpha;
  const float twice = 2.0f * alpha;
  const std::uint64_t* words = h.words();
  const auto word_count = static_cast<std::int64_t>(h.word_count());
  for (std::int64_t w = 0; w < word_count; ++w) {
    std::uint64_t bits = words[w];
    const std::int64_t base = w << 6;
    while (bits != 0) {
      m[base + std::countr_zero(bits)] += twice;
      bits &= bits - 1;
    }
  }
}

void BundleAccumulator::add(const Hypervector& h) {
  assert(h.dim() == dim());
  for (std::int64_t i = 0; i < h.dim(); ++i) {
    counts_[static_cast<std::size_t>(i)] += h.get(i) > 0.0f ? 1 : -1;
  }
  ++added_;
}

Hypervector BundleAccumulator::majority(util::Rng& tie_breaker) const {
  Hypervector out(dim());
  for (std::int64_t i = 0; i < dim(); ++i) {
    const std::int32_t c = counts_[static_cast<std::size_t>(i)];
    const bool positive = c > 0 || (c == 0 && tie_breaker.bernoulli(0.5));
    out.set(i, positive);
  }
  return out;
}

tensor::Tensor BundleAccumulator::to_tensor() const {
  tensor::Tensor t(tensor::Shape{dim()});
  for (std::int64_t i = 0; i < dim(); ++i)
    t[i] = static_cast<float>(counts_[static_cast<std::size_t>(i)]);
  return t;
}

}  // namespace nshd::hd
