#include "hd/hypervector.hpp"

#include <bit>
#include <cassert>

#include "tensor/simd.hpp"

namespace nshd::hd {

void Hypervector::mask_tail() {
  const int tail = static_cast<int>(dim_ & 63);
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1ULL;
  }
}

Hypervector Hypervector::random(std::int64_t dim, util::Rng& rng) {
  Hypervector h(dim);
  for (auto& w : h.words_) w = rng.next_u64();
  h.mask_tail();
  return h;
}

Hypervector Hypervector::from_sign(const float* values, std::int64_t dim) {
  Hypervector h(dim);
  for (std::int64_t i = 0; i < dim; ++i) {
    if (values[i] >= 0.0f) h.words_[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
  }
  return h;
}

Hypervector Hypervector::from_sign(const tensor::Tensor& values) {
  return from_sign(values.data(), values.numel());
}

tensor::Tensor Hypervector::to_tensor() const {
  tensor::Tensor t(tensor::Shape{dim_});
  for (std::int64_t i = 0; i < dim_; ++i) t[i] = get(i);
  return t;
}

Hypervector Hypervector::bind(const Hypervector& other) const {
  assert(dim_ == other.dim_);
  Hypervector out(dim_);
  // Bipolar multiply: (+1,+1)->+1, (-1,-1)->+1, else -1 == XNOR of bits.
  for (std::size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = ~(words_[w] ^ other.words_[w]);
  }
  out.mask_tail();
  return out;
}

std::int64_t Hypervector::hamming(const Hypervector& other) const {
  assert(dim_ == other.dim_);
  // Deliberately the plain single-accumulator loop: the compiler turns it
  // into SWAR/pshufb vector popcount under -march=native, and measured
  // manual 4-way accumulator blocking defeats that idiom recognition and
  // runs ~10-20% slower on both the portable and the native build.
  const std::uint64_t* wa = words_.data();
  const std::uint64_t* wb = other.words_.data();
  const auto count = static_cast<std::int64_t>(words_.size());
  std::int64_t d = 0;
  for (std::int64_t w = 0; w < count; ++w) d += std::popcount(wa[w] ^ wb[w]);
  return d;
}

std::int64_t Hypervector::dot(const Hypervector& other) const {
  return dim_ - 2 * hamming(other);
}

double dot(const float* m, const Hypervector& h) {
  // Signed accumulation over whole words via sign-mask expansion: each lane
  // contributes +m[i] or -m[i] straight from the packed bits — no per-set-bit
  // gather and no separate `total` pass.
  return static_cast<double>(tensor::simd::signed_sum(m, h.words(), h.dim()));
}

void axpy(float* m, float alpha, const Hypervector& h) {
  // m[i] += bit_i ? +alpha : -alpha, one rounding per element, whole words
  // at a time via a sign-flipped broadcast of alpha.
  using tensor::simd::kWidth;
  const std::int64_t dim = h.dim();
  const std::uint64_t* words = h.words();
  const std::int64_t full_words = dim >> 6;
  for (std::int64_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = words[w];
    float* base = m + (w << 6);
    for (int g = 0; g < 64 / kWidth; ++g, bits >>= kWidth) {
      float* p = base + g * kWidth;
      tensor::simd::vstore(
          p, tensor::simd::vadd(tensor::simd::vload(p), tensor::simd::signed_set1(alpha, bits)));
    }
  }
  const std::int64_t tail_base = full_words << 6;
  if (tail_base < dim) {
    const std::uint64_t bits = words[full_words];
    for (std::int64_t i = tail_base; i < dim; ++i)
      m[i] += ((bits >> (i & 63)) & 1u) ? alpha : -alpha;
  }
}

void BundleAccumulator::add(const Hypervector& h) {
  assert(h.dim() == dim());
  for (std::int64_t i = 0; i < h.dim(); ++i) {
    counts_[static_cast<std::size_t>(i)] += h.get(i) > 0.0f ? 1 : -1;
  }
  ++added_;
}

Hypervector BundleAccumulator::majority(util::Rng& tie_breaker) const {
  Hypervector out(dim());
  for (std::int64_t i = 0; i < dim(); ++i) {
    const std::int32_t c = counts_[static_cast<std::size_t>(i)];
    const bool positive = c > 0 || (c == 0 && tie_breaker.bernoulli(0.5));
    out.set(i, positive);
  }
  return out;
}

tensor::Tensor BundleAccumulator::to_tensor() const {
  tensor::Tensor t(tensor::Shape{dim()});
  for (std::int64_t i = 0; i < dim(); ++i)
    t[i] = static_cast<float>(counts_[static_cast<std::size_t>(i)]);
  return t;
}

}  // namespace nshd::hd
