// Binary random-projection encoder (Sec. IV-B) and its decoder (Sec. V-C).
//
// Encoding: H = sign(P . v) with P a D x F bipolar matrix whose rows are the
// paper's "base hypervectors".  P is stored bit-packed; the projection is a
// multiplication-free signed accumulation.  Decoding applies P^T — "binding
// with the projection hypervectors and the dot-product operation in turn" —
// and is what carries class-hypervector errors back into feature space when
// training the manifold layer.
#pragma once

#include <cstdint>

#include "hd/hypervector.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace nshd::hd {

class RandomProjection {
 public:
  /// P in {-1,+1}^{dim x features}, sampled i.i.d. from `rng`.
  RandomProjection(std::int64_t dim, std::int64_t features, util::Rng& rng);

  std::int64_t dim() const { return dim_; }
  std::int64_t features() const { return features_; }

  /// Pre-sign projection z = P . v (length dim); callers that need the
  /// straight-through-estimator mask keep this around.
  tensor::Tensor project(const float* v) const;
  tensor::Tensor project(const tensor::Tensor& v) const;

  /// Row-parallel projection into caller memory (`out` has length dim).
  void project_into(const float* v, float* out) const;

  /// Full encoding H = sign(P . v).
  Hypervector encode(const float* v) const;
  Hypervector encode(const tensor::Tensor& v) const;

  /// Encode and also return the pre-sign activations in `pre_sign`.
  Hypervector encode(const tensor::Tensor& v, tensor::Tensor& pre_sign) const;

  /// Batch encoding, sample-parallel over the shared thread pool; result i
  /// is bitwise identical to encode(batch[i]) for any NSHD_THREADS.
  std::vector<Hypervector> encode_all(const std::vector<tensor::Tensor>& batch) const;

  /// Decode / adjoint: g_v = P^T . g_h (length features).
  tensor::Tensor decode(const tensor::Tensor& g_h) const;

  /// Element of P as +1/-1.
  float element(std::int64_t row, std::int64_t col) const {
    const std::int64_t bit_index = row * words_per_row_ * 64 + col;
    return (bits_[static_cast<std::size_t>(bit_index >> 6)] >> (bit_index & 63)) & 1ULL
               ? 1.0f
               : -1.0f;
  }

  /// Storage cost in bytes (packed), as deployed on the accelerator.
  std::int64_t packed_bytes() const {
    return dim_ * words_per_row_ * static_cast<std::int64_t>(sizeof(std::uint64_t));
  }

 private:
  /// Serial row kernel shared by project_into (row-parallel) and
  /// encode_all (sample-parallel): one fixed accumulation order per row.
  void project_rows(const float* v, float* out, std::int64_t r0, std::int64_t r1) const;

  std::int64_t dim_, features_, words_per_row_;
  std::vector<std::uint64_t> bits_;  // row-major, words_per_row_ per row
};

}  // namespace nshd::hd
