#include "hd/classifier.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace nshd::hd {

HdClassifier::HdClassifier(std::int64_t num_classes, std::int64_t dim)
    : num_classes_(num_classes),
      dim_(dim),
      bank_(tensor::Shape{num_classes, dim}),
      norms_(static_cast<std::size_t>(num_classes), 0.0f) {}

void HdClassifier::refresh_norms() const {
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    const float* row = class_vector(c);
    double sq = 0.0;
    for (std::int64_t d = 0; d < dim_; ++d) sq += static_cast<double>(row[d]) * row[d];
    norms_[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(sq));
  }
  norms_valid_ = true;
}

void HdClassifier::bundle_init(const std::vector<Hypervector>& samples,
                               const std::vector<std::int64_t>& labels) {
  assert(samples.size() == labels.size());
  bank_.zero();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    assert(samples[i].dim() == dim_);
    assert(labels[i] >= 0 && labels[i] < num_classes_);
    axpy(class_vector(labels[i]), 1.0f, samples[i]);
  }
  norms_valid_ = false;
}

std::int64_t HdClassifier::add_class(const std::vector<Hypervector>& samples) {
  assert(!samples.empty());
  const std::int64_t new_index = num_classes_;
  tensor::Tensor grown(tensor::Shape{num_classes_ + 1, dim_});
  std::copy(bank_.span().begin(), bank_.span().end(), grown.data());
  bank_ = std::move(grown);
  ++num_classes_;
  norms_.push_back(0.0f);
  for (const Hypervector& h : samples) {
    assert(h.dim() == dim_);
    axpy(class_vector(new_index), 1.0f, h);
  }
  norms_valid_ = false;
  return new_index;
}

std::vector<float> HdClassifier::similarities(const Hypervector& query,
                                              Similarity metric) const {
  assert(query.dim() == dim_);
  std::vector<float> sims(static_cast<std::size_t>(num_classes_));
  const double query_norm = std::sqrt(static_cast<double>(dim_));
  if (metric == Similarity::kCosine && !norms_valid_) refresh_norms();
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    const double raw = dot(class_vector(c), query);
    if (metric == Similarity::kDot) {
      sims[static_cast<std::size_t>(c)] = static_cast<float>(raw / dim_);
    } else {
      const double denom =
          std::max(1e-9, static_cast<double>(norms_[static_cast<std::size_t>(c)]) * query_norm);
      sims[static_cast<std::size_t>(c)] = static_cast<float>(raw / denom);
    }
  }
  return sims;
}

std::int64_t HdClassifier::predict(const Hypervector& query, Similarity metric) const {
  const std::vector<float> sims = similarities(query, metric);
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < num_classes_; ++c)
    if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;
  return best;
}

double HdClassifier::mass_epoch(const std::vector<Hypervector>& samples,
                                const std::vector<std::int64_t>& labels,
                                const MassConfig& config) {
  assert(samples.size() == labels.size());
  std::int64_t correct = 0;
  std::vector<float> update(static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::vector<float> sims = similarities(samples[i], config.similarity);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < num_classes_; ++c)
      if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;
    if (best == labels[i]) ++correct;

    // U = one_hot - delta(M, H): large corrections for erroneous classes.
    for (std::int64_t c = 0; c < num_classes_; ++c) {
      update[static_cast<std::size_t>(c)] =
          (c == labels[i] ? 1.0f : 0.0f) - sims[static_cast<std::size_t>(c)];
    }
    apply_update(samples[i], update, config.learning_rate);
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

double HdClassifier::perceptron_epoch(const std::vector<Hypervector>& samples,
                                      const std::vector<std::int64_t>& labels,
                                      float learning_rate, Similarity metric) {
  assert(samples.size() == labels.size());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::int64_t predicted = predict(samples[i], metric);
    if (predicted == labels[i]) {
      ++correct;
      continue;
    }
    axpy(class_vector(labels[i]), learning_rate, samples[i]);
    axpy(class_vector(predicted), -learning_rate, samples[i]);
    norms_valid_ = false;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void HdClassifier::train(const std::vector<Hypervector>& samples,
                         const std::vector<std::int64_t>& labels,
                         const MassConfig& config) {
  // Start from bundling when the bank is untouched (all zeros).
  bool all_zero = true;
  for (float x : bank_.span()) {
    if (x != 0.0f) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) bundle_init(samples, labels);
  for (std::int64_t e = 0; e < config.epochs; ++e) {
    mass_epoch(samples, labels, config);
  }
}

double HdClassifier::evaluate(const std::vector<Hypervector>& samples,
                              const std::vector<std::int64_t>& labels,
                              Similarity metric) const {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (predict(samples[i], metric) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void HdClassifier::apply_update(const Hypervector& sample,
                                const std::vector<float>& update,
                                float learning_rate) {
  assert(static_cast<std::int64_t>(update.size()) == num_classes_);
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    const float u = update[static_cast<std::size_t>(c)];
    if (u == 0.0f) continue;
    axpy(class_vector(c), learning_rate * u, sample);
  }
  norms_valid_ = false;
}

tensor::Tensor HdClassifier::query_gradient(const std::vector<float>& update) const {
  assert(static_cast<std::int64_t>(update.size()) == num_classes_);
  tensor::Tensor g(tensor::Shape{dim_});
  if (!norms_valid_) refresh_norms();
  const double query_norm = std::sqrt(static_cast<double>(dim_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    // Loss decreases when similarity to under-predicted classes rises, so
    // the ascent direction on H is sum_c u_c * C_c (normalized); we return
    // the negative (descent on -similarity alignment).
    const float u = update[static_cast<std::size_t>(c)];
    if (u == 0.0f) continue;
    const double denom =
        std::max(1e-9, static_cast<double>(norms_[static_cast<std::size_t>(c)]) * query_norm);
    const float scale = static_cast<float>(-u / denom);
    const float* row = class_vector(c);
    for (std::int64_t d = 0; d < dim_; ++d) g[d] += scale * row[d];
  }
  return g;
}

std::vector<Hypervector> HdClassifier::quantized_classes() const {
  std::vector<Hypervector> out;
  out.reserve(static_cast<std::size_t>(num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    out.push_back(Hypervector::from_sign(class_vector(c), dim_));
  }
  return out;
}

double HdClassifier::evaluate_quantized(const std::vector<Hypervector>& samples,
                                        const std::vector<std::int64_t>& labels) const {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  const std::vector<Hypervector> quantized = quantized_classes();
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (predict_quantized(quantized, samples[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

std::int64_t HdClassifier::predict_quantized(const std::vector<Hypervector>& classes,
                                             const Hypervector& query) {
  assert(!classes.empty());
  std::int64_t best = 0;
  std::int64_t best_dot = classes[0].dot(query);
  for (std::size_t c = 1; c < classes.size(); ++c) {
    const std::int64_t d = classes[c].dot(query);
    if (d > best_dot) {
      best_dot = d;
      best = static_cast<std::int64_t>(c);
    }
  }
  return best;
}

}  // namespace nshd::hd
