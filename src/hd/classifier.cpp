#include "hd/classifier.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd::hd {

namespace {
// Fixed parallel grains: classes per chunk for bank scans, samples per
// chunk for query unpacking.  Constants, so partitioning never depends on
// the thread count and results are identical for any NSHD_THREADS.
constexpr std::int64_t kClassGrain = 1;
constexpr std::int64_t kUnpackGrain = 1;
// Queries per gemm_bt block in the batched inference path; bounds the
// unpacked-query buffer to block * dim floats.
constexpr std::int64_t kQueryBlock = 64;

/// Expands a packed bipolar hypervector to floats (+1/-1 per element).
void unpack_query(const Hypervector& h, float* out) {
  using tensor::simd::kWidth;
  const std::int64_t dim = h.dim();
  const std::uint64_t* words = h.words();
  const std::int64_t full_words = dim >> 6;
  for (std::int64_t w = 0; w < full_words; ++w) {
    std::uint64_t bits = words[w];
    float* base = out + (w << 6);
    for (int g = 0; g < 64 / kWidth; ++g, bits >>= kWidth)
      tensor::simd::vstore(base + g * kWidth, tensor::simd::signed_set1(1.0f, bits));
  }
  const std::int64_t tail_base = full_words << 6;
  if (tail_base < dim) {
    const std::uint64_t bits = words[full_words];
    for (std::int64_t i = tail_base; i < dim; ++i)
      out[i] = ((bits >> (i & 63)) & 1u) ? 1.0f : -1.0f;
  }
}

/// Expands a packed bipolar hypervector to u8 bits (1 for +1, 0 for -1) —
/// the activation-side operand of the widening u8*s8 kernels.
void unpack_bits_u8(const Hypervector& h, std::uint8_t* out) {
  const std::int64_t dim = h.dim();
  const std::uint64_t* words = h.words();
  for (std::int64_t i = 0; i < dim; ++i) {
    out[i] = static_cast<std::uint8_t>((words[i >> 6] >> (i & 63)) & 1u);
  }
}

/// Expands a packed bipolar hypervector to s8 (+1/-1) and returns the row
/// sum needed by the shared requantization identity.
std::int32_t unpack_sign_s8(const Hypervector& h, std::int8_t* out) {
  const std::int64_t dim = h.dim();
  const std::uint64_t* words = h.words();
  std::int32_t sum = 0;
  for (std::int64_t i = 0; i < dim; ++i) {
    const std::int8_t v =
        ((words[i >> 6] >> (i & 63)) & 1u) ? std::int8_t{1} : std::int8_t{-1};
    out[i] = v;
    sum += v;
  }
  return sum;
}
}  // namespace

HdClassifier::HdClassifier(std::int64_t num_classes, std::int64_t dim)
    : num_classes_(num_classes),
      dim_(dim),
      bank_(tensor::Shape{num_classes, dim}),
      norms_(static_cast<std::size_t>(num_classes), 0.0f),
      norm_sq_(static_cast<std::size_t>(num_classes), 0.0) {}

void HdClassifier::refresh_norms() const {
  util::parallel_for(0, num_classes_, kClassGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t c = b; c < e; ++c) {
      const float* row = class_vector(c);
      double sq = 0.0;
      for (std::int64_t d = 0; d < dim_; ++d) sq += static_cast<double>(row[d]) * row[d];
      norm_sq_[static_cast<std::size_t>(c)] = sq;
      norms_[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(sq));
    }
  });
  norms_valid_ = true;
}

void HdClassifier::audit_norms() const {
#if defined(NSHD_NORM_AUDIT)
  // Sanitizer-tree contract check: a cache that claims validity must agree
  // with a full recompute.  The 1e-3-relative tolerance matches the bound
  // the incremental ||C + aH||^2 maintenance is tested to in hd_test; a
  // caller that wrote the bank through bank() without invalidate_norms()
  // lands far outside it.
  if (!norms_valid_) return;
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    const float* row = class_vector(c);
    double sq = 0.0;
    for (std::int64_t d = 0; d < dim_; ++d) sq += static_cast<double>(row[d]) * row[d];
    const double expect = std::sqrt(sq);
    const double got = static_cast<double>(norms_[static_cast<std::size_t>(c)]);
    if (std::fabs(got - expect) > 1e-3 * std::max(1.0, expect)) {
      std::fprintf(stderr,
                   "HdClassifier norm audit: class %lld cached norm %.9g != "
                   "recomputed %.9g — stale cache (missing invalidate_norms()?) "
                   "or drifting incremental maintenance\n",
                   static_cast<long long>(c), got, expect);
      std::abort();
    }
  }
#endif
}

void HdClassifier::bundle_init(const std::vector<Hypervector>& samples,
                               const std::vector<std::int64_t>& labels) {
  assert(samples.size() == labels.size());
  bank_.zero();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    assert(samples[i].dim() == dim_);
    assert(labels[i] >= 0 && labels[i] < num_classes_);
    axpy(class_vector(labels[i]), 1.0f, samples[i]);
  }
  norms_valid_ = false;
}

std::int64_t HdClassifier::add_class(const std::vector<Hypervector>& samples) {
  assert(!samples.empty());
  const std::int64_t new_index = num_classes_;
  tensor::Tensor grown(tensor::Shape{num_classes_ + 1, dim_});
  std::copy(bank_.span().begin(), bank_.span().end(), grown.data());
  bank_ = std::move(grown);
  ++num_classes_;
  norms_.push_back(0.0f);
  norm_sq_.push_back(0.0);
  for (const Hypervector& h : samples) {
    assert(h.dim() == dim_);
    axpy(class_vector(new_index), 1.0f, h);
  }
  norms_valid_ = false;
  return new_index;
}

void HdClassifier::remove_class(std::int64_t c) {
  assert(c >= 0 && c < num_classes_);
  assert(num_classes_ > 1 && "cannot remove the last class");
  tensor::Tensor shrunk(tensor::Shape{num_classes_ - 1, dim_});
  const float* src = bank_.data();
  float* dst = shrunk.data();
  std::copy(src, src + c * dim_, dst);
  std::copy(src + (c + 1) * dim_, src + num_classes_ * dim_, dst + c * dim_);
  bank_ = std::move(shrunk);
  --num_classes_;
  // The surviving rows are untouched, so the cached norms stay exact — just
  // drop the removed entry instead of invalidating the whole cache.
  norms_.erase(norms_.begin() + static_cast<std::ptrdiff_t>(c));
  norm_sq_.erase(norm_sq_.begin() + static_cast<std::ptrdiff_t>(c));
  audit_norms();
}

std::vector<double> HdClassifier::raw_dots(const Hypervector& query) const {
  assert(query.dim() == dim_);
  // Single-query path (kd_retrain, perceptron updates): unpack once into a
  // per-thread buffer and scan the bank as one row-parallel gemv.
  thread_local std::vector<float> qf, yf;
  qf.resize(static_cast<std::size_t>(dim_));
  yf.resize(static_cast<std::size_t>(num_classes_));
  unpack_query(query, qf.data());
  tensor::gemv(bank_.data(), qf.data(), yf.data(), num_classes_, dim_);
  std::vector<double> raw(static_cast<std::size_t>(num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c)
    raw[static_cast<std::size_t>(c)] = static_cast<double>(yf[static_cast<std::size_t>(c)]);
  return raw;
}

void HdClassifier::unpack_block(const std::vector<Hypervector>& queries,
                                std::int64_t b, std::int64_t e, float* qf) const {
  util::parallel_for(b, e, kUnpackGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      assert(queries[static_cast<std::size_t>(i)].dim() == dim_);
      unpack_query(queries[static_cast<std::size_t>(i)], qf + (i - b) * dim_);
    }
  });
}

void HdClassifier::sims_row(const float* raw, float* out, Similarity metric) const {
  const double query_norm = std::sqrt(static_cast<double>(dim_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    if (metric == Similarity::kDot) {
      out[c] = static_cast<float>(static_cast<double>(raw[c]) / dim_);
    } else {
      const double denom =
          std::max(1e-9, static_cast<double>(norms_[static_cast<std::size_t>(c)]) * query_norm);
      out[c] = static_cast<float>(static_cast<double>(raw[c]) / denom);
    }
  }
}

tensor::Tensor HdClassifier::similarities_all(const std::vector<Hypervector>& queries,
                                              Similarity metric) const {
  const auto n = static_cast<std::int64_t>(queries.size());
  tensor::Tensor sims(tensor::Shape{n, num_classes_});
  if (n == 0) return sims;
  // Norms refresh happens once up front, never inside the blocked loop.
  if (metric == Similarity::kCosine) {
    if (!norms_valid_) refresh_norms();
    audit_norms();
  }
  std::vector<float> qf(static_cast<std::size_t>(std::min(n, kQueryBlock) * dim_));
  std::vector<float> raw(static_cast<std::size_t>(std::min(n, kQueryBlock) * num_classes_));
  for (std::int64_t b = 0; b < n; b += kQueryBlock) {
    const std::int64_t e = std::min(n, b + kQueryBlock);
    unpack_block(queries, b, e, qf.data());
    // All queries of the block against the whole bank in one gemm_bt.
    tensor::gemm_bt(qf.data(), bank_.data(), raw.data(), e - b, dim_, num_classes_);
    for (std::int64_t i = b; i < e; ++i)
      sims_row(raw.data() + (i - b) * num_classes_, sims.data() + i * num_classes_, metric);
  }
  return sims;
}

std::vector<std::int64_t> HdClassifier::predict_all(const std::vector<Hypervector>& queries,
                                                    Similarity metric) const {
  const tensor::Tensor sims = similarities_all(queries, metric);
  const auto n = static_cast<std::int64_t>(queries.size());
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = sims.data() + i * num_classes_;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < num_classes_; ++c)
      if (row[c] > row[best]) best = c;
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

std::vector<float> HdClassifier::sims_from_raw(const std::vector<double>& raw,
                                               Similarity metric) const {
  // Single-query scoring shares sims_row with the batched path, so dot and
  // cosine scaling live in exactly one place.
  if (metric == Similarity::kCosine) {
    if (!norms_valid_) refresh_norms();
    audit_norms();
  }
  std::vector<float> rawf(static_cast<std::size_t>(num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c)
    rawf[static_cast<std::size_t>(c)] = static_cast<float>(raw[static_cast<std::size_t>(c)]);
  std::vector<float> sims(static_cast<std::size_t>(num_classes_));
  sims_row(rawf.data(), sims.data(), metric);
  return sims;
}

std::vector<float> HdClassifier::similarities(const Hypervector& query,
                                              Similarity metric) const {
  if (metric == Similarity::kCosine && !norms_valid_) refresh_norms();
  return sims_from_raw(raw_dots(query), metric);
}

std::int64_t HdClassifier::predict(const Hypervector& query, Similarity metric) const {
  const std::vector<float> sims = similarities(query, metric);
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < num_classes_; ++c)
    if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;
  return best;
}

double HdClassifier::mass_epoch(const std::vector<Hypervector>& samples,
                                const std::vector<std::int64_t>& labels,
                                const MassConfig& config) {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  // Prediction pass: every sample against the epoch-start bank, batched
  // through similarities_all (one gemm_bt per query block).  This is
  // exactly "training accuracy before updates"; the sequential update loop
  // below then applies the per-sample MASS corrections in sample order, so
  // the trained bank stays independent of NSHD_THREADS.
  const tensor::Tensor sims_all = similarities_all(samples, config.similarity);
  const auto n = static_cast<std::int64_t>(samples.size());
  std::int64_t correct = 0;
  std::vector<float> update(static_cast<std::size_t>(num_classes_));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* sims = sims_all.data() + i * num_classes_;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < num_classes_; ++c)
      if (sims[c] > sims[best]) best = c;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;

    // U = one_hot - delta(M, H): large corrections for erroneous classes.
    for (std::int64_t c = 0; c < num_classes_; ++c) {
      update[static_cast<std::size_t>(c)] =
          (c == labels[static_cast<std::size_t>(i)] ? 1.0f : 0.0f) - sims[c];
    }
    apply_update(samples[static_cast<std::size_t>(i)], update, config.learning_rate, nullptr);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double HdClassifier::perceptron_epoch(const std::vector<Hypervector>& samples,
                                      const std::vector<std::int64_t>& labels,
                                      float learning_rate, Similarity metric) {
  assert(samples.size() == labels.size());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::int64_t predicted = predict(samples[i], metric);
    if (predicted == labels[i]) {
      ++correct;
      continue;
    }
    axpy(class_vector(labels[i]), learning_rate, samples[i]);
    axpy(class_vector(predicted), -learning_rate, samples[i]);
    norms_valid_ = false;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void HdClassifier::train(const std::vector<Hypervector>& samples,
                         const std::vector<std::int64_t>& labels,
                         const MassConfig& config) {
  // Start from bundling when the bank is untouched (all zeros).
  bool all_zero = true;
  for (float x : bank_.span()) {
    if (x != 0.0f) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) bundle_init(samples, labels);
  for (std::int64_t e = 0; e < config.epochs; ++e) {
    mass_epoch(samples, labels, config);
  }
}

double HdClassifier::evaluate(const std::vector<Hypervector>& samples,
                              const std::vector<std::int64_t>& labels,
                              Similarity metric) const {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  const std::vector<std::int64_t> predicted = predict_all(samples, metric);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i)
    if (predicted[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void HdClassifier::apply_update(const Hypervector& sample,
                                const std::vector<float>& update,
                                float learning_rate,
                                const std::vector<double>* raw_dots) {
  assert(static_cast<std::int64_t>(update.size()) == num_classes_);
  assert(raw_dots == nullptr ||
         static_cast<std::int64_t>(raw_dots->size()) == num_classes_);
  const bool track_norms = norms_valid_;
  util::parallel_for(0, num_classes_, kClassGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t c = b; c < e; ++c) {
      const float u = update[static_cast<std::size_t>(c)];
      if (u == 0.0f) continue;
      const float alpha = learning_rate * u;
      if (track_norms) {
        // ||C + aH||^2 = ||C||^2 + 2a C.H + a^2 ||H||^2, with ||H||^2 = D
        // for bipolar H — so the norm cache survives the update without an
        // O(K*D) refresh per query.
        const double before = raw_dots != nullptr
                                  ? (*raw_dots)[static_cast<std::size_t>(c)]
                                  : dot(class_vector(c), sample);
        double sq = norm_sq_[static_cast<std::size_t>(c)] +
                    2.0 * alpha * before +
                    static_cast<double>(alpha) * alpha * static_cast<double>(dim_);
        sq = std::max(sq, 0.0);
        norm_sq_[static_cast<std::size_t>(c)] = sq;
        norms_[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(sq));
      }
      axpy(class_vector(c), alpha, sample);
    }
  });
  audit_norms();
}

tensor::Tensor HdClassifier::query_gradient(const std::vector<float>& update) const {
  assert(static_cast<std::int64_t>(update.size()) == num_classes_);
  tensor::Tensor g(tensor::Shape{dim_});
  if (!norms_valid_) refresh_norms();
  const double query_norm = std::sqrt(static_cast<double>(dim_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    // Loss decreases when similarity to under-predicted classes rises, so
    // the ascent direction on H is sum_c u_c * C_c (normalized); we return
    // the negative (descent on -similarity alignment).
    const float u = update[static_cast<std::size_t>(c)];
    if (u == 0.0f) continue;
    const double denom =
        std::max(1e-9, static_cast<double>(norms_[static_cast<std::size_t>(c)]) * query_norm);
    const float scale = static_cast<float>(-u / denom);
    const float* row = class_vector(c);
    for (std::int64_t d = 0; d < dim_; ++d) g[d] += scale * row[d];
  }
  return g;
}

bool HdClassifier::bank_finite() const {
  return tensor::all_finite(bank_.data(), bank_.numel());
}

std::vector<Hypervector> HdClassifier::quantized_classes() const {
  std::vector<Hypervector> out;
  out.reserve(static_cast<std::size_t>(num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    out.push_back(Hypervector::from_sign(class_vector(c), dim_));
  }
  return out;
}

double HdClassifier::evaluate_quantized(const std::vector<Hypervector>& samples,
                                        const std::vector<std::int64_t>& labels) const {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  // Batched deployment-accuracy pass on the int8 kernels: the binarized
  // bank becomes s8 rows (+1/-1), queries become u8 bits b in {0,1}, and one
  // gemm_s8 per block scores every class.  With x = 2b - 1, the bipolar dot
  // is sum w*(2b-1) = 2*acc - row_sum — the same zero-point-correction
  // identity quant::requantize applies in the quantized inference plan
  // (sub = 0, mult = 2, add = -row_sum).  All quantities are exact small
  // integers (|score| <= 2D << 2^24), so the argmax — including the
  // first-max tie rule — is identical to the packed popcount path used by
  // predict_quantized.
  const std::vector<Hypervector> quantized = quantized_classes();
  std::vector<std::int8_t> sbank(static_cast<std::size_t>(num_classes_ * dim_));
  std::vector<float> neg_row_sum(static_cast<std::size_t>(num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    neg_row_sum[static_cast<std::size_t>(c)] = -static_cast<float>(
        unpack_sign_s8(quantized[static_cast<std::size_t>(c)], sbank.data() + c * dim_));
  }
  const auto n = static_cast<std::int64_t>(samples.size());
  const std::int64_t block = std::min(n, kQueryBlock);
  std::vector<std::uint8_t> qb(static_cast<std::size_t>(block * dim_));
  std::vector<std::int32_t> acc(static_cast<std::size_t>(num_classes_ * block));
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < n; b += kQueryBlock) {
    const std::int64_t e = std::min(n, b + kQueryBlock);
    const std::int64_t cur = e - b;
    util::parallel_for(b, e, kUnpackGrain, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        assert(samples[static_cast<std::size_t>(i)].dim() == dim_);
        unpack_bits_u8(samples[static_cast<std::size_t>(i)], qb.data() + (i - b) * dim_);
      }
    });
    // acc[c, i] = bank_s8[c,:] . bits_u8[i,:] over the whole block.
    tensor::gemm_s8(sbank.data(), qb.data(), acc.data(), num_classes_, dim_, cur);
    for (std::int64_t i = 0; i < cur; ++i) {
      std::int64_t best = 0;
      float best_score = tensor::quant::requantize(acc[static_cast<std::size_t>(i)], 0,
                                                   2.0f, neg_row_sum[0]);
      for (std::int64_t c = 1; c < num_classes_; ++c) {
        const float score =
            tensor::quant::requantize(acc[static_cast<std::size_t>(c * cur + i)], 0, 2.0f,
                                      neg_row_sum[static_cast<std::size_t>(c)]);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
      if (best == labels[static_cast<std::size_t>(b + i)]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

std::int64_t HdClassifier::predict_quantized(const std::vector<Hypervector>& classes,
                                             const Hypervector& query) {
  assert(!classes.empty());
  std::int64_t best = 0;
  std::int64_t best_dot = classes[0].dot(query);
  for (std::size_t c = 1; c < classes.size(); ++c) {
    const std::int64_t d = classes[c].dot(query);
    if (d > best_dot) {
      best_dot = d;
      best = static_cast<std::int64_t>(c);
    }
  }
  return best;
}

}  // namespace nshd::hd
