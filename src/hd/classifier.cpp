#include "hd/classifier.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd::hd {

namespace {
// Fixed parallel grains: classes per chunk for bank scans, samples per
// chunk for evaluation.  Constants, so partitioning never depends on the
// thread count and results are identical for any NSHD_THREADS.
constexpr std::int64_t kClassGrain = 1;
constexpr std::int64_t kSampleGrain = 8;
}  // namespace

HdClassifier::HdClassifier(std::int64_t num_classes, std::int64_t dim)
    : num_classes_(num_classes),
      dim_(dim),
      bank_(tensor::Shape{num_classes, dim}),
      norms_(static_cast<std::size_t>(num_classes), 0.0f),
      norm_sq_(static_cast<std::size_t>(num_classes), 0.0) {}

void HdClassifier::refresh_norms() const {
  util::parallel_for(0, num_classes_, kClassGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t c = b; c < e; ++c) {
      const float* row = class_vector(c);
      double sq = 0.0;
      for (std::int64_t d = 0; d < dim_; ++d) sq += static_cast<double>(row[d]) * row[d];
      norm_sq_[static_cast<std::size_t>(c)] = sq;
      norms_[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(sq));
    }
  });
  norms_valid_ = true;
}

void HdClassifier::bundle_init(const std::vector<Hypervector>& samples,
                               const std::vector<std::int64_t>& labels) {
  assert(samples.size() == labels.size());
  bank_.zero();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    assert(samples[i].dim() == dim_);
    assert(labels[i] >= 0 && labels[i] < num_classes_);
    axpy(class_vector(labels[i]), 1.0f, samples[i]);
  }
  norms_valid_ = false;
}

std::int64_t HdClassifier::add_class(const std::vector<Hypervector>& samples) {
  assert(!samples.empty());
  const std::int64_t new_index = num_classes_;
  tensor::Tensor grown(tensor::Shape{num_classes_ + 1, dim_});
  std::copy(bank_.span().begin(), bank_.span().end(), grown.data());
  bank_ = std::move(grown);
  ++num_classes_;
  norms_.push_back(0.0f);
  norm_sq_.push_back(0.0);
  for (const Hypervector& h : samples) {
    assert(h.dim() == dim_);
    axpy(class_vector(new_index), 1.0f, h);
  }
  norms_valid_ = false;
  return new_index;
}

std::vector<double> HdClassifier::raw_dots(const Hypervector& query) const {
  assert(query.dim() == dim_);
  std::vector<double> raw(static_cast<std::size_t>(num_classes_));
  util::parallel_for(0, num_classes_, kClassGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t c = b; c < e; ++c)
      raw[static_cast<std::size_t>(c)] = dot(class_vector(c), query);
  });
  return raw;
}

std::vector<float> HdClassifier::sims_from_raw(const std::vector<double>& raw,
                                               Similarity metric) const {
  std::vector<float> sims(static_cast<std::size_t>(num_classes_));
  const double query_norm = std::sqrt(static_cast<double>(dim_));
  if (metric == Similarity::kCosine && !norms_valid_) refresh_norms();
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    if (metric == Similarity::kDot) {
      sims[static_cast<std::size_t>(c)] =
          static_cast<float>(raw[static_cast<std::size_t>(c)] / dim_);
    } else {
      const double denom =
          std::max(1e-9, static_cast<double>(norms_[static_cast<std::size_t>(c)]) * query_norm);
      sims[static_cast<std::size_t>(c)] =
          static_cast<float>(raw[static_cast<std::size_t>(c)] / denom);
    }
  }
  return sims;
}

std::vector<float> HdClassifier::similarities(const Hypervector& query,
                                              Similarity metric) const {
  if (metric == Similarity::kCosine && !norms_valid_) refresh_norms();
  return sims_from_raw(raw_dots(query), metric);
}

std::int64_t HdClassifier::predict(const Hypervector& query, Similarity metric) const {
  const std::vector<float> sims = similarities(query, metric);
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < num_classes_; ++c)
    if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;
  return best;
}

double HdClassifier::mass_epoch(const std::vector<Hypervector>& samples,
                                const std::vector<std::int64_t>& labels,
                                const MassConfig& config) {
  assert(samples.size() == labels.size());
  std::int64_t correct = 0;
  std::vector<float> update(static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // The raw dots feed both the similarity vector and the incremental norm
    // maintenance in apply_update, so the bank is scanned once per sample
    // instead of once for similarities plus once for refresh_norms.
    const std::vector<double> raw = raw_dots(samples[i]);
    const std::vector<float> sims = sims_from_raw(raw, config.similarity);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < num_classes_; ++c)
      if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;
    if (best == labels[i]) ++correct;

    // U = one_hot - delta(M, H): large corrections for erroneous classes.
    for (std::int64_t c = 0; c < num_classes_; ++c) {
      update[static_cast<std::size_t>(c)] =
          (c == labels[i] ? 1.0f : 0.0f) - sims[static_cast<std::size_t>(c)];
    }
    apply_update(samples[i], update, config.learning_rate, &raw);
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

double HdClassifier::perceptron_epoch(const std::vector<Hypervector>& samples,
                                      const std::vector<std::int64_t>& labels,
                                      float learning_rate, Similarity metric) {
  assert(samples.size() == labels.size());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::int64_t predicted = predict(samples[i], metric);
    if (predicted == labels[i]) {
      ++correct;
      continue;
    }
    axpy(class_vector(labels[i]), learning_rate, samples[i]);
    axpy(class_vector(predicted), -learning_rate, samples[i]);
    norms_valid_ = false;
  }
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void HdClassifier::train(const std::vector<Hypervector>& samples,
                         const std::vector<std::int64_t>& labels,
                         const MassConfig& config) {
  // Start from bundling when the bank is untouched (all zeros).
  bool all_zero = true;
  for (float x : bank_.span()) {
    if (x != 0.0f) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) bundle_init(samples, labels);
  for (std::int64_t e = 0; e < config.epochs; ++e) {
    mass_epoch(samples, labels, config);
  }
}

double HdClassifier::evaluate(const std::vector<Hypervector>& samples,
                              const std::vector<std::int64_t>& labels,
                              Similarity metric) const {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  // Refresh norms once up front: the parallel region below must not mutate
  // the cache from several workers at once.
  if (metric == Similarity::kCosine && !norms_valid_) refresh_norms();
  const auto n = static_cast<std::int64_t>(samples.size());
  const std::int64_t chunks = util::chunk_count(0, n, kSampleGrain);
  std::vector<std::int64_t> chunk_correct(static_cast<std::size_t>(chunks), 0);
  util::parallel_for_chunks(
      0, n, kSampleGrain,
      [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
        std::int64_t local = 0;
        for (std::int64_t i = b; i < e; ++i) {
          if (predict(samples[static_cast<std::size_t>(i)], metric) ==
              labels[static_cast<std::size_t>(i)])
            ++local;
        }
        chunk_correct[static_cast<std::size_t>(chunk)] = local;
      });
  std::int64_t correct = 0;
  for (const std::int64_t c : chunk_correct) correct += c;
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void HdClassifier::apply_update(const Hypervector& sample,
                                const std::vector<float>& update,
                                float learning_rate,
                                const std::vector<double>* raw_dots) {
  assert(static_cast<std::int64_t>(update.size()) == num_classes_);
  assert(raw_dots == nullptr ||
         static_cast<std::int64_t>(raw_dots->size()) == num_classes_);
  const bool track_norms = norms_valid_;
  util::parallel_for(0, num_classes_, kClassGrain, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t c = b; c < e; ++c) {
      const float u = update[static_cast<std::size_t>(c)];
      if (u == 0.0f) continue;
      const float alpha = learning_rate * u;
      if (track_norms) {
        // ||C + aH||^2 = ||C||^2 + 2a C.H + a^2 ||H||^2, with ||H||^2 = D
        // for bipolar H — so the norm cache survives the update without an
        // O(K*D) refresh per query.
        const double before = raw_dots != nullptr
                                  ? (*raw_dots)[static_cast<std::size_t>(c)]
                                  : dot(class_vector(c), sample);
        double sq = norm_sq_[static_cast<std::size_t>(c)] +
                    2.0 * alpha * before +
                    static_cast<double>(alpha) * alpha * static_cast<double>(dim_);
        sq = std::max(sq, 0.0);
        norm_sq_[static_cast<std::size_t>(c)] = sq;
        norms_[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(sq));
      }
      axpy(class_vector(c), alpha, sample);
    }
  });
}

tensor::Tensor HdClassifier::query_gradient(const std::vector<float>& update) const {
  assert(static_cast<std::int64_t>(update.size()) == num_classes_);
  tensor::Tensor g(tensor::Shape{dim_});
  if (!norms_valid_) refresh_norms();
  const double query_norm = std::sqrt(static_cast<double>(dim_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    // Loss decreases when similarity to under-predicted classes rises, so
    // the ascent direction on H is sum_c u_c * C_c (normalized); we return
    // the negative (descent on -similarity alignment).
    const float u = update[static_cast<std::size_t>(c)];
    if (u == 0.0f) continue;
    const double denom =
        std::max(1e-9, static_cast<double>(norms_[static_cast<std::size_t>(c)]) * query_norm);
    const float scale = static_cast<float>(-u / denom);
    const float* row = class_vector(c);
    for (std::int64_t d = 0; d < dim_; ++d) g[d] += scale * row[d];
  }
  return g;
}

std::vector<Hypervector> HdClassifier::quantized_classes() const {
  std::vector<Hypervector> out;
  out.reserve(static_cast<std::size_t>(num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    out.push_back(Hypervector::from_sign(class_vector(c), dim_));
  }
  return out;
}

double HdClassifier::evaluate_quantized(const std::vector<Hypervector>& samples,
                                        const std::vector<std::int64_t>& labels) const {
  assert(samples.size() == labels.size());
  if (samples.empty()) return 0.0;
  const std::vector<Hypervector> quantized = quantized_classes();
  const auto n = static_cast<std::int64_t>(samples.size());
  const std::int64_t chunks = util::chunk_count(0, n, kSampleGrain);
  std::vector<std::int64_t> chunk_correct(static_cast<std::size_t>(chunks), 0);
  util::parallel_for_chunks(
      0, n, kSampleGrain,
      [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
        std::int64_t local = 0;
        for (std::int64_t i = b; i < e; ++i) {
          if (predict_quantized(quantized, samples[static_cast<std::size_t>(i)]) ==
              labels[static_cast<std::size_t>(i)])
            ++local;
        }
        chunk_correct[static_cast<std::size_t>(chunk)] = local;
      });
  std::int64_t correct = 0;
  for (const std::int64_t c : chunk_correct) correct += c;
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

std::int64_t HdClassifier::predict_quantized(const std::vector<Hypervector>& classes,
                                             const Hypervector& query) {
  assert(!classes.empty());
  std::int64_t best = 0;
  std::int64_t best_dot = classes[0].dot(query);
  for (std::size_t c = 1; c < classes.size(); ++c) {
    const std::int64_t d = classes[c].dot(query);
    if (d > best_dot) {
      best_dot = d;
      best = static_cast<std::int64_t>(c);
    }
  }
  return best;
}

}  // namespace nshd::hd
