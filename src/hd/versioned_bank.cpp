#include "hd/versioned_bank.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

#include "tensor/ops.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace nshd::hd {

const char* to_string(UpdateStatus status) {
  switch (status) {
    case UpdateStatus::kOk: return "ok";
    case UpdateStatus::kBadArgs: return "bad-args";
    case UpdateStatus::kNonFinite: return "non-finite";
    case UpdateStatus::kAccuracyCollapse: return "accuracy-collapse";
    case UpdateStatus::kPublishFault: return "publish-fault";
  }
  return "?";
}

namespace {
constexpr char kSnapshotMetaFormat[] = "online-bank version=%" PRIu64 " cursor=%" PRIu64;
}  // namespace

VersionedBank::VersionedBank(const HdClassifier& initial)
    : dim_(initial.dim()) {
  auto v = std::make_shared<Version>(Version{initial, 0});
  // Publish only norm-warm banks: readers score snapshots concurrently and
  // must never race the lazy (mutable) cosine-norm refresh.
  (void)v->bank.class_norms();
  published_.store(std::move(v), std::memory_order_release);
}

double VersionedBank::guard_accuracy(const HdClassifier& bank) const {
  if (guard_.holdout.empty()) return -1.0;
  return bank.evaluate(guard_.holdout, guard_.holdout_labels, guard_.metric);
}

void VersionedBank::set_guard(UpdateGuard guard) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  guard_ = std::move(guard);
  // Re-baseline: the rollback reference is always the *published* version's
  // accuracy on the *current* holdout.
  published_accuracy_ =
      guard_accuracy(published_.load(std::memory_order_acquire)->bank);
}

template <typename Mutate>
UpdateStatus VersionedBank::publish(Mutate&& mutate, bool accuracy_gated) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const Snapshot current = published_.load(std::memory_order_acquire);

  // Copy-on-write: the shadow is private to this writer until the swap, so
  // readers keep scoring the published version undisturbed.
  auto next = std::make_shared<Version>(*current);
  const UpdateStatus mutated = mutate(next->bank);
  if (mutated != UpdateStatus::kOk) return mutated;

  if (util::fault::should_fire("online.update_nan") &&
      next->bank.num_classes() > 0) {
    next->bank.class_vector(0)[0] = std::numeric_limits<float>::quiet_NaN();
  }

  // Gate 1 — finiteness: a poisoned shadow is dropped here, before any
  // reader can observe it.
  if (!next->bank.bank_finite()) {
    NSHD_LOG_WARN("VersionedBank: update produced a non-finite bank — "
                  "rolled back, version %llu stays published",
                  static_cast<unsigned long long>(current->version));
    return UpdateStatus::kNonFinite;
  }

  // Gate 2 — accuracy: the candidate must not collapse relative to the
  // published version on the guard holdout.
  double candidate_accuracy = published_accuracy_;
  if (accuracy_gated && !guard_.holdout.empty()) {
    candidate_accuracy = guard_accuracy(next->bank);
    double floor = guard_.min_accuracy;
    if (published_accuracy_ >= 0.0)
      floor = std::max(floor, published_accuracy_ - guard_.max_accuracy_drop);
    if (candidate_accuracy < floor) {
      NSHD_LOG_WARN("VersionedBank: guard accuracy %.4f under floor %.4f "
                    "(published %.4f) — rolled back",
                    candidate_accuracy, floor, published_accuracy_);
      return UpdateStatus::kAccuracyCollapse;
    }
  } else if (!guard_.holdout.empty()) {
    // Structural op under an active guard: the label space changed, so the
    // old baseline is stale; re-measure against the (unchanged) holdout.
    candidate_accuracy = guard_accuracy(next->bank);
  }

  // Gate 3 — canonicalize the shadow's norm cache before it becomes shared:
  // a full recompute from the bank values, not the incrementally-maintained
  // running state of the epoch that just ran.  Published norms being a pure
  // function of the bank bits is what bitwise kill-resume from a
  // values-only snapshot rests on — a restored bank recomputes its norms
  // and must replay the stream identically.  (Also keeps readers off the
  // lazy mutable refresh, as with every published version.)
  next->bank.invalidate_norms();
  (void)next->bank.class_norms();
  next->version = current->version + 1;

  // Gate 4 — the swap itself.  A crash here (injected or real) must leave
  // the previous version published and the bank uncorrupted: the store is
  // the *last* action, so an exception anywhere above simply drops `next`.
  try {
    if (util::fault::should_fire("online.publish_crash"))
      throw std::runtime_error("injected online.publish_crash");
    [[maybe_unused]] const detail::TsanIgnoreWritesScope shim;  // see versioned_bank.hpp
    published_.store(std::move(next), std::memory_order_release);
  } catch (const std::exception& e) {
    NSHD_LOG_WARN("VersionedBank: publish faulted (%s) — version %llu stays "
                  "published", e.what(),
                  static_cast<unsigned long long>(current->version));
    return UpdateStatus::kPublishFault;
  }
  published_accuracy_ = candidate_accuracy;
  return UpdateStatus::kOk;
}

UpdateStatus VersionedBank::mass_epoch(const std::vector<Hypervector>& samples,
                                       const std::vector<std::int64_t>& labels,
                                       const MassConfig& config,
                                       double* train_accuracy) {
  if (samples.empty() || samples.size() != labels.size())
    return UpdateStatus::kBadArgs;
  for (const Hypervector& sample : samples)
    if (sample.dim() != dim_) return UpdateStatus::kBadArgs;
  return publish(
      [&](HdClassifier& bank) {
        // Label range is checked against the shadow inside the writer lock:
        // a concurrent remove_class must not slip between check and use.
        for (const std::int64_t label : labels)
          if (label < 0 || label >= bank.num_classes())
            return UpdateStatus::kBadArgs;
        const double accuracy = bank.mass_epoch(samples, labels, config);
        if (train_accuracy != nullptr) *train_accuracy = accuracy;
        return UpdateStatus::kOk;
      },
      /*accuracy_gated=*/true);
}

UpdateStatus VersionedBank::apply_update(const Hypervector& sample,
                                         const std::vector<float>& update,
                                         float learning_rate) {
  if (sample.dim() != dim_) return UpdateStatus::kBadArgs;
  return publish(
      [&](HdClassifier& bank) {
        if (static_cast<std::int64_t>(update.size()) != bank.num_classes())
          return UpdateStatus::kBadArgs;
        bank.apply_update(sample, update, learning_rate);
        return UpdateStatus::kOk;
      },
      /*accuracy_gated=*/true);
}

UpdateStatus VersionedBank::add_class(const std::vector<Hypervector>& samples,
                                      std::int64_t* new_class) {
  if (samples.empty()) return UpdateStatus::kBadArgs;
  for (const Hypervector& sample : samples)
    if (sample.dim() != dim_) return UpdateStatus::kBadArgs;
  std::int64_t index = -1;
  const UpdateStatus status = publish(
      [&](HdClassifier& bank) {
        index = bank.add_class(samples);
        return UpdateStatus::kOk;
      },
      /*accuracy_gated=*/false);
  if (status == UpdateStatus::kOk && new_class != nullptr) *new_class = index;
  return status;
}

UpdateStatus VersionedBank::remove_class(std::int64_t class_index) {
  return publish(
      [&](HdClassifier& bank) {
        if (class_index < 0 || class_index >= bank.num_classes() ||
            bank.num_classes() <= 1)
          return UpdateStatus::kBadArgs;
        bank.remove_class(class_index);
        return UpdateStatus::kOk;
      },
      /*accuracy_gated=*/false);
}

UpdateStatus VersionedBank::reseed(const HdClassifier& bank) {
  if (bank.dim() != dim_) return UpdateStatus::kBadArgs;
  return publish(
      [&](HdClassifier& shadow) {
        shadow = bank;
        return UpdateStatus::kOk;
      },
      /*accuracy_gated=*/false);
}

bool VersionedBank::save_snapshot(const std::string& path,
                                  const std::string& key,
                                  std::uint64_t cursor) const {
  // Snapshot semantics fall straight out of the versioning: grab the
  // published epoch (atomic, no writer lock) and persist that — a writer
  // publishing concurrently is simply not part of this snapshot.
  const Snapshot snap = snapshot();
  util::Checkpoint checkpoint;
  checkpoint.key = key;
  char meta[96];
  std::snprintf(meta, sizeof(meta), kSnapshotMetaFormat, snap->version, cursor);
  checkpoint.meta = meta;
  util::CheckpointTensor bank;
  bank.dims = {snap->bank.num_classes(), snap->bank.dim()};
  const float* data = snap->bank.bank().data();
  bank.values.assign(data, data + snap->bank.num_classes() * snap->bank.dim());
  checkpoint.tensors.push_back(std::move(bank));
  return util::write_checkpoint_file(path, checkpoint);
}

VersionedBank::RestoreResult VersionedBank::load_snapshot(
    const std::string& path, const std::string& key) {
  RestoreResult result;
  const auto fail = [&](util::LoadStatus status) {
    NSHD_LOG_WARN("VersionedBank: snapshot restore from %s failed: %s — "
                  "live bank untouched", path.c_str(), util::to_string(status));
    result.status = status;
    return result;
  };

  // Verify everything *before* the swap (the reload() idiom): CRCs and the
  // commit marker inside read_checkpoint_file, then identity, shape, and
  // numeric health here.
  util::CheckpointLoad load = util::read_checkpoint_file(path);
  if (!load.ok()) return fail(load.status);
  if (!load.checkpoint.key.empty() && load.checkpoint.key != key)
    return fail(util::LoadStatus::kShapeMismatch);
  if (load.checkpoint.tensors.size() != 1)
    return fail(util::LoadStatus::kShapeMismatch);
  util::CheckpointTensor& bank = load.checkpoint.tensors[0];
  if (bank.dims.size() != 2 || bank.dims[0] < 1 || bank.dims[1] != dim_ ||
      bank.values.size() !=
          static_cast<std::size_t>(bank.dims[0]) * static_cast<std::size_t>(dim_))
    return fail(util::LoadStatus::kShapeMismatch);
  std::uint64_t version = 0, cursor = 0;
  if (std::sscanf(load.checkpoint.meta.c_str(), kSnapshotMetaFormat, &version,
                  &cursor) != 2)
    return fail(util::LoadStatus::kShapeMismatch);

  if (util::fault::should_fire("online.snapshot_corrupt") && !bank.values.empty()) {
    bank.values[bank.values.size() / 2] = std::numeric_limits<float>::quiet_NaN();
  }
  if (!tensor::all_finite(bank.values.data(),
                          static_cast<std::int64_t>(bank.values.size())))
    return fail(util::LoadStatus::kNonFinite);

  std::lock_guard<std::mutex> lock(writer_mutex_);
  auto next = std::make_shared<Version>(
      Version{HdClassifier(bank.dims[0], dim_), version});
  std::copy(bank.values.begin(), bank.values.end(), next->bank.bank().data());
  // Direct bank() writes stale the norm cache; honor the contract, then
  // re-warm before publishing (same invariant as every other version).
  next->bank.invalidate_norms();
  (void)next->bank.class_norms();
  {
    [[maybe_unused]] const detail::TsanIgnoreWritesScope shim;  // see versioned_bank.hpp
    published_.store(std::move(next), std::memory_order_release);
  }
  published_accuracy_ =
      guard_accuracy(published_.load(std::memory_order_acquire)->bank);

  result.status = util::LoadStatus::kOk;
  result.version = version;
  result.cursor = cursor;
  return result;
}

}  // namespace nshd::hd
