// Bipolar hypervectors with bit-packed storage.
//
// A bipolar hypervector h in {-1,+1}^D is stored as ceil(D/64) 64-bit words,
// bit=1 encoding +1.  This mirrors the paper's GPU trick (Sec. VI-A): binary
// hypervectors live in a compact read-only bank and all arithmetic against
// float data reduces to sign-dependent add/subtract — no multiplies — while
// binary-binary similarity reduces to popcount.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace nshd::hd {

class Hypervector {
 public:
  Hypervector() = default;

  /// All -1 vector of the given dimensionality.
  explicit Hypervector(std::int64_t dim)
      : dim_(dim), words_(static_cast<std::size_t>((dim + 63) / 64), 0) {}

  /// Random bipolar hypervector (i.i.d. fair bits).
  static Hypervector random(std::int64_t dim, util::Rng& rng);

  /// sign() of a float vector; zero maps to +1 (sign ties are broken
  /// deterministically toward +1).
  static Hypervector from_sign(const float* values, std::int64_t dim);
  static Hypervector from_sign(const tensor::Tensor& values);

  std::int64_t dim() const { return dim_; }
  std::size_t word_count() const { return words_.size(); }
  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t* words() { return words_.data(); }

  /// Element as +1/-1.
  float get(std::int64_t i) const {
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1ULL ? 1.0f : -1.0f;
  }

  void set(std::int64_t i, bool positive) {
    const auto w = static_cast<std::size_t>(i >> 6);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (positive)
      words_[w] |= mask;
    else
      words_[w] &= ~mask;
  }

  /// Unpacks to a float tensor of +1/-1 values.
  tensor::Tensor to_tensor() const;

  /// Flips bit i (binding with a single-position role vector).
  void flip(std::int64_t i) {
    words_[static_cast<std::size_t>(i >> 6)] ^= 1ULL << (i & 63);
  }

  /// Elementwise XOR-binding with another hypervector (bipolar multiply).
  Hypervector bind(const Hypervector& other) const;

  /// Hamming distance (number of differing positions).
  std::int64_t hamming(const Hypervector& other) const;

  /// Bipolar dot product: D - 2 * hamming.
  std::int64_t dot(const Hypervector& other) const;

  bool operator==(const Hypervector& other) const {
    return dim_ == other.dim_ && words_ == other.words_;
  }

 private:
  std::int64_t dim_ = 0;
  std::vector<std::uint64_t> words_;
  /// Clears padding bits above dim_ so popcounts are exact.
  void mask_tail();
};

/// dot(m, h) for float m[0..D) against a packed bipolar h — the
/// multiplication-free kernel of the paper: adds m[i] where bit=+1,
/// subtracts where bit=-1.
double dot(const float* m, const Hypervector& h);

/// m += alpha * h for float m[0..D) (MASS update kernel).
void axpy(float* m, float alpha, const Hypervector& h);

/// Bundling accumulator: sums bipolar hypervectors into integer counters,
/// thresholds to a bipolar result (majority vote).
class BundleAccumulator {
 public:
  explicit BundleAccumulator(std::int64_t dim) : counts_(static_cast<std::size_t>(dim), 0) {}

  void add(const Hypervector& h);
  std::int64_t count() const { return added_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(counts_.size()); }

  /// Majority-vote bipolar hypervector; ties broken by `tie_breaker`.
  Hypervector majority(util::Rng& tie_breaker) const;

  /// Raw counters as floats (non-binarized class prototype).
  tensor::Tensor to_tensor() const;

 private:
  std::vector<std::int32_t> counts_;
  std::int64_t added_ = 0;
};

}  // namespace nshd::hd
