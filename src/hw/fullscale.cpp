#include "hw/fullscale.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace nshd::hw {

std::int64_t ArchModel::feature_params() const {
  std::int64_t total = 0;
  for (const ArchUnit& u : features) total += u.params;
  return total;
}

std::int64_t ArchModel::total_params_excluding_final_fc() const {
  std::int64_t total = feature_params();
  for (const ArchUnit& u : head) total += u.params;
  return total;
}

std::int64_t ArchModel::total_macs() const {
  std::int64_t total = 0;
  for (const ArchUnit& u : features) total += u.macs;
  for (const ArchUnit& u : head) total += u.macs;
  return total;
}

std::int64_t ArchModel::prefix_params(std::size_t cut) const {
  assert(cut < features.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= cut; ++i) total += features[i].params;
  return total;
}

std::int64_t ArchModel::prefix_macs(std::size_t cut) const {
  assert(cut < features.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= cut; ++i) total += features[i].macs;
  return total;
}

namespace {

/// Builder tracking the running activation shape.
class ArchBuilder {
 public:
  ArchBuilder(std::int64_t c, std::int64_t h, std::int64_t w)
      : c_(c), h_(h), w_(w) {}

  /// Dense conv with BN (no bias) or with bias (VGG style).
  void conv(ArchModel& m, std::int64_t out_c, std::int64_t k, std::int64_t s,
            bool with_bn, const std::string& label, bool to_head = false) {
    h_ = out_dim(h_, k, s);
    w_ = out_dim(w_, k, s);
    ArchUnit u;
    u.label = label;
    u.params = out_c * c_ * k * k + (with_bn ? 2 * out_c : out_c);
    u.macs = out_c * c_ * k * k * h_ * w_;
    c_ = out_c;
    set_shape(u);
    (to_head ? m.head : m.features).push_back(u);
  }

  void relu(ArchModel& m, const std::string& label) {
    ArchUnit u;
    u.label = label;
    set_shape(u);
    m.features.push_back(u);
  }

  void maxpool(ArchModel& m, const std::string& label) {
    h_ /= 2;
    w_ /= 2;
    ArchUnit u;
    u.label = label;
    set_shape(u);
    m.features.push_back(u);
  }

  /// One MBConv / inverted-residual block as a single unit.
  ArchUnit mbconv(std::int64_t out_c, std::int64_t expand, std::int64_t k,
                  std::int64_t s, bool use_se, const std::string& label) {
    const std::int64_t in_c = c_;
    const std::int64_t mid = in_c * expand;
    std::int64_t params = 0, macs = 0;
    std::int64_t h = h_, w = w_;
    if (expand != 1) {
      params += mid * in_c + 2 * mid;  // 1x1 expand + BN
      macs += mid * in_c * h * w;
    }
    h = out_dim(h, k, s);
    w = out_dim(w, k, s);
    params += mid * k * k + 2 * mid;  // depthwise + BN
    macs += mid * k * k * h * w;
    if (use_se) {
      // EfficientNet SE: squeeze to in_c/4 of the *block input*, 1x1 convs
      // with bias.
      const std::int64_t reduced = std::max<std::int64_t>(1, in_c / 4);
      params += mid * reduced + reduced;  // fc1
      params += reduced * mid + mid;      // fc2
      macs += 2 * mid * reduced + mid * h * w;
    }
    params += out_c * mid + 2 * out_c;  // 1x1 project + BN
    macs += out_c * mid * h * w;

    c_ = out_c;
    h_ = h;
    w_ = w;
    ArchUnit u;
    u.label = label;
    u.params = params;
    u.macs = macs;
    set_shape(u);
    return u;
  }

  /// An EfficientNet stage (n repeated MBConvs) as one indexable unit.
  void stage(ArchModel& m, std::int64_t out_c, std::int64_t expand,
             std::int64_t k, std::int64_t s, std::int64_t repeats, bool use_se,
             const std::string& label) {
    ArchUnit combined;
    combined.label = label;
    for (std::int64_t r = 0; r < repeats; ++r) {
      const ArchUnit u = mbconv(out_c, expand, k, r == 0 ? s : 1, use_se, label);
      combined.params += u.params;
      combined.macs += u.macs;
      combined.out_c = u.out_c;
      combined.out_h = u.out_h;
      combined.out_w = u.out_w;
    }
    m.features.push_back(combined);
  }

  void linear(ArchModel& m, std::int64_t out, const std::string& label) {
    ArchUnit u;
    u.label = label;
    const std::int64_t in = c_ * h_ * w_;
    u.params = in * out + out;
    u.macs = in * out;
    c_ = out;
    h_ = w_ = 1;
    set_shape(u);
    m.head.push_back(u);
  }

  void global_pool() {
    h_ = w_ = 1;
  }

  std::int64_t flat() const { return c_ * h_ * w_; }

 private:
  static std::int64_t out_dim(std::int64_t in, std::int64_t k, std::int64_t s) {
    return (in + 2 * (k / 2) - k) / s + 1;
  }
  void set_shape(ArchUnit& u) const {
    u.out_c = c_;
    u.out_h = h_;
    u.out_w = w_;
  }
  std::int64_t c_, h_, w_;
};

}  // namespace

ArchModel fullscale_vgg16() {
  ArchModel m;
  m.name = "VGG16";
  ArchBuilder b(3, 224, 224);
  const std::int64_t widths[13] = {64, 64, 128, 128, 256, 256, 256,
                                   512, 512, 512, 512, 512, 512};
  const bool pool_after[13] = {false, true, false, true, false, false, true,
                               false, false, true, false, false, true};
  for (int i = 0; i < 13; ++i) {
    b.conv(m, widths[i], 3, 1, /*with_bn=*/false,
           "conv3-" + std::to_string(widths[i]));
    b.relu(m, "relu");
    if (pool_after[i]) b.maxpool(m, "maxpool");
  }
  // Classifier: FC-4096, FC-4096, and the final prediction FC-1000.
  b.linear(m, 4096, "fc-4096");
  b.linear(m, 4096, "fc-4096");
  // Final prediction layer: tracked separately (excluded from the paper's
  // size accounting).
  m.final_fc_params = 4096 * 1000 + 1000;
  return m;
}

ArchModel fullscale_mobilenetv2() {
  ArchModel m;
  m.name = "Mobilenetv2";
  ArchBuilder b(3, 224, 224);
  b.conv(m, 32, 3, 2, /*with_bn=*/true, "ConvBNReLU-32");  // 0
  struct Stage {
    std::int64_t t, c, n, s;
  };
  const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2}, {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1}, {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  for (const Stage& st : stages) {
    for (std::int64_t r = 0; r < st.n; ++r) {
      m.features.push_back(b.mbconv(st.c, st.t, 3, r == 0 ? st.s : 1,
                                    /*use_se=*/false, "InvertedResidual"));
    }
  }
  b.conv(m, 1280, 1, 1, /*with_bn=*/true, "ConvBNReLU-1280");  // 18
  b.global_pool();
  m.final_fc_params = 1280 * 1000 + 1000;
  return m;
}

namespace {
ArchModel fullscale_efficientnet(const std::string& name, std::int64_t stem_c,
                                 const std::vector<std::array<std::int64_t, 5>>& cfg,
                                 std::int64_t head_c, std::int64_t classes_in) {
  // cfg entries: {expand, out_c, repeats, stride, kernel}.
  ArchModel m;
  m.name = name;
  ArchBuilder b(3, 224, 224);
  b.conv(m, stem_c, 3, 2, /*with_bn=*/true, "stem");  // block 0
  int stage_index = 1;
  for (const auto& st : cfg) {
    b.stage(m, st[1], st[0], st[4], st[3], st[2], /*use_se=*/true,
            "stage" + std::to_string(stage_index++));
  }
  b.conv(m, head_c, 1, 1, /*with_bn=*/true, "head-conv");  // block 8
  b.global_pool();
  m.final_fc_params = head_c * classes_in + classes_in;
  return m;
}
}  // namespace

ArchModel fullscale_efficientnet_b0() {
  return fullscale_efficientnet(
      "Efficientnetb0", 32,
      {{{1, 16, 1, 1, 3}},
       {{6, 24, 2, 2, 3}},
       {{6, 40, 2, 2, 5}},
       {{6, 80, 3, 2, 3}},
       {{6, 112, 3, 1, 5}},
       {{6, 192, 4, 2, 5}},
       {{6, 320, 1, 1, 3}}},
      1280, 1000);
}

ArchModel fullscale_efficientnet_b7() {
  // Compound scaling: width x2.0, depth x3.1 relative to B0.
  return fullscale_efficientnet(
      "Efficientnetb7", 64,
      {{{1, 32, 4, 1, 3}},
       {{6, 48, 7, 2, 3}},
       {{6, 80, 7, 2, 5}},
       {{6, 160, 10, 2, 3}},
       {{6, 224, 10, 1, 5}},
       {{6, 384, 13, 2, 5}},
       {{6, 640, 4, 1, 3}}},
      2560, 1000);
}

ArchModel fullscale_for(const std::string& zoo_name) {
  if (zoo_name == "vgg16s") return fullscale_vgg16();
  if (zoo_name == "mobilenetv2s") return fullscale_mobilenetv2();
  if (zoo_name == "efficientnet_b0s") return fullscale_efficientnet_b0();
  if (zoo_name == "efficientnet_b7s") return fullscale_efficientnet_b7();
  throw std::invalid_argument("unknown zoo model: " + zoo_name);
}

std::int64_t fullscale_pooled_features(const ArchUnit& unit) {
  if (unit.out_h >= 2 || unit.out_w >= 2) {
    return unit.out_c * std::max<std::int64_t>(1, unit.out_h / 2) *
           std::max<std::int64_t>(1, unit.out_w / 2);
  }
  return (unit.feature_dim() + 1) / 2;
}

SizeReport model_size_report(const ArchModel& arch, std::size_t cut,
                             std::int64_t dim, std::int64_t f_hat,
                             std::int64_t num_classes) {
  SizeReport report;
  report.cnn_bytes =
      static_cast<double>(arch.total_params_excluding_final_fc()) * 4.0;

  const double prefix_bytes = static_cast<double>(arch.prefix_params(cut)) * 4.0;
  const double class_bytes = static_cast<double>(num_classes * dim) * 4.0;

  const std::int64_t pooled = fullscale_pooled_features(arch.unit(cut));
  const double manifold_bytes = static_cast<double>(pooled * f_hat + f_hat) * 4.0;
  const double nshd_projection_bytes = static_cast<double>(dim * f_hat) / 8.0;
  report.nshd_bytes =
      prefix_bytes + manifold_bytes + nshd_projection_bytes + class_bytes;

  const std::int64_t raw = arch.unit(cut).feature_dim();
  const double baseline_projection_bytes = static_cast<double>(dim * raw) / 8.0;
  report.baseline_bytes = prefix_bytes + baseline_projection_bytes + class_bytes;
  return report;
}

}  // namespace nshd::hw
