// Operation/parameter census over the trained (scaled) models.
//
// Fig. 5's MAC comparison and the energy/FPGA models consume this census.
// The binding/bundling accounting follows the paper (Sec. VII-B2): each
// binding is an element-wise multiply, each bundling an element-wise add, so
// encoding F features into D dimensions costs F*D MACs; similarity against K
// class hypervectors costs K*D.
#pragma once

#include <cstdint>

#include "models/zoo.hpp"

namespace nshd::hw {

/// Census of a full CNN inference (features + head).
struct CnnCensus {
  std::int64_t macs = 0;
  std::int64_t params = 0;
};

/// Stage-by-stage census of an NSHD (or BaselineHD) inference.
struct NshdCensus {
  std::int64_t prefix_macs = 0;      // cut CNN
  std::int64_t manifold_macs = 0;    // FC regressor (0 for BaselineHD)
  std::int64_t encode_macs = 0;      // binding/bundling, F_in * D
  std::int64_t similarity_macs = 0;  // K * D
  std::int64_t prefix_params = 0;
  std::int64_t manifold_params = 0;
  std::int64_t projection_bits = 0;  // D * F_in (bipolar, 1 bit each)
  std::int64_t class_params = 0;     // K * D floats

  std::int64_t total_macs() const {
    return prefix_macs + manifold_macs + encode_macs + similarity_macs;
  }
  std::int64_t hd_macs() const {
    return manifold_macs + encode_macs + similarity_macs;
  }
};

/// MACs for one inference through the full model (scaled zoo entry).
CnnCensus cnn_census(models::ZooModel& model);

/// MACs/params of layers [0..cut] only.
std::int64_t prefix_macs(models::ZooModel& model, std::size_t cut);
std::int64_t prefix_params(models::ZooModel& model, std::size_t cut);

/// Census for NSHD at a cut: manifold (maxpool/2 + FC to f_hat) + encoding
/// at dimensionality `dim` + similarity over `num_classes`.
NshdCensus nshd_census(models::ZooModel& model, std::size_t cut,
                       std::int64_t dim, std::int64_t f_hat,
                       std::int64_t num_classes);

/// Census for BaselineHD at a cut: raw features straight into the encoder
/// (no manifold), as in prior work [9].
NshdCensus baseline_census(models::ZooModel& model, std::size_t cut,
                           std::int64_t dim, std::int64_t num_classes);

/// Pooled feature count after the manifold's window-2 maxpool.
std::int64_t pooled_features(const tensor::Shape& chw);

}  // namespace nshd::hw
