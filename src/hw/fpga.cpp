#include "hw/fpga.hpp"

#include <algorithm>

namespace nshd::hw {

std::vector<ResourceRow> FpgaModel::resource_utilization() {
  // DPU B4096 + AXI interconnect as configured for the ZCU104 deployment.
  // These mirror the paper's Table I totals; availability figures are the
  // ZCU104 (XCZU7EV) device limits.
  return {
      {"LUT", 84.9e3, 230.4e3},
      {"FF", 146.5e3, 460.8e3},
      {"BRAM", 224, 312},
      {"URAM", 40, 96},
      {"DSP", 844, 1728},
  };
}

double FpgaModel::stage_seconds(double ops, double ops_per_cycle, double bytes) const {
  const double compute_cycles = ops / ops_per_cycle;
  const double memory_cycles = bytes / config_.ddr_bytes_per_cycle;
  return std::max(compute_cycles, memory_cycles) / config_.frequency_hz;
}

double FpgaModel::cnn_latency_s(const CnnCensus& census, std::size_t layer_count) const {
  // INT8 deployment: one byte per weight streamed.
  const double conv_s = stage_seconds(static_cast<double>(census.macs),
                                      config_.conv_macs_per_cycle,
                                      static_cast<double>(census.params));
  const double overhead_s = static_cast<double>(layer_count) *
                            config_.layer_overhead_cycles / config_.frequency_hz;
  return conv_s + overhead_s;
}

double FpgaModel::nshd_latency_s(const NshdCensus& census,
                                 std::size_t prefix_layers) const {
  const double prefix_s = stage_seconds(static_cast<double>(census.prefix_macs),
                                        config_.conv_macs_per_cycle,
                                        static_cast<double>(census.prefix_params));
  const double manifold_s = stage_seconds(static_cast<double>(census.manifold_macs),
                                          config_.conv_macs_per_cycle,
                                          static_cast<double>(census.manifold_params));
  // Binding/bundling + similarity: binary data, packed weights.
  const double hd_ops = static_cast<double>(census.encode_macs + census.similarity_macs);
  const double hd_bytes = static_cast<double>(census.projection_bits) / 8.0 +
                          static_cast<double>(census.class_params);
  const double hd_s = stage_seconds(hd_ops, config_.hd_ops_per_cycle, hd_bytes);
  const double overhead_s = static_cast<double>(prefix_layers + 3) *
                            config_.layer_overhead_cycles / config_.frequency_hz;
  return prefix_s + manifold_s + hd_s + overhead_s;
}

QuantCrossCheck quant_cross_check(const FpgaModel& model, const NshdCensus& census,
                                  std::size_t prefix_layers, double measured_fps) {
  // Prefix-only latency: reuse nshd_latency_s with the HD stages zeroed so
  // the analytic side executes exactly what the measured int8 plan executes.
  NshdCensus prefix_only;
  prefix_only.prefix_macs = census.prefix_macs;
  prefix_only.prefix_params = census.prefix_params;
  QuantCrossCheck check;
  const double latency_s = model.nshd_latency_s(prefix_only, prefix_layers);
  check.analytic_fps = latency_s > 0.0 ? 1.0 / latency_s : 0.0;
  check.measured_fps = measured_fps;
  check.analytic_over_measured =
      measured_fps > 0.0 ? check.analytic_fps / measured_fps : 0.0;
  return check;
}

}  // namespace nshd::hw
