// Full-scale architecture descriptors for the deployment-cost studies.
//
// The accuracy experiments run on width-scaled 32x32 models (trainable on
// CPU), but Table II's model sizes are properties of the *original* 224x224
// ImageNet architectures.  This module describes real VGG16, MobileNetV2,
// EfficientNet-B0 and EfficientNet-B7 layer-by-layer (parameters, MACs,
// output shapes) under the paper's layer indexing, so the size/MAC
// accounting reproduces the paper's absolute numbers:
//   CNN column      = (total params - final prediction layer) * 4 bytes
//   NSHD at cut L   = prefix params * 4B + manifold FC * 4B
//                     + projection (D x F_hat, 1 bit each) + classes K*D*4B
//   BaselineHD at L = prefix params * 4B + projection (D x F_raw bits)
//                     + classes K*D*4B
// (verified against Table II: VGG16 537.2/69.05/96.61MB etc.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nshd::hw {

/// One paper-indexable unit of a full-scale model.
struct ArchUnit {
  std::string label;       // e.g. "conv3-256", "MBConv6 k5", "stage5"
  std::int64_t params = 0; // trainable parameters (incl. BN affine)
  std::int64_t macs = 0;   // multiply-accumulates at 224x224 input
  std::int64_t out_c = 0, out_h = 0, out_w = 0;

  std::int64_t feature_dim() const { return out_c * out_h * out_w; }
};

struct ArchModel {
  std::string name;                 // display name ("VGG16", ...)
  std::vector<ArchUnit> features;   // paper-indexed feature stack
  std::vector<ArchUnit> head;       // classifier head (pre final FC)
  std::int64_t final_fc_params = 0; // excluded from the paper's CNN size

  std::int64_t feature_params() const;
  std::int64_t total_params_excluding_final_fc() const;
  std::int64_t total_macs() const;
  std::int64_t prefix_params(std::size_t cut) const;
  std::int64_t prefix_macs(std::size_t cut) const;
  const ArchUnit& unit(std::size_t index) const { return features.at(index); }
};

ArchModel fullscale_vgg16();
ArchModel fullscale_mobilenetv2();
ArchModel fullscale_efficientnet_b0();
ArchModel fullscale_efficientnet_b7();

/// By zoo name ("vgg16s" -> full-scale VGG16, ...).
ArchModel fullscale_for(const std::string& zoo_name);

/// Window-2 maxpool output size used by the manifold layer.
std::int64_t fullscale_pooled_features(const ArchUnit& unit);

/// Size accounting (bytes) per the scheme above.
struct SizeReport {
  double cnn_bytes = 0.0;
  double nshd_bytes = 0.0;
  double baseline_bytes = 0.0;
};
SizeReport model_size_report(const ArchModel& arch, std::size_t cut,
                             std::int64_t dim, std::int64_t f_hat,
                             std::int64_t num_classes);

}  // namespace nshd::hw
