// Analytic inference-energy model for an embedded GPU (Xavier-class).
//
// The paper measures wall power with nvidia-smi on an NVIDIA Xavier; this
// reproduction substitutes a standard architectural energy model:
//
//   E = sum_over_stages( ops * e_op(precision) )
//     + weight_bytes_touched * e_dram
//     + activations_bytes * e_sram
//
// Coefficients are taken from published 16nm-class per-operation energy
// surveys (Horowitz ISSCC'14 scaled): an FP16 MAC ~1 pJ, an INT8 MAC
// ~0.3 pJ, a binary add/sub ~0.1 pJ, DRAM ~80 pJ/byte, on-chip SRAM
// ~2.5 pJ/byte.  Fig. 4 reports *relative* improvements, which depend only
// on the ratios of these terms.
#pragma once

#include "hw/census.hpp"

namespace nshd::hw {

struct EnergyCoefficients {
  double fp16_mac_pj = 1.0;    // CNN layers run FP16 on tensor cores
  double int8_mac_pj = 0.30;   // quantized manifold FC
  double binary_op_pj = 0.10;  // HD add/sub (no multiply, Sec. VI-A)
  double dram_pj_per_byte = 80.0;
  double sram_pj_per_byte = 2.5;

  static EnergyCoefficients xavier_like() { return {}; }
};

struct EnergyBreakdown {
  double compute_pj = 0.0;
  double weight_memory_pj = 0.0;
  double total_pj() const { return compute_pj + weight_memory_pj; }
  double total_mj() const { return total_pj() * 1e-9; }
};

/// Energy of one full-CNN inference (FP16 compute, weights streamed once).
EnergyBreakdown cnn_energy(const CnnCensus& census, const EnergyCoefficients& c);

/// Energy of one NSHD inference: FP16 prefix, INT8 manifold, binary HD ops;
/// projection weights are bit-packed, class vectors float.
EnergyBreakdown nshd_energy(const NshdCensus& census, const EnergyCoefficients& c);

/// Percentage improvement of NSHD over the CNN: (E_cnn - E_nshd) / E_cnn.
double energy_improvement(const EnergyBreakdown& cnn, const EnergyBreakdown& nshd);

}  // namespace nshd::hw
