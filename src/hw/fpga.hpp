// FPGA (ZCU104 + DPU-style) deployment model.
//
// The paper maps NSHD onto the Xilinx DPU IP via Vitis AI (Sec. VI-B) and
// reports Table I (resource utilization), Fig. 6 (throughput) and Fig. 10
// (dimension/throughput tradeoff).  This module substitutes a roofline-style
// performance model of a B4096-class DPU:
//   * convolutions run INT8 on the DSP array at `macs_per_cycle` MAC/cycle,
//   * HD binding/similarity run as quantized element-wise tensor ops at a
//     higher per-cycle rate (adds, no multiplies, LUT fabric assists),
//   * each layer pays a fixed instruction-dispatch overhead,
//   * weights stream over a bounded DDR bandwidth (the slower of the
//     compute/bandwidth bounds wins per stage).
#pragma once

#include <string>
#include <vector>

#include "hw/census.hpp"

namespace nshd::hw {

/// One row of Table I.
struct ResourceRow {
  std::string resource;
  double used = 0.0;
  double available = 0.0;
  double utilization() const { return available > 0.0 ? used / available : 0.0; }
};

struct FpgaModelConfig {
  double frequency_hz = 200e6;          // Table I: 200MHz
  double conv_macs_per_cycle = 2304.0;  // B4096-class DPU at INT8, ~56% eff.
  double hd_ops_per_cycle = 8192.0;     // binary add/sub on LUT fabric
  double layer_overhead_cycles = 2000.0;
  double ddr_bytes_per_cycle = 64.0;    // ~12.8 GB/s effective at 200MHz
  double power_watts = 4.427;           // Table I
};

class FpgaModel {
 public:
  explicit FpgaModel(const FpgaModelConfig& config = {}) : config_(config) {}

  /// Table I: DPU IP resource usage on the ZCU104 (fixed by the DPU
  /// configuration, independent of the model mapped onto it).
  static std::vector<ResourceRow> resource_utilization();

  /// Seconds for one full-CNN inference.
  double cnn_latency_s(const CnnCensus& census, std::size_t layer_count) const;

  /// Seconds for one NSHD inference (prefix + manifold + HD stages).
  double nshd_latency_s(const NshdCensus& census, std::size_t prefix_layers) const;

  double cnn_fps(const CnnCensus& census, std::size_t layer_count) const {
    return 1.0 / cnn_latency_s(census, layer_count);
  }
  double nshd_fps(const NshdCensus& census, std::size_t prefix_layers) const {
    return 1.0 / nshd_latency_s(census, prefix_layers);
  }

  /// Energy per inference at the plate power (J).
  double energy_per_inference_j(double latency_s) const {
    return latency_s * config_.power_watts;
  }

  const FpgaModelConfig& config() const { return config_; }

 private:
  double stage_seconds(double ops, double ops_per_cycle, double bytes) const;
  FpgaModelConfig config_;
};

/// Cross-check of the analytic INT8 deployment model against a *measured*
/// int8 extractor throughput (the CPU quantized plan benchmarked by
/// bench_quant).  Both sides consume the same census, so the ratio isolates
/// how far the DPU roofline abstraction sits from real silicon: a B4096-class
/// DPU against a handful of CPU SIMD lanes should land well above 1.
struct QuantCrossCheck {
  double analytic_fps = 0.0;        // DPU-model prefix-only throughput
  double measured_fps = 0.0;        // measured CPU int8 samples/s
  double analytic_over_measured = 0.0;  // 0 when measured_fps <= 0
};

/// Prefix-only (cut CNN) analytic INT8 throughput vs `measured_fps`.
/// The prefix is the only stage the quantized plan executes, so the
/// comparison excludes the HD stages on both sides.
QuantCrossCheck quant_cross_check(const FpgaModel& model, const NshdCensus& census,
                                  std::size_t prefix_layers, double measured_fps);

}  // namespace nshd::hw
