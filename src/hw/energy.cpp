#include "hw/energy.hpp"

namespace nshd::hw {

EnergyBreakdown cnn_energy(const CnnCensus& census, const EnergyCoefficients& c) {
  EnergyBreakdown e;
  e.compute_pj = static_cast<double>(census.macs) * c.fp16_mac_pj;
  // FP16 deployment: 2 bytes per parameter streamed from DRAM per inference
  // (batch-1 edge inference cannot amortize weight reuse across samples).
  e.weight_memory_pj = static_cast<double>(census.params) * 2.0 * c.dram_pj_per_byte;
  return e;
}

EnergyBreakdown nshd_energy(const NshdCensus& census, const EnergyCoefficients& c) {
  EnergyBreakdown e;
  e.compute_pj = static_cast<double>(census.prefix_macs) * c.fp16_mac_pj +
                 static_cast<double>(census.manifold_macs) * c.int8_mac_pj +
                 static_cast<double>(census.encode_macs + census.similarity_macs) *
                     c.binary_op_pj;
  const double prefix_bytes = static_cast<double>(census.prefix_params) * 2.0;
  const double manifold_bytes = static_cast<double>(census.manifold_params) * 1.0;
  const double projection_bytes = static_cast<double>(census.projection_bits) / 8.0;
  const double class_bytes = static_cast<double>(census.class_params) * 2.0;
  // Projection + class banks are small enough to pin in on-chip memory
  // (constant memory in the CUDA implementation, Sec. VI-A).
  e.weight_memory_pj = (prefix_bytes + manifold_bytes) * c.dram_pj_per_byte +
                       (projection_bytes + class_bytes) * c.sram_pj_per_byte;
  return e;
}

double energy_improvement(const EnergyBreakdown& cnn, const EnergyBreakdown& nshd) {
  const double cnn_total = cnn.total_pj();
  if (cnn_total <= 0.0) return 0.0;
  return (cnn_total - nshd.total_pj()) / cnn_total;
}

}  // namespace nshd::hw
