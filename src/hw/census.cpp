#include "hw/census.hpp"

#include <algorithm>
#include <cassert>

namespace nshd::hw {

namespace {
/// Walks layers [0..last] of the model's net accumulating MACs, tracking the
/// activation shape as it goes.
std::int64_t walk_macs(models::ZooModel& model, std::size_t last) {
  tensor::Shape s{1, model.input_chw[0], model.input_chw[1], model.input_chw[2]};
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    const nn::Layer& layer = model.net.layer(i);
    if (layer.kind() == nn::LayerKind::kFlatten ||
        layer.kind() == nn::LayerKind::kLinear) {
      if (s.rank() == 4) s = tensor::Shape{s[0], s.numel() / s[0]};
    }
    const tensor::Shape chw = s.rank() == 4 ? tensor::Shape{s[1], s[2], s[3]}
                                            : tensor::Shape{s[1]};
    total += layer.macs_per_sample(chw);
    s = layer.output_shape(s);
  }
  return total;
}

std::int64_t layer_params(nn::Layer& layer) {
  std::int64_t total = 0;
  for (const nn::Param* p : layer.params()) total += p->value.numel();
  return total;
}
}  // namespace

CnnCensus cnn_census(models::ZooModel& model) {
  CnnCensus census;
  census.macs = walk_macs(model, model.net.size() - 1);
  for (std::size_t i = 0; i < model.net.size(); ++i) {
    census.params += layer_params(model.net.layer(i));
  }
  return census;
}

std::int64_t prefix_macs(models::ZooModel& model, std::size_t cut) {
  assert(cut < model.net.size());
  return walk_macs(model, cut);
}

std::int64_t prefix_params(models::ZooModel& model, std::size_t cut) {
  assert(cut < model.net.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i <= cut; ++i) total += layer_params(model.net.layer(i));
  return total;
}

std::int64_t pooled_features(const tensor::Shape& chw) {
  assert(chw.rank() == 3);
  // Mirrors core::ManifoldLearner: window-2 pooling only when the map has
  // spatial extent to spare.
  if (chw[1] >= 4 || chw[2] >= 4) {
    return chw[0] * std::max<std::int64_t>(1, chw[1] / 2) *
           std::max<std::int64_t>(1, chw[2] / 2);
  }
  return chw.numel();
}

NshdCensus nshd_census(models::ZooModel& model, std::size_t cut,
                       std::int64_t dim, std::int64_t f_hat,
                       std::int64_t num_classes) {
  NshdCensus census;
  census.prefix_macs = prefix_macs(model, cut);
  census.prefix_params = prefix_params(model, cut);
  const std::int64_t pooled = pooled_features(model.feature_shape_at(cut));
  census.manifold_macs = pooled * f_hat;
  census.manifold_params = pooled * f_hat + f_hat;
  census.encode_macs = f_hat * dim;
  census.similarity_macs = num_classes * dim;
  census.projection_bits = f_hat * dim;
  census.class_params = num_classes * dim;
  return census;
}

NshdCensus baseline_census(models::ZooModel& model, std::size_t cut,
                           std::int64_t dim, std::int64_t num_classes) {
  NshdCensus census;
  census.prefix_macs = prefix_macs(model, cut);
  census.prefix_params = prefix_params(model, cut);
  const std::int64_t features = model.feature_dim_at(cut);
  census.encode_macs = features * dim;
  census.similarity_macs = num_classes * dim;
  census.projection_bits = features * dim;
  census.class_params = num_classes * dim;
  return census;
}

}  // namespace nshd::hw
