// Embedded-GPU (Xavier-class) latency/throughput model.
//
// The abstract quotes NSHD's headline as "up to 64% of the execution time
// reduction" on the NVIDIA Xavier; this module models inference latency the
// same way FpgaModel models the DPU: per-stage roofline between compute
// throughput and DRAM bandwidth, plus a per-layer kernel-launch overhead.
// CNN layers run FP16 on tensor cores; the manifold FC runs INT8 (TensorRT);
// HD stages run as binary add/sub kernels bounded by integer-op throughput.
#pragma once

#include "hw/census.hpp"

namespace nshd::hw {

struct GpuModelConfig {
  double fp16_macs_per_s = 11e12;   // Xavier tensor-core class peak (~22 TOPS/2)
  double int8_macs_per_s = 22e12;   // INT8 path
  double binary_ops_per_s = 40e12;  // add/sub on packed operands
  double dram_bytes_per_s = 100e9;  // ~137 GB/s peak, ~70% achievable
  double kernel_launch_s = 8e-6;    // per layer/stage dispatch overhead
  double efficiency = 0.35;         // achieved fraction of peak on small batches
};

class GpuModel {
 public:
  explicit GpuModel(const GpuModelConfig& config = {}) : config_(config) {}

  /// Seconds for one full-CNN inference (batch 1).
  double cnn_latency_s(const CnnCensus& census, std::size_t layer_count) const;

  /// Seconds for one NSHD inference: prefix + manifold + encode/similarity.
  double nshd_latency_s(const NshdCensus& census, std::size_t prefix_layers) const;

  /// Execution-time reduction of NSHD vs the CNN (the abstract's headline
  /// metric): (t_cnn - t_nshd) / t_cnn.
  double time_reduction(const CnnCensus& cnn, std::size_t cnn_layers,
                        const NshdCensus& nshd, std::size_t prefix_layers) const;

  const GpuModelConfig& config() const { return config_; }

 private:
  double stage_seconds(double ops, double ops_per_s, double bytes) const;
  GpuModelConfig config_;
};

}  // namespace nshd::hw
