#include "hw/gpu.hpp"

#include <algorithm>

namespace nshd::hw {

double GpuModel::stage_seconds(double ops, double ops_per_s, double bytes) const {
  const double compute_s = ops / (ops_per_s * config_.efficiency);
  const double memory_s = bytes / config_.dram_bytes_per_s;
  return std::max(compute_s, memory_s);
}

double GpuModel::cnn_latency_s(const CnnCensus& census, std::size_t layer_count) const {
  // FP16 deployment: two bytes per weight streamed per inference.
  const double conv_s = stage_seconds(static_cast<double>(census.macs),
                                      config_.fp16_macs_per_s,
                                      static_cast<double>(census.params) * 2.0);
  return conv_s + static_cast<double>(layer_count) * config_.kernel_launch_s;
}

double GpuModel::nshd_latency_s(const NshdCensus& census,
                                std::size_t prefix_layers) const {
  const double prefix_s = stage_seconds(static_cast<double>(census.prefix_macs),
                                        config_.fp16_macs_per_s,
                                        static_cast<double>(census.prefix_params) * 2.0);
  const double manifold_s = stage_seconds(static_cast<double>(census.manifold_macs),
                                          config_.int8_macs_per_s,
                                          static_cast<double>(census.manifold_params));
  // Projection rows live in constant memory (Sec. VI-A): bit-packed weights,
  // float class bank.
  const double hd_ops =
      static_cast<double>(census.encode_macs + census.similarity_macs);
  const double hd_bytes = static_cast<double>(census.projection_bits) / 8.0 +
                          static_cast<double>(census.class_params) * 2.0;
  const double hd_s = stage_seconds(hd_ops, config_.binary_ops_per_s, hd_bytes);
  return prefix_s + manifold_s + hd_s +
         static_cast<double>(prefix_layers + 3) * config_.kernel_launch_s;
}

double GpuModel::time_reduction(const CnnCensus& cnn, std::size_t cnn_layers,
                                const NshdCensus& nshd,
                                std::size_t prefix_layers) const {
  const double t_cnn = cnn_latency_s(cnn, cnn_layers);
  if (t_cnn <= 0.0) return 0.0;
  return (t_cnn - nshd_latency_s(nshd, prefix_layers)) / t_cnn;
}

}  // namespace nshd::hw
