// Exact t-SNE (van der Maaten & Hinton 2008) for the Fig. 11 explainability
// study: 2-D projection of sample hypervectors before/after HD retraining.
// O(N^2) per iteration; intended for <= ~2000 points, which covers the
// paper's use.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace nshd::analysis {

struct TsneConfig {
  double perplexity = 30.0;
  std::int64_t iterations = 400;
  double learning_rate = 150.0;
  double early_exaggeration = 12.0;
  std::int64_t exaggeration_iters = 80;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  std::int64_t momentum_switch_iter = 120;
  std::uint64_t seed = 3;
};

/// Embeds `points` ([N, F]) into 2-D ([N, 2]).
tensor::Tensor tsne(const tensor::Tensor& points, const TsneConfig& config = {});

/// Mean silhouette coefficient of a labeled 2-D (or any-D) embedding —
/// quantifies Fig. 11's "tight clusters" claim.  Range [-1, 1].
double silhouette_score(const tensor::Tensor& points,
                        const std::vector<std::int64_t>& labels);

/// Ratio of mean inter-class to mean intra-class pairwise distance; > 1
/// means classes separate.
double class_separation_ratio(const tensor::Tensor& points,
                              const std::vector<std::int64_t>& labels);

}  // namespace nshd::analysis
