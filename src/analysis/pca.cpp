#include "analysis/pca.hpp"

#include <cassert>
#include <cmath>

#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace nshd::analysis {

Pca::Pca(const tensor::Tensor& data, std::int64_t components,
         std::int64_t power_iterations, std::uint64_t seed) {
  assert(data.shape().rank() == 2);
  const std::int64_t n = data.shape()[0];
  const std::int64_t f = data.shape()[1];
  assert(components >= 1 && components <= f);
  assert(n >= 2);

  mean_ = tensor::Tensor(tensor::Shape{f});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = data.data() + i * f;
    for (std::int64_t j = 0; j < f; ++j) mean_[j] += row[j];
  }
  for (std::int64_t j = 0; j < f; ++j) mean_[j] /= static_cast<float>(n);

  // Covariance C = X_c^T X_c / (n-1), built once ([F, F]).
  tensor::Tensor cov(tensor::Shape{f, f});
  {
    tensor::Tensor centered(tensor::Shape{n, f});
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = data.data() + i * f;
      float* out = centered.data() + i * f;
      for (std::int64_t j = 0; j < f; ++j) out[j] = row[j] - mean_[j];
    }
    tensor::gemm_at(centered.data(), centered.data(), cov.data(), f, n, f);
    const float scale = 1.0f / static_cast<float>(n - 1);
    for (float& x : cov.span()) x *= scale;
  }
  for (std::int64_t j = 0; j < f; ++j) total_variance_ += cov.at(j, j);

  directions_ = tensor::Tensor(tensor::Shape{components, f});
  variance_.reserve(static_cast<std::size_t>(components));
  util::Rng rng(seed);

  std::vector<float> v(static_cast<std::size_t>(f));
  std::vector<float> w(static_cast<std::size_t>(f));
  for (std::int64_t c = 0; c < components; ++c) {
    for (auto& x : v) x = rng.normal();
    double eigenvalue = 0.0;
    for (std::int64_t it = 0; it < power_iterations; ++it) {
      tensor::gemv(cov.data(), v.data(), w.data(), f, f);
      double norm = 0.0;
      for (float x : w) norm += static_cast<double>(x) * x;
      norm = std::sqrt(norm);
      if (norm < 1e-20) break;
      for (std::int64_t j = 0; j < f; ++j)
        v[static_cast<std::size_t>(j)] = w[static_cast<std::size_t>(j)] / static_cast<float>(norm);
      eigenvalue = norm;
    }
    variance_.push_back(static_cast<float>(eigenvalue));
    float* dir = directions_.data() + c * f;
    for (std::int64_t j = 0; j < f; ++j) dir[j] = v[static_cast<std::size_t>(j)];
    // Deflate: C -= lambda v v^T.
    for (std::int64_t a = 0; a < f; ++a) {
      const float va = v[static_cast<std::size_t>(a)] * static_cast<float>(eigenvalue);
      float* row = cov.data() + a * f;
      for (std::int64_t b = 0; b < f; ++b) row[b] -= va * v[static_cast<std::size_t>(b)];
    }
  }
}

tensor::Tensor Pca::transform(const float* row) const {
  const std::int64_t f = features();
  std::vector<float> centered(static_cast<std::size_t>(f));
  for (std::int64_t j = 0; j < f; ++j) centered[static_cast<std::size_t>(j)] = row[j] - mean_[j];
  tensor::Tensor out(tensor::Shape{components()});
  tensor::gemv(directions_.data(), centered.data(), out.data(), components(), f);
  return out;
}

tensor::Tensor Pca::transform(const tensor::Tensor& row) const {
  assert(row.numel() == features());
  return transform(row.data());
}

double Pca::explained_variance_ratio() const {
  if (total_variance_ <= 0.0) return 0.0;
  double captured = 0.0;
  for (float v : variance_) captured += v;
  return captured / total_variance_;
}

}  // namespace nshd::analysis
