#include "analysis/tsne.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "util/thread_pool.hpp"

namespace nshd::analysis {

namespace {

// Rows per parallel chunk for the O(N^2) passes.  Small and fixed: the
// upper-triangle loops shrink with the row index, so fine chunks level the
// load, and a constant grain keeps chunk boundaries — and every float —
// independent of the thread count.
constexpr std::int64_t kRowGrain = 4;

/// Squared Euclidean distance matrix [N, N].
std::vector<double> pairwise_sq_distances(const tensor::Tensor& points) {
  const std::int64_t n = points.shape()[0];
  const std::int64_t f = points.shape()[1];
  std::vector<double> d2(static_cast<std::size_t>(n * n), 0.0);
  // Each chunk fills the upper triangle of its own rows (disjoint writes);
  // the symmetric lower triangle is mirrored serially afterwards.
  util::parallel_for(0, n, kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* pi = points.data() + i * f;
      for (std::int64_t j = i + 1; j < n; ++j) {
        const float* pj = points.data() + j * f;
        double acc = 0.0;
        for (std::int64_t k = 0; k < f; ++k) {
          const double diff = static_cast<double>(pi[k]) - pj[k];
          acc += diff * diff;
        }
        d2[static_cast<std::size_t>(i * n + j)] = acc;
      }
    }
  });
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j)
      d2[static_cast<std::size_t>(j * n + i)] = d2[static_cast<std::size_t>(i * n + j)];
  return d2;
}

/// Binary-searches the Gaussian bandwidth of row i to match the target
/// perplexity; writes conditional probabilities p_{j|i} into `row`.
void fit_row_bandwidth(const std::vector<double>& d2, std::int64_t n,
                       std::int64_t i, double perplexity, double* row) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      row[j] = (j == i) ? 0.0 : std::exp(-beta * d2[static_cast<std::size_t>(i * n + j)]);
      sum += row[j];
    }
    double entropy = 0.0;
    if (sum > 0.0) {
      for (std::int64_t j = 0; j < n; ++j) {
        if (row[j] > 0.0) {
          const double p = row[j] / sum;
          entropy -= p * std::log(p);
        }
      }
    }
    for (std::int64_t j = 0; j < n; ++j) row[j] = sum > 0.0 ? row[j] / sum : 0.0;

    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0.0) {
      beta_lo = beta;
      beta = std::isinf(beta_hi) ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
}

}  // namespace

tensor::Tensor tsne(const tensor::Tensor& points, const TsneConfig& config) {
  assert(points.shape().rank() == 2);
  const std::int64_t n = points.shape()[0];
  assert(n >= 4 && "t-SNE needs a few points");

  const std::vector<double> d2 = pairwise_sq_distances(points);

  // Symmetrized joint probabilities P.
  std::vector<double> p(static_cast<std::size_t>(n * n), 0.0);
  {
    std::vector<double> row(static_cast<std::size_t>(n));
    const double perplexity =
        std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);
    for (std::int64_t i = 0; i < n; ++i) {
      fit_row_bandwidth(d2, n, i, perplexity, row.data());
      for (std::int64_t j = 0; j < n; ++j)
        p[static_cast<std::size_t>(i * n + j)] = row[static_cast<std::size_t>(j)];
    }
    double total = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const double sym = 0.5 * (p[static_cast<std::size_t>(i * n + j)] +
                                  p[static_cast<std::size_t>(j * n + i)]);
        p[static_cast<std::size_t>(i * n + j)] = sym;
        total += sym;
      }
    }
    for (auto& v : p) v = std::max(v / total, 1e-12);
  }

  // Gradient descent on the 2-D embedding.
  util::Rng rng(config.seed);
  tensor::Tensor y(tensor::Shape{n, 2});
  for (float& v : y.span()) v = rng.normal(0.0f, 1e-2f);
  tensor::Tensor velocity(tensor::Shape{n, 2});
  std::vector<double> q(static_cast<std::size_t>(n * n));
  std::vector<double> gradient(static_cast<std::size_t>(n * 2));

  for (std::int64_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    const double momentum = iter < config.momentum_switch_iter
                                ? config.momentum_initial
                                : config.momentum_final;

    // Student-t affinities Q (unnormalized) and their sum.  Each chunk
    // fills the upper triangle of its rows and reports a partial sum;
    // partials are reduced in chunk-index order so q_sum is the same
    // double for every thread count.
    const std::int64_t q_chunks = util::chunk_count(0, n, kRowGrain);
    std::vector<double> q_partial(static_cast<std::size_t>(q_chunks), 0.0);
    util::parallel_for_chunks(
        0, n, kRowGrain,
        [&](std::int64_t chunk, std::int64_t r0, std::int64_t r1) {
          double local = 0.0;
          for (std::int64_t i = r0; i < r1; ++i) {
            for (std::int64_t j = i + 1; j < n; ++j) {
              const double dy0 = static_cast<double>(y.at(i, 0)) - y.at(j, 0);
              const double dy1 = static_cast<double>(y.at(i, 1)) - y.at(j, 1);
              const double w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
              q[static_cast<std::size_t>(i * n + j)] = w;
              local += 2.0 * w;
            }
          }
          q_partial[static_cast<std::size_t>(chunk)] = local;
        });
    double q_sum = 0.0;
    for (const double part : q_partial) q_sum += part;
    q_sum = std::max(q_sum, 1e-12);

    // Gradient rows are independent; only the upper triangle of q is
    // valid, so the (i, j) weight is read at (min, max).
    std::fill(gradient.begin(), gradient.end(), 0.0);
    util::parallel_for(0, n, kRowGrain, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t i = r0; i < r1; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const double w = i < j ? q[static_cast<std::size_t>(i * n + j)]
                                 : q[static_cast<std::size_t>(j * n + i)];
          const double q_ij = std::max(w / q_sum, 1e-12);
          const double mult =
              (exaggeration * p[static_cast<std::size_t>(i * n + j)] - q_ij) * w;
          gradient[static_cast<std::size_t>(i * 2 + 0)] +=
              4.0 * mult * (static_cast<double>(y.at(i, 0)) - y.at(j, 0));
          gradient[static_cast<std::size_t>(i * 2 + 1)] +=
              4.0 * mult * (static_cast<double>(y.at(i, 1)) - y.at(j, 1));
        }
      }
    });

    for (std::int64_t i = 0; i < n; ++i) {
      for (int d = 0; d < 2; ++d) {
        const double g = gradient[static_cast<std::size_t>(i * 2 + d)];
        velocity.at(i, d) = static_cast<float>(
            momentum * velocity.at(i, d) - config.learning_rate * g);
        y.at(i, d) += velocity.at(i, d);
      }
    }
  }
  return y;
}

double silhouette_score(const tensor::Tensor& points,
                        const std::vector<std::int64_t>& labels) {
  assert(points.shape().rank() == 2);
  const std::int64_t n = points.shape()[0];
  assert(static_cast<std::int64_t>(labels.size()) == n);
  if (n < 2) return 0.0;

  std::int64_t k = 0;
  for (std::int64_t label : labels) k = std::max(k, label + 1);

  const std::vector<double> d2 = pairwise_sq_distances(points);
  auto dist = [&](std::int64_t i, std::int64_t j) {
    return std::sqrt(d2[static_cast<std::size_t>(i * n + j)]);
  };

  std::vector<std::int64_t> class_size(static_cast<std::size_t>(k), 0);
  for (std::int64_t label : labels) ++class_size[static_cast<std::size_t>(label)];

  double total = 0.0;
  std::int64_t counted = 0;
  std::vector<double> mean_to_class(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < n; ++i) {
    std::fill(mean_to_class.begin(), mean_to_class.end(), 0.0);
    for (std::int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      mean_to_class[static_cast<std::size_t>(labels[static_cast<std::size_t>(j)])] +=
          dist(i, j);
    }
    const std::int64_t own = labels[static_cast<std::size_t>(i)];
    if (class_size[static_cast<std::size_t>(own)] < 2) continue;

    double a = mean_to_class[static_cast<std::size_t>(own)] /
               static_cast<double>(class_size[static_cast<std::size_t>(own)] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::int64_t c = 0; c < k; ++c) {
      if (c == own || class_size[static_cast<std::size_t>(c)] == 0) continue;
      b = std::min(b, mean_to_class[static_cast<std::size_t>(c)] /
                          static_cast<double>(class_size[static_cast<std::size_t>(c)]));
    }
    if (std::isinf(b)) continue;
    total += (b - a) / std::max({a, b, 1e-12});
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double class_separation_ratio(const tensor::Tensor& points,
                              const std::vector<std::int64_t>& labels) {
  assert(points.shape().rank() == 2);
  const std::int64_t n = points.shape()[0];
  const std::vector<double> d2 = pairwise_sq_distances(points);
  double intra = 0.0, inter = 0.0;
  std::int64_t intra_n = 0, inter_n = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i + 1; j < n; ++j) {
      const double d = std::sqrt(d2[static_cast<std::size_t>(i * n + j)]);
      if (labels[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(j)]) {
        intra += d;
        ++intra_n;
      } else {
        inter += d;
        ++inter_n;
      }
    }
  }
  if (intra_n == 0 || inter_n == 0 || intra == 0.0) return 0.0;
  return (inter / static_cast<double>(inter_n)) /
         (intra / static_cast<double>(intra_n));
}

}  // namespace nshd::analysis
