// Principal component analysis via power iteration with deflation.
//
// Used as a classical feature-reduction baseline against the paper's
// learned manifold layer (the "learning-driven feature compression" of
// Sec. IV-C): project pooled CNN features onto the top-k principal
// directions instead of a trained FC regressor.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace nshd::analysis {

class Pca {
 public:
  /// Fits `components` principal directions of the rows of `data` [N, F].
  /// Power iteration with deflation; adequate for components << F and the
  /// well-separated spectra CNN features exhibit.
  Pca(const tensor::Tensor& data, std::int64_t components,
      std::int64_t power_iterations = 60, std::uint64_t seed = 12);

  std::int64_t components() const { return directions_.shape()[0]; }
  std::int64_t features() const { return directions_.shape()[1]; }

  /// Principal directions, one per row, unit length, [components, F].
  const tensor::Tensor& directions() const { return directions_; }
  /// Per-feature mean of the fitted data, [F].
  const tensor::Tensor& mean() const { return mean_; }
  /// Eigenvalue (variance) per component, descending.
  const std::vector<float>& explained_variance() const { return variance_; }

  /// Projects one row: y = W (x - mean), [components].
  tensor::Tensor transform(const float* row) const;
  tensor::Tensor transform(const tensor::Tensor& row) const;

  /// Fraction of total variance captured by the fitted components.
  double explained_variance_ratio() const;

 private:
  tensor::Tensor directions_;  // [components, F]
  tensor::Tensor mean_;        // [F]
  std::vector<float> variance_;
  double total_variance_ = 0.0;
};

}  // namespace nshd::analysis
