#include "analysis/metrics.hpp"

#include <cassert>
#include <sstream>

namespace nshd::analysis {

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : k_(num_classes), cells_(static_cast<std::size_t>(num_classes * num_classes), 0) {}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t predicted) {
  assert(truth >= 0 && truth < k_ && predicted >= 0 && predicted < k_);
  ++cells_[static_cast<std::size_t>(truth * k_ + predicted)];
  ++total_;
}

std::int64_t ConfusionMatrix::count(std::int64_t truth, std::int64_t predicted) const {
  return cells_[static_cast<std::size_t>(truth * k_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t diag = 0;
  for (std::int64_t c = 0; c < k_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::int64_t label) const {
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < k_; ++c) row += count(label, c);
  return row == 0 ? 0.0 : static_cast<double>(count(label, label)) / static_cast<double>(row);
}

double ConfusionMatrix::precision(std::int64_t label) const {
  std::int64_t col = 0;
  for (std::int64_t r = 0; r < k_; ++r) col += count(r, label);
  return col == 0 ? 0.0 : static_cast<double>(count(label, label)) / static_cast<double>(col);
}

double ConfusionMatrix::macro_recall() const {
  if (k_ == 0) return 0.0;
  double sum = 0.0;
  for (std::int64_t c = 0; c < k_; ++c) sum += recall(c);
  return sum / static_cast<double>(k_);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream out;
  for (std::int64_t r = 0; r < k_; ++r) {
    for (std::int64_t c = 0; c < k_; ++c) {
      out << count(r, c) << (c + 1 == k_ ? '\n' : '\t');
    }
  }
  return out.str();
}

double accuracy(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    if (truth[i] == predicted[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace nshd::analysis
