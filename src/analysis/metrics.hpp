// Classification metrics: accuracy, confusion matrix, per-class recall.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nshd::analysis {

/// Dense confusion matrix over k classes; rows = true label, cols = predicted.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  void add(std::int64_t truth, std::int64_t predicted);

  std::int64_t count(std::int64_t truth, std::int64_t predicted) const;
  std::int64_t total() const { return total_; }
  double accuracy() const;
  /// Recall of one class (diag / row-sum); 0 when the class is empty.
  double recall(std::int64_t label) const;
  /// Precision of one class (diag / col-sum); 0 when never predicted.
  double precision(std::int64_t label) const;
  /// Unweighted mean recall over classes.
  double macro_recall() const;
  std::int64_t num_classes() const { return k_; }

  std::string to_string() const;

 private:
  std::int64_t k_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> cells_;
};

/// Fraction of equal entries.
double accuracy(const std::vector<std::int64_t>& truth,
                const std::vector<std::int64_t>& predicted);

}  // namespace nshd::analysis
