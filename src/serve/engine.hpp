// In-process inference serving engine: dynamic batching with SLOs.
//
// The repo's compute stack answers "how fast is one batch"; serve::Engine
// answers "how much request traffic can this machine sustain".  Requests
// (single images) enter per-model bounded queues; a pool of worker threads
// forms dynamic batches — flushing on max-batch-size or on the oldest
// request's deadline, whichever comes first — and drives the whole NSHD
// pipeline batched: nn::InferencePlan::run_batch for the cut CNN, then
// manifold + random-projection encoding, then one HdClassifier
// similarities_all pass for the batch.  Batched responses are bitwise
// identical to single-request responses (every kernel in the pipeline
// computes row i independently of the batch size).
//
// Degradation is typed, never silent and never blocking:
//   queue full        -> SubmitStatus::kQueueFull (caller sheds load)
//   bad input shape   -> SubmitStatus::kBadShape
//   unknown model     -> SubmitStatus::kUnknownModel
//   after shutdown    -> SubmitStatus::kShutdown
//   corrupt reload    -> util::LoadStatus names the failure; the old
//                        weights keep serving (reload is all-or-nothing)
//
// Live reload rides on the NSHDKPT1 recovery machinery: reload() verifies
// the checkpoint fully (CRC, shape, commit marker) before taking the
// model's writer lock, so in-flight batches drain on the old weights and
// traffic resumes on the new ones with no dropped requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/nshd.hpp"
#include "models/zoo.hpp"
#include "nn/plan.hpp"
#include "util/checkpoint.hpp"

namespace nshd::serve {

/// Typed outcome of submit(); everything except kOk means the request was
/// rejected immediately (the future is untouched).
enum class SubmitStatus {
  kOk,
  kUnknownModel,  // no model registered under that id
  kBadShape,      // image does not match the model's input C,H,W
  kQueueFull,     // bounded queue at capacity; shed load upstream
  kShutdown,      // engine is draining or stopped
};
const char* to_string(SubmitStatus status);

/// What caused the batch that carried a response to flush.
enum class FlushReason {
  kMaxBatch,  // the batch filled to max_batch
  kDeadline,  // the oldest request's batching deadline expired
  kDrain,     // shutdown flushed the queue without waiting
};
const char* to_string(FlushReason reason);

struct Response {
  std::int64_t predicted = -1;
  std::vector<float> scores;  // per-class similarity (the argmax's input)
  FlushReason flush = FlushReason::kMaxBatch;
  std::int64_t batch_size = 0;  // size of the batch this request rode in
  double queue_ms = 0.0;        // enqueue -> batch formed
  double total_ms = 0.0;        // enqueue -> response ready
};

struct EngineConfig {
  int workers = 2;                 // serving worker threads
  std::int64_t max_batch = 32;     // flush when a batch reaches this size
  double batch_deadline_ms = 2.0;  // ... or when the oldest request is this old
  std::size_t queue_capacity = 256;  // per-model bound; beyond it, kQueueFull
};

/// Monotonic counters, snapshot via Engine::stats().
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shape = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_unknown = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch_flushes = 0;
  std::uint64_t deadline_flushes = 0;
  std::uint64_t drain_flushes = 0;
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;
};

/// One servable NSHD deployment: the owned extractor backbone, the NSHD
/// head over a cut, and a warm execution plan sized for the engine's batch.
/// Heap-allocate and never move (nshd and plan point into zoo).
struct ModelBundle {
  models::ZooModel zoo;
  std::size_t cut;
  core::NshdModel nshd;
  nn::InferencePlan plan;

  ModelBundle(models::ZooModel zoo_model, std::size_t cut_layer,
              const core::NshdConfig& config, std::int64_t max_batch);
  ModelBundle(const ModelBundle&) = delete;
  ModelBundle& operator=(const ModelBundle&) = delete;
};

/// Persists a bundle's trained state (manifold FC + class bank) as an
/// NSHDKPT1 checkpoint that Engine::reload can swap in live.  Returns false
/// on IO failure.  `key` is stored as the checkpoint identity and verified
/// on reload.
bool save_bundle_checkpoint(const core::NshdModel& model, const std::string& key,
                            const std::string& path);

class Engine {
 public:
  explicit Engine(const EngineConfig& config);
  ~Engine();  // shutdown() if still running

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a bundle under `id` and warms its caches (classifier norm
  /// cache; the plan's workspaces fill on first traffic).  Replaces any
  /// existing registration only if `id` is new — re-registering an id
  /// throws (use reload() to swap weights).
  void register_model(const std::string& id, std::unique_ptr<ModelBundle> bundle);

  /// Enqueues one image ([C,H,W] or [1,C,H,W]) for classification by
  /// `id`.  On kOk, `*response` receives a future that resolves when the
  /// request's batch completes.  Never blocks: a full queue is a typed
  /// rejection, not backpressure-by-stall.
  SubmitStatus submit(const std::string& id, tensor::Tensor image,
                      std::future<Response>* response);

  /// Atomically swaps `id`'s trained state from an NSHDKPT1 checkpoint.
  /// The file is read and fully verified first; only then is the model's
  /// writer lock taken (in-flight batches drain, new batches wait) and the
  /// state applied.  Any failure leaves the old weights serving and is
  /// returned as a named status (kShapeMismatch covers a checkpoint whose
  /// blob does not match this bundle's architecture or key).
  util::LoadStatus reload(const std::string& id, const std::string& path);

  /// Stops accepting, drains every queued request (they complete with
  /// FlushReason::kDrain), and joins the workers.  Idempotent.
  void shutdown();

  EngineStats stats() const;
  const EngineConfig& config() const { return config_; }

  /// Registered bundle (for tests and benches); nullptr when absent.
  const ModelBundle* bundle(const std::string& id) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    tensor::Tensor image;  // [C,H,W] floats, owned
    std::promise<Response> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;
  };

  struct ModelEntry {
    std::unique_ptr<ModelBundle> bundle;
    std::deque<Request> queue;       // guarded by Engine::mutex_
    std::shared_mutex reload_mutex;  // shared: batch execution; exclusive: reload
  };

  void worker_loop();
  void execute_batch(ModelEntry& entry, std::vector<Request> batch,
                     FlushReason reason);

  EngineConfig config_;
  std::chrono::microseconds deadline_;

  mutable std::mutex mutex_;  // guards registry_ keys, queues, draining_
  std::condition_variable work_cv_;
  std::map<std::string, std::unique_ptr<ModelEntry>> registry_;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mutex_;
  EngineStats stats_;
};

}  // namespace nshd::serve
