// In-process inference serving engine: dynamic batching with SLOs, fault
// containment, deadline enforcement, and overload protection.
//
// The repo's compute stack answers "how fast is one batch"; serve::Engine
// answers "how much request traffic can this machine sustain".  Requests
// (single images) enter per-model bounded queues; a pool of worker threads
// forms dynamic batches — flushing on max-batch-size or on the oldest
// request's deadline, whichever comes first — and drives the whole NSHD
// pipeline batched: nn::InferencePlan::run_batch for the cut CNN, then
// manifold + random-projection encoding, then one HdClassifier
// similarities_all pass for the batch.  Batched responses are bitwise
// identical to single-request responses (every kernel in the pipeline
// computes row i independently of the batch size).
//
// Robustness contract — an accepted request ALWAYS resolves its future with
// exactly one typed terminal status; no code path reaches std::terminate,
// loses a promise, or serves a non-finite score silently:
//
//   fault containment   a throwing batch never escapes a worker: the batch
//                       is bisected until the poison request(s) are
//                       quarantined with RequestStatus::kInternalError;
//                       innocent co-batched requests are retried (at most
//                       ceil(log2(batch)) times on the poison side).
//   deadline            per-request deadlines (EngineConfig::
//   enforcement         request_deadline_ms, or per-submit override) are
//                       checked at batch formation and before every
//                       (re-)execution; expired requests complete with
//                       kTimedOut instead of running dead work.
//   overload            when the queue backlog times the observed (EWMA)
//   protection          batch latency exceeds the request's deadline
//                       budget, submit() sheds the request with
//                       SubmitStatus::kOverloaded before it can queue.
//   numeric health      cut-CNN features, manifold outputs, and similarity
//                       rows are scanned for NaN/Inf after inference (the
//                       bipolar sign quantization would otherwise absorb
//                       them silently).  Poison rows are rejected typed, or
//                       — under NumericPolicy::kDegrade with a registered
//                       HD-only fallback head — served degraded (kDegraded).
//                       reload() additionally rejects any checkpoint whose
//                       state blob is non-finite (LoadStatus::kNonFinite)
//                       before touching the live weights.
//
// Degradation ladder (documented in DESIGN.md): healthy -> shed
// (kOverloaded/kQueueFull) -> degrade-to-HD (kDegraded) -> reject
// (kTimedOut/kInternalError).  Every rung is typed, never silent and never
// blocking.
//
// Live reload rides on the NSHDKPT1 recovery machinery: reload() verifies
// the checkpoint fully (CRC, shape, commit marker, numeric health) before
// taking the model's writer lock, so in-flight batches drain on the old
// weights and traffic resumes on the new ones with no dropped requests.
//
// Online learning rides on hd::VersionedBank: a bundle with enable_online()
// called serves every batch against the bank's latest published snapshot
// (one atomic shared-ptr load on the read path) while the update submission
// family — update_online / add_class_online / remove_class_online — mutates
// shadow copies and publishes new versions behind traffic's back.  Updates
// take the model's reload_mutex SHARED (they serialize against reload's
// exclusive swap, not against batch execution) and serialize among
// themselves on the bank's writer mutex; every rejected or rolled-back
// update is a typed UpdateStatus and an EngineStats counter, never a
// corrupted serving bank.  save_online_snapshot / restore_online persist
// the published version through NSHDKPT1 for kill-resume of a learning
// stream.
//
// Fault sites (see util/fault.hpp): serve.worker_throw, serve.batch_stall,
// serve.nan_logits, serve.reload_corrupt, plus the online trio
// online.update_nan, online.publish_crash, online.snapshot_corrupt, drive
// the chaos test matrix (`ctest -L chaos`, `ctest -L online`).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/nshd.hpp"
#include "hd/versioned_bank.hpp"
#include "models/zoo.hpp"
#include "nn/plan.hpp"
#include "nn/quant_plan.hpp"
#include "util/checkpoint.hpp"

namespace nshd::serve {

/// Typed outcome of submit(); everything except kOk means the request was
/// rejected immediately (the future is untouched).
enum class SubmitStatus {
  kOk,
  kUnknownModel,  // no model registered under that id
  kBadShape,      // image does not match the model's input C,H,W
  kQueueFull,     // bounded queue at capacity; shed load upstream
  kOverloaded,    // predicted queue wait exceeds the deadline budget
  kShutdown,      // engine is draining or stopped
};
const char* to_string(SubmitStatus status);

/// Typed terminal status of an accepted request.  Exactly one of these is
/// delivered through the future — never silence, never a broken promise.
enum class RequestStatus {
  kOk,             // healthy primary pipeline served this request
  kDegraded,       // HD-only fallback head served it (primary numeric fault)
  kTimedOut,       // request deadline expired before execution
  kInternalError,  // quarantined: execution faulted on this request, or its
                   // result was non-finite with no honest fallback
};
const char* to_string(RequestStatus status);

/// Typed outcome of the online-update submission family (update_online,
/// add_class_online, remove_class_online).  The kNonFinite /
/// kAccuracyCollapse / kPublishFault rows mirror hd::UpdateStatus: the
/// update was attempted and rolled back — the previously published bank
/// version keeps serving, and EngineStats::updates_rolled_back counts it.
enum class UpdateStatus {
  kOk,                // new bank version published; traffic now scores it
  kUnknownModel,      // no model registered under that id
  kOnlineDisabled,    // bundle was registered without enable_online()
  kBadArgs,           // size/dim/index mismatch; nothing was mutated
  kNonFinite,         // rolled back: shadow bank carried NaN/Inf
  kAccuracyCollapse,  // rolled back: guard holdout accuracy collapsed
  kPublishFault,      // rolled back: publish step faulted mid-swap
  kShutdown,          // engine is draining or stopped
};
const char* to_string(UpdateStatus status);

/// What caused the batch that carried a response to flush.
enum class FlushReason {
  kMaxBatch,  // the batch filled to max_batch
  kDeadline,  // the oldest request's batching deadline expired
  kDrain,     // shutdown flushed the queue without waiting
};
const char* to_string(FlushReason reason);

struct Response {
  RequestStatus status = RequestStatus::kOk;
  std::int64_t predicted = -1;  // -1 on kTimedOut/kInternalError
  std::vector<float> scores;    // per-class similarity; empty on failure
  FlushReason flush = FlushReason::kMaxBatch;
  std::int64_t batch_size = 0;  // size of the batch this request rode in
  std::int32_t retries = 0;     // bisection re-executions this request rode
  double queue_ms = 0.0;        // enqueue -> batch formed
  double total_ms = 0.0;        // enqueue -> response ready
};

/// How the engine treats a request whose primary-pipeline result is
/// non-finite.  Bad *input* features are always a typed reject (no honest
/// answer exists for garbage input); the policy governs faults downstream
/// of clean features — corrupt manifold weights or a corrupt class bank.
enum class NumericPolicy {
  kOff,      // no scan: fastest, but non-finite scores serve silently
  kReject,   // poison rows complete with kInternalError
  kDegrade,  // poison rows served by the bundle's HD-only fallback head
             // (kDegraded); rejected if no fallback is registered or the
             // fallback result is itself non-finite
};

struct EngineConfig {
  int workers = 2;                 // serving worker threads
  std::int64_t max_batch = 32;     // flush when a batch reaches this size
  double batch_deadline_ms = 2.0;  // ... or when the oldest request is this old
  std::size_t queue_capacity = 256;  // per-model bound; beyond it, kQueueFull
  double request_deadline_ms = 0.0;  // end-to-end budget per request; <= 0
                                     // disables timeouts + admission control
  NumericPolicy numeric_policy = NumericPolicy::kReject;
};

/// Monotonic counters, snapshot via Engine::stats().  At any quiescent
/// point (every accepted future resolved):
///   submitted == completed + timed_out + internal_errors
/// with completed counting both kOk and kDegraded responses.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;         // kTimedOut terminal responses
  std::uint64_t internal_errors = 0;   // kInternalError terminal responses
  std::uint64_t degraded = 0;          // kDegraded responses (also in completed)
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shape = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_unknown = 0;
  std::uint64_t rejected_overload = 0;  // admission-control sheds
  std::uint64_t batches = 0;
  std::uint64_t quantized_batches = 0;  // batches served by the int8 plan
                                        // (also counted in batches)
  std::uint64_t max_batch_flushes = 0;
  std::uint64_t deadline_flushes = 0;
  std::uint64_t drain_flushes = 0;
  std::uint64_t batch_faults = 0;    // batch executions that threw
  std::uint64_t retried = 0;         // requests re-executed by bisection
  std::uint64_t numeric_faults = 0;  // rows failing the NaN/Inf scan
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;
  std::uint64_t updates_ok = 0;           // online updates published
  std::uint64_t updates_rolled_back = 0;  // non-finite/collapse/publish-fault
  std::uint64_t updates_rejected = 0;     // kBadArgs / kOnlineDisabled
  std::uint64_t classes_added = 0;        // add_class_online publishes
  std::uint64_t classes_removed = 0;      // remove_class_online publishes
  std::uint64_t online_snapshots = 0;     // save_online_snapshot commits
  std::uint64_t online_restores = 0;      // restore_online swaps
};

/// One servable NSHD deployment: the owned extractor backbone, the NSHD
/// head over a cut, and a warm execution plan sized for the engine's batch.
/// Heap-allocate and never move (nshd and plan point into zoo).
struct ModelBundle {
  models::ZooModel zoo;
  std::size_t cut;
  core::NshdModel nshd;
  nn::InferencePlan plan;
  /// Optional degradation head for NumericPolicy::kDegrade: a manifold-free
  /// (use_manifold = false) NshdModel over the same zoo/cut, consuming the
  /// raw cut features the plan already produced.  Train it like the primary
  /// and attach before register_model(); it is never touched by reload().
  std::unique_ptr<core::NshdModel> fallback;
  /// Online-learning head: present after enable_online().  When set, batch
  /// execution scores against its latest published snapshot instead of
  /// nshd.classifier(), and the engine's update submission paths mutate it.
  std::unique_ptr<hd::VersionedBank> online;
  /// INT8 serving plan: present and calibrated after enable_quantized().
  /// When set, batch execution runs the quantized tape instead of `plan`
  /// (quantized_batches counts them).  Reload only swaps HD state (manifold
  /// FC + class bank), never CNN weights, so the quantized weights stay
  /// valid across reload().
  std::unique_ptr<nn::QuantizedInferencePlan> qplan;

  ModelBundle(models::ZooModel zoo_model, std::size_t cut_layer,
              const core::NshdConfig& config, std::int64_t max_batch);

  /// Switches the bundle to online-learning mode, seeding version 0 of the
  /// versioned bank from the (trained) primary classifier.  Call after
  /// training and BEFORE register_model — the pointer itself is not
  /// hot-swappable under traffic (published versions inside it are).
  void enable_online(hd::UpdateGuard guard = {});

  /// Switches the bundle to int8 serving: builds the quantized plan over the
  /// same cut and calibrates activation scales on `calib_images`
  /// ([N, C, H, W]).  Call after training and BEFORE register_model (the
  /// plan pointer is not hot-swappable under traffic).  Returns the
  /// calibration report; a report with calibration_fallbacks > 0 still
  /// serves (affected layers run f32, counted, never silent).
  const nn::CalibrationReport& enable_quantized(
      const tensor::TensorView& calib_images, std::int64_t calib_batch = 32);
  ModelBundle(const ModelBundle&) = delete;
  ModelBundle& operator=(const ModelBundle&) = delete;
};

/// Persists a bundle's trained state (manifold FC + class bank) as an
/// NSHDKPT1 checkpoint that Engine::reload can swap in live.  Returns false
/// on IO failure.  `key` is stored as the checkpoint identity and verified
/// on reload.
bool save_bundle_checkpoint(const core::NshdModel& model, const std::string& key,
                            const std::string& path);

class Engine {
 public:
  explicit Engine(const EngineConfig& config);
  ~Engine();  // shutdown() if still running

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a bundle under `id` and warms its caches (classifier norm
  /// caches for the primary and fallback heads; the plan's workspaces fill
  /// on first traffic).  Throws std::invalid_argument — before the bundle
  /// becomes reachable by any worker — when `id` is taken (use reload() to
  /// swap weights), when the bundle's state is non-finite, or when the
  /// fallback head is not a raw-feature (manifold-free) encoder over the
  /// same cut.  All validation runs on the caller's thread: no exception
  /// ever crosses into (or out of) a worker std::thread.
  void register_model(const std::string& id, std::unique_ptr<ModelBundle> bundle);

  /// Enqueues one image ([C,H,W] or [1,C,H,W]) for classification by
  /// `id`.  On kOk, `*response` receives a future that resolves when the
  /// request's batch completes.  Never blocks: a full queue or a predicted
  /// deadline miss is a typed rejection, not backpressure-by-stall.
  /// `deadline_ms` overrides EngineConfig::request_deadline_ms for this
  /// request (<= 0 keeps the config default).
  SubmitStatus submit(const std::string& id, tensor::Tensor image,
                      std::future<Response>* response, double deadline_ms = 0.0);

  /// Atomically swaps `id`'s trained state from an NSHDKPT1 checkpoint.
  /// The file is read and fully verified first — CRCs, commit marker,
  /// identity key, tensor count, and numeric health (a NaN/Inf state blob is
  /// rejected as kNonFinite) — and only then is the model's writer lock
  /// taken (in-flight batches drain, new batches wait) and the state
  /// applied.  Any failure leaves the old weights serving and is returned
  /// as a named status (kShapeMismatch covers a checkpoint whose blob does
  /// not match this bundle's architecture or key).
  util::LoadStatus reload(const std::string& id, const std::string& path);

  /// Online update: one MASS epoch over a chunk of stream samples (already
  /// symbolized into encoder space), verify-then-swap gated by the bank's
  /// UpdateGuard.  Serialized per model against reload (shared side of
  /// reload_mutex) and against sibling updates (the bank's writer mutex);
  /// concurrent batch traffic keeps scoring the previous version until the
  /// new one publishes.  `train_accuracy` as in hd::VersionedBank.
  UpdateStatus update_online(const std::string& id,
                             const std::vector<hd::Hypervector>& samples,
                             const std::vector<std::int64_t>& labels,
                             const hd::MassConfig& config,
                             double* train_accuracy = nullptr);

  /// One-shot class growth under live traffic; responses formed after the
  /// publish carry K+1 scores.  `new_class` receives the new index on kOk.
  UpdateStatus add_class_online(const std::string& id,
                                const std::vector<hd::Hypervector>& samples,
                                std::int64_t* new_class = nullptr);

  /// Retires a class under live traffic (classes above shift down — the
  /// caller owns label remapping and guard re-arming, as in VersionedBank).
  UpdateStatus remove_class_online(const std::string& id,
                                   std::int64_t class_index);

  /// Commits the model's published bank version to an NSHDKPT1 snapshot
  /// (crash-safe atomic rename); `cursor` is the learning stream's position
  /// for kill-resume.  Returns false when the model is unknown, online mode
  /// is off, or IO fails.
  bool save_online_snapshot(const std::string& id, const std::string& path,
                            std::uint64_t cursor = 0);

  /// Restores a save_online_snapshot artifact into the model's versioned
  /// bank — fully verified before the swap, any failure leaves the live
  /// bank serving (see hd::VersionedBank::load_snapshot).  Takes the
  /// model's reload_mutex exclusively, like reload().
  hd::VersionedBank::RestoreResult restore_online(const std::string& id,
                                                  const std::string& path);

  /// Stops accepting, drains every queued request (they complete with
  /// FlushReason::kDrain, or kTimedOut if their deadline already expired),
  /// and joins the workers.  Idempotent.
  void shutdown();

  EngineStats stats() const;
  const EngineConfig& config() const { return config_; }

  /// Registered bundle (for tests and benches); nullptr when absent.
  const ModelBundle* bundle(const std::string& id) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    tensor::Tensor image;  // [C,H,W] floats, owned
    std::promise<Response> promise;
    Clock::time_point enqueued;
    Clock::time_point batch_by;  // batching deadline (flush trigger)
    Clock::time_point expires;   // request deadline; time_point::max() = none
  };

  struct ModelEntry {
    std::unique_ptr<ModelBundle> bundle;
    std::deque<Request> queue;       // guarded by Engine::mutex_
    std::shared_mutex reload_mutex;  // shared: batch execution; exclusive: reload
    /// EWMA of batch execution latency, the admission-control signal.
    /// Plain load/store: concurrent workers may drop an update, which only
    /// smooths the average further.
    std::atomic<double> ewma_batch_ms{0.0};
  };

  /// Hot-path counters: one relaxed atomic increment each, no lock.  The
  /// per-batch increments happen before any promise in the batch is
  /// fulfilled, and promise/future synchronization publishes them, so a
  /// caller returning from future.get() observes its own batch in stats().
  struct Counters {
    std::atomic<std::uint64_t> submitted{0}, completed{0}, timed_out{0},
        internal_errors{0}, degraded{0}, rejected_full{0}, rejected_shape{0},
        rejected_shutdown{0}, rejected_unknown{0}, rejected_overload{0},
        batches{0}, quantized_batches{0}, max_batch_flushes{0},
        deadline_flushes{0}, drain_flushes{0},
        batch_faults{0}, retried{0}, numeric_faults{0}, reloads_ok{0},
        reloads_failed{0}, updates_ok{0}, updates_rolled_back{0},
        updates_rejected{0}, classes_added{0}, classes_removed{0},
        online_snapshots{0}, online_restores{0};
  };

  /// Online-update spine: locates `id`, takes the reload_mutex shared, and
  /// runs `mutate` against the bundle's VersionedBank, mapping the result
  /// onto serve::UpdateStatus and the update counters.
  template <typename Mutate>
  UpdateStatus with_online(const std::string& id, Mutate&& mutate);

  void worker_loop();
  /// Containment wrapper: re-checks deadlines, executes, and on a throw
  /// bisects the batch to quarantine the poison request(s).  Never throws;
  /// every request in `batch` is terminally resolved when it returns.
  void execute_batch_guarded(ModelEntry& entry, std::vector<Request> batch,
                             FlushReason reason, std::int32_t attempt);
  /// One batch execution.  Fulfills every promise on success; on a throw the
  /// caller still owns `batch` (no promise has been touched).
  void execute_batch(ModelEntry& entry, std::vector<Request>& batch,
                     FlushReason reason, std::int32_t attempt);
  /// Resolves one request with a failure-typed terminal response.
  void fail_request(Request& request, RequestStatus status, FlushReason flush);

  EngineConfig config_;
  std::chrono::microseconds batch_deadline_;
  std::chrono::microseconds request_deadline_;  // zero when disabled

  mutable std::mutex mutex_;  // guards registry_ keys, queues, draining_
  std::condition_variable work_cv_;
  std::map<std::string, std::unique_ptr<ModelEntry>> registry_;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  Counters counters_;
};

}  // namespace nshd::serve
