#include "serve/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"

namespace nshd::serve {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kOk: return "ok";
    case SubmitStatus::kUnknownModel: return "unknown-model";
    case SubmitStatus::kBadShape: return "bad-shape";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kMaxBatch: return "max-batch";
    case FlushReason::kDeadline: return "deadline";
    case FlushReason::kDrain: return "drain";
  }
  return "?";
}

ModelBundle::ModelBundle(models::ZooModel zoo_model, std::size_t cut_layer,
                         const core::NshdConfig& config, std::int64_t max_batch)
    : zoo(std::move(zoo_model)),
      cut(cut_layer),
      nshd(zoo, cut_layer, config),
      plan(zoo.net, zoo.input_chw, cut_layer, max_batch) {}

bool save_bundle_checkpoint(const core::NshdModel& model, const std::string& key,
                            const std::string& path) {
  util::Checkpoint checkpoint;
  checkpoint.key = key;
  checkpoint.meta = "serve-bundle";
  util::CheckpointTensor state;
  state.values = model.save_state();
  state.dims = {static_cast<std::int64_t>(state.values.size())};
  checkpoint.tensors.push_back(std::move(state));
  return util::write_checkpoint_file(path, checkpoint);
}

Engine::Engine(const EngineConfig& config) : config_(config) {
  config_.workers = std::max(1, config_.workers);
  config_.max_batch = std::max<std::int64_t>(1, config_.max_batch);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  deadline_ = std::chrono::microseconds(static_cast<std::int64_t>(
      std::max(0.0, config_.batch_deadline_ms) * 1000.0));
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() { shutdown(); }

void Engine::register_model(const std::string& id,
                            std::unique_ptr<ModelBundle> bundle) {
  assert(bundle != nullptr);
  // Warm the classifier's lazy norm cache before the bundle is reachable by
  // workers: similarities_all refreshes it on first use, and two concurrent
  // batches must never race that mutable refresh.
  (void)bundle->nshd.classifier().class_norms();
  auto entry = std::make_unique<ModelEntry>();
  entry->bundle = std::move(bundle);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!registry_.emplace(id, std::move(entry)).second) {
    throw std::invalid_argument("serve::Engine: model '" + id +
                                "' is already registered (use reload())");
  }
}

const ModelBundle* Engine::bundle(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second->bundle.get();
}

SubmitStatus Engine::submit(const std::string& id, tensor::Tensor image,
                            std::future<Response>* response) {
  assert(response != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = registry_.find(id);
  if (it == registry_.end()) {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.rejected_unknown;
    return SubmitStatus::kUnknownModel;
  }
  ModelEntry& entry = *it->second;

  // Accept [C,H,W] or [1,C,H,W], matching the model's input exactly.
  const tensor::Shape& want = entry.bundle->zoo.input_chw;
  const tensor::Shape& got = image.shape();
  const bool shape_ok =
      (got.rank() == 3 && got[0] == want[0] && got[1] == want[1] &&
       got[2] == want[2]) ||
      (got.rank() == 4 && got[0] == 1 && got[1] == want[0] &&
       got[2] == want[1] && got[3] == want[2]);
  if (!shape_ok) {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.rejected_shape;
    return SubmitStatus::kBadShape;
  }
  if (draining_) {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.rejected_shutdown;
    return SubmitStatus::kShutdown;
  }
  if (entry.queue.size() >= config_.queue_capacity) {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.rejected_full;
    return SubmitStatus::kQueueFull;
  }

  Request request;
  request.image = std::move(image);
  request.enqueued = Clock::now();
  request.deadline = request.enqueued + deadline_;
  *response = request.promise.get_future();
  entry.queue.push_back(std::move(request));
  lock.unlock();

  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.submitted;
  }
  work_cv_.notify_one();
  return SubmitStatus::kOk;
}

void Engine::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    // Scan the registry for (a) a flush-ready queue — full batch, expired
    // deadline, or drain — preferring the one whose head request is oldest
    // (FIFO fairness across models), and (b) the earliest pending deadline
    // to sleep until when nothing is ready yet.
    ModelEntry* ready = nullptr;
    Clock::time_point ready_oldest{};
    bool any_pending = false;
    Clock::time_point min_deadline{};
    for (auto& [id, entry] : registry_) {
      if (entry->queue.empty()) continue;
      const Request& head = entry->queue.front();
      const bool full =
          entry->queue.size() >= static_cast<std::size_t>(config_.max_batch);
      if (full || draining_ || head.deadline <= now) {
        if (ready == nullptr || head.enqueued < ready_oldest) {
          ready = entry.get();
          ready_oldest = head.enqueued;
        }
      }
      if (!any_pending || head.deadline < min_deadline) {
        min_deadline = head.deadline;
        any_pending = true;
      }
    }

    if (ready != nullptr) {
      const std::size_t take =
          std::min(ready->queue.size(),
                   static_cast<std::size_t>(config_.max_batch));
      const FlushReason reason =
          take == static_cast<std::size_t>(config_.max_batch)
              ? FlushReason::kMaxBatch
              : (draining_ ? FlushReason::kDrain : FlushReason::kDeadline);
      std::vector<Request> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(ready->queue.front()));
        ready->queue.pop_front();
      }
      ModelEntry* entry = ready;
      lock.unlock();
      execute_batch(*entry, std::move(batch), reason);
      lock.lock();
      continue;
    }

    // Draining with nothing ready means nothing is pending at all (any
    // non-empty queue is flush-ready during a drain): this worker is done.
    if (draining_) return;
    if (any_pending) {
      work_cv_.wait_until(lock, min_deadline);
    } else {
      work_cv_.wait(lock);
    }
  }
}

void Engine::execute_batch(ModelEntry& entry, std::vector<Request> batch,
                           FlushReason reason) {
  const Clock::time_point formed = Clock::now();
  ModelBundle& bundle = *entry.bundle;
  const auto n = static_cast<std::int64_t>(batch.size());
  const tensor::Shape& chw = bundle.zoo.input_chw;
  const std::int64_t sample_numel = chw.numel();

  // Gather request images into one contiguous [n, C, H, W] batch tensor.
  tensor::Tensor images(tensor::Shape{n, chw[0], chw[1], chw[2]});
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(images.data() + i * sample_numel, batch[static_cast<std::size_t>(i)].image.data(),
                static_cast<std::size_t>(sample_numel) * sizeof(float));
  }

  tensor::Tensor sims;
  {
    // Shared against reload(): in-flight batches finish on the weights they
    // started with; a reload waits for them, then swaps exclusively.
    std::shared_lock<std::shared_mutex> guard(entry.reload_mutex);

    const std::int64_t f = bundle.plan.out_features();
    core::ExtractedFeatures features;
    features.cut_layer = bundle.cut;
    const tensor::Shape out_one = bundle.plan.output_shape(1);
    features.chw = tensor::Shape{out_one[1], out_one.rank() > 2 ? out_one[2] : 1,
                                 out_one.rank() > 3 ? out_one[3] : 1};
    features.values = tensor::Tensor(tensor::Shape{n, f});
    bundle.plan.run_batch(images.view(), features.values.view());

    const std::vector<hd::Hypervector> queries = bundle.nshd.symbolize_all(features);
    sims = bundle.nshd.classifier().similarities_all(queries,
                                                     bundle.nshd.config().similarity);
  }

  const std::int64_t k = bundle.nshd.classifier().num_classes();
  const Clock::time_point done = Clock::now();

  // Count the batch *before* fulfilling any promise: a caller that wakes on
  // future.get() must already see this batch in stats().
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.batches;
    stats_.completed += static_cast<std::uint64_t>(n);
    switch (reason) {
      case FlushReason::kMaxBatch: ++stats_.max_batch_flushes; break;
      case FlushReason::kDeadline: ++stats_.deadline_flushes; break;
      case FlushReason::kDrain: ++stats_.drain_flushes; break;
    }
  }

  for (std::int64_t i = 0; i < n; ++i) {
    Request& request = batch[static_cast<std::size_t>(i)];
    Response response;
    const float* row = sims.data() + i * k;
    response.scores.assign(row, row + k);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < k; ++c)
      if (row[c] > row[best]) best = c;
    response.predicted = best;
    response.flush = reason;
    response.batch_size = n;
    response.queue_ms =
        std::chrono::duration<double, std::milli>(formed - request.enqueued).count();
    response.total_ms =
        std::chrono::duration<double, std::milli>(done - request.enqueued).count();
    request.promise.set_value(std::move(response));
  }
}

util::LoadStatus Engine::reload(const std::string& id, const std::string& path) {
  ModelEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = registry_.find(id);
    if (it != registry_.end()) entry = it->second.get();
  }
  const auto fail = [&](util::LoadStatus status) {
    NSHD_LOG_WARN("serve: reload of '%s' from %s failed: %s — old weights keep serving",
                  id.c_str(), path.c_str(), util::to_string(status));
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.reloads_failed;
    return status;
  };
  if (entry == nullptr) return fail(util::LoadStatus::kNotFound);

  // Read and fully verify the artifact *before* touching the live model;
  // every corruption mode comes back as a named status and the request
  // path never observes a half-applied swap.
  util::CheckpointLoad load = util::read_checkpoint_file(path);
  if (!load.ok()) return fail(load.status);
  if (!load.checkpoint.key.empty() && load.checkpoint.key != id)
    return fail(util::LoadStatus::kShapeMismatch);
  if (load.checkpoint.tensors.size() != 1)
    return fail(util::LoadStatus::kShapeMismatch);

  {
    // Writer side: waits for in-flight batches to drain, blocks new ones
    // for the duration of the (cheap, in-memory) state copy.
    std::unique_lock<std::shared_mutex> guard(entry->reload_mutex);
    if (!entry->bundle->nshd.load_state(load.checkpoint.tensors[0].values))
      return fail(util::LoadStatus::kShapeMismatch);
    // Re-warm the norm cache serially while we still hold the writer lock.
    (void)entry->bundle->nshd.classifier().class_norms();
  }
  NSHD_LOG_INFO("serve: reloaded '%s' from %s", id.c_str(), path.c_str());
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++stats_.reloads_ok;
  return util::LoadStatus::kOk;
}

void Engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> slock(stats_mutex_);
  return stats_;
}

}  // namespace nshd::serve
