#include "serve/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "tensor/ops.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace nshd::serve {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kOk: return "ok";
    case SubmitStatus::kUnknownModel: return "unknown-model";
    case SubmitStatus::kBadShape: return "bad-shape";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kOverloaded: return "overloaded";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDegraded: return "degraded";
    case RequestStatus::kTimedOut: return "timed-out";
    case RequestStatus::kInternalError: return "internal-error";
  }
  return "?";
}

const char* to_string(UpdateStatus status) {
  switch (status) {
    case UpdateStatus::kOk: return "ok";
    case UpdateStatus::kUnknownModel: return "unknown-model";
    case UpdateStatus::kOnlineDisabled: return "online-disabled";
    case UpdateStatus::kBadArgs: return "bad-args";
    case UpdateStatus::kNonFinite: return "non-finite";
    case UpdateStatus::kAccuracyCollapse: return "accuracy-collapse";
    case UpdateStatus::kPublishFault: return "publish-fault";
    case UpdateStatus::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kMaxBatch: return "max-batch";
    case FlushReason::kDeadline: return "deadline";
    case FlushReason::kDrain: return "drain";
  }
  return "?";
}

ModelBundle::ModelBundle(models::ZooModel zoo_model, std::size_t cut_layer,
                         const core::NshdConfig& config, std::int64_t max_batch)
    : zoo(std::move(zoo_model)),
      cut(cut_layer),
      nshd(zoo, cut_layer, config),
      plan(zoo.net, zoo.input_chw, cut_layer, max_batch) {}

void ModelBundle::enable_online(hd::UpdateGuard guard) {
  online = std::make_unique<hd::VersionedBank>(nshd.classifier());
  online->set_guard(std::move(guard));
}

const nn::CalibrationReport& ModelBundle::enable_quantized(
    const tensor::TensorView& calib_images, std::int64_t calib_batch) {
  qplan = std::make_unique<nn::QuantizedInferencePlan>(
      zoo.net, zoo.input_chw, cut, plan.max_batch());
  return qplan->calibrate(calib_images, calib_batch);
}

bool save_bundle_checkpoint(const core::NshdModel& model, const std::string& key,
                            const std::string& path) {
  util::Checkpoint checkpoint;
  checkpoint.key = key;
  checkpoint.meta = "serve-bundle";
  util::CheckpointTensor state;
  state.values = model.save_state();
  state.dims = {static_cast<std::int64_t>(state.values.size())};
  checkpoint.tensors.push_back(std::move(state));
  return util::write_checkpoint_file(path, checkpoint);
}

Engine::Engine(const EngineConfig& config) : config_(config) {
  config_.workers = std::max(1, config_.workers);
  config_.max_batch = std::max<std::int64_t>(1, config_.max_batch);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  batch_deadline_ = std::chrono::microseconds(static_cast<std::int64_t>(
      std::max(0.0, config_.batch_deadline_ms) * 1000.0));
  request_deadline_ = std::chrono::microseconds(static_cast<std::int64_t>(
      std::max(0.0, config_.request_deadline_ms) * 1000.0));
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() { shutdown(); }

void Engine::register_model(const std::string& id,
                            std::unique_ptr<ModelBundle> bundle) {
  assert(bundle != nullptr);
  // All validation and warm-up happens here, on the caller's thread, before
  // the bundle is reachable by any worker: a failure is a caller-visible
  // exception, never one escaping a worker std::thread (std::terminate).
  if (!bundle->nshd.state_finite()) {
    throw std::invalid_argument("serve::Engine: model '" + id +
                                "' has non-finite weights; refusing to serve");
  }
  if (bundle->fallback != nullptr) {
    // The fallback consumes the raw cut features the plan produces, so it
    // must be a manifold-free encoder sized for them.
    if (bundle->fallback->manifold() != nullptr ||
        bundle->fallback->encoded_features() != bundle->plan.out_features()) {
      throw std::invalid_argument(
          "serve::Engine: model '" + id +
          "' fallback must be a manifold-free head over the same cut");
    }
    if (!bundle->fallback->state_finite()) {
      throw std::invalid_argument("serve::Engine: model '" + id +
                                  "' fallback has non-finite weights");
    }
    (void)bundle->fallback->classifier().class_norms();
  }
  // Warm the classifier's lazy norm cache before the bundle is reachable by
  // workers: similarities_all refreshes it on first use, and two concurrent
  // batches must never race that mutable refresh.
  (void)bundle->nshd.classifier().class_norms();
  auto entry = std::make_unique<ModelEntry>();
  entry->bundle = std::move(bundle);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!registry_.emplace(id, std::move(entry)).second) {
    throw std::invalid_argument("serve::Engine: model '" + id +
                                "' is already registered (use reload())");
  }
}

const ModelBundle* Engine::bundle(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second->bundle.get();
}

SubmitStatus Engine::submit(const std::string& id, tensor::Tensor image,
                            std::future<Response>* response,
                            double deadline_ms) {
  assert(response != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = registry_.find(id);
  if (it == registry_.end()) {
    counters_.rejected_unknown.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kUnknownModel;
  }
  ModelEntry& entry = *it->second;

  // Accept [C,H,W] or [1,C,H,W], matching the model's input exactly.
  const tensor::Shape& want = entry.bundle->zoo.input_chw;
  const tensor::Shape& got = image.shape();
  const bool shape_ok =
      (got.rank() == 3 && got[0] == want[0] && got[1] == want[1] &&
       got[2] == want[2]) ||
      (got.rank() == 4 && got[0] == 1 && got[1] == want[0] &&
       got[2] == want[1] && got[3] == want[2]);
  if (!shape_ok) {
    counters_.rejected_shape.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kBadShape;
  }
  if (draining_) {
    counters_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kShutdown;
  }
  if (entry.queue.size() >= config_.queue_capacity) {
    counters_.rejected_full.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kQueueFull;
  }

  // Admission control: shed before queuing when the backlog ahead of this
  // request, times the observed (EWMA) batch latency, already exceeds its
  // deadline budget — running it would only produce a kTimedOut later, at
  // the cost of real compute.  Sustained overload therefore degrades to
  // fast typed sheds instead of a growing queue of dead work.
  const double budget_ms = deadline_ms > 0.0
                               ? deadline_ms
                               : std::max(0.0, config_.request_deadline_ms);
  if (budget_ms > 0.0) {
    const double ewma = entry.ewma_batch_ms.load(std::memory_order_relaxed);
    if (ewma > 0.0 && !entry.queue.empty()) {
      const auto backlog = static_cast<double>(entry.queue.size());
      const double batches_ahead =
          std::ceil(backlog / static_cast<double>(config_.max_batch));
      if (batches_ahead * ewma > budget_ms) {
        counters_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
        return SubmitStatus::kOverloaded;
      }
    }
  }

  Request request;
  request.image = std::move(image);
  request.enqueued = Clock::now();
  request.batch_by = request.enqueued + batch_deadline_;
  request.expires =
      budget_ms > 0.0
          ? request.enqueued + std::chrono::microseconds(
                                   static_cast<std::int64_t>(budget_ms * 1000.0))
          : Clock::time_point::max();
  *response = request.promise.get_future();
  entry.queue.push_back(std::move(request));
  lock.unlock();

  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return SubmitStatus::kOk;
}

void Engine::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const Clock::time_point now = Clock::now();
    // Scan the registry for (a) a flush-ready queue — full batch, expired
    // batching or request deadline, or drain — preferring the one whose head
    // request is oldest (FIFO fairness across models), and (b) the earliest
    // pending wake-up to sleep until when nothing is ready yet.
    ModelEntry* ready = nullptr;
    Clock::time_point ready_oldest{};
    bool any_pending = false;
    Clock::time_point min_wake{};
    for (auto& [id, entry] : registry_) {
      if (entry->queue.empty()) continue;
      const Request& head = entry->queue.front();
      const Clock::time_point head_wake = std::min(head.batch_by, head.expires);
      const bool full =
          entry->queue.size() >= static_cast<std::size_t>(config_.max_batch);
      if (full || draining_ || head_wake <= now) {
        if (ready == nullptr || head.enqueued < ready_oldest) {
          ready = entry.get();
          ready_oldest = head.enqueued;
        }
      }
      if (!any_pending || head_wake < min_wake) {
        min_wake = head_wake;
        any_pending = true;
      }
    }

    if (ready != nullptr) {
      const std::size_t take =
          std::min(ready->queue.size(),
                   static_cast<std::size_t>(config_.max_batch));
      const FlushReason reason =
          take == static_cast<std::size_t>(config_.max_batch)
              ? FlushReason::kMaxBatch
              : (draining_ ? FlushReason::kDrain : FlushReason::kDeadline);
      std::vector<Request> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(ready->queue.front()));
        ready->queue.pop_front();
      }
      ModelEntry* entry = ready;
      lock.unlock();
      execute_batch_guarded(*entry, std::move(batch), reason, /*attempt=*/0);
      lock.lock();
      continue;
    }

    // Draining with nothing ready means nothing is pending at all (any
    // non-empty queue is flush-ready during a drain): this worker is done.
    if (draining_) return;
    if (any_pending) {
      work_cv_.wait_until(lock, min_wake);
    } else {
      work_cv_.wait(lock);
    }
  }
}

void Engine::fail_request(Request& request, RequestStatus status,
                          FlushReason flush) {
  switch (status) {
    case RequestStatus::kTimedOut:
      counters_.timed_out.fetch_add(1, std::memory_order_relaxed);
      break;
    case RequestStatus::kInternalError:
      counters_.internal_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    default: assert(false && "fail_request takes failure statuses only");
  }
  Response response;
  response.status = status;
  response.flush = flush;
  const Clock::time_point now = Clock::now();
  response.queue_ms =
      std::chrono::duration<double, std::milli>(now - request.enqueued).count();
  response.total_ms = response.queue_ms;
  request.promise.set_value(std::move(response));
}

void Engine::execute_batch_guarded(ModelEntry& entry, std::vector<Request> batch,
                                   FlushReason reason, std::int32_t attempt) {
  // Deadline enforcement at (re-)execution time: a request whose budget
  // expired while queued — or while riding bisection retries — completes
  // kTimedOut instead of consuming a forward pass.
  const Clock::time_point now = Clock::now();
  std::vector<Request> live;
  live.reserve(batch.size());
  for (Request& request : batch) {
    if (request.expires <= now) {
      fail_request(request, RequestStatus::kTimedOut, reason);
    } else {
      live.push_back(std::move(request));
    }
  }
  if (live.empty()) return;

  try {
    execute_batch(entry, live, reason, attempt);
    return;
  } catch (const std::exception& e) {
    NSHD_LOG_WARN("serve: batch of %zu faulted (attempt %d): %s",
                  live.size(), attempt, e.what());
  } catch (...) {
    NSHD_LOG_WARN("serve: batch of %zu faulted (attempt %d): non-std exception",
                  live.size(), attempt);
  }
  counters_.batch_faults.fetch_add(1, std::memory_order_relaxed);

  // Containment by bisection: a singleton that faults is the poison request
  // and is quarantined typed; a larger batch splits in half and each half is
  // re-executed, so innocents ride at most ceil(log2(n)) retries while every
  // poison request ends at its own kInternalError.  execute_batch touches no
  // promise before its fulfilment loop, so `live` still owns every promise
  // here and no request can be dropped or double-resolved.
  if (live.size() == 1) {
    fail_request(live.front(), RequestStatus::kInternalError, reason);
    return;
  }
  counters_.retried.fetch_add(live.size(), std::memory_order_relaxed);
  const auto mid =
      static_cast<std::ptrdiff_t>(live.size() / 2);
  std::vector<Request> lo(std::make_move_iterator(live.begin()),
                          std::make_move_iterator(live.begin() + mid));
  std::vector<Request> hi(std::make_move_iterator(live.begin() + mid),
                          std::make_move_iterator(live.end()));
  execute_batch_guarded(entry, std::move(lo), reason, attempt + 1);
  execute_batch_guarded(entry, std::move(hi), reason, attempt + 1);
}

void Engine::execute_batch(ModelEntry& entry, std::vector<Request>& batch,
                           FlushReason reason, std::int32_t attempt) {
  const Clock::time_point formed = Clock::now();
  ModelBundle& bundle = *entry.bundle;
  const auto n = static_cast<std::int64_t>(batch.size());
  const tensor::Shape& chw = bundle.zoo.input_chw;
  const std::int64_t sample_numel = chw.numel();
  const bool scan = config_.numeric_policy != NumericPolicy::kOff;

  // Gather request images into one contiguous [n, C, H, W] batch tensor.
  tensor::Tensor images(tensor::Shape{n, chw[0], chw[1], chw[2]});
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(images.data() + i * sample_numel, batch[static_cast<std::size_t>(i)].image.data(),
                static_cast<std::size_t>(sample_numel) * sizeof(float));
  }

  if (util::fault::should_fire("serve.worker_throw")) {
    throw std::runtime_error("injected serve.worker_throw");
  }

  tensor::Tensor sims;
  core::ExtractedFeatures features;
  std::vector<core::NshdModel::RowHealth> health;
  {
    // Shared against reload(): in-flight batches finish on the weights they
    // started with; a reload waits for them, then swaps exclusively.
    std::shared_lock<std::shared_mutex> guard(entry.reload_mutex);

    if (util::fault::should_fire("serve.batch_stall")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }

    const std::int64_t f = bundle.plan.out_features();
    features.cut_layer = bundle.cut;
    const tensor::Shape out_one = bundle.plan.output_shape(1);
    features.chw = tensor::Shape{out_one[1], out_one.rank() > 2 ? out_one[2] : 1,
                                 out_one.rank() > 3 ? out_one[3] : 1};
    features.values = tensor::Tensor(tensor::Shape{n, f});
    if (bundle.qplan != nullptr && bundle.qplan->calibrated()) {
      // INT8 serving path: same cut, same [n, f] feature tensor, counted so
      // the quantized arm is observable in stats().
      bundle.qplan->run_batch(images.view(), features.values.view());
      counters_.quantized_batches.fetch_add(1, std::memory_order_relaxed);
    } else {
      bundle.plan.run_batch(images.view(), features.values.view());
    }

    const std::vector<hd::Hypervector> queries =
        scan ? bundle.nshd.symbolize_all_checked(features, health)
             : bundle.nshd.symbolize_all(features);
    if (bundle.online != nullptr) {
      // Online mode: score the latest published bank version — one atomic
      // load, and the whole batch sees exactly that version regardless of
      // how many updates publish while it runs.
      const hd::VersionedBank::Snapshot snap = bundle.online->snapshot();
      sims = snap->bank.similarities_all(queries, bundle.nshd.config().similarity);
    } else {
      sims = bundle.nshd.classifier().similarities_all(
          queries, bundle.nshd.config().similarity);
    }
  }

  // Class count from the scored tensor, not the static classifier: under
  // online mode add_class/remove_class change K between batches.
  const std::int64_t k = sims.shape()[1];
  if (util::fault::should_fire("serve.nan_logits") && n > 0 && k > 0) {
    sims.data()[0] = std::numeric_limits<float>::quiet_NaN();
  }

  // Post-inference numeric health: classify each row as clean, degradable
  // (clean features, faulted primary head), or rejected (poison input).  The
  // similarity scan catches class-bank faults and the nan_logits site; the
  // feature/encoding health came from symbolize_all_checked above.
  enum class RowFate : std::uint8_t { kServe, kDegrade, kReject };
  std::vector<RowFate> fate(static_cast<std::size_t>(n), RowFate::kServe);
  std::int64_t poison_rows = 0;
  if (scan) {
    for (std::int64_t i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const bool sims_ok = tensor::all_finite(sims.data() + i * k, k);
      if (health[idx] == core::NshdModel::RowHealth::kBadFeatures) {
        fate[idx] = RowFate::kReject;
      } else if (health[idx] == core::NshdModel::RowHealth::kBadEncoding ||
                 !sims_ok) {
        fate[idx] = config_.numeric_policy == NumericPolicy::kDegrade
                        ? RowFate::kDegrade
                        : RowFate::kReject;
      }
      if (fate[idx] != RowFate::kServe) ++poison_rows;
    }
  }

  // HD-only degradation: re-encode the (clean) raw feature rows through the
  // manifold-free fallback head and score against its own class bank.  The
  // fallback is never mutated after registration, so no reload lock is
  // needed; its norm cache was warmed in register_model.
  tensor::Tensor fallback_sims;
  std::vector<std::int64_t> degrade_rows;
  if (config_.numeric_policy == NumericPolicy::kDegrade &&
      bundle.fallback != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (fate[static_cast<std::size_t>(i)] == RowFate::kDegrade)
        degrade_rows.push_back(i);
    }
    if (!degrade_rows.empty()) {
      const std::int64_t f = bundle.plan.out_features();
      std::vector<hd::Hypervector> queries;
      queries.reserve(degrade_rows.size());
      for (const std::int64_t i : degrade_rows) {
        queries.push_back(bundle.fallback->symbolize(features.values.data() + i * f));
      }
      fallback_sims = bundle.fallback->classifier().similarities_all(
          queries, bundle.fallback->config().similarity);
    }
  }
  const std::int64_t fk =
      bundle.fallback ? bundle.fallback->classifier().num_classes() : 0;

  const Clock::time_point done = Clock::now();
  const double exec_ms =
      std::chrono::duration<double, std::milli>(done - formed).count();
  const double old_ewma = entry.ewma_batch_ms.load(std::memory_order_relaxed);
  entry.ewma_batch_ms.store(
      old_ewma <= 0.0 ? exec_ms : 0.8 * old_ewma + 0.2 * exec_ms,
      std::memory_order_relaxed);

  // Count the batch *before* fulfilling any promise: a caller that wakes on
  // future.get() must already see this batch in stats() (the increments are
  // published by the promise/future synchronization).
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case FlushReason::kMaxBatch:
      counters_.max_batch_flushes.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDeadline:
      counters_.deadline_flushes.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDrain:
      counters_.drain_flushes.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (poison_rows > 0) {
    counters_.numeric_faults.fetch_add(static_cast<std::uint64_t>(poison_rows),
                                       std::memory_order_relaxed);
    NSHD_LOG_WARN("serve: %lld of %lld rows failed the numeric-health scan",
                  static_cast<long long>(poison_rows), static_cast<long long>(n));
  }
  std::uint64_t served = 0, degraded = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (fate[idx] == RowFate::kServe) {
      ++served;
    } else if (fate[idx] == RowFate::kDegrade) {
      // Served degraded only when the fallback actually produced a finite
      // row; otherwise this row falls through to kReject below.
      const auto pos = static_cast<std::int64_t>(
          std::find(degrade_rows.begin(), degrade_rows.end(), i) -
          degrade_rows.begin());
      const bool ok =
          fallback_sims.numel() > 0 &&
          tensor::all_finite(fallback_sims.data() + pos * fk, fk);
      if (ok) ++degraded; else fate[idx] = RowFate::kReject;
    }
  }
  counters_.completed.fetch_add(served + degraded, std::memory_order_relaxed);
  if (degraded > 0)
    counters_.degraded.fetch_add(degraded, std::memory_order_relaxed);

  for (std::int64_t i = 0; i < n; ++i) {
    Request& request = batch[static_cast<std::size_t>(i)];
    const auto idx = static_cast<std::size_t>(i);
    if (fate[idx] == RowFate::kReject) {
      fail_request(request, RequestStatus::kInternalError, reason);
      continue;
    }
    Response response;
    const float* row;
    if (fate[idx] == RowFate::kDegrade) {
      const auto pos = static_cast<std::int64_t>(
          std::find(degrade_rows.begin(), degrade_rows.end(), i) -
          degrade_rows.begin());
      row = fallback_sims.data() + pos * fk;
      response.scores.assign(row, row + fk);
      response.status = RequestStatus::kDegraded;
    } else {
      row = sims.data() + i * k;
      response.scores.assign(row, row + k);
      response.status = RequestStatus::kOk;
    }
    const auto classes = static_cast<std::int64_t>(response.scores.size());
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c)
      if (row[c] > row[best]) best = c;
    response.predicted = best;
    response.flush = reason;
    response.batch_size = n;
    response.retries = attempt;
    response.queue_ms =
        std::chrono::duration<double, std::milli>(formed - request.enqueued).count();
    response.total_ms =
        std::chrono::duration<double, std::milli>(done - request.enqueued).count();
    request.promise.set_value(std::move(response));
  }
}

util::LoadStatus Engine::reload(const std::string& id, const std::string& path) {
  ModelEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = registry_.find(id);
    if (it != registry_.end()) entry = it->second.get();
  }
  const auto fail = [&](util::LoadStatus status) {
    NSHD_LOG_WARN("serve: reload of '%s' from %s failed: %s — old weights keep serving",
                  id.c_str(), path.c_str(), util::to_string(status));
    counters_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  if (entry == nullptr) return fail(util::LoadStatus::kNotFound);

  // Read and fully verify the artifact *before* touching the live model;
  // every corruption mode comes back as a named status and the request
  // path never observes a half-applied swap.
  util::CheckpointLoad load = util::read_checkpoint_file(path);
  if (!load.ok()) return fail(load.status);
  if (!load.checkpoint.key.empty() && load.checkpoint.key != id)
    return fail(util::LoadStatus::kShapeMismatch);
  if (load.checkpoint.tensors.size() != 1)
    return fail(util::LoadStatus::kShapeMismatch);

  // Numeric-health gate: a checkpoint can pass every CRC and still carry
  // NaN/Inf weights (it faithfully preserves what was saved).  Serving such
  // state produces garbage that the bipolar quantization partly hides, so
  // it is rejected here, before the writer lock, as a typed kNonFinite.
  std::vector<float>& state = load.checkpoint.tensors[0].values;
  if (util::fault::should_fire("serve.reload_corrupt") && !state.empty()) {
    state[state.size() / 2] = std::numeric_limits<float>::quiet_NaN();
  }
  if (!tensor::all_finite(state.data(), static_cast<std::int64_t>(state.size())))
    return fail(util::LoadStatus::kNonFinite);

  {
    // Writer side: waits for in-flight batches to drain, blocks new ones
    // for the duration of the (cheap, in-memory) state copy.
    std::unique_lock<std::shared_mutex> guard(entry->reload_mutex);
    if (!entry->bundle->nshd.load_state(state))
      return fail(util::LoadStatus::kShapeMismatch);
    // Re-warm the norm cache serially while we still hold the writer lock.
    (void)entry->bundle->nshd.classifier().class_norms();
    // Online mode serves from the versioned bank, so a reload must reseed
    // it from the freshly loaded classifier (published as the next version;
    // the finiteness gate already passed above).
    if (entry->bundle->online != nullptr)
      (void)entry->bundle->online->reseed(entry->bundle->nshd.classifier());
  }
  NSHD_LOG_INFO("serve: reloaded '%s' from %s", id.c_str(), path.c_str());
  counters_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  return util::LoadStatus::kOk;
}

template <typename Mutate>
UpdateStatus Engine::with_online(const std::string& id, Mutate&& mutate) {
  ModelEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return UpdateStatus::kShutdown;
    const auto it = registry_.find(id);
    if (it != registry_.end()) entry = it->second.get();
  }
  if (entry == nullptr) return UpdateStatus::kUnknownModel;
  if (entry->bundle->online == nullptr) {
    counters_.updates_rejected.fetch_add(1, std::memory_order_relaxed);
    return UpdateStatus::kOnlineDisabled;
  }

  // Shared side of the reload lock: updates serialize against reload's
  // exclusive swap (which reseeds the bank) but NOT against batch
  // execution — readers never wait on a writer.  Updates among themselves
  // serialize on the bank's writer mutex.
  hd::UpdateStatus status;
  {
    std::shared_lock<std::shared_mutex> guard(entry->reload_mutex);
    status = mutate(*entry->bundle->online);
  }
  switch (status) {
    case hd::UpdateStatus::kOk:
      counters_.updates_ok.fetch_add(1, std::memory_order_relaxed);
      return UpdateStatus::kOk;
    case hd::UpdateStatus::kBadArgs:
      counters_.updates_rejected.fetch_add(1, std::memory_order_relaxed);
      return UpdateStatus::kBadArgs;
    case hd::UpdateStatus::kNonFinite:
      counters_.updates_rolled_back.fetch_add(1, std::memory_order_relaxed);
      return UpdateStatus::kNonFinite;
    case hd::UpdateStatus::kAccuracyCollapse:
      counters_.updates_rolled_back.fetch_add(1, std::memory_order_relaxed);
      return UpdateStatus::kAccuracyCollapse;
    case hd::UpdateStatus::kPublishFault:
      counters_.updates_rolled_back.fetch_add(1, std::memory_order_relaxed);
      return UpdateStatus::kPublishFault;
  }
  return UpdateStatus::kBadArgs;  // unreachable
}

UpdateStatus Engine::update_online(const std::string& id,
                                   const std::vector<hd::Hypervector>& samples,
                                   const std::vector<std::int64_t>& labels,
                                   const hd::MassConfig& config,
                                   double* train_accuracy) {
  return with_online(id, [&](hd::VersionedBank& bank) {
    return bank.mass_epoch(samples, labels, config, train_accuracy);
  });
}

UpdateStatus Engine::add_class_online(const std::string& id,
                                      const std::vector<hd::Hypervector>& samples,
                                      std::int64_t* new_class) {
  const UpdateStatus status = with_online(id, [&](hd::VersionedBank& bank) {
    return bank.add_class(samples, new_class);
  });
  if (status == UpdateStatus::kOk)
    counters_.classes_added.fetch_add(1, std::memory_order_relaxed);
  return status;
}

UpdateStatus Engine::remove_class_online(const std::string& id,
                                         std::int64_t class_index) {
  const UpdateStatus status = with_online(id, [&](hd::VersionedBank& bank) {
    return bank.remove_class(class_index);
  });
  if (status == UpdateStatus::kOk)
    counters_.classes_removed.fetch_add(1, std::memory_order_relaxed);
  return status;
}

bool Engine::save_online_snapshot(const std::string& id, const std::string& path,
                                  std::uint64_t cursor) {
  ModelEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = registry_.find(id);
    if (it != registry_.end()) entry = it->second.get();
  }
  if (entry == nullptr || entry->bundle->online == nullptr) return false;
  // Reads only the published snapshot (atomic load) — no lock needed, and
  // traffic plus concurrent updates proceed undisturbed.
  if (!entry->bundle->online->save_snapshot(path, id, cursor)) return false;
  counters_.online_snapshots.fetch_add(1, std::memory_order_relaxed);
  return true;
}

hd::VersionedBank::RestoreResult Engine::restore_online(const std::string& id,
                                                        const std::string& path) {
  hd::VersionedBank::RestoreResult result;
  ModelEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = registry_.find(id);
    if (it != registry_.end()) entry = it->second.get();
  }
  if (entry == nullptr || entry->bundle->online == nullptr) {
    result.status = util::LoadStatus::kNotFound;
    return result;
  }
  {
    // Exclusive, like reload(): a restore is a wholesale swap of the
    // model's learning state, so in-flight batches drain first and no
    // update interleaves with it.
    std::unique_lock<std::shared_mutex> guard(entry->reload_mutex);
    result = entry->bundle->online->load_snapshot(path, id);
  }
  if (result.status == util::LoadStatus::kOk) {
    counters_.online_restores.fetch_add(1, std::memory_order_relaxed);
    NSHD_LOG_INFO("serve: restored online bank of '%s' from %s (version %llu)",
                  id.c_str(), path.c_str(),
                  static_cast<unsigned long long>(result.version));
  }
  return result;
}

void Engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

EngineStats Engine::stats() const {
  // Each counter is a single relaxed atomic: stats() is a per-counter
  // monotonic snapshot, exact at any quiescent point (all accepted futures
  // resolved), without the per-increment lock the hot path used to take.
  EngineStats s;
  const auto get = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  s.submitted = get(counters_.submitted);
  s.completed = get(counters_.completed);
  s.timed_out = get(counters_.timed_out);
  s.internal_errors = get(counters_.internal_errors);
  s.degraded = get(counters_.degraded);
  s.rejected_full = get(counters_.rejected_full);
  s.rejected_shape = get(counters_.rejected_shape);
  s.rejected_shutdown = get(counters_.rejected_shutdown);
  s.rejected_unknown = get(counters_.rejected_unknown);
  s.rejected_overload = get(counters_.rejected_overload);
  s.batches = get(counters_.batches);
  s.quantized_batches = get(counters_.quantized_batches);
  s.max_batch_flushes = get(counters_.max_batch_flushes);
  s.deadline_flushes = get(counters_.deadline_flushes);
  s.drain_flushes = get(counters_.drain_flushes);
  s.batch_faults = get(counters_.batch_faults);
  s.retried = get(counters_.retried);
  s.numeric_faults = get(counters_.numeric_faults);
  s.reloads_ok = get(counters_.reloads_ok);
  s.reloads_failed = get(counters_.reloads_failed);
  s.updates_ok = get(counters_.updates_ok);
  s.updates_rolled_back = get(counters_.updates_rolled_back);
  s.updates_rejected = get(counters_.updates_rejected);
  s.classes_added = get(counters_.classes_added);
  s.classes_removed = get(counters_.classes_removed);
  s.online_snapshots = get(counters_.online_snapshots);
  s.online_restores = get(counters_.online_restores);
  return s;
}

}  // namespace nshd::serve
