#include "models/pretrained.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace nshd::models {

std::string pretrain_cache_key(const std::string& name,
                               const PretrainOptions& options,
                               std::int64_t num_classes) {
  std::string key = "pretrained|" + name + "|k=" + std::to_string(num_classes) +
                    "|seed=" + std::to_string(options.model_seed) +
                    "|ep=" + std::to_string(options.train.epochs) +
                    "|bs=" + std::to_string(options.train.batch_size) +
                    "|lr=" + std::to_string(options.train.learning_rate) +
                    "|" + options.dataset_key;
  return key;
}

ZooModel pretrained_model(const std::string& name, const data::Dataset& train_set,
                          const PretrainOptions& options,
                          const util::DiskCache& cache) {
  ZooModel model = make_model(name, train_set.num_classes, options.model_seed);
  // Topologies without batch norm (plain VGG) need a gentler step than the
  // shared default; the effective rate is part of the cache fingerprint.
  PretrainOptions effective = options;
  effective.train.learning_rate =
      std::min(options.train.learning_rate, model.suggested_learning_rate);
  const std::string key =
      pretrain_cache_key(name, effective, train_set.num_classes);
  const std::string epoch_key = "epoch|" + key;

  {
    const util::CheckpointLoad load = cache.get_checkpoint(key);
    if (load.ok()) {
      const util::LoadStatus status = nn::load_state(model.net, load.checkpoint);
      if (status == util::LoadStatus::kOk) {
        NSHD_LOG_INFO("%s: loaded pretrained weights from cache", name.c_str());
        return model;
      }
      NSHD_LOG_WARN("%s: cached weights rejected (%s); retraining", name.c_str(),
                    util::to_string(status));
    } else if (load.status != util::LoadStatus::kNotFound) {
      NSHD_LOG_WARN("%s: cached weights unreadable (%s); retraining",
                    name.c_str(), util::to_string(load.status));
    }
  }

  // A killed run leaves an epoch checkpoint behind; resume from it so the
  // remaining epochs replay bitwise instead of starting over.
  std::optional<nn::TrainCheckpoint> resume;
  if (effective.epoch_checkpoints) {
    const util::CheckpointLoad load = cache.get_checkpoint(epoch_key);
    if (load.ok()) {
      resume = nn::TrainCheckpoint::from_artifact(load.checkpoint);
      if (!resume)
        NSHD_LOG_WARN("%s: epoch checkpoint has an unreadable meta record; "
                      "restarting training", name.c_str());
    } else if (load.status != util::LoadStatus::kNotFound) {
      NSHD_LOG_WARN("%s: epoch checkpoint unreadable (%s); restarting training",
                    name.c_str(), util::to_string(load.status));
    }
  }

  nn::EpochHook on_epoch;
  if (effective.epoch_checkpoints) {
    on_epoch = [&cache, &epoch_key, &name](const nn::EpochStats& stats,
                                           const nn::TrainCheckpoint& tc) {
      if (!cache.put_checkpoint(epoch_key, tc.to_artifact(epoch_key)))
        NSHD_LOG_WARN("%s: failed to persist epoch %lld checkpoint",
                      name.c_str(), static_cast<long long>(stats.epoch));
      if (util::fault::should_fire("pretrain.kill"))
        throw std::runtime_error("fault injected: pretrain.kill after epoch " +
                                 std::to_string(stats.epoch));
    };
  }

  NSHD_LOG_INFO("%s: pretraining on %lld samples (%lld classes)...",
                name.c_str(), static_cast<long long>(train_set.size()),
                static_cast<long long>(train_set.num_classes));
  util::Stopwatch watch;
  // Pretraining rides the planned zero-alloc path by default
  // (TrainConfig::planned); the cache keys stay valid across the legacy /
  // planned switch because both paths produce bitwise-identical weights.
  nn::train_classifier(model.net, train_set, effective.train, on_epoch,
                       resume ? &*resume : nullptr);
  NSHD_LOG_INFO("%s: pretraining done in %.1fs", name.c_str(), watch.seconds());
  if (!cache.put_checkpoint(key, nn::checkpoint_state(model.net, key)))
    NSHD_LOG_WARN("%s: failed to cache pretrained weights", name.c_str());
  cache.erase_checkpoint(epoch_key);
  return model;
}

}  // namespace nshd::models
