#include "models/pretrained.hpp"

#include <algorithm>

#include "nn/serialize.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace nshd::models {

std::string pretrain_cache_key(const std::string& name,
                               const PretrainOptions& options,
                               std::int64_t num_classes) {
  std::string key = "pretrained|" + name + "|k=" + std::to_string(num_classes) +
                    "|seed=" + std::to_string(options.model_seed) +
                    "|ep=" + std::to_string(options.train.epochs) +
                    "|bs=" + std::to_string(options.train.batch_size) +
                    "|lr=" + std::to_string(options.train.learning_rate) +
                    "|" + options.dataset_key;
  return key;
}

ZooModel pretrained_model(const std::string& name, const data::Dataset& train_set,
                          const PretrainOptions& options,
                          const util::DiskCache& cache) {
  ZooModel model = make_model(name, train_set.num_classes, options.model_seed);
  // Topologies without batch norm (plain VGG) need a gentler step than the
  // shared default; the effective rate is part of the cache fingerprint.
  PretrainOptions effective = options;
  effective.train.learning_rate =
      std::min(options.train.learning_rate, model.suggested_learning_rate);
  const std::string key =
      pretrain_cache_key(name, effective, train_set.num_classes);

  if (auto blob = cache.get(key)) {
    if (nn::load_state(model.net, *blob)) {
      NSHD_LOG_INFO("%s: loaded pretrained weights from cache", name.c_str());
      return model;
    }
    NSHD_LOG_WARN("%s: cached weights rejected (layout mismatch); retraining",
                  name.c_str());
  }

  NSHD_LOG_INFO("%s: pretraining on %lld samples (%lld classes)...",
                name.c_str(), static_cast<long long>(train_set.size()),
                static_cast<long long>(train_set.num_classes));
  util::Stopwatch watch;
  nn::train_classifier(model.net, train_set, effective.train);
  NSHD_LOG_INFO("%s: pretraining done in %.1fs", name.c_str(), watch.seconds());
  cache.put(key, nn::save_state(model.net));
  return model;
}

}  // namespace nshd::models
