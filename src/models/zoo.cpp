#include "models/zoo.hpp"

#include <stdexcept>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"

namespace nshd::models {

using nn::Activation;
using nn::ActivationLayer;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool2d;
using nn::MBConvBlock;
using nn::MBConvConfig;
using nn::Sequential;

std::int64_t ZooModel::feature_dim_at(std::size_t cut) const {
  const tensor::Shape s = feature_shape_at(cut);
  return s.numel();
}

tensor::Shape ZooModel::feature_shape_at(std::size_t cut) const {
  const tensor::Shape in{1, input_chw[0], input_chw[1], input_chw[2]};
  const tensor::Shape out = net.output_shape_at(in, cut);
  return tensor::Shape{out[1], out.rank() > 2 ? out[2] : 1,
                       out.rank() > 3 ? out[3] : 1};
}

namespace {

/// Adds a Conv-BN-Activation triple as three separate indexable layers is
/// NOT what torchvision VGG does (VGG has no BN in the classic config the
/// paper indexes); VGG entries are Conv, ReLU, and MaxPool only.
void add_vgg_conv(Sequential& net, std::int64_t in_c, std::int64_t out_c,
                  util::Rng& rng) {
  net.emplace<Conv2d>(in_c, out_c, 3, 1, 1, /*bias=*/true, rng);
  net.emplace<ActivationLayer>(Activation::kReLU);
}

/// One composite EfficientNet stage: `repeats` MBConv blocks, the first one
/// carrying the stride / channel change.
nn::LayerPtr make_stage(std::int64_t in_c, std::int64_t out_c,
                        std::int64_t expand, std::int64_t kernel,
                        std::int64_t stride, std::int64_t repeats, bool use_se,
                        Activation act, util::Rng& rng) {
  auto stage = std::make_unique<Sequential>();
  for (std::int64_t r = 0; r < repeats; ++r) {
    MBConvConfig cfg;
    cfg.in_channels = r == 0 ? in_c : out_c;
    cfg.out_channels = out_c;
    cfg.expand_ratio = expand;
    cfg.kernel = kernel;
    cfg.stride = r == 0 ? stride : 1;
    cfg.use_se = use_se;
    cfg.activation = act;
    stage->emplace<MBConvBlock>(cfg, rng);
  }
  return stage;
}

/// Conv + BN + activation as one composite (indexable) unit.
nn::LayerPtr make_conv_bn_act(std::int64_t in_c, std::int64_t out_c,
                              std::int64_t kernel, std::int64_t stride,
                              Activation act, util::Rng& rng) {
  auto unit = std::make_unique<Sequential>();
  unit->emplace<Conv2d>(in_c, out_c, kernel, stride, kernel / 2, /*bias=*/false, rng);
  unit->emplace<BatchNorm2d>(out_c);
  unit->emplace<ActivationLayer>(act);
  return unit;
}

}  // namespace

ZooModel make_vgg16s(std::int64_t num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  ZooModel m;
  m.name = "vgg16s";
  m.num_classes = num_classes;

  // torchvision VGG16 `features` indexing (0..30), width-scaled by ~1/4:
  //   block1: conv(0) relu(1) conv(2) relu(3) pool(4)
  //   block2: conv(5) relu(6) conv(7) relu(8) pool(9)
  //   block3: conv(10) relu(11) conv(12) relu(13) conv(14) relu(15) pool(16)
  //   block4: conv(17) relu(18) conv(19) relu(20) conv(21) relu(22) pool(23)
  //   block5: conv(24) relu(25) conv(26) relu(27) conv(28) relu(29) pool(30)
  const std::int64_t w1 = 16, w2 = 32, w3 = 64, w4 = 96, w5 = 128;
  Sequential& net = m.net;
  add_vgg_conv(net, 3, w1, rng);
  add_vgg_conv(net, w1, w1, rng);
  net.emplace<MaxPool2d>(2, 2);  // index 4, 32 -> 16
  add_vgg_conv(net, w1, w2, rng);
  add_vgg_conv(net, w2, w2, rng);
  net.emplace<MaxPool2d>(2, 2);  // index 9, 16 -> 8
  add_vgg_conv(net, w2, w3, rng);
  add_vgg_conv(net, w3, w3, rng);
  add_vgg_conv(net, w3, w3, rng);
  net.emplace<MaxPool2d>(2, 2);  // index 16, 8 -> 4
  add_vgg_conv(net, w3, w4, rng);
  add_vgg_conv(net, w4, w4, rng);
  add_vgg_conv(net, w4, w4, rng);
  net.emplace<MaxPool2d>(2, 2);  // index 23, 4 -> 2
  add_vgg_conv(net, w4, w5, rng);
  add_vgg_conv(net, w5, w5, rng);
  add_vgg_conv(net, w5, w5, rng);
  net.emplace<MaxPool2d>(2, 2);  // index 30, 2 -> 1
  m.feature_count = net.size();  // 31

  // Classifier head (scaled version of VGG's 3 FC layers).
  net.emplace<Flatten>();
  net.emplace<Linear>(w5, 128, rng);
  net.emplace<ActivationLayer>(Activation::kReLU);
  net.emplace<Linear>(128, num_classes, rng);

  m.paper_cut_layers = {27, 29};
  m.energy_cut_layers = {27, 29};
  m.suggested_learning_rate = 0.01f;
  return m;
}

ZooModel make_mobilenetv2s(std::int64_t num_classes, std::uint64_t seed) {
  util::Rng rng(seed);
  ZooModel m;
  m.name = "mobilenetv2s";
  m.num_classes = num_classes;

  // torchvision MobileNetV2 `features` indexing (0..18), width ~x0.5 and
  // strides adapted to 32x32 input (stem stride 1).
  Sequential& net = m.net;
  const Activation act = Activation::kReLU6;
  net.add(make_conv_bn_act(3, 16, 3, 1, act, rng));  // 0: stem, 32x32

  auto ir = [&](std::int64_t in_c, std::int64_t out_c, std::int64_t expand,
                std::int64_t stride) {
    MBConvConfig cfg;
    cfg.in_channels = in_c;
    cfg.out_channels = out_c;
    cfg.expand_ratio = expand;
    cfg.kernel = 3;
    cfg.stride = stride;
    cfg.use_se = false;
    cfg.activation = act;
    net.emplace<MBConvBlock>(cfg, rng);
  };

  ir(16, 8, 1, 1);    // 1
  ir(8, 12, 6, 2);    // 2: 32 -> 16
  ir(12, 12, 6, 1);   // 3
  ir(12, 16, 6, 2);   // 4: 16 -> 8
  ir(16, 16, 6, 1);   // 5
  ir(16, 16, 6, 1);   // 6
  ir(16, 32, 6, 2);   // 7: 8 -> 4
  ir(32, 32, 6, 1);   // 8
  ir(32, 32, 6, 1);   // 9
  ir(32, 32, 6, 1);   // 10
  ir(32, 48, 6, 1);   // 11
  ir(48, 48, 6, 1);   // 12
  ir(48, 48, 6, 1);   // 13
  ir(48, 80, 6, 2);   // 14: 4 -> 2
  ir(80, 80, 6, 1);   // 15
  ir(80, 80, 6, 1);   // 16
  ir(80, 160, 6, 1);  // 17
  net.add(make_conv_bn_act(160, 320, 1, 1, act, rng));  // 18: last conv
  m.feature_count = net.size();  // 19

  net.emplace<GlobalAvgPool>();
  net.emplace<Flatten>();
  net.emplace<Linear>(320, num_classes, rng);

  m.paper_cut_layers = {14, 17};
  m.energy_cut_layers = {14, 17};
  return m;
}

namespace {

struct EfficientStage {
  std::int64_t out_c, expand, kernel, stride, repeats;
};

ZooModel make_efficientnet(const std::string& name, std::int64_t stem_c,
                           const std::vector<EfficientStage>& stages,
                           std::int64_t head_c, std::int64_t num_classes,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  ZooModel m;
  m.name = name;
  m.num_classes = num_classes;

  const Activation act = Activation::kSiLU;
  Sequential& net = m.net;
  net.add(make_conv_bn_act(3, stem_c, 3, 1, act, rng));  // block 0: stem

  std::int64_t in_c = stem_c;
  for (const EfficientStage& st : stages) {
    net.add(make_stage(in_c, st.out_c, st.expand, st.kernel, st.stride,
                       st.repeats, /*use_se=*/true, act, rng));
    in_c = st.out_c;
  }
  net.add(make_conv_bn_act(in_c, head_c, 1, 1, act, rng));  // block 8: head conv
  m.feature_count = net.size();  // 9

  net.emplace<GlobalAvgPool>();
  net.emplace<Flatten>();
  net.emplace<Linear>(head_c, num_classes, rng);
  return m;
}

}  // namespace

ZooModel make_efficientnet_b0s(std::int64_t num_classes, std::uint64_t seed) {
  // Stage layout mirrors EfficientNet-B0 (7 MBConv stages), width ~x0.5,
  // repeats trimmed, strides adapted to 32x32 (downsample at stages 2/3/4/6).
  const std::vector<EfficientStage> stages = {
      {8, 1, 3, 1, 1},    // 1: MBConv1 k3
      {12, 6, 3, 2, 2},   // 2: 32 -> 16
      {20, 6, 5, 2, 2},   // 3: 16 -> 8
      {40, 6, 3, 2, 2},   // 4: 8 -> 4
      {56, 6, 5, 1, 2},   // 5
      {96, 6, 5, 2, 2},   // 6: 4 -> 2
      {160, 6, 3, 1, 1},  // 7
  };
  ZooModel m = make_efficientnet("efficientnet_b0s", 16, stages, 320,
                                 num_classes, seed);
  m.paper_cut_layers = {5, 6, 7, 8};
  m.energy_cut_layers = {6, 7};
  return m;
}

ZooModel make_efficientnet_b7s(std::int64_t num_classes, std::uint64_t seed) {
  // B7-style compound scaling relative to B0s: wider (~x1.7) and deeper.
  const std::vector<EfficientStage> stages = {
      {12, 1, 3, 1, 2},   // 1
      {18, 6, 3, 2, 3},   // 2: 32 -> 16
      {30, 6, 5, 2, 3},   // 3: 16 -> 8
      {56, 6, 3, 2, 4},   // 4: 8 -> 4
      {80, 6, 5, 1, 4},   // 5
      {136, 6, 5, 2, 4},  // 6: 4 -> 2
      {224, 6, 3, 1, 2},  // 7
  };
  ZooModel m = make_efficientnet("efficientnet_b7s", 24, stages, 448,
                                 num_classes, seed);
  m.paper_cut_layers = {6, 7, 8};
  m.energy_cut_layers = {6, 7};
  return m;
}

ZooModel make_model(const std::string& name, std::int64_t num_classes,
                    std::uint64_t seed) {
  if (name == "vgg16s") return make_vgg16s(num_classes, seed);
  if (name == "mobilenetv2s") return make_mobilenetv2s(num_classes, seed);
  if (name == "efficientnet_b0s") return make_efficientnet_b0s(num_classes, seed);
  if (name == "efficientnet_b7s") return make_efficientnet_b7s(num_classes, seed);
  throw std::invalid_argument("unknown zoo model: " + name);
}

std::vector<std::string> zoo_model_names() {
  return {"mobilenetv2s", "efficientnet_b0s", "efficientnet_b7s", "vgg16s"};
}

std::string display_name(const std::string& zoo_name) {
  if (zoo_name == "vgg16s") return "VGG16";
  if (zoo_name == "mobilenetv2s") return "Mobilenetv2";
  if (zoo_name == "efficientnet_b0s") return "Efficientnetb0";
  if (zoo_name == "efficientnet_b7s") return "Efficientnetb7";
  return zoo_name;
}

}  // namespace nshd::models
