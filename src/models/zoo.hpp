// CNN model zoo with paper-style layer indexing.
//
// The paper labels cut points by the feature-stack index of each backbone:
// VGG16 by conv/activation/pool entries (torchvision `features` 0..30),
// MobileNetV2 by operators (0..18), EfficientNet by blocks (0..8).  The zoo
// reproduces those exact index spaces on width-scaled, 32x32-input variants
// (the "s" suffix) so that every layer number in the paper's tables and
// figures maps one-to-one onto a cut point here.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace nshd::models {

/// A zoo entry: a full network whose first `feature_count` top-level layers
/// form the paper's indexable feature stack, followed by the classifier head.
struct ZooModel {
  std::string name;
  nn::Sequential net;
  /// Number of top-level layers that belong to the indexable feature stack;
  /// valid cut indices are [0, feature_count-1].
  std::size_t feature_count = 0;
  /// The cut indices the paper evaluates for this backbone (Fig. 4/7,
  /// Table II).
  std::vector<std::size_t> paper_cut_layers;
  /// The subset of paper_cut_layers used in the energy study (Fig. 4) —
  /// chosen in the paper such that accuracy loss stays under 10%.
  std::vector<std::size_t> energy_cut_layers;
  tensor::Shape input_chw{3, 32, 32};
  std::int64_t num_classes = 10;
  /// Pretraining learning rate that works for this topology (plain VGG has
  /// no batch norm and diverges at the BN-friendly default).
  float suggested_learning_rate = 0.05f;

  /// Flattened feature size when cut after layer `cut`.
  std::int64_t feature_dim_at(std::size_t cut) const;
  /// Shape [1, C, H, W] of the activation after layer `cut`.
  tensor::Shape feature_shape_at(std::size_t cut) const;
};

/// Scaled VGG16 (torchvision features indexing 0..30, feature_count 31).
ZooModel make_vgg16s(std::int64_t num_classes, std::uint64_t seed);
/// Scaled MobileNetV2 (operator indexing 0..18, feature_count 19).
ZooModel make_mobilenetv2s(std::int64_t num_classes, std::uint64_t seed);
/// Scaled EfficientNet-B0 (block indexing 0..8, feature_count 9).
ZooModel make_efficientnet_b0s(std::int64_t num_classes, std::uint64_t seed);
/// Scaled EfficientNet-B7 (block indexing 0..8, feature_count 9; deeper and
/// wider than B0s).
ZooModel make_efficientnet_b7s(std::int64_t num_classes, std::uint64_t seed);

/// Factory by name: "vgg16s", "mobilenetv2s", "efficientnet_b0s",
/// "efficientnet_b7s".  Throws std::invalid_argument for unknown names.
ZooModel make_model(const std::string& name, std::int64_t num_classes,
                    std::uint64_t seed);

/// All registered names, in the paper's presentation order.
std::vector<std::string> zoo_model_names();

/// Human-readable display name ("VGG16", "Efficientnetb0", ...) matching the
/// paper's tables.
std::string display_name(const std::string& zoo_name);

}  // namespace nshd::models
