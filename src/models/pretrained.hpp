// "Pretrained" model provisioning.
//
// The paper downloads ImageNet-pretrained CNNs; this repo trains each zoo
// model on the synthetic dataset once and memoizes the weights on disk, so
// every bench/example after the first run starts from frozen teachers just
// like the paper does.
#pragma once

#include <string>

#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/trainer.hpp"
#include "util/cache.hpp"

namespace nshd::models {

struct PretrainOptions {
  nn::TrainConfig train;
  /// Dataset fingerprint folded into the cache key (use
  /// SynthCifarConfig::cache_key).
  std::string dataset_key;
  std::uint64_t model_seed = 11;
  /// Persist a resume checkpoint after every epoch so a killed run picks up
  /// from its last completed epoch (bitwise, at the same seed and thread
  /// count) instead of restarting.
  bool epoch_checkpoints = true;
};

/// Returns `name` trained on `train_set`: loads cached weights when the
/// (model, dataset, config) fingerprint matches, otherwise trains and
/// caches.  Weights live in NSHDKPT1 checkpoint entries: a corrupt, stale,
/// truncated, or layout-mismatched file is rejected with a named status and
/// triggers a retrain — never a silent garbage load.  Fault site:
/// "pretrain.kill" (dies right after writing an epoch checkpoint).
ZooModel pretrained_model(const std::string& name, const data::Dataset& train_set,
                          const PretrainOptions& options,
                          const util::DiskCache& cache);

/// Cache key used by pretrained_model (exposed for cache management tools).
std::string pretrain_cache_key(const std::string& name,
                               const PretrainOptions& options,
                               std::int64_t num_classes);

}  // namespace nshd::models
