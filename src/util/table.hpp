// ASCII table printer used by the bench harnesses to emit paper-style
// tables/figure series (Table I, Table II, Fig. 4-10 rows) and by
// EXPERIMENTS.md generation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nshd::util {

/// A simple column-aligned table.  Cells are strings; use cell() helpers to
/// format numbers consistently across benches.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with +---+ borders, column-aligned.
  std::string to_string() const;

  /// Renders as comma-separated values (header + rows).
  std::string to_csv() const;

  /// Renders as a GitHub-flavored markdown table.
  std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting (e.g. cell(0.63871, 2) == "0.64").
std::string cell(double value, int precision = 3);
std::string cell(std::size_t value);
std::string cell(int value);

/// Formats a byte count as "12.36MB" style, matching Table II in the paper.
std::string format_bytes(double bytes);

/// Formats a count as "12.4M" / "3.1K" style.
std::string format_count(double count);

}  // namespace nshd::util
