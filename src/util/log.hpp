// Minimal leveled logging to stderr.
//
// The library itself is quiet by default (Level::kWarn); examples and bench
// harnesses raise the level to kInfo so training progress is visible.
#pragma once

#include <cstdarg>
#include <string>

namespace nshd::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Thread-compatible (single writer assumed).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define NSHD_LOG_DEBUG(...) ::nshd::util::logf(::nshd::util::LogLevel::kDebug, __VA_ARGS__)
#define NSHD_LOG_INFO(...) ::nshd::util::logf(::nshd::util::LogLevel::kInfo, __VA_ARGS__)
#define NSHD_LOG_WARN(...) ::nshd::util::logf(::nshd::util::LogLevel::kWarn, __VA_ARGS__)
#define NSHD_LOG_ERROR(...) ::nshd::util::logf(::nshd::util::LogLevel::kError, __VA_ARGS__)

}  // namespace nshd::util
