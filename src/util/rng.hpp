// Deterministic pseudo-random number generation for the whole repository.
//
// Every stochastic component (dataset synthesis, weight init, projection
// hypervectors, training shuffles) draws from an explicitly seeded Rng so
// that experiments are reproducible run-to-run.  The generator is
// xoshiro256** seeded through splitmix64, which has far better statistical
// quality than std::minstd and is much faster than std::mt19937_64.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace nshd::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached second value).
  float normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1 = next_float();
    float u2 = next_float();
    // Avoid log(0).
    if (u1 < 1e-12f) u1 = 1e-12f;
    const float r = std::sqrt(-2.0f * std::log(u1));
    const float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean/stddev.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Random bipolar value: +1 or -1 with equal probability.
  float bipolar() { return (next_u64() & 1ULL) ? 1.0f : -1.0f; }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Fisher-Yates shuffle of an index-able container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A fresh generator whose seed is derived from this one plus a stream id.
  /// Use to give independent substreams to parallel components.
  Rng fork(std::uint64_t stream) {
    std::uint64_t s = next_u64() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

/// Returns a vector {0, 1, ..., n-1}.
std::vector<std::size_t> iota_indices(std::size_t n);

/// Returns a shuffled permutation of {0..n-1}.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace nshd::util
