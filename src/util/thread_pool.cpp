#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>

#include "util/log.hpp"

namespace nshd::util {

namespace {

// Set while a thread is executing chunks, so nested parallel_for calls
// (e.g. encode_all -> project) run inline instead of deadlocking on the
// pool they are already inside of.
thread_local bool t_in_worker = false;

int env_thread_count() {
  const int hw_raw = static_cast<int>(std::thread::hardware_concurrency());
  const int hw = hw_raw == 0 ? 1 : hw_raw;
  if (const char* env = std::getenv("NSHD_THREADS"); env != nullptr) {
    return parse_thread_count(env, hw);
  }
  return hw;
}

}  // namespace

int parse_env_count(const char* name, const char* text, int min_value,
                    int max_value, int fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* endptr = nullptr;
  const long parsed = std::strtol(text, &endptr, 10);
  // Skip trailing whitespace only; any other leftover byte means the value
  // was not a plain integer ("8x", "fast", "3.5") and must not half-parse.
  while (endptr != nullptr && std::isspace(static_cast<unsigned char>(*endptr))) ++endptr;
  if (endptr == text || endptr == nullptr || *endptr != '\0') {
    NSHD_LOG_WARN("%s=\"%s\" is not an integer; using %d", name, text, fallback);
    return fallback;
  }
  if (parsed < min_value) {
    NSHD_LOG_WARN("%s=%ld is out of range (must be >= %d); using %d", name,
                  parsed, min_value, fallback);
    return fallback;
  }
  if (parsed > max_value) {
    NSHD_LOG_WARN("%s=%ld exceeds the cap of %d; clamping", name, parsed,
                  max_value);
    return max_value;
  }
  return static_cast<int>(parsed);
}

int parse_thread_count(const char* text, int fallback) {
  return parse_env_count("NSHD_THREADS", text, 1, kMaxThreads, fallback);
}

// One parallel_for invocation.  Heap-allocated and shared so a worker that
// wakes late can only ever touch the job it snapshotted under the mutex;
// over-claiming on a finished job is harmless (the claim check fails).
struct ThreadPool::Job {
  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>* fn;
  std::int64_t begin, end, grain, chunks;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> pending;

  Job(const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& f,
      std::int64_t b, std::int64_t e, std::int64_t g, std::int64_t c)
      : fn(&f), begin(b), end(e), grain(g), chunks(c), pending(c) {}
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_thread_count());
  return pool;
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  spawn_workers();
}

ThreadPool::~ThreadPool() { join_workers(); }

void ThreadPool::spawn_workers() {
  // The caller participates in every job, so only threads_-1 workers.
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::join_workers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
}

void ThreadPool::resize(int threads) {
  std::lock_guard<std::mutex> caller_lock(caller_mutex_);
  threads = std::max(1, threads);
  if (threads == threads_) return;
  join_workers();
  threads_ = threads;
  spawn_workers();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    if (job) run_job(*job);
  }
}

void ThreadPool::run_job(Job& job) {
  t_in_worker = true;
  for (;;) {
    const std::int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.chunks) break;
    const std::int64_t b = job.begin + i * job.grain;
    const std::int64_t e = std::min(b + job.grain, job.end);
    (*job.fn)(i, b, e);
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
  t_in_worker = false;
}

void ThreadPool::parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = chunk_count(begin, end, grain);
  // Serial path: pool of one, a single chunk, or a nested call from inside
  // a worker (the outer job already owns the pool).
  if (threads_ <= 1 || chunks <= 1 || t_in_worker) {
    const bool was_worker = t_in_worker;
    t_in_worker = true;  // anything nested below stays inline too
    for (std::int64_t i = 0; i < chunks; ++i) {
      const std::int64_t b = begin + i * grain;
      fn(i, b, std::min(b + grain, end));
    }
    t_in_worker = was_worker;
    return;
  }

  // Contended path: another external caller already owns the pool.  Rather
  // than head-of-line blocking behind that unrelated job (which stalls e.g.
  // a serving worker whose batch has its own deadline), run this loop inline
  // on the calling thread — the exact degradation the nested-call path above
  // already uses.  Chunk boundaries are unchanged, so results stay bitwise
  // identical; only the executing thread differs.
  std::unique_lock<std::mutex> caller_lock(caller_mutex_, std::try_to_lock);
  if (!caller_lock.owns_lock()) {
    t_in_worker = true;
    for (std::int64_t i = 0; i < chunks; ++i) {
      const std::int64_t b = begin + i * grain;
      fn(i, b, std::min(b + grain, end));
    }
    t_in_worker = false;
    return;
  }
  auto job = std::make_shared<Job>(fn, begin, end, grain, chunks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();
  run_job(*job);  // the caller is worker #0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
    job_.reset();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  parallel_for_chunks(begin, end, grain,
                      [&fn](std::int64_t, std::int64_t b, std::int64_t e) { fn(b, e); });
}

int thread_count() { return ThreadPool::instance().threads(); }

void set_thread_count(int threads) { ThreadPool::instance().resize(threads); }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for_chunks(begin, end, grain, fn);
}

}  // namespace nshd::util
