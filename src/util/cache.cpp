#include "util/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/log.hpp"

namespace nshd::util {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {}

std::string DiskCache::path_for(const std::string& key) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir_ + "/" + buf + ".bin";
}

std::optional<std::vector<float>> DiskCache::get(const std::string& key) const {
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (bytes % sizeof(float) != 0) {
    NSHD_LOG_WARN("cache entry %s has odd size; ignoring", path.c_str());
    return std::nullopt;
  }
  std::vector<float> blob(bytes / sizeof(float));
  in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(bytes));
  if (!in) return std::nullopt;
  return blob;
}

void DiskCache::put(const std::string& key, const std::vector<float>& blob) const {
  std::filesystem::create_directories(dir_);
  const std::string path = path_for(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size() * sizeof(float)));
    if (!out) {
      NSHD_LOG_WARN("failed to write cache entry %s", tmp.c_str());
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) NSHD_LOG_WARN("failed to commit cache entry %s: %s", path.c_str(), ec.message().c_str());
}

bool DiskCache::contains(const std::string& key) const {
  return std::filesystem::exists(path_for(key));
}

void DiskCache::erase(const std::string& key) const {
  std::error_code ec;
  std::filesystem::remove(path_for(key), ec);
}

DiskCache DiskCache::standard() {
  if (const char* env = std::getenv("NSHD_CACHE_DIR"); env != nullptr && *env != '\0') {
    return DiskCache(env);
  }
  return DiskCache(".nshd_cache");
}

}  // namespace nshd::util
