#include "util/cache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "util/log.hpp"

namespace nshd::util {

namespace {

// Entry layout: magic, key length, full key bytes, float payload.  The
// stored key is verified on read, so an fnv1a64 collision (two keys, one
// file name) degrades to a cache miss instead of silently returning the
// other key's blob.  Headerless files from the pre-header format fail the
// magic check and are likewise treated as misses.
constexpr char kMagic[8] = {'N', 'S', 'H', 'D', 'C', 'v', '1', '\n'};

/// Reads and checks the header; returns the payload offset in bytes, or -1
/// if the entry is legacy/corrupt or stores a different (colliding) key.
std::int64_t verify_header(std::ifstream& in, const std::string& key) {
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) return -1;
  std::uint64_t key_size = 0;
  in.read(reinterpret_cast<char*>(&key_size), sizeof key_size);
  if (!in || key_size != key.size()) return -1;
  std::string stored(key.size(), '\0');
  in.read(stored.data(), static_cast<std::streamsize>(stored.size()));
  if (!in || stored != key) return -1;
  return static_cast<std::int64_t>(sizeof kMagic + sizeof key_size + key_size);
}

}  // namespace

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {}

std::string DiskCache::path_for(const std::string& key) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir_ + "/" + buf + ".bin";
}

std::string DiskCache::checkpoint_path_for(const std::string& key) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir_ + "/" + buf + ".ckpt";
}

CheckpointLoad DiskCache::get_checkpoint(const std::string& key) const {
  const std::string path = checkpoint_path_for(key);
  CheckpointLoad load = read_checkpoint_file(path);
  if (load.ok() && load.checkpoint.key != key) {
    // fnv1a64 collision or foreign file under this hash: a miss, never
    // another key's tensors.
    NSHD_LOG_WARN("cache checkpoint %s stores a different key; ignoring", path.c_str());
    return CheckpointLoad{};
  }
  if (!load.ok() && load.status != LoadStatus::kNotFound) {
    NSHD_LOG_WARN("cache checkpoint %s unusable (%s); ignoring", path.c_str(),
                  to_string(load.status));
  }
  return load;
}

bool DiskCache::put_checkpoint(const std::string& key, Checkpoint checkpoint) const {
  std::filesystem::create_directories(dir_);
  checkpoint.key = key;
  return write_checkpoint_file(checkpoint_path_for(key), checkpoint);
}

void DiskCache::erase_checkpoint(const std::string& key) const {
  std::error_code ec;
  std::filesystem::remove(checkpoint_path_for(key), ec);
}

std::optional<std::vector<float>> DiskCache::get(const std::string& key) const {
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const auto bytes = static_cast<std::int64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  const std::int64_t payload_offset = verify_header(in, key);
  if (payload_offset < 0) {
    NSHD_LOG_WARN("cache entry %s is legacy/foreign for this key; ignoring", path.c_str());
    return std::nullopt;
  }
  const std::int64_t payload = bytes - payload_offset;
  if (payload < 0 || payload % static_cast<std::int64_t>(sizeof(float)) != 0) {
    NSHD_LOG_WARN("cache entry %s has odd size; ignoring", path.c_str());
    return std::nullopt;
  }
  std::vector<float> blob(static_cast<std::size_t>(payload) / sizeof(float));
  in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(payload));
  if (!in) return std::nullopt;
  return blob;
}

void DiskCache::put(const std::string& key, const std::vector<float>& blob) const {
  std::filesystem::create_directories(dir_);
  const std::string path = path_for(key);
  // Unique staging name per writer: concurrent processes (or threads) that
  // put under the same hash must not clobber each other's half-written
  // temp file before the atomic rename.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    const std::uint64_t key_size = key.size();
    out.write(kMagic, sizeof kMagic);
    out.write(reinterpret_cast<const char*>(&key_size), sizeof key_size);
    out.write(key.data(), static_cast<std::streamsize>(key.size()));
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size() * sizeof(float)));
    if (!out) {
      NSHD_LOG_WARN("failed to write cache entry %s", tmp.c_str());
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) NSHD_LOG_WARN("failed to commit cache entry %s: %s", path.c_str(), ec.message().c_str());
}

bool DiskCache::contains(const std::string& key) const {
  // Must verify the stored key, not just file existence: a colliding or
  // legacy entry under this hash is not a hit.
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return false;
  return verify_header(in, key) >= 0;
}

void DiskCache::erase(const std::string& key) const {
  std::error_code ec;
  std::filesystem::remove(path_for(key), ec);
}

DiskCache DiskCache::standard() {
  if (const char* env = std::getenv("NSHD_CACHE_DIR"); env != nullptr && *env != '\0') {
    return DiskCache(env);
  }
  return DiskCache(".nshd_cache");
}

}  // namespace nshd::util
