#include "util/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

namespace nshd::util::fault {

namespace {

struct Site {
  std::uint64_t nth = 1;  // 1-based hit that fires; ignored when every=true
  bool every = false;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Site> sites;
  bool env_loaded = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Parses NSHD_FAULT ("site[:nth][,site[:nth]]...") into the site map.
/// Call with the registry mutex held.
void load_env_locked(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  const char* env = std::getenv("NSHD_FAULT");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!entry.empty()) {
      Site site;
      const std::size_t colon = entry.find(':');
      std::string name = entry;
      if (colon == std::string::npos) {
        site.every = true;
      } else {
        name = entry.substr(0, colon);
        site.nth = std::strtoull(entry.c_str() + colon + 1, nullptr, 10);
        if (site.nth == 0) site.every = true;
      }
      if (!name.empty()) r.sites[name] = site;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

}  // namespace

bool should_fire(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Site& s = it->second;
  ++s.hits;
  return s.every || s.hits == s.nth;
}

void arm(const std::string& site, std::uint64_t nth) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  Site s;
  s.nth = nth == 0 ? 1 : nth;
  r.sites[site] = s;
}

void arm_every(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  load_env_locked(r);
  Site s;
  s.every = true;
  r.sites[site] = s;
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
  r.env_loaded = true;  // a later should_fire must not re-arm from the env
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "checkpoint.bit_flip",    "checkpoint.short_read",
      "checkpoint.torn_write",  "online.publish_crash",
      "online.snapshot_corrupt", "online.update_nan",
      "pretrain.kill",
      "quant.calib_nan",        "quant.scale_zero",
      "serve.batch_stall",      "serve.nan_logits",
      "serve.reload_corrupt",   "serve.worker_throw",
      "train.grad_nan",         "train.prefetch_stall",
      "trainer.nan_loss",
  };
  return sites;
}

}  // namespace nshd::util::fault
