// Versioned, checksummed binary artifact format for long-lived state
// (model weights, trainer resume snapshots, cached feature banks).
//
// The NSHDKPT1 layout is designed so that every way a file can go wrong is
// *detected and named* rather than silently loaded:
//
//   magic "NSHDKPT1"            not a checkpoint / legacy blob -> kNotFound
//   u32   format version        future format bump -> kVersionMismatch
//   u32   tensor count
//   u64+  key bytes             identity; DiskCache verifies against the key
//   u64+  meta bytes            free-form (resume counters etc.)
//   per tensor: u32 rank, i64 dims[rank]   full shapes, not just numel
//   u32   header CRC32          covers everything above
//   per tensor: float payload, u32 section CRC32
//   u32   whole-file CRC32      covers everything above
//   char  commit marker "NSHDCMT1"         torn write -> kTruncated
//
// Files are written to a unique temp name and committed by atomic rename,
// so readers never observe a half-written file under the final name; the
// trailing commit marker additionally catches post-rename truncation (power
// loss before data blocks hit disk).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nshd::util {

/// Typed outcome of loading an artifact.  Everything except kOk leaves the
/// caller's state untouched; callers decide whether to fall back to
/// recompute/retrain (and can log the status by name).
enum class LoadStatus {
  kOk,
  kNotFound,         // no file, or not an NSHDKPT artifact (legacy blob)
  kTruncated,        // torn write / short read: commit marker or bytes missing
  kBadChecksum,      // bit rot: a CRC32 does not match
  kVersionMismatch,  // artifact from a different format version
  kShapeMismatch,    // tensor count or dims differ from the destination
  kNonFinite,        // payload carries NaN/Inf where finite values are required
};

const char* to_string(LoadStatus status);

/// One persisted tensor: full dims plus raw float values (row-major).
struct CheckpointTensor {
  std::vector<std::int64_t> dims;
  std::vector<float> values;
};

/// An artifact: identity key, free-form metadata, and a tensor list.
struct Checkpoint {
  std::string key;
  std::string meta;
  std::vector<CheckpointTensor> tensors;
};

/// Result of decoding/reading; `checkpoint` is valid only when ok().
struct CheckpointLoad {
  LoadStatus status = LoadStatus::kNotFound;
  Checkpoint checkpoint;
  bool ok() const { return status == LoadStatus::kOk; }
};

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) of `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Serializes to NSHDKPT1 bytes (commit marker last).
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint);

/// Decodes and fully verifies an NSHDKPT1 byte buffer.
CheckpointLoad decode_checkpoint(const std::uint8_t* data, std::size_t size);

/// Writes `checkpoint` to `path` via unique temp file + atomic rename,
/// creating parent directories as needed.  Returns false on IO failure.
/// Fault sites: "checkpoint.torn_write" (commits a truncated file),
/// "checkpoint.bit_flip" (flips one bit mid-file before writing).
bool write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint);

/// Reads and verifies `path`; a missing file is kNotFound, never an error.
/// Fault site: "checkpoint.short_read" (drops the tail of the read).
CheckpointLoad read_checkpoint_file(const std::string& path);

}  // namespace nshd::util
