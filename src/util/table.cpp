#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace nshd::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

namespace {
std::vector<std::size_t> column_widths(const std::vector<std::string>& header,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void append_border(std::ostringstream& out, const std::vector<std::size_t>& widths) {
  out << '+';
  for (std::size_t width : widths) {
    for (std::size_t i = 0; i < width + 2; ++i) out << '-';
    out << '+';
  }
  out << '\n';
}

void append_row(std::ostringstream& out, const std::vector<std::string>& row,
                const std::vector<std::size_t>& widths) {
  out << '|';
  for (std::size_t c = 0; c < row.size(); ++c) {
    out << ' ' << row[c];
    for (std::size_t i = row[c].size(); i < widths[c] + 1; ++i) out << ' ';
    out << '|';
  }
  out << '\n';
}
}  // namespace

std::string Table::to_string() const {
  const auto widths = column_widths(header_, rows_);
  std::ostringstream out;
  append_border(out, widths);
  append_row(out, header_, widths);
  append_border(out, widths);
  for (const auto& row : rows_) append_row(out, row, widths);
  append_border(out, widths);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    out << '|';
    for (const auto& c : row) out << ' ' << c << " |";
    out << '\n';
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string cell(std::size_t value) { return std::to_string(value); }
std::string cell(int value) { return std::to_string(value); }

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2fGB", bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2fMB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.2fKB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fB", bytes);
  }
  return buf;
}

std::string format_count(double count) {
  char buf[64];
  if (count >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG", count / 1e9);
  } else if (count >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", count / 1e6);
  } else if (count >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fK", count / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", count);
  }
  return buf;
}

}  // namespace nshd::util
