// Shared thread pool with a deterministic parallel-for primitive.
//
// Every parallel kernel in the repo (GEMM rows, projection dimensions,
// classifier queries, t-SNE pairs) routes through parallel_for() here.  The
// iteration space [begin, end) is split into fixed chunks of `grain`
// iterations — a function of the *work*, never of the pool size — and
// workers claim whole chunks.  Kernels either write disjoint outputs per
// chunk or reduce per-chunk partials in chunk-index order, so results are
// bitwise identical for any thread count, including 1.  That keeps the
// paper's accuracy numbers untouched while the wall clock scales.
//
// The global pool is created lazily on first use.  Its size comes from the
// NSHD_THREADS environment variable (default: hardware_concurrency; 1
// disables threading entirely and runs every chunk inline on the caller).
#pragma once

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nshd::util {

/// Upper bound on the pool size accepted from NSHD_THREADS.
inline constexpr int kMaxThreads = 256;

/// Strict parser for integer environment knobs (NSHD_THREADS,
/// NSHD_PREFETCH, ...).  Returns `fallback` (with a warning through
/// util::log naming `name`) when `text` is not a plain integer or is below
/// `min_value`, and clamps values above `max_value`.  Trailing garbage
/// ("8x") is rejected outright instead of half-parsing.
int parse_env_count(const char* name, const char* text, int min_value,
                    int max_value, int fallback);

/// Parses an NSHD_THREADS-style value: parse_env_count over [1, kMaxThreads].
/// Exposed for unit tests.
int parse_thread_count(const char* text, int fallback);

/// Number of fixed chunks parallel_for splits [begin, end) into; depends
/// only on the range and grain, never on the thread count.
inline std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                                std::int64_t grain) {
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

class ThreadPool {
 public:
  /// The process-wide pool, sized from NSHD_THREADS on first use.
  static ThreadPool& instance();

  int threads() const { return threads_; }

  /// Re-sizes the pool (joins workers, respawns).  For benches and tests
  /// that sweep thread counts; must not race with an active parallel_for.
  void resize(int threads);

  /// Runs fn(chunk_index, chunk_begin, chunk_end) once per fixed chunk.
  /// Chunks are claimed dynamically but their boundaries are fixed, so a
  /// kernel whose chunks write disjoint outputs — or that combines
  /// per-chunk partials in chunk-index order — is deterministic.
  /// Nested calls from inside a worker run inline on that worker, and a
  /// call that finds the pool already claimed by another external caller
  /// runs inline on its own thread instead of queueing behind that job —
  /// concurrent callers always make progress.
  void parallel_for_chunks(
      std::int64_t begin, std::int64_t end, std::int64_t grain,
      const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn);

  /// Convenience wrapper when the chunk index is irrelevant (disjoint
  /// writes): fn(chunk_begin, chunk_end).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  ~ThreadPool();

 private:
  struct Job;

  explicit ThreadPool(int threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void spawn_workers();
  void join_workers();
  void worker_loop();
  void run_job(Job& job);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;                 // guards job_/epoch_/stop_
  std::condition_variable work_cv_;  // workers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for job completion
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<Job> job_;  // current job; workers snapshot under mutex_

  // Claimed (try_lock) by the one external caller currently driving the
  // workers; a contended caller falls back to the inline path.
  std::mutex caller_mutex_;
};

/// Pool size of the global pool (1 means fully serial).
int thread_count();

/// Re-sizes the global pool; overrides NSHD_THREADS.  Benches/tests only.
void set_thread_count(int threads);

/// Free-function forms forwarding to ThreadPool::instance().
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);
void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn);

}  // namespace nshd::util
