#include "util/checkpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/fault.hpp"
#include "util/log.hpp"

namespace nshd::util {

namespace {

constexpr char kMagic[8] = {'N', 'S', 'H', 'D', 'K', 'P', 'T', '1'};
constexpr char kCommit[8] = {'N', 'S', 'H', 'D', 'C', 'M', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;
// Footer = whole-file CRC + commit marker.
constexpr std::size_t kFooterSize = sizeof(std::uint32_t) + sizeof(kCommit);

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

/// Bounds-checked sequential reader over the raw buffer.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  template <typename T>
  bool read_pod(T& value) {
    if (size - pos < sizeof(T)) return false;
    std::memcpy(&value, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }

  bool read_string(std::string& out) {
    std::uint64_t length = 0;
    if (!read_pod(length)) return false;
    if (length > size - pos) return false;
    out.assign(reinterpret_cast<const char*>(data + pos),
               static_cast<std::size_t>(length));
    pos += static_cast<std::size_t>(length);
    return true;
  }
};

}  // namespace

const char* to_string(LoadStatus status) {
  switch (status) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kNotFound: return "not_found";
    case LoadStatus::kTruncated: return "truncated";
    case LoadStatus::kBadChecksum: return "bad_checksum";
    case LoadStatus::kVersionMismatch: return "version_mismatch";
    case LoadStatus::kShapeMismatch: return "shape_mismatch";
    case LoadStatus::kNonFinite: return "non_finite";
  }
  return "unknown";
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> out;
  append_bytes(out, kMagic, sizeof kMagic);
  append_pod(out, kFormatVersion);
  append_pod(out, static_cast<std::uint32_t>(checkpoint.tensors.size()));
  append_pod(out, static_cast<std::uint64_t>(checkpoint.key.size()));
  append_bytes(out, checkpoint.key.data(), checkpoint.key.size());
  append_pod(out, static_cast<std::uint64_t>(checkpoint.meta.size()));
  append_bytes(out, checkpoint.meta.data(), checkpoint.meta.size());
  for (const CheckpointTensor& t : checkpoint.tensors) {
    append_pod(out, static_cast<std::uint32_t>(t.dims.size()));
    for (const std::int64_t d : t.dims) append_pod(out, d);
  }
  append_pod(out, crc32(out.data(), out.size()));  // header CRC

  for (const CheckpointTensor& t : checkpoint.tensors) {
    const std::size_t bytes = t.values.size() * sizeof(float);
    append_bytes(out, t.values.data(), bytes);
    append_pod(out, crc32(out.data() + (out.size() - bytes), bytes));
  }

  append_pod(out, crc32(out.data(), out.size()));  // whole-file CRC
  append_bytes(out, kCommit, sizeof kCommit);
  return out;
}

CheckpointLoad decode_checkpoint(const std::uint8_t* data, std::size_t size) {
  CheckpointLoad load;
  // Identity first: a buffer that does not begin with the magic is some
  // other artifact (legacy blob) and reads as a miss.  A strict prefix of
  // the magic can only be a truncated checkpoint.
  if (size < sizeof kMagic) {
    load.status = (size > 0 && std::memcmp(data, kMagic, size) != 0)
                      ? LoadStatus::kNotFound
                      : LoadStatus::kTruncated;
    return load;
  }
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    load.status = LoadStatus::kNotFound;
    return load;
  }

  // Version gates all further interpretation: a future format may relocate
  // every field after the version word.
  Reader reader{data, size, sizeof kMagic};
  std::uint32_t version = 0;
  if (!reader.read_pod(version)) {
    load.status = LoadStatus::kTruncated;
    return load;
  }
  if (version != kFormatVersion) {
    load.status = LoadStatus::kVersionMismatch;
    return load;
  }

  // Commit marker: its absence means the tail of the file never made it to
  // disk (torn write / short read).
  if (size < reader.pos + kFooterSize ||
      std::memcmp(data + size - sizeof kCommit, kCommit, sizeof kCommit) != 0) {
    load.status = LoadStatus::kTruncated;
    return load;
  }

  // Whole-file integrity before trusting any parsed length.
  const std::size_t crc_pos = size - kFooterSize;
  std::uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, data + crc_pos, sizeof stored_file_crc);
  if (crc32(data, crc_pos) != stored_file_crc) {
    load.status = LoadStatus::kBadChecksum;
    return load;
  }

  // Parse the header.  The CRC passed, so any overrun here means the writer
  // itself emitted an inconsistent file; report it as truncation.
  Checkpoint& cp = load.checkpoint;
  std::uint32_t tensor_count = 0;
  if (!reader.read_pod(tensor_count) || !reader.read_string(cp.key) ||
      !reader.read_string(cp.meta)) {
    load.status = LoadStatus::kTruncated;
    return load;
  }
  cp.tensors.resize(tensor_count);
  for (CheckpointTensor& t : cp.tensors) {
    std::uint32_t rank = 0;
    if (!reader.read_pod(rank) || rank > 8) {
      load.status = LoadStatus::kTruncated;
      return load;
    }
    t.dims.resize(rank);
    for (std::int64_t& d : t.dims) {
      if (!reader.read_pod(d) || d < 0) {
        load.status = LoadStatus::kTruncated;
        return load;
      }
    }
  }
  const std::size_t header_end = reader.pos;
  std::uint32_t stored_header_crc = 0;
  if (!reader.read_pod(stored_header_crc)) {
    load.status = LoadStatus::kTruncated;
    return load;
  }
  if (crc32(data, header_end) != stored_header_crc) {
    load.status = LoadStatus::kBadChecksum;
    return load;
  }

  // Payload sections.
  for (CheckpointTensor& t : cp.tensors) {
    std::int64_t numel = 1;
    for (const std::int64_t d : t.dims) numel *= d;
    const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
    if (bytes > crc_pos - reader.pos) {
      load.status = LoadStatus::kTruncated;
      return load;
    }
    const std::size_t payload_pos = reader.pos;
    t.values.resize(static_cast<std::size_t>(numel));
    std::memcpy(t.values.data(), data + payload_pos, bytes);
    reader.pos += bytes;
    std::uint32_t stored_section_crc = 0;
    if (!reader.read_pod(stored_section_crc)) {
      load.status = LoadStatus::kTruncated;
      return load;
    }
    if (crc32(data + payload_pos, bytes) != stored_section_crc) {
      load.status = LoadStatus::kBadChecksum;
      return load;
    }
  }
  if (reader.pos != crc_pos) {  // trailing garbage between payload and footer
    load.status = LoadStatus::kTruncated;
    return load;
  }
  load.status = LoadStatus::kOk;
  return load;
}

bool write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  if (fault::should_fire("checkpoint.bit_flip") && !bytes.empty())
    bytes[bytes.size() / 2] ^= 0x10;
  std::size_t write_size = bytes.size();
  if (fault::should_fire("checkpoint.torn_write")) write_size = bytes.size() / 2;

  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  // Unique staging name per writer (cf. DiskCache::put): concurrent writers
  // under the same final name must not clobber each other's temp file.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(write_size));
    if (!out) {
      NSHD_LOG_WARN("failed to write checkpoint %s", tmp.c_str());
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    NSHD_LOG_WARN("failed to commit checkpoint %s: %s", path.c_str(),
                  ec.message().c_str());
    return false;
  }
  return true;
}

CheckpointLoad read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CheckpointLoad{};  // kNotFound
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(std::max<std::streamoff>(end, 0)));
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in) {
      CheckpointLoad load;
      load.status = LoadStatus::kTruncated;
      return load;
    }
  }
  if (fault::should_fire("checkpoint.short_read"))
    bytes.resize(bytes.size() - bytes.size() / 4);
  return decode_checkpoint(bytes.data(), bytes.size());
}

}  // namespace nshd::util
