#include "util/rng.hpp"

#include <numeric>

namespace nshd::util {

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  auto idx = iota_indices(n);
  rng.shuffle(idx);
  return idx;
}

}  // namespace nshd::util
