// Deterministic fault injection for exercising recovery paths.
//
// Production code paths that must survive corruption or divergence
// (checkpoint writer/reader, the trainer loop, pretraining) carry cheap
// named probes: `if (fault::should_fire("checkpoint.torn_write")) ...`.
// A probe does nothing until its site is armed, either from the
// environment --
//
//   NSHD_FAULT="checkpoint.torn_write:1"    fire on the 1st hit only
//   NSHD_FAULT="trainer.nan_loss"           fire on every hit
//   NSHD_FAULT="a:2,b"                      several sites at once
//
// -- or programmatically from tests via arm()/arm_every().  Hits are
// counted per site, so tests can assert that an injection point was
// actually reached.
//
// Registered sites:
//   checkpoint.torn_write   write_checkpoint_file commits a truncated file
//   checkpoint.bit_flip     write_checkpoint_file flips one payload bit
//   checkpoint.short_read   read_checkpoint_file drops the file's tail
//   online.update_nan       hd::VersionedBank shadow bank poisoned post-update
//   online.publish_crash    hd::VersionedBank publish step throws pre-swap
//   online.snapshot_corrupt hd::VersionedBank restored bank corrupts in memory
//   trainer.nan_loss        train_classifier sees a NaN batch loss
//   pretrain.kill           pretrained_model dies after an epoch checkpoint
//   quant.calib_nan         quant::activation_params sees a non-finite range
//   quant.scale_zero        quant::activation_params derives a zero scale
//   serve.worker_throw      serve::Engine batch execution throws mid-batch
//   serve.batch_stall       serve::Engine batch execution stalls (slow batch)
//   serve.nan_logits        serve::Engine similarity output row turns NaN
//   serve.reload_corrupt    serve::Engine reload state blob corrupts in memory
//   train.grad_nan          TrainingPlan poisons the logit gradient with NaN
//   train.prefetch_stall    data::BatchPipeline batch fill stalls (slow producer)
//
// Every site name must be listed in known_sites(); the chaos-labeled
// registry test (tests/fault_registry_test.cpp) asserts that the list and
// the should_fire() probes in src/ stay in sync and that each site is
// exercised by at least one fault/chaos-labeled test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nshd::util::fault {

/// Counts a hit on `site` and returns true when the armed trigger matches
/// (every hit, or exactly the n-th).  Unarmed sites always return false.
bool should_fire(const std::string& site);

/// Arms `site` to fire on exactly its `nth` hit (1-based), counted from now.
void arm(const std::string& site, std::uint64_t nth = 1);

/// Arms `site` to fire on every hit.
void arm_every(const std::string& site);

/// Disarms every site and forgets hit counts (environment arming included).
void disarm_all();

/// Hits recorded against `site` since it was (re-)armed; 0 when unarmed.
std::uint64_t hits(const std::string& site);

/// Canonical sorted list of every fault site declared in the codebase.
/// Adding a should_fire() probe without registering its name here fails the
/// chaos-labeled registry test.
const std::vector<std::string>& known_sites();

}  // namespace nshd::util::fault
