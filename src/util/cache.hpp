// On-disk memoization of expensive artifacts.
//
// Pretraining the teacher CNNs is by far the most expensive step in the
// reproduction pipeline (the paper sidesteps it by downloading pretrained
// ImageNet weights).  Bench binaries and examples therefore cache trained
// weights under a cache directory keyed by a configuration fingerprint, so
// the whole experiment suite trains each teacher exactly once per machine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/checkpoint.hpp"

namespace nshd::util {

/// FNV-1a 64-bit hash of a string; stable across runs/platforms.
std::uint64_t fnv1a64(const std::string& text);

/// A flat binary blob cache: key -> file `<dir>/<hash(key)>.bin`.
///
/// Entries carry a header (magic, key length, full key bytes) ahead of the
/// payload; get()/contains() verify the stored key so a hash collision or a
/// legacy headerless file reads as a miss, never as another key's blob.
class DiskCache {
 public:
  /// `dir` is created on first put() if it does not exist.
  explicit DiskCache(std::string dir);

  /// Returns the blob if present, std::nullopt otherwise.
  std::optional<std::vector<float>> get(const std::string& key) const;

  /// Writes (atomically via rename, staged under a per-writer unique temp
  /// name so concurrent puts cannot corrupt each other) the blob for `key`.
  void put(const std::string& key, const std::vector<float>& blob) const;

  bool contains(const std::string& key) const;

  /// Removes the entry if present.
  void erase(const std::string& key) const;

  /// Typed-artifact entries: NSHDKPT1 checkpoint files (`<hash(key)>.ckpt`)
  /// carrying shapes, per-section CRCs and a commit marker, so corruption is
  /// detected and named instead of loaded.  The embedded key is verified the
  /// same way as the blob header: a collision or legacy file reads as
  /// kNotFound.  Any non-ok status means "recompute"; the caller can log it.
  CheckpointLoad get_checkpoint(const std::string& key) const;

  /// Writes (atomic, unique-temp staged) `checkpoint` under `key`; the
  /// stored checkpoint's key field is forced to `key`.
  bool put_checkpoint(const std::string& key, Checkpoint checkpoint) const;

  /// Removes the checkpoint entry if present.
  void erase_checkpoint(const std::string& key) const;

  const std::string& dir() const { return dir_; }

  /// The repo-standard cache: $NSHD_CACHE_DIR or ".nshd_cache".
  static DiskCache standard();

 private:
  std::string path_for(const std::string& key) const;
  std::string checkpoint_path_for(const std::string& key) const;
  std::string dir_;
};

}  // namespace nshd::util
