// Tiny command-line flag parser shared by the examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name` forms.
// Unknown flags are kept so google-benchmark flags pass through untouched.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace nshd::util {

class CliArgs {
 public:
  /// Parses argv; flags are removed into the map, positional args kept.
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nshd::util
