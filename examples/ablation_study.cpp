// Ablation study: isolates each NSHD design choice at one cut point.
//
// Grid: {KD on/off} x {manifold trained / frozen / absent} x alpha values.
// Use it to answer "which part of NSHD buys the accuracy" on your own data.
//
// Run: ./ablation_study [--model=mobilenetv2s] [--cut=7] [--dim=3000]
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);

  const std::string model_name = args.get("model", "mobilenetv2s");
  core::ExperimentContext context(core::ExperimentConfig::standard(10));
  models::ZooModel& m = context.model(model_name);
  const auto cut = static_cast<std::size_t>(
      args.get_int("cut", static_cast<int>(m.paper_cut_layers.front())));
  const std::int64_t dim = args.get_int("dim", 3000);

  std::printf("== Ablation at %s layer %zu (CNN reference %.4f) ==\n",
              models::display_name(model_name).c_str(), cut,
              context.cnn_test_accuracy(model_name));

  util::Table table({"variant", "alpha", "test acc", "final train acc"});
  auto run = [&](const std::string& label, const core::NshdConfig& config,
                 const std::string& alpha) {
    const auto r = context.run_nshd(model_name, cut, config);
    table.add_row({label, alpha, util::cell(r.test_accuracy, 4),
                   util::cell(r.final_train_accuracy, 4)});
  };

  const auto manifold_lr =
      static_cast<float>(args.get_double("manifold_lr", 0.01));
  {
    core::NshdConfig c;
    c.dim = dim;
    c.manifold_learning_rate = manifold_lr;
    c.use_kd = false;
    run("manifold trained, no KD", c, "-");
    c.train_manifold = false;
    run("manifold frozen (random FC), no KD", c, "-");
  }
  run("no manifold (BaselineHD)", core::baseline_hd_config(dim), "-");
  for (float alpha : {0.2f, 0.4f, 0.6f, 0.8f}) {
    core::NshdConfig c;
    c.dim = dim;
    c.alpha = alpha;
    c.manifold_learning_rate = manifold_lr;
    run("manifold trained + KD", c, util::cell(alpha, 1));
    c.train_manifold = false;
    run("manifold frozen + KD", c, util::cell(alpha, 1));
  }

  std::printf("%s", table.to_string().c_str());
  return 0;
}
