// Interpretable classification with NSHD (the Sec. VII-E story).
//
// HD class knowledge is mathematical: class hypervectors are sums of sample
// encodings, so similarity *between class hypervectors* exposes which
// categories the model considers related, and per-sample similarity
// profiles show how confidently (and against which runner-up) each decision
// was taken.  This example trains NSHD and prints:
//   1. the class-to-class similarity matrix of the learned class bank,
//   2. a confusion matrix on the test set,
//   3. the most ambiguous test decisions (smallest top-2 margin) —
//      the cases a practitioner would route to a human.
//
// Run: ./interpretable_classifier [--model=efficientnet_b0s] [--cut=7]
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/metrics.hpp"
#include "core/experiment.hpp"
#include "data/ppm.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::string model_name = args.get("model", "efficientnet_b0s");

  core::ExperimentContext context(core::ExperimentConfig::standard(10));
  models::ZooModel& m = context.model(model_name);
  const auto cut = static_cast<std::size_t>(
      args.get_int("cut", static_cast<int>(m.paper_cut_layers.back())));

  core::NshdConfig config;
  config.dim = args.get_int("dim", 3000);
  core::NshdModel nshd(m, cut, config);
  const tensor::Tensor& logits = context.teacher_train_logits(model_name);
  nshd.train(context.train_features(model_name, cut), context.train().labels,
             &logits);

  const std::int64_t k = context.num_classes();
  const hd::HdClassifier& clf = nshd.classifier();

  // 1. Class-to-class cosine similarity of the learned class hypervectors.
  std::printf("== Class-bank similarity (cosine x100) ==\n     ");
  for (std::int64_t c = 0; c < k; ++c) std::printf("%5lld", static_cast<long long>(c));
  std::printf("\n");
  std::vector<double> norms(static_cast<std::size_t>(k));
  for (std::int64_t c = 0; c < k; ++c) {
    double sq = 0.0;
    for (std::int64_t d = 0; d < config.dim; ++d) {
      const double x = clf.class_vector(c)[d];
      sq += x * x;
    }
    norms[static_cast<std::size_t>(c)] = std::sqrt(sq);
  }
  for (std::int64_t a = 0; a < k; ++a) {
    std::printf("%4lld ", static_cast<long long>(a));
    for (std::int64_t b = 0; b < k; ++b) {
      double dot = 0.0;
      for (std::int64_t d = 0; d < config.dim; ++d)
        dot += static_cast<double>(clf.class_vector(a)[d]) * clf.class_vector(b)[d];
      std::printf("%5.0f", 100.0 * dot /
                               (norms[static_cast<std::size_t>(a)] *
                                norms[static_cast<std::size_t>(b)]));
    }
    std::printf("\n");
  }

  // 2. Confusion matrix + 3. most ambiguous decisions.
  const core::ExtractedFeatures& test_feats = context.test_features(model_name, cut);
  const auto& labels = context.test().labels;
  analysis::ConfusionMatrix confusion(k);
  struct Ambiguous {
    std::int64_t index, truth, predicted, runner_up;
    float margin;
  };
  std::vector<Ambiguous> ambiguous;
  const std::int64_t f = test_feats.values.shape()[1];
  for (std::int64_t i = 0; i < context.test().size(); ++i) {
    const auto sims = clf.similarities(
        nshd.symbolize(test_feats.values.data() + i * f), config.similarity);
    std::int64_t best = 0, second = -1;
    for (std::int64_t c = 1; c < k; ++c)
      if (sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(best)]) best = c;
    for (std::int64_t c = 0; c < k; ++c) {
      if (c == best) continue;
      if (second < 0 ||
          sims[static_cast<std::size_t>(c)] > sims[static_cast<std::size_t>(second)])
        second = c;
    }
    confusion.add(labels[static_cast<std::size_t>(i)], best);
    ambiguous.push_back({i, labels[static_cast<std::size_t>(i)], best, second,
                         sims[static_cast<std::size_t>(best)] -
                             sims[static_cast<std::size_t>(second)]});
  }

  std::printf("\n== Confusion matrix (rows = truth) ==\n%s",
              confusion.to_string().c_str());
  std::printf("accuracy %.4f, macro recall %.4f\n", confusion.accuracy(),
              confusion.macro_recall());

  std::sort(ambiguous.begin(), ambiguous.end(),
            [](const Ambiguous& a, const Ambiguous& b) { return a.margin < b.margin; });
  util::Table table({"test idx", "truth", "predicted", "runner-up", "margin"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ambiguous.size()); ++i) {
    const Ambiguous& a = ambiguous[i];
    table.add_row({util::cell(static_cast<int>(a.index)),
                   util::cell(static_cast<int>(a.truth)),
                   util::cell(static_cast<int>(a.predicted)),
                   util::cell(static_cast<int>(a.runner_up)),
                   util::cell(a.margin, 4)});
  }
  std::printf("\n== Most ambiguous decisions (smallest top-2 margin) ==\n%s",
              table.to_string().c_str());

  // 4. Decode class prototypes back into feature space and check alignment
  // with per-class feature means — the "symbolic knowledge is inspectable"
  // property (Sec. VII-E).
  {
    const core::ExtractedFeatures& train_feats =
        context.train_features(model_name, cut);
    const std::int64_t f_hat = nshd.encoded_features();
    const std::int64_t n = train_feats.values.shape()[0];
    const std::int64_t f_raw = train_feats.values.shape()[1];
    std::vector<tensor::Tensor> means(static_cast<std::size_t>(k),
                                      tensor::Tensor(tensor::Shape{f_hat}));
    std::vector<std::int64_t> counts(static_cast<std::size_t>(k), 0);
    for (std::int64_t i = 0; i < n; ++i) {
      const tensor::Tensor v =
          nshd.manifold()->forward(train_feats.values.data() + i * f_raw);
      const std::int64_t label = context.train().labels[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < f_hat; ++j)
        means[static_cast<std::size_t>(label)][j] += v[j];
      ++counts[static_cast<std::size_t>(label)];
    }
    auto cosine = [](const tensor::Tensor& a, const tensor::Tensor& b) {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (std::int64_t i = 0; i < a.numel(); ++i) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
      }
      return dot / std::sqrt(na * nb + 1e-12);
    };
    std::printf("\n== Decoded class prototypes vs class feature means "
                "(cosine x100, diagonal should dominate) ==\n     ");
    for (std::int64_t c = 0; c < k; ++c) std::printf("%5lld", static_cast<long long>(c));
    std::printf("\n");
    for (std::int64_t c = 0; c < k; ++c) {
      const tensor::Tensor proto = nshd.decode_class_prototype(c);
      std::printf("%4lld ", static_cast<long long>(c));
      for (std::int64_t other = 0; other < k; ++other) {
        tensor::Tensor mean = means[static_cast<std::size_t>(other)];
        for (std::int64_t j = 0; j < f_hat; ++j)
          mean[j] /= static_cast<float>(counts[static_cast<std::size_t>(other)]);
        std::printf("%5.0f", 100.0 * cosine(proto, mean));
      }
      std::printf("\n");
    }
  }

  // 5. Dump a SynthCIFAR contact sheet so the task itself is inspectable.
  if (args.get_bool("dump_sheet", false)) {
    if (data::write_ppm_sheet(context.train(), 8, "synthcifar_sheet.ppm")) {
      std::printf("\nWrote synthcifar_sheet.ppm (rows = classes).\n");
    }
  }
  return 0;
}
