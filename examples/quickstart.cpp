// Quickstart: the NSHD pipeline end to end on SynthCIFAR-10.
//
//   1. Generate the synthetic dataset.
//   2. Provision a pretrained CNN teacher (trains once, then disk-cached).
//   3. Train NSHD at a paper cut layer with knowledge distillation.
//   4. Compare CNN / NSHD / BaselineHD test accuracy and inference cost.
//
// Run:  ./quickstart [--model=efficientnet_b0s] [--cut=7] [--dim=3000]
#include <cstdio>

#include "core/experiment.hpp"
#include "hw/census.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);

  const std::string model_name = args.get("model", "efficientnet_b0s");
  core::ExperimentConfig config = core::ExperimentConfig::standard(10);
  core::ExperimentContext context(config);

  const auto cut = static_cast<std::size_t>(
      args.get_int("cut", static_cast<int>(context.model(model_name).paper_cut_layers.back())));
  const std::int64_t dim = args.get_int("dim", 3000);

  std::printf("== NSHD quickstart: %s cut at layer %zu, D=%lld ==\n",
              models::display_name(model_name).c_str(), cut,
              static_cast<long long>(dim));

  // CNN reference.
  const double cnn_acc = context.cnn_test_accuracy(model_name);

  // NSHD with knowledge distillation (the paper's full recipe).
  core::NshdConfig nshd_config;
  nshd_config.dim = dim;
  const auto nshd = context.run_nshd(model_name, cut, nshd_config);

  // BaselineHD: same extractor, LSH encoding, no manifold / no KD.
  const auto baseline = context.run_nshd(model_name, cut,
                                         core::baseline_hd_config(dim));

  // Inference cost census.
  models::ZooModel& m = context.model(model_name);
  const hw::CnnCensus cnn_cost = hw::cnn_census(m);
  const hw::NshdCensus nshd_cost =
      hw::nshd_census(m, cut, dim, nshd_config.manifold_features, 10);

  util::Table table({"model", "test acc", "MACs/inference"});
  table.add_row({"CNN (" + models::display_name(model_name) + ")",
                 util::cell(cnn_acc, 4), util::format_count(static_cast<double>(cnn_cost.macs))});
  table.add_row({"NSHD", util::cell(nshd.test_accuracy, 4),
                 util::format_count(static_cast<double>(nshd_cost.total_macs()))});
  table.add_row({"BaselineHD", util::cell(baseline.test_accuracy, 4),
                 util::format_count(static_cast<double>(
                     hw::baseline_census(m, cut, dim, 10).total_macs()))});
  std::printf("%s", table.to_string().c_str());

  std::printf("NSHD trained in %.1fs (final train acc %.4f)\n",
              nshd.train_seconds, nshd.final_train_accuracy);
  return 0;
}
