// Edge deployment planner: choose an NSHD operating point for a device
// budget.
//
// Given an accuracy floor (e.g. "within 3pp of the CNN") and the deployment
// target (embedded GPU energy model or DPU-style FPGA), sweeps every
// backbone's cut layers and hypervector dimensions, and recommends the
// cheapest configuration that meets the floor — the decision a platform
// engineer makes before flashing a device.
//
// Run: ./edge_energy_planner [--max_acc_loss_pp=3] [--target=gpu|fpga]
#include <algorithm>
#include <cstdio>

#include "core/experiment.hpp"
#include "hw/census.hpp"
#include "hw/energy.hpp"
#include "hw/fpga.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const double max_loss_pp = args.get_double("max_acc_loss_pp", 3.0);
  const std::string target = args.get("target", "gpu");
  const std::string model_name = args.get("model", "mobilenetv2s");

  core::ExperimentContext context(core::ExperimentConfig::standard(10));
  models::ZooModel& m = context.model(model_name);
  const double cnn_acc = context.cnn_test_accuracy(model_name);
  const auto coeffs = hw::EnergyCoefficients::xavier_like();
  const hw::FpgaModel fpga;
  const hw::CnnCensus cnn_cost = hw::cnn_census(m);

  struct Candidate {
    std::size_t cut;
    std::int64_t dim;
    double accuracy, cost;  // cost: mJ (gpu) or ms (fpga)
  };
  std::vector<Candidate> feasible, all;

  std::printf("== Planning %s deployment of %s: CNN acc %.4f, floor %.4f ==\n",
              target.c_str(), models::display_name(model_name).c_str(), cnn_acc,
              cnn_acc - max_loss_pp / 100.0);

  for (std::size_t cut : m.paper_cut_layers) {
    for (std::int64_t dim : {1000, 3000}) {
      core::NshdConfig config;
      config.dim = dim;
      const auto run = context.run_nshd(model_name, cut, config);
      const hw::NshdCensus census = hw::nshd_census(m, cut, dim, 100, 10);
      double cost;
      if (target == "fpga") {
        cost = fpga.nshd_latency_s(census, cut + 1) * 1e3;  // ms
      } else {
        cost = hw::nshd_energy(census, coeffs).total_mj();  // mJ
      }
      const Candidate c{cut, dim, run.test_accuracy, cost};
      all.push_back(c);
      if (run.test_accuracy >= cnn_acc - max_loss_pp / 100.0) feasible.push_back(c);
    }
  }

  const char* unit = target == "fpga" ? "ms/inf" : "mJ/inf";
  util::Table table({"cut", "D", "accuracy", unit, "meets floor"});
  for (const Candidate& c : all) {
    const bool ok = c.accuracy >= cnn_acc - max_loss_pp / 100.0;
    table.add_row({util::cell(static_cast<int>(c.cut)),
                   util::cell(static_cast<int>(c.dim)), util::cell(c.accuracy, 4),
                   util::cell(c.cost, 4), ok ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());

  const double cnn_cost_value = target == "fpga"
      ? fpga.cnn_latency_s(cnn_cost, m.net.size()) * 1e3
      : hw::cnn_energy(cnn_cost, coeffs).total_mj();
  std::printf("CNN reference cost: %.4f %s\n", cnn_cost_value, unit);

  if (feasible.empty()) {
    std::printf("No NSHD configuration meets the accuracy floor; relax "
                "--max_acc_loss_pp or use a later cut.\n");
    return 1;
  }
  const Candidate best = *std::min_element(
      feasible.begin(), feasible.end(),
      [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });
  std::printf("Recommendation: cut layer %zu, D=%lld -> accuracy %.4f at "
              "%.4f %s (%.1f%% cheaper than the CNN).\n",
              best.cut, static_cast<long long>(best.dim), best.accuracy,
              best.cost, unit, (1.0 - best.cost / cnn_cost_value) * 100.0);
  return 0;
}
