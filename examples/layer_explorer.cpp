// Layer explorer: sweep feature-extraction cut points of one backbone and
// report the accuracy/efficiency tradeoff NSHD navigates (Sec. IV-A: "it is
// easy to empirically search for this layer").
//
// For each cut the tool trains NSHD (with and without KD) and BaselineHD,
// then prints accuracy next to MACs and energy — the practical recipe for
// choosing a deployment point.  VanillaHD (raw-pixel nonlinear encoding) is
// shown as the floor.
//
// Run: ./layer_explorer [--model=efficientnet_b0s] [--dim=3000] [--cuts=2,5,7,8]
#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "hw/census.hpp"
#include "hw/energy.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {
std::vector<std::size_t> parse_cuts(const std::string& csv) {
  std::vector<std::size_t> cuts;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) cuts.push_back(static_cast<std::size_t>(std::stoul(token)));
  }
  return cuts;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);

  const std::string model_name = args.get("model", "efficientnet_b0s");
  const std::int64_t dim = args.get_int("dim", 3000);

  core::ExperimentContext context(core::ExperimentConfig::standard(10));
  models::ZooModel& m = context.model(model_name);

  std::vector<std::size_t> cuts = m.paper_cut_layers;
  if (args.has("cuts")) cuts = parse_cuts(args.get("cuts", ""));

  const double cnn_acc = context.cnn_test_accuracy(model_name);
  const hw::CnnCensus cnn_cost = hw::cnn_census(m);
  const auto coeffs = hw::EnergyCoefficients::xavier_like();
  const double cnn_energy_pj = hw::cnn_energy(cnn_cost, coeffs).total_pj();

  std::printf("== %s on SynthCIFAR-10: CNN accuracy %.4f, %s MACs ==\n",
              models::display_name(model_name).c_str(), cnn_acc,
              util::format_count(static_cast<double>(cnn_cost.macs)).c_str());

  util::Table table({"cut", "NSHD acc", "NSHD (no KD)", "BaselineHD", "MACs",
                     "energy vs CNN"});
  for (std::size_t cut : cuts) {
    core::NshdConfig with_kd;
    with_kd.dim = dim;
    core::NshdConfig without_kd = with_kd;
    without_kd.use_kd = false;

    const auto kd_run = context.run_nshd(model_name, cut, with_kd);
    const auto plain_run = context.run_nshd(model_name, cut, without_kd);
    const auto baseline_run =
        context.run_nshd(model_name, cut, core::baseline_hd_config(dim));

    const hw::NshdCensus census =
        hw::nshd_census(m, cut, dim, with_kd.manifold_features, 10);
    const double improvement = hw::energy_improvement(
        hw::cnn_energy(cnn_cost, coeffs), hw::nshd_energy(census, coeffs));

    table.add_row({util::cell(static_cast<int>(cut)),
                   util::cell(kd_run.test_accuracy, 4),
                   util::cell(plain_run.test_accuracy, 4),
                   util::cell(baseline_run.test_accuracy, 4),
                   util::format_count(static_cast<double>(census.total_macs())),
                   util::cell(improvement * 100.0, 1) + "%"});
  }
  std::printf("%s", table.to_string().c_str());

  const double vanilla = context.vanilla_hd_accuracy(dim);
  std::printf("VanillaHD (nonlinear encoding on raw pixels): %.4f\n", vanilla);
  return 0;
}
