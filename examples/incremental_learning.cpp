// Incremental (one-shot) class learning — the symbolic-memory advantage of
// the HD side of NSHD.
//
// A CNN must be retrained (or at least fine-tuned) to accept a new class;
// an HD class bank just bundles the new class's sample hypervectors into a
// fresh class vector.  This example trains NSHD on the first `base` classes
// of SynthCIFAR-10, then adds the remaining classes one at a time with
// add_class() — no gradient steps, no replay of old data — and tracks how
// accuracy on old and new classes evolves.
//
// Run: ./incremental_learning [--model=mobilenetv2s] [--cut=14] [--base=8]
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::string model_name = args.get("model", "mobilenetv2s");
  const std::int64_t base_classes = args.get_int("base", 8);

  core::ExperimentContext context(core::ExperimentConfig::standard(10));
  models::ZooModel& m = context.model(model_name);
  const auto cut = static_cast<std::size_t>(
      args.get_int("cut", static_cast<int>(m.paper_cut_layers.front())));

  const core::ExtractedFeatures& train_feats = context.train_features(model_name, cut);
  const core::ExtractedFeatures& test_feats = context.test_features(model_name, cut);
  const auto& train_labels = context.train().labels;
  const auto& test_labels = context.test().labels;
  const std::int64_t f = train_feats.values.shape()[1];

  // Train NSHD on the base classes only (subset of rows).
  core::NshdConfig config;
  config.dim = args.get_int("dim", 3000);
  core::NshdModel nshd(m, cut, config);

  // Build a base-only feature view.
  core::ExtractedFeatures base_feats;
  base_feats.chw = train_feats.chw;
  base_feats.cut_layer = cut;
  std::vector<std::int64_t> base_labels;
  {
    std::vector<std::int64_t> keep;
    for (std::int64_t i = 0; i < train_feats.values.shape()[0]; ++i) {
      if (train_labels[static_cast<std::size_t>(i)] < base_classes) keep.push_back(i);
    }
    base_feats.values =
        tensor::Tensor(tensor::Shape{static_cast<std::int64_t>(keep.size()), f});
    for (std::size_t r = 0; r < keep.size(); ++r) {
      std::copy_n(train_feats.values.data() + keep[r] * f, f,
                  base_feats.values.data() + static_cast<std::int64_t>(r) * f);
      base_labels.push_back(train_labels[static_cast<std::size_t>(keep[r])]);
    }
  }
  // Teacher logits restricted to base rows (KD teacher still has 10 outputs;
  // only the rows matter).
  tensor::Tensor base_logits;
  {
    const tensor::Tensor& all = context.teacher_train_logits(model_name);
    const std::int64_t k = all.shape()[1];
    base_logits = tensor::Tensor(
        tensor::Shape{base_feats.values.shape()[0], k});
    std::int64_t r = 0;
    for (std::int64_t i = 0; i < train_feats.values.shape()[0]; ++i) {
      if (train_labels[static_cast<std::size_t>(i)] < base_classes) {
        std::copy_n(all.data() + i * k, k, base_logits.data() + r * k);
        ++r;
      }
    }
  }
  // The classifier bank covers all 10 outputs (teacher logits have 10), but
  // only base-class rows are trained; the remaining vectors stay zero until
  // add_class replaces the growth — here we instead demonstrate true growth
  // on a standalone HdClassifier over NSHD's symbolization.
  nshd.train(base_feats, base_labels, &base_logits);

  // Rebuild a bank with exactly `base` classes from the trained encodings.
  hd::HdClassifier bank(base_classes, config.dim);
  {
    const auto hvs = nshd.symbolize_all(base_feats);
    bank.bundle_init(hvs, base_labels);
    hd::MassConfig mass;
    mass.epochs = 10;
    for (std::int64_t e = 0; e < mass.epochs; ++e)
      bank.mass_epoch(hvs, base_labels, mass);
  }

  auto evaluate_range = [&](const hd::HdClassifier& clf, std::int64_t k_known) {
    std::int64_t correct = 0, seen = 0;
    for (std::int64_t i = 0; i < test_feats.values.shape()[0]; ++i) {
      const std::int64_t label = test_labels[static_cast<std::size_t>(i)];
      if (label >= k_known) continue;
      const auto h = nshd.symbolize(test_feats.values.data() + i * f);
      if (clf.predict(h) == label) ++correct;
      ++seen;
    }
    return seen ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
  };

  util::Table table({"known classes", "accuracy over known test classes"});
  table.add_row({util::cell(static_cast<int>(base_classes)) + " (trained)",
                 util::cell(evaluate_range(bank, base_classes), 4)});

  // One-shot add the remaining classes, one at a time.
  for (std::int64_t new_class = base_classes; new_class < 10; ++new_class) {
    std::vector<hd::Hypervector> shots;
    for (std::int64_t i = 0; i < train_feats.values.shape()[0]; ++i) {
      if (train_labels[static_cast<std::size_t>(i)] == new_class) {
        shots.push_back(nshd.symbolize(train_feats.values.data() + i * f));
      }
    }
    bank.add_class(shots);
    table.add_row({util::cell(static_cast<int>(new_class + 1)) + " (one-shot added)",
                   util::cell(evaluate_range(bank, new_class + 1), 4)});
  }

  std::printf("== Incremental class learning: %s layer %zu ==\n%s",
              models::display_name(model_name).c_str(), cut,
              table.to_string().c_str());
  std::printf("New classes joined by bundling alone — no retraining, no "
              "replay of old data (classic HD capability).\n");
  return 0;
}
