// Incremental (one-shot) class learning on the streaming online path — the
// symbolic-memory advantage of the HD side of NSHD.
//
// A CNN must be retrained (or at least fine-tuned) to accept a new class; an
// HD class bank just bundles the new class's sample hypervectors into a
// fresh class vector.  This example trains NSHD on the first `base` classes
// of SynthCIFAR-10, seeds an hd::VersionedBank from the trained bank, and
// then grows it class by class exactly the way a live deployment would:
// every growth step is an add_class() publish followed by a guard-gated
// consolidation epoch (verify-then-swap — a collapsing update would roll
// back instead of serving).  Accuracy is tracked separately over the old
// (trained) classes and the newly added ones, so interference of one-shot
// growth with the existing memory is visible directly.
//
// Run: ./incremental_learning [--model=mobilenetv2s] [--cut=14] [--base=8]
#include <cstdio>

#include "core/experiment.hpp"
#include "hd/versioned_bank.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nshd;
  util::set_log_level(util::LogLevel::kInfo);
  const util::CliArgs args(argc, argv);
  const std::string model_name = args.get("model", "mobilenetv2s");
  const std::int64_t base_classes = args.get_int("base", 8);

  core::ExperimentContext context(core::ExperimentConfig::standard(10));
  models::ZooModel& m = context.model(model_name);
  const auto cut = static_cast<std::size_t>(
      args.get_int("cut", static_cast<int>(m.paper_cut_layers.front())));

  const core::ExtractedFeatures& train_feats = context.train_features(model_name, cut);
  const core::ExtractedFeatures& test_feats = context.test_features(model_name, cut);
  const auto& train_labels = context.train().labels;
  const auto& test_labels = context.test().labels;

  // Base-only training subset (rows whose label is a base class).
  std::vector<std::int64_t> base_rows;
  std::vector<std::int64_t> base_labels;
  for (std::int64_t i = 0; i < train_feats.values.shape()[0]; ++i) {
    if (train_labels[static_cast<std::size_t>(i)] < base_classes) {
      base_rows.push_back(i);
      base_labels.push_back(train_labels[static_cast<std::size_t>(i)]);
    }
  }
  const core::ExtractedFeatures base_feats = train_feats.select_rows(base_rows);

  // Teacher logits restricted to the same rows (KD teacher still has 10
  // outputs; only the rows matter).
  tensor::Tensor base_logits;
  {
    const tensor::Tensor& all = context.teacher_train_logits(model_name);
    const std::int64_t k = all.shape()[1];
    base_logits = tensor::Tensor(
        tensor::Shape{static_cast<std::int64_t>(base_rows.size()), k});
    for (std::size_t r = 0; r < base_rows.size(); ++r)
      std::copy_n(all.data() + base_rows[r] * k, k,
                  base_logits.data() + static_cast<std::int64_t>(r) * k);
  }

  core::NshdConfig config;
  config.dim = args.get_int("dim", 3000);
  core::NshdModel nshd(m, cut, config);
  nshd.train(base_feats, base_labels, &base_logits);

  // Encoder space, once: the stream below works purely on hypervectors.
  const std::vector<hd::Hypervector> train_hvs = nshd.symbolize_all(train_feats);
  const std::vector<hd::Hypervector> test_hvs = nshd.symbolize_all(test_feats);

  // Bank with exactly `base` classes from the trained encodings.
  hd::HdClassifier seed_bank(base_classes, config.dim);
  {
    std::vector<hd::Hypervector> base_hvs;
    for (const std::int64_t row : base_rows)
      base_hvs.push_back(train_hvs[static_cast<std::size_t>(row)]);
    hd::MassConfig mass;
    mass.epochs = 10;
    seed_bank.bundle_init(base_hvs, base_labels);
    for (std::int64_t e = 0; e < mass.epochs; ++e)
      seed_bank.mass_epoch(base_hvs, base_labels, mass);
  }

  // The streaming path: a VersionedBank guarded by the base-class test
  // split.  Every growth and consolidation below is a verify-then-swap
  // publish; concurrent readers (none here, but the API is the same one the
  // serving engine drives) would keep scoring the previous version.
  hd::VersionedBank bank(seed_bank);
  {
    hd::UpdateGuard guard;
    for (std::int64_t i = 0; i < test_feats.values.shape()[0]; ++i) {
      const std::int64_t label = test_labels[static_cast<std::size_t>(i)];
      if (label < base_classes) {
        guard.holdout.push_back(test_hvs[static_cast<std::size_t>(i)]);
        guard.holdout_labels.push_back(label);
      }
    }
    guard.max_accuracy_drop = 0.10;
    bank.set_guard(guard);
  }

  // Accuracy over test labels in [lo, hi) against the published version.
  const auto evaluate_range = [&](std::int64_t lo, std::int64_t hi) {
    const hd::VersionedBank::Snapshot snap = bank.snapshot();
    std::int64_t correct = 0, seen = 0;
    for (std::int64_t i = 0; i < test_feats.values.shape()[0]; ++i) {
      const std::int64_t label = test_labels[static_cast<std::size_t>(i)];
      if (label < lo || label >= hi) continue;
      if (snap->bank.predict(test_hvs[static_cast<std::size_t>(i)]) == label)
        ++correct;
      ++seen;
    }
    return seen ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
  };

  util::Table table({"known classes", "old-class acc", "new-class acc",
                     "version", "update"});
  table.add_row({util::cell(static_cast<int>(base_classes)) + " (trained)",
                 util::cell(evaluate_range(0, base_classes), 4), "-",
                 util::cell(static_cast<int>(bank.version())), "seed"});

  // One-shot add the remaining classes, one at a time, each followed by a
  // gated consolidation epoch over everything seen so far.
  std::uint64_t rollbacks = 0;
  for (std::int64_t new_class = base_classes; new_class < 10; ++new_class) {
    std::vector<hd::Hypervector> shots;
    std::vector<hd::Hypervector> seen_hvs;
    std::vector<std::int64_t> seen_labels;
    for (std::int64_t i = 0; i < train_feats.values.shape()[0]; ++i) {
      const std::int64_t label = train_labels[static_cast<std::size_t>(i)];
      if (label == new_class) shots.push_back(train_hvs[static_cast<std::size_t>(i)]);
      if (label <= new_class) {
        seen_hvs.push_back(train_hvs[static_cast<std::size_t>(i)]);
        seen_labels.push_back(label);
      }
    }
    const hd::UpdateStatus grow = bank.add_class(shots);
    hd::MassConfig consolidate;
    consolidate.learning_rate = 0.01f;
    const hd::UpdateStatus tune =
        bank.mass_epoch(seen_hvs, seen_labels, consolidate);
    if (tune != hd::UpdateStatus::kOk) ++rollbacks;

    std::string update = std::string("grow:") + hd::to_string(grow) +
                         " tune:" + hd::to_string(tune);
    table.add_row({util::cell(static_cast<int>(new_class + 1)) + " (one-shot)",
                   util::cell(evaluate_range(0, base_classes), 4),
                   util::cell(evaluate_range(base_classes, new_class + 1), 4),
                   util::cell(static_cast<int>(bank.version())), update});
  }

  std::printf("== Incremental class learning: %s layer %zu ==\n%s",
              models::display_name(model_name).c_str(), cut,
              table.to_string().c_str());
  std::printf(
      "New classes joined by one-shot bundling through the versioned online\n"
      "path — no retraining, no replay of old data; every publish was gated\n"
      "on the base-class holdout (%llu consolidation rollback(s)).\n",
      static_cast<unsigned long long>(rollbacks));
  return 0;
}
