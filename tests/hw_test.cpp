// Tests for src/hw: MAC/param census, energy model, FPGA model, and the
// full-scale architecture descriptors (validated against the published
// parameter counts of the real models and the paper's Table II rows).
#include <gtest/gtest.h>

#include "hw/census.hpp"
#include "hw/energy.hpp"
#include "hw/fpga.hpp"
#include "hw/fullscale.hpp"
#include "hw/gpu.hpp"
#include "models/zoo.hpp"
#include "nn/serialize.hpp"

namespace nshd::hw {
namespace {

// --- census over the scaled zoo ---

TEST(Census, CnnMacsArePositiveAndOrdered) {
  models::ZooModel b0 = models::make_efficientnet_b0s(10, 1);
  models::ZooModel b7 = models::make_efficientnet_b7s(10, 1);
  const CnnCensus c0 = cnn_census(b0);
  const CnnCensus c7 = cnn_census(b7);
  EXPECT_GT(c0.macs, 0);
  EXPECT_GT(c7.macs, c0.macs);
  EXPECT_GT(c7.params, c0.params);
}

TEST(Census, ParamsMatchSerializeCount) {
  models::ZooModel m = models::make_mobilenetv2s(10, 1);
  EXPECT_EQ(cnn_census(m).params, nn::parameter_count(m.net));
}

TEST(Census, PrefixIsMonotoneInCut) {
  models::ZooModel m = models::make_vgg16s(10, 1);
  std::int64_t last_macs = -1, last_params = -1;
  for (std::size_t cut = 0; cut < m.feature_count; ++cut) {
    const std::int64_t macs = prefix_macs(m, cut);
    const std::int64_t params = prefix_params(m, cut);
    EXPECT_GE(macs, last_macs);
    EXPECT_GE(params, last_params);
    last_macs = macs;
    last_params = params;
  }
  EXPECT_LE(last_macs, cnn_census(m).macs);
}

TEST(Census, NshdEncodesFhatNotRawFeatures) {
  models::ZooModel m = models::make_efficientnet_b0s(10, 1);
  const NshdCensus nshd = nshd_census(m, 7, 3000, 100, 10);
  const NshdCensus baseline = baseline_census(m, 7, 3000, 10);
  EXPECT_EQ(nshd.encode_macs, 100 * 3000);
  EXPECT_EQ(baseline.encode_macs, m.feature_dim_at(7) * 3000);
  EXPECT_GT(baseline.total_macs(), nshd.total_macs());
  EXPECT_EQ(nshd.similarity_macs, 10 * 3000);
  EXPECT_EQ(baseline.manifold_macs, 0);
}

TEST(Census, HigherDimensionCostsMore) {
  models::ZooModel m = models::make_mobilenetv2s(10, 1);
  const NshdCensus d3k = nshd_census(m, 14, 3000, 100, 10);
  const NshdCensus d10k = nshd_census(m, 14, 10000, 100, 10);
  EXPECT_GT(d10k.total_macs(), d3k.total_macs());
  EXPECT_GT(d10k.projection_bits, d3k.projection_bits);
}

TEST(Census, PooledFeaturesWindow2) {
  EXPECT_EQ(pooled_features(tensor::Shape{32, 4, 4}), 32 * 2 * 2);
  EXPECT_EQ(pooled_features(tensor::Shape{32, 1, 1}), 32);  // pass-through
  EXPECT_EQ(pooled_features(tensor::Shape{32, 2, 2}), 32 * 2 * 2);
  EXPECT_EQ(pooled_features(tensor::Shape{512, 7, 7}), 512 * 3 * 3);
}

// --- energy model ---

TEST(Energy, NshdAtEarlyCutBeatsCnn) {
  models::ZooModel m = models::make_vgg16s(10, 1);
  const auto coeffs = EnergyCoefficients::xavier_like();
  const EnergyBreakdown cnn = cnn_energy(cnn_census(m), coeffs);
  const EnergyBreakdown nshd =
      nshd_energy(nshd_census(m, 10, 3000, 100, 10), coeffs);
  EXPECT_GT(energy_improvement(cnn, nshd), 0.0);
}

TEST(Energy, ImprovementGrowsForEarlierCuts) {
  models::ZooModel m = models::make_mobilenetv2s(10, 1);
  const auto coeffs = EnergyCoefficients::xavier_like();
  const EnergyBreakdown cnn = cnn_energy(cnn_census(m), coeffs);
  const double early = energy_improvement(
      cnn, nshd_energy(nshd_census(m, 7, 3000, 100, 10), coeffs));
  const double late = energy_improvement(
      cnn, nshd_energy(nshd_census(m, 17, 3000, 100, 10), coeffs));
  EXPECT_GT(early, late);
}

TEST(Energy, BreakdownComponentsPositive) {
  models::ZooModel m = models::make_efficientnet_b0s(10, 1);
  const auto coeffs = EnergyCoefficients::xavier_like();
  const EnergyBreakdown e = nshd_energy(nshd_census(m, 6, 3000, 100, 10), coeffs);
  EXPECT_GT(e.compute_pj, 0.0);
  EXPECT_GT(e.weight_memory_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.compute_pj + e.weight_memory_pj);
}

TEST(Energy, BinaryOpsCheaperThanFp16) {
  const auto coeffs = EnergyCoefficients::xavier_like();
  EXPECT_LT(coeffs.binary_op_pj, coeffs.int8_mac_pj);
  EXPECT_LT(coeffs.int8_mac_pj, coeffs.fp16_mac_pj);
}

// --- FPGA model ---

TEST(Fpga, TableOneMatchesPaper) {
  const auto rows = FpgaModel::resource_utilization();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].resource, "LUT");
  EXPECT_NEAR(rows[0].utilization(), 0.3687, 1e-3);
  EXPECT_NEAR(rows[1].utilization(), 0.3180, 1e-3);
  EXPECT_NEAR(rows[2].utilization(), 0.7179, 1e-3);
  EXPECT_NEAR(rows[3].utilization(), 0.4167, 1e-3);
  EXPECT_NEAR(rows[4].utilization(), 0.4884, 1e-3);
}

TEST(Fpga, NshdFasterThanCnn) {
  models::ZooModel m = models::make_efficientnet_b0s(10, 1);
  FpgaModel fpga;
  const double cnn_fps = fpga.cnn_fps(cnn_census(m), m.net.size());
  const double nshd_fps =
      fpga.nshd_fps(nshd_census(m, 6, 3000, 100, 10), 7);
  EXPECT_GT(nshd_fps, cnn_fps);
}

TEST(Fpga, LargerDimensionLowersThroughput) {
  models::ZooModel m = models::make_mobilenetv2s(10, 1);
  FpgaModel fpga;
  const double fps_1k = fpga.nshd_fps(nshd_census(m, 14, 1000, 100, 10), 15);
  const double fps_10k = fpga.nshd_fps(nshd_census(m, 14, 10000, 100, 10), 15);
  EXPECT_GT(fps_1k, fps_10k);
}

TEST(Fpga, EnergyPerInferenceScalesWithLatency) {
  FpgaModel fpga;
  EXPECT_NEAR(fpga.energy_per_inference_j(0.01), 0.04427, 1e-6);
}

// --- full-scale descriptors ---

TEST(FullScale, Vgg16ParamCountMatchesPublished) {
  const ArchModel vgg = fullscale_vgg16();
  // Known: VGG16 has 138.357544M parameters in total.
  const std::int64_t total =
      vgg.total_params_excluding_final_fc() + vgg.final_fc_params;
  EXPECT_NEAR(static_cast<double>(total), 138.3575e6, 0.01e6);
  // features-only: 14.714688M.
  EXPECT_NEAR(static_cast<double>(vgg.feature_params()), 14.7147e6, 0.01e6);
}

TEST(FullScale, MobileNetV2ParamCountMatchesPublished) {
  const ArchModel m = fullscale_mobilenetv2();
  const std::int64_t total =
      m.total_params_excluding_final_fc() + m.final_fc_params;
  // torchvision mobilenet_v2: 3.504872M params (+-1%).
  EXPECT_NEAR(static_cast<double>(total), 3.5049e6, 0.04e6);
}

TEST(FullScale, EfficientNetB0ParamCountMatchesPublished) {
  const ArchModel m = fullscale_efficientnet_b0();
  const std::int64_t total =
      m.total_params_excluding_final_fc() + m.final_fc_params;
  // torchvision efficientnet_b0: 5.288548M params (+-2%).
  EXPECT_NEAR(static_cast<double>(total), 5.2885e6, 0.11e6);
}

TEST(FullScale, EfficientNetB7IsInB7Ballpark) {
  const ArchModel m = fullscale_efficientnet_b7();
  const std::int64_t total =
      m.total_params_excluding_final_fc() + m.final_fc_params;
  // torchvision efficientnet_b7: 66.348M params (+-5%: repeat rounding).
  EXPECT_NEAR(static_cast<double>(total), 66.35e6, 3.4e6);
}

TEST(FullScale, TableTwoCnnColumn) {
  // Paper Table II "CNN" column: VGG16 537.2MB, Efficientnetb0 16.08MB,
  // Efficientnetb7 255.25MB, Mobilenetv2 8.94MB (1MB = 1e6 bytes).
  auto cnn_mb = [](const ArchModel& m) {
    return static_cast<double>(m.total_params_excluding_final_fc()) * 4.0 / 1e6;
  };
  EXPECT_NEAR(cnn_mb(fullscale_vgg16()), 537.2, 1.0);
  EXPECT_NEAR(cnn_mb(fullscale_efficientnet_b0()), 16.08, 0.4);
  EXPECT_NEAR(cnn_mb(fullscale_efficientnet_b7()), 255.25, 13.0);
  EXPECT_NEAR(cnn_mb(fullscale_mobilenetv2()), 8.94, 0.2);
}

TEST(FullScale, TableTwoVggRows) {
  // Paper: VGG16 layer 27 -> NSHD 69.61MB / BaselineHD 87.17MB; layer 29 ->
  // 69.05MB / 96.61MB.  (Layer 27 activation is mid-block 512x14x14 in our
  // descriptor; the NSHD number is dominated by prefix params + manifold.)
  const ArchModel vgg = fullscale_vgg16();
  const SizeReport at29 = model_size_report(vgg, 29, 3000, 100, 10);
  EXPECT_NEAR(at29.nshd_bytes / 1e6, 69.05, 2.0);
  EXPECT_NEAR(at29.baseline_bytes / 1e6, 96.61, 2.0);
  const SizeReport at27 = model_size_report(vgg, 27, 3000, 100, 10);
  EXPECT_LT(at27.nshd_bytes, at29.nshd_bytes + 1e6);
  EXPECT_GT(at27.baseline_bytes, at27.nshd_bytes);
}

TEST(FullScale, NshdSmallerThanBaselineEverywhere) {
  for (const char* name :
       {"vgg16s", "mobilenetv2s", "efficientnet_b0s", "efficientnet_b7s"}) {
    const ArchModel arch = fullscale_for(name);
    models::ZooModel zoo = models::make_model(name, 10, 1);
    for (std::size_t cut : zoo.paper_cut_layers) {
      const SizeReport r = model_size_report(arch, cut, 3000, 100, 10);
      EXPECT_LT(r.nshd_bytes, r.baseline_bytes) << name << " cut " << cut;
    }
  }
}

TEST(FullScale, UnitShapesTrackDownsampling) {
  const ArchModel b0 = fullscale_efficientnet_b0();
  // Stem halves 224 -> 112; stages 2,3,4,6 halve again -> 7x7 at the head.
  EXPECT_EQ(b0.features.front().out_h, 112);
  EXPECT_EQ(b0.features.back().out_h, 7);
  EXPECT_EQ(b0.features.back().out_c, 1280);
}

TEST(FullScale, PrefixAccumulates) {
  const ArchModel vgg = fullscale_vgg16();
  EXPECT_EQ(vgg.prefix_params(30), vgg.feature_params());
  EXPECT_LT(vgg.prefix_params(10), vgg.prefix_params(20));
  EXPECT_LT(vgg.prefix_macs(10), vgg.prefix_macs(20));
}

TEST(FullScale, UnknownNameThrows) {
  EXPECT_THROW(fullscale_for("alexnet"), std::invalid_argument);
}

// --- GPU latency model ---

TEST(Gpu, NshdReducesExecutionTime) {
  models::ZooModel m = models::make_vgg16s(10, 1);
  const GpuModel gpu;
  const CnnCensus cnn = cnn_census(m);
  const double reduction = gpu.time_reduction(
      cnn, m.net.size(), nshd_census(m, 16, 3000, 100, 10), 17);
  EXPECT_GT(reduction, 0.0);
  EXPECT_LT(reduction, 1.0);
}

TEST(Gpu, ReductionGrowsForEarlierCuts) {
  models::ZooModel m = models::make_efficientnet_b0s(10, 1);
  const GpuModel gpu;
  const CnnCensus cnn = cnn_census(m);
  const double early = gpu.time_reduction(cnn, m.net.size(),
                                          nshd_census(m, 4, 3000, 100, 10), 5);
  const double late = gpu.time_reduction(cnn, m.net.size(),
                                         nshd_census(m, 8, 3000, 100, 10), 9);
  EXPECT_GT(early, late);
}

TEST(Gpu, LatencyIsPositiveAndCnnSlowerWhenPrefixIsWhole) {
  models::ZooModel m = models::make_mobilenetv2s(10, 1);
  const GpuModel gpu;
  const CnnCensus cnn = cnn_census(m);
  EXPECT_GT(gpu.cnn_latency_s(cnn, m.net.size()), 0.0);
  // NSHD at the last feature layer still skips the classifier head, so it
  // must not be slower by more than the HD stage cost.
  const double t_nshd = gpu.nshd_latency_s(
      nshd_census(m, m.feature_count - 1, 3000, 100, 10), m.feature_count);
  EXPECT_GT(t_nshd, 0.0);
}

}  // namespace
}  // namespace nshd::hw
