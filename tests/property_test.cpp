// Property-based parameterized sweeps across module configuration grids:
// shape-consistency of every layer geometry, bit-packing invariants at word
// boundaries, encoder adjointness across dimensions, and HD-learning
// convergence across class counts.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "hd/classifier.hpp"
#include "hd/hypervector.hpp"
#include "hd/projection.hpp"
#include "hd/vanilla.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "util/rng.hpp"

namespace nshd {
namespace {

using nn::Shape;
using tensor::Tensor;

Tensor random_tensor(Shape shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = rng.normal();
  return t;
}

// --- Conv2d geometry sweep: forward shape == declared output_shape, and the
// backward pass returns an input-shaped gradient, for every geometry. ---

using ConvCase = std::tuple<int, int, int, int, int, int>;  // in_c,out_c,k,s,pad,hw

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, ForwardShapeMatchesDeclared) {
  const auto [in_c, out_c, k, s, pad, hw] = GetParam();
  util::Rng rng(1);
  nn::Conv2d conv(in_c, out_c, k, s, pad, true, rng);
  Tensor x = random_tensor(Shape{2, in_c, hw, hw}, rng);
  const Tensor y = conv.forward(x, /*training=*/true);
  EXPECT_EQ(y.shape(), conv.output_shape(x.shape()));
  const Tensor gx = conv.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_GT(conv.macs_per_sample(Shape{in_c, hw, hw}), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometry,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4}, ConvCase{3, 8, 3, 1, 1, 8},
                      ConvCase{4, 2, 3, 2, 1, 9}, ConvCase{2, 5, 5, 2, 2, 12},
                      ConvCase{8, 8, 1, 1, 0, 7}, ConvCase{3, 16, 3, 2, 1, 32}));

// --- MBConv configuration sweep ---

using MBCase = std::tuple<int, int, int, int, int, bool>;  // in,out,expand,k,s,se

class MBConvSweep : public ::testing::TestWithParam<MBCase> {};

TEST_P(MBConvSweep, ForwardBackwardShapes) {
  const auto [in_c, out_c, expand, k, s, se] = GetParam();
  util::Rng rng(2);
  nn::MBConvConfig config;
  config.in_channels = in_c;
  config.out_channels = out_c;
  config.expand_ratio = expand;
  config.kernel = k;
  config.stride = s;
  config.use_se = se;
  nn::MBConvBlock block(config, rng);
  Tensor x = random_tensor(Shape{2, in_c, 8, 8}, rng);
  const Tensor y = block.forward(x, /*training=*/true);
  EXPECT_EQ(y.shape(), block.output_shape(x.shape()));
  EXPECT_EQ(block.has_residual(), s == 1 && in_c == out_c);
  const Tensor gx = block.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(Configs, MBConvSweep,
                         ::testing::Values(MBCase{4, 4, 1, 3, 1, false},
                                           MBCase{4, 8, 6, 3, 2, false},
                                           MBCase{6, 6, 6, 3, 1, true},
                                           MBCase{4, 10, 6, 5, 2, true},
                                           MBCase{8, 8, 2, 5, 1, true}));

// --- Hypervector word-boundary sweep: packing must be exact at and around
// 64-bit word boundaries. ---

class WordBoundary : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(WordBoundary, PackingInvariants) {
  const std::int64_t dim = GetParam();
  util::Rng rng(3);
  const hd::Hypervector a = hd::Hypervector::random(dim, rng);
  const hd::Hypervector b = hd::Hypervector::random(dim, rng);
  // Self-similarity is exact.
  EXPECT_EQ(a.dot(a), dim);
  EXPECT_EQ(a.hamming(a), 0);
  // Symmetry.
  EXPECT_EQ(a.hamming(b), b.hamming(a));
  // Hamming within [0, dim]; padding bits must not leak into counts.
  EXPECT_GE(a.hamming(b), 0);
  EXPECT_LE(a.hamming(b), dim);
  // Round-trip through the float view.
  EXPECT_EQ(hd::Hypervector::from_sign(a.to_tensor()), a);
  // Binding self-inverse at every size.
  EXPECT_EQ(a.bind(b).bind(b), a);
}

INSTANTIATE_TEST_SUITE_P(Dims, WordBoundary,
                         ::testing::Values<std::int64_t>(1, 2, 63, 64, 65, 127,
                                                         128, 129, 1000, 3000));

// --- RandomProjection adjoint property across (dim, features) grid ---

using ProjCase = std::tuple<int, int>;

class ProjectionSweep : public ::testing::TestWithParam<ProjCase> {};

TEST_P(ProjectionSweep, DecodeIsAdjoint) {
  const auto [dim, features] = GetParam();
  util::Rng rng(4);
  const hd::RandomProjection proj(dim, features, rng);
  Tensor v(Shape{features}), g(Shape{dim});
  for (float& x : v.span()) x = rng.normal();
  for (float& x : g.span()) x = rng.normal();
  const Tensor z = proj.project(v);
  const Tensor back = proj.decode(g);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) lhs += static_cast<double>(z[i]) * g[i];
  for (std::int64_t i = 0; i < features; ++i) rhs += static_cast<double>(v[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST_P(ProjectionSweep, EncodingIsDeterministic) {
  const auto [dim, features] = GetParam();
  util::Rng rng(5);
  const hd::RandomProjection proj(dim, features, rng);
  Tensor v(Shape{features});
  for (float& x : v.span()) x = rng.normal();
  EXPECT_EQ(proj.encode(v), proj.encode(v));
}

INSTANTIATE_TEST_SUITE_P(Grid, ProjectionSweep,
                         ::testing::Values(ProjCase{64, 10}, ProjCase{100, 64},
                                           ProjCase{1000, 100}, ProjCase{128, 128},
                                           ProjCase{3000, 63}, ProjCase{513, 65}));

// --- Pooling geometry sweep ---

using PoolCase = std::tuple<int, int, int>;  // k, s, hw

class PoolSweep : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolSweep, MaxPoolNeverInventsValues) {
  const auto [k, s, hw] = GetParam();
  util::Rng rng(6);
  nn::MaxPool2d pool(k, s);
  Tensor x = random_tensor(Shape{1, 3, hw, hw}, rng);
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), pool.output_shape(x.shape()));
  const float x_max = *std::max_element(x.span().begin(), x.span().end());
  for (float v : y.span()) EXPECT_LE(v, x_max);
}

INSTANTIATE_TEST_SUITE_P(Geometries, PoolSweep,
                         ::testing::Values(PoolCase{2, 2, 8}, PoolCase{3, 2, 9},
                                           PoolCase{2, 1, 5}, PoolCase{3, 3, 12}));

// --- BatchNorm across channel counts: training output is always
// zero-mean/unit-variance per channel. ---

class BatchNormSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BatchNormSweep, NormalizesEveryChannelCount) {
  const std::int64_t channels = GetParam();
  util::Rng rng(7);
  nn::BatchNorm2d bn(channels);
  Tensor x = random_tensor(Shape{4, channels, 5, 5}, rng);
  for (float& v : x.span()) v = v * 3.0f + 2.0f;
  const Tensor y = bn.forward(x, true);
  for (std::int64_t c = 0; c < channels; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 25; ++i) {
        const float v = y[(n * channels + c) * 25 + i];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(sum / 100.0, 0.0, 1e-3);
    EXPECT_NEAR(sq / 100.0, 1.0, 2e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, BatchNormSweep,
                         ::testing::Values<std::int64_t>(1, 2, 7, 16));

// --- IdLevel encoder: similarity decays monotonically (on average) with
// level distance for every level count. ---

class IdLevelSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IdLevelSweep, LevelChainDecaysWithDistance) {
  const std::int64_t levels = GetParam();
  hd::IdLevelConfig config;
  config.dim = 4096;
  config.levels = levels;
  const hd::IdLevelEncoder enc(4, config);
  const double near =
      static_cast<double>(enc.level_hv(0).dot(enc.level_hv(levels / 4)));
  const double far =
      static_cast<double>(enc.level_hv(0).dot(enc.level_hv(levels - 1)));
  EXPECT_GT(near, far);
}

INSTANTIATE_TEST_SUITE_P(Levels, IdLevelSweep,
                         ::testing::Values<std::int64_t>(8, 16, 32, 64));

// --- MASS learning converges across class counts ---

class MassClasses : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MassClasses, SeparableProblemIsLearned) {
  const std::int64_t classes = GetParam();
  const std::int64_t dim = 2048;
  util::Rng rng(classes * 97);
  std::vector<hd::Hypervector> prototypes;
  for (std::int64_t c = 0; c < classes; ++c)
    prototypes.push_back(hd::Hypervector::random(dim, rng));
  std::vector<hd::Hypervector> train, test;
  std::vector<std::int64_t> train_labels, test_labels;
  auto noisy = [&](std::int64_t c) {
    hd::Hypervector h = prototypes[static_cast<std::size_t>(c)];
    for (int f = 0; f < dim / 3; ++f)
      h.flip(static_cast<std::int64_t>(rng.next_below(dim)));
    return h;
  };
  for (std::int64_t c = 0; c < classes; ++c) {
    for (int i = 0; i < 12; ++i) {
      train.push_back(noisy(c));
      train_labels.push_back(c);
      test.push_back(noisy(c));
      test_labels.push_back(c);
    }
  }
  hd::HdClassifier clf(classes, dim);
  hd::MassConfig config;
  config.epochs = 10;
  clf.train(train, train_labels, config);
  EXPECT_GT(clf.evaluate(test, test_labels), 0.85);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, MassClasses,
                         ::testing::Values<std::int64_t>(2, 5, 10, 25));

// --- Activation functions: analytic gradient matches finite differences on
// a value sweep (the kinks excluded). ---

class ActivationSweep
    : public ::testing::TestWithParam<std::tuple<nn::Activation, float>> {};

TEST_P(ActivationSweep, GradMatchesFiniteDifference) {
  const auto [act, x] = GetParam();
  const float eps = 1e-3f;
  const float numeric =
      (nn::activate(act, x + eps) - nn::activate(act, x - eps)) / (2.0f * eps);
  EXPECT_NEAR(nn::activate_grad(act, x), numeric, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Values, ActivationSweep,
    ::testing::Combine(::testing::Values(nn::Activation::kReLU,
                                         nn::Activation::kReLU6,
                                         nn::Activation::kSiLU,
                                         nn::Activation::kSigmoid),
                       ::testing::Values(-3.0f, -1.0f, -0.3f, 0.4f, 1.7f, 3.0f,
                                         5.5f, 7.0f)));

}  // namespace
}  // namespace nshd
