// Tests for src/analysis: confusion metrics, t-SNE embedding quality, and
// cluster-separation scores.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.hpp"
#include "analysis/pca.hpp"
#include "analysis/tsne.hpp"
#include "util/rng.hpp"

namespace nshd::analysis {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, RecallPrecision) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_NEAR(cm.recall(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.precision(0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.recall(1), 0.5, 1e-9);
  EXPECT_NEAR(cm.macro_recall(), (2.0 / 3.0 + 0.5) / 2.0, 1e-9);
}

TEST(ConfusionMatrix, EmptyClassIsZeroNotNan) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
}

TEST(Accuracy, VectorForm) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 0, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

/// Three well-separated Gaussian blobs in 10-D.
struct Blobs {
  Tensor points;
  std::vector<std::int64_t> labels;
};

Blobs make_blobs(std::int64_t per_class, double separation, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::int64_t k = 3, f = 10, n = k * per_class;
  Blobs b{Tensor(Shape{n, f}), {}};
  for (std::int64_t c = 0; c < k; ++c) {
    for (std::int64_t i = 0; i < per_class; ++i) {
      const std::int64_t row = c * per_class + i;
      for (std::int64_t j = 0; j < f; ++j) {
        const float center = (j % k == c) ? static_cast<float>(separation) : 0.0f;
        b.points.at(row, j) = center + rng.normal();
      }
      b.labels.push_back(c);
    }
  }
  return b;
}

TEST(Silhouette, SeparatedBlobsScoreHigh) {
  const Blobs b = make_blobs(20, 8.0, 1);
  EXPECT_GT(silhouette_score(b.points, b.labels), 0.5);
}

TEST(Silhouette, RandomLabelsScoreNearZero) {
  Blobs b = make_blobs(20, 8.0, 2);
  util::Rng rng(3);
  rng.shuffle(b.labels);
  EXPECT_LT(silhouette_score(b.points, b.labels), 0.2);
}

TEST(Silhouette, OverlappingBlobsScoreLow) {
  const Blobs tight = make_blobs(20, 8.0, 4);
  const Blobs loose = make_blobs(20, 0.5, 4);
  EXPECT_GT(silhouette_score(tight.points, tight.labels),
            silhouette_score(loose.points, loose.labels));
}

TEST(SeparationRatio, GreaterForSeparatedData) {
  const Blobs tight = make_blobs(15, 8.0, 5);
  const Blobs loose = make_blobs(15, 0.5, 5);
  EXPECT_GT(class_separation_ratio(tight.points, tight.labels), 1.5);
  EXPECT_GT(class_separation_ratio(tight.points, tight.labels),
            class_separation_ratio(loose.points, loose.labels));
}

TEST(Tsne, OutputShapeAndFiniteness) {
  const Blobs b = make_blobs(10, 6.0, 6);
  TsneConfig config;
  config.iterations = 120;
  const Tensor y = tsne(b.points, config);
  EXPECT_EQ(y.shape(), Shape({30, 2}));
  for (float v : y.span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Tsne, PreservesClusterStructure) {
  // The defining Fig. 11 property: separated high-dimensional classes stay
  // separated in the 2-D embedding.
  const Blobs b = make_blobs(15, 8.0, 7);
  TsneConfig config;
  config.iterations = 300;
  const Tensor y = tsne(b.points, config);
  EXPECT_GT(class_separation_ratio(y, b.labels), 1.5);
  EXPECT_GT(silhouette_score(y, b.labels), 0.3);
}

TEST(Tsne, OverlappingDataStaysOverlapping) {
  const Blobs loose = make_blobs(15, 0.3, 8);
  TsneConfig config;
  config.iterations = 200;
  const Tensor y = tsne(loose.points, config);
  EXPECT_LT(silhouette_score(y, loose.labels), 0.3);
}

TEST(Pca, RecoversDominantDirection) {
  // Data varies mostly along (1,1,0,...)/sqrt(2).
  util::Rng rng(11);
  const std::int64_t n = 200, f = 6;
  Tensor data(Shape{n, f});
  for (std::int64_t i = 0; i < n; ++i) {
    const float major = rng.normal(0.0f, 5.0f);
    for (std::int64_t j = 0; j < f; ++j) data.at(i, j) = rng.normal(0.0f, 0.2f);
    data.at(i, 0) += major;
    data.at(i, 1) += major;
  }
  const Pca pca(data, 1);
  const float a = pca.directions().at(0, 0);
  const float b = pca.directions().at(0, 1);
  EXPECT_NEAR(std::fabs(a), std::sqrt(0.5f), 0.05f);
  EXPECT_NEAR(std::fabs(b), std::sqrt(0.5f), 0.05f);
  EXPECT_GT(a * b, 0.0f);  // same sign: the (1,1) direction
  EXPECT_GT(pca.explained_variance_ratio(), 0.9);
}

TEST(Pca, DirectionsAreOrthonormal) {
  util::Rng rng(12);
  Tensor data(Shape{100, 8});
  for (float& v : data.span()) v = rng.normal();
  const Pca pca(data, 4);
  for (std::int64_t a = 0; a < 4; ++a) {
    double norm = 0.0;
    for (std::int64_t j = 0; j < 8; ++j)
      norm += static_cast<double>(pca.directions().at(a, j)) * pca.directions().at(a, j);
    EXPECT_NEAR(norm, 1.0, 1e-3);
    for (std::int64_t b = a + 1; b < 4; ++b) {
      double dot = 0.0;
      for (std::int64_t j = 0; j < 8; ++j)
        dot += static_cast<double>(pca.directions().at(a, j)) * pca.directions().at(b, j);
      EXPECT_NEAR(dot, 0.0, 0.05);
    }
  }
}

TEST(Pca, VarianceIsDescending) {
  util::Rng rng(13);
  Tensor data(Shape{150, 10});
  for (std::int64_t i = 0; i < 150; ++i)
    for (std::int64_t j = 0; j < 10; ++j)
      data.at(i, j) = rng.normal(0.0f, static_cast<float>(10 - j));
  const Pca pca(data, 5);
  for (std::size_t c = 1; c < pca.explained_variance().size(); ++c) {
    EXPECT_GE(pca.explained_variance()[c - 1], pca.explained_variance()[c] - 1e-3f);
  }
}

TEST(Pca, TransformCentersData) {
  util::Rng rng(14);
  Tensor data(Shape{80, 5});
  for (float& v : data.span()) v = rng.normal(3.0f, 1.0f);
  const Pca pca(data, 2);
  // Mean of transformed data ~ 0.
  double mean0 = 0.0, mean1 = 0.0;
  for (std::int64_t i = 0; i < 80; ++i) {
    const Tensor y = pca.transform(data.data() + i * 5);
    mean0 += y[0];
    mean1 += y[1];
  }
  EXPECT_NEAR(mean0 / 80.0, 0.0, 0.1);
  EXPECT_NEAR(mean1 / 80.0, 0.0, 0.1);
}

TEST(Tsne, DeterministicForSeed) {
  const Blobs b = make_blobs(8, 5.0, 9);
  TsneConfig config;
  config.iterations = 50;
  const Tensor a = tsne(b.points, config);
  const Tensor c = tsne(b.points, config);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], c[i]);
}

}  // namespace
}  // namespace nshd::analysis
