// Chaos matrix for the serving engine: every serve.* fault site is armed
// against live concurrent traffic and the robustness contract is asserted —
// the process never crashes, no accepted request is ever lost (every future
// resolves with exactly one typed terminal status), the stats invariant
// `submitted == completed + timed_out + internal_errors` holds at
// quiescence, and healthy co-models keep serving bitwise-correct responses
// while a sibling model's traffic is poisoned.  Runs under ASan/TSan/UBSan
// via the check_* targets (ctest -L chaos).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "serve/engine.hpp"
#include "util/fault.hpp"

namespace nshd {
namespace {

using serve::Engine;
using serve::EngineConfig;
using serve::ModelBundle;
using serve::RequestStatus;
using serve::Response;
using serve::SubmitStatus;

constexpr std::int64_t kClasses = 4;
constexpr std::size_t kCut = 4;

data::Dataset tiny_dataset(std::int64_t per_class = 8, std::uint64_t seed = 42) {
  data::SynthCifarConfig config;
  config.num_classes = kClasses;
  config.samples_per_class = per_class;
  config.seed = seed;
  return data::make_synth_cifar(config);
}

std::unique_ptr<ModelBundle> make_trained_bundle(std::int64_t max_batch,
                                                 std::uint64_t model_seed = 7) {
  core::NshdConfig nshd_config;
  nshd_config.dim = 512;
  nshd_config.manifold_features = 32;
  nshd_config.epochs = 2;
  nshd_config.use_kd = false;
  nshd_config.train_manifold = false;
  auto bundle = std::make_unique<ModelBundle>(
      models::make_model("mobilenetv2s", kClasses, model_seed), kCut,
      nshd_config, max_batch);
  const data::Dataset train = tiny_dataset();
  const core::ExtractedFeatures features =
      core::extract_features(bundle->plan, train, max_batch);
  bundle->nshd.train(features, train.labels, /*teacher_logits=*/nullptr);
  return bundle;
}

std::vector<float> direct_scores(const ModelBundle& bundle,
                                 const tensor::Tensor& image) {
  nn::InferencePlan& plan = const_cast<ModelBundle&>(bundle).plan;
  const tensor::Tensor flat = core::extract_one(plan, image);
  const hd::Hypervector query = bundle.nshd.symbolize(flat.data());
  const tensor::Tensor sims = bundle.nshd.classifier().similarities_all(
      {query}, bundle.nshd.config().similarity);
  return {sims.data(), sims.data() + sims.numel()};
}

class ServeChaos : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::disarm_all(); }
  void TearDown() override { util::fault::disarm_all(); }
};

/// Drives `threads` submitters x `per_thread` requests against `engine` and
/// returns the futures of every accepted request.
std::vector<std::future<Response>> hammer(Engine& engine, const std::string& id,
                                          const data::Dataset& ds, int threads,
                                          int per_thread) {
  std::vector<std::vector<std::future<Response>>> per_thread_futures(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> submitters;
  for (int t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        std::future<Response> future;
        const std::int64_t sample = (t * per_thread + i) % ds.size();
        if (engine.submit(id, ds.sample(sample), &future) == SubmitStatus::kOk)
          per_thread_futures[static_cast<std::size_t>(t)].push_back(std::move(future));
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  std::vector<std::future<Response>> futures;
  for (auto& bucket : per_thread_futures)
    for (auto& future : bucket) futures.push_back(std::move(future));
  return futures;
}

/// Resolves every future (failing the test if one is unready 10 s after
/// shutdown — a lost promise) and returns per-terminal-status counts.
struct TerminalCounts {
  std::uint64_t ok = 0, degraded = 0, timed_out = 0, internal = 0;
  std::uint64_t total() const { return ok + degraded + timed_out + internal; }
};
void resolve_all(std::vector<std::future<Response>>& futures,
                 TerminalCounts* counts) {
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "accepted request never resolved (lost promise)";
    const Response response = future.get();  // throws on a broken promise
    switch (response.status) {
      case RequestStatus::kOk: ++counts->ok; break;
      case RequestStatus::kDegraded: ++counts->degraded; break;
      case RequestStatus::kTimedOut: ++counts->timed_out; break;
      case RequestStatus::kInternalError: ++counts->internal; break;
    }
  }
}
#define RESOLVE_ALL(counts, futures) \
  ASSERT_NO_FATAL_FAILURE(resolve_all(futures, &counts))

void expect_quiescent_invariant(const serve::EngineStats& stats,
                                const TerminalCounts& counts) {
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.timed_out + stats.internal_errors);
  EXPECT_EQ(stats.submitted, counts.total());
  EXPECT_EQ(stats.completed, counts.ok + counts.degraded);
  EXPECT_EQ(stats.timed_out, counts.timed_out);
  EXPECT_EQ(stats.internal_errors, counts.internal);
}

TEST_F(ServeChaos, WorkerThrowEveryBatchNeverCrashesOrLosesRequests) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);
  util::fault::arm_every("serve.worker_throw");

  auto futures = hammer(engine, "m", ds, /*threads=*/2, /*per_thread=*/12);
  engine.shutdown();
  TerminalCounts counts;
  RESOLVE_ALL(counts, futures);

  // Every execution threw, so every request drilled down to a quarantined
  // singleton — and every one of them got its typed answer.
  EXPECT_EQ(counts.internal, futures.size());
  const serve::EngineStats stats = engine.stats();
  expect_quiescent_invariant(stats, counts);
  EXPECT_GT(stats.batch_faults, 0u);
}

TEST_F(ServeChaos, BatchStallEveryBatchStillCompletesEverything) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);
  util::fault::arm_every("serve.batch_stall");

  auto futures = hammer(engine, "m", ds, /*threads=*/2, /*per_thread=*/8);
  engine.shutdown();
  TerminalCounts counts;
  RESOLVE_ALL(counts, futures);

  // A stall is latency, not a fault: with no deadlines armed, everything
  // completes healthy, just slowly.
  EXPECT_EQ(counts.ok, futures.size());
  expect_quiescent_invariant(engine.stats(), counts);
}

TEST_F(ServeChaos, NanLogitsEveryBatchQuarantinesPoisonRowsOnly) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  config.numeric_policy = serve::NumericPolicy::kReject;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);
  util::fault::arm_every("serve.nan_logits");

  auto futures = hammer(engine, "m", ds, /*threads=*/2, /*per_thread=*/12);
  engine.shutdown();
  TerminalCounts counts;
  RESOLVE_ALL(counts, futures);

  // Row 0 of every batch turns NaN: exactly one quarantine per batch, the
  // co-batched rows keep serving.
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(counts.internal, stats.batches);
  EXPECT_EQ(stats.numeric_faults, stats.batches);
  EXPECT_GT(counts.ok, 0u);
  expect_quiescent_invariant(stats, counts);
}

TEST_F(ServeChaos, ReloadCorruptMidTrafficKeepsOldWeightsServing) {
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);
  const std::vector<float> before = direct_scores(*engine.bundle("m"), ds.sample(0));

  const std::string path =
      (std::string("/tmp/nshd_serve_chaos_") + std::to_string(::getpid()) + ".ckpt");
  ASSERT_TRUE(serve::save_bundle_checkpoint(engine.bundle("m")->nshd, "m", path));

  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    int i = 0;
    while (!stop.load()) {
      std::future<Response> future;
      if (engine.submit("m", ds.sample(i++ % ds.size()), &future) == SubmitStatus::kOk)
        EXPECT_EQ(future.get().status, RequestStatus::kOk);
    }
  });
  util::fault::arm_every("serve.reload_corrupt");
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(engine.reload("m", path), util::LoadStatus::kNonFinite);
  util::fault::disarm_all();
  stop.store(true);
  traffic.join();

  std::future<Response> future;
  ASSERT_EQ(engine.submit("m", ds.sample(0), &future), SubmitStatus::kOk);
  const Response response = future.get();
  for (std::size_t c = 0; c < before.size(); ++c)
    EXPECT_EQ(response.scores[c], before[c]);
  EXPECT_EQ(engine.stats().reloads_failed, 4u);
  std::remove(path.c_str());
}

TEST_F(ServeChaos, DrainUnderFaultInjectionResolvesEveryAcceptedRequest) {
  // The satellite property test: 8 submitter threads race a shutdown drain
  // while faults fire mid-traffic; every kOk-accepted request must resolve
  // exactly once with a typed terminal status and the quiescent stats
  // invariant must hold to the request.
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 8;
  config.batch_deadline_ms = 1.0;
  config.queue_capacity = 64;
  config.request_deadline_ms = 200.0;  // config-default deadline path
  Engine engine(config);
  engine.register_model("m", make_trained_bundle(config.max_batch));
  const data::Dataset ds = tiny_dataset(4, 9);
  util::fault::arm("serve.worker_throw", 3);
  util::fault::arm("serve.nan_logits", 2);

  constexpr int kSubmitters = 8;
  constexpr int kPerThread = 20;
  std::vector<std::vector<std::future<Response>>> accepted(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::future<Response> future;
        const std::int64_t sample = (t * kPerThread + i) % ds.size();
        if (engine.submit("m", ds.sample(sample), &future) == SubmitStatus::kOk)
          accepted[static_cast<std::size_t>(t)].push_back(std::move(future));
      }
    });
  }
  // Shut down while submitters are still racing: late submissions bounce
  // with kShutdown, in-flight ones drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.shutdown();
  for (auto& thread : submitters) thread.join();

  std::vector<std::future<Response>> futures;
  for (auto& bucket : accepted)
    for (auto& future : bucket) futures.push_back(std::move(future));
  TerminalCounts counts;
  RESOLVE_ALL(counts, futures);
  expect_quiescent_invariant(engine.stats(), counts);
}

TEST_F(ServeChaos, PoisonTrafficLeavesHealthyCoModelBitwiseIntact) {
  // Model "bad" is fed NaN-pixel images (quarantined typed) concurrently
  // with clean traffic to model "good"; the healthy model's responses stay
  // bitwise equal to its single-request pipeline throughout.
  EngineConfig config;
  config.workers = 2;
  config.max_batch = 4;
  config.batch_deadline_ms = 1.0;
  config.numeric_policy = serve::NumericPolicy::kReject;
  Engine engine(config);
  engine.register_model("good", make_trained_bundle(config.max_batch, /*model_seed=*/7));
  engine.register_model("bad", make_trained_bundle(config.max_batch, /*model_seed=*/13));
  const data::Dataset ds = tiny_dataset(4, 9);
  constexpr int kEach = 16;

  std::vector<std::vector<float>> expected(kEach);
  for (int i = 0; i < kEach; ++i)
    expected[static_cast<std::size_t>(i)] =
        direct_scores(*engine.bundle("good"), ds.sample(i % ds.size()));

  std::thread poisoner([&] {
    for (int i = 0; i < kEach; ++i) {
      tensor::Tensor poison = ds.sample(i % ds.size());
      poison.data()[0] = std::numeric_limits<float>::quiet_NaN();
      std::future<Response> future;
      if (engine.submit("bad", poison, &future) == SubmitStatus::kOk)
        EXPECT_EQ(future.get().status, RequestStatus::kInternalError);
    }
  });
  for (int i = 0; i < kEach; ++i) {
    std::future<Response> future;
    ASSERT_EQ(engine.submit("good", ds.sample(i % ds.size()), &future),
              SubmitStatus::kOk);
    const Response response = future.get();
    EXPECT_EQ(response.status, RequestStatus::kOk);
    const std::vector<float>& want = expected[static_cast<std::size_t>(i)];
    ASSERT_EQ(response.scores.size(), want.size());
    for (std::size_t c = 0; c < want.size(); ++c)
      EXPECT_EQ(response.scores[c], want[c]);
  }
  poisoner.join();
  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.internal_errors, static_cast<std::uint64_t>(kEach));
  EXPECT_EQ(stats.numeric_faults, static_cast<std::uint64_t>(kEach));
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.timed_out + stats.internal_errors);
}

}  // namespace
}  // namespace nshd
