// Tests for the planned inference engine: tensor::Workspace arena
// semantics, InferencePlan parity with the legacy allocating forward
// (bitwise, across every zoo model and cut point), plan-based extraction
// and evaluation, and thread-safety of concurrent run_batch calls.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "core/feature_extractor.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "nn/activation.hpp"
#include "nn/plan.hpp"
#include "nn/trainer.hpp"
#include "tensor/workspace.hpp"
#include "util/thread_pool.hpp"

namespace nshd {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;
using tensor::Workspace;

// --- Workspace ---

TEST(Workspace, AllocsAreAlignedAndDisjoint) {
  Workspace ws;
  float* a = ws.alloc(10);
  float* b = ws.alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % Workspace::kAlignBytes, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Workspace::kAlignBytes, 0u);
  // Aligned bump: b starts at least 10 floats past a.
  EXPECT_GE(b, a + 10);
  EXPECT_EQ(ws.alloc(0), nullptr);
}

TEST(Workspace, SpansSurviveGrowth) {
  Workspace ws;  // no reserve: the first alloc creates a minimal block
  float* small = ws.alloc(8);
  for (int i = 0; i < 8; ++i) small[i] = static_cast<float>(i);
  // Way past any existing capacity: must append a block, not reallocate.
  float* big = ws.alloc(1 << 20);
  ASSERT_NE(big, nullptr);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(small[i], static_cast<float>(i));
}

TEST(Workspace, ResetRewindsToStart) {
  Workspace ws(256);
  float* first = ws.alloc(64);
  ws.alloc(64);
  EXPECT_GT(ws.in_use_floats(), 0u);
  ws.reset();
  EXPECT_EQ(ws.in_use_floats(), 0u);
  EXPECT_EQ(ws.alloc(64), first);  // same storage handed out again
}

TEST(Workspace, FrameReleasesScopedAllocations) {
  Workspace ws(1024);
  ws.alloc(64);
  const std::size_t before = ws.in_use_floats();
  float* inner_first = nullptr;
  {
    Workspace::Frame frame(ws);
    inner_first = ws.alloc(128);
    EXPECT_GT(ws.in_use_floats(), before);
  }
  EXPECT_EQ(ws.in_use_floats(), before);
  EXPECT_EQ(ws.alloc(128), inner_first);  // frame memory is reusable
}

TEST(Workspace, PeakTracksHighWater) {
  Workspace ws(1024);
  ws.alloc(100);
  const std::size_t peak_after_100 = ws.peak_floats();
  EXPECT_GE(peak_after_100, 100u);
  ws.reset();
  ws.alloc(50);
  EXPECT_EQ(ws.peak_floats(), peak_after_100);  // peak never shrinks
  EXPECT_EQ(ws.peak_bytes(), peak_after_100 * sizeof(float));
}

TEST(Workspace, ReserveGrowsCapacityOnly) {
  Workspace ws;
  ws.reserve(4096);
  EXPECT_GE(ws.capacity_floats(), 4096u);
  EXPECT_EQ(ws.in_use_floats(), 0u);
  EXPECT_EQ(ws.peak_floats(), 0u);
}

TEST(Workspace, DestroyedArenaBlocksAreRecycled) {
  Workspace::trim_pool();
  float* first = nullptr;
  std::size_t capacity = 0;
  {
    Workspace ws(1 << 20);
    first = ws.alloc(64);
    capacity = ws.capacity_floats();
  }
  // The dead arena's block is parked, not freed...
  EXPECT_EQ(Workspace::pooled_blocks(), 1u);
  EXPECT_EQ(Workspace::pooled_floats(), capacity);
  {
    // ...and the next arena of a compatible size reuses the same pages.
    Workspace ws(1 << 20);
    EXPECT_EQ(ws.alloc(64), first);
    EXPECT_EQ(Workspace::pooled_blocks(), 0u);
  }
  EXPECT_EQ(Workspace::pooled_blocks(), 1u);
  Workspace::trim_pool();
  EXPECT_EQ(Workspace::pooled_blocks(), 0u);
  EXPECT_EQ(Workspace::pooled_floats(), 0u);
}

// --- Parity helpers ---

void expect_bitwise_equal(const Tensor& planned, const Tensor& legacy,
                          const std::string& what) {
  ASSERT_EQ(planned.numel(), legacy.numel()) << what;
  if (planned.numel() == 0) return;
  const int cmp =
      std::memcmp(planned.data(), legacy.data(),
                  static_cast<std::size_t>(planned.numel()) * sizeof(float));
  if (cmp != 0) {
    for (std::int64_t i = 0; i < planned.numel(); ++i) {
      ASSERT_EQ(planned[i], legacy[i])
          << what << ": first value mismatch at flat index " << i;
    }
  }
  EXPECT_EQ(cmp, 0) << what;
}

data::Dataset small_dataset(std::int64_t num_classes, std::int64_t per_class) {
  data::SynthCifarConfig config;
  config.num_classes = num_classes;
  config.samples_per_class = per_class;
  return data::make_synth_cifar(config);
}

/// Copies samples [begin, begin+n) of `ds` into a standalone batch tensor.
Tensor batch_of(const data::Dataset& ds, std::int64_t begin, std::int64_t n) {
  const std::int64_t s = ds.sample_shape().numel();
  const TensorView all = ds.images.view();
  return Tensor::from_view(TensorView(
      all.data() + begin * s, Shape{n, ds.channels(), ds.height(), ds.width()}));
}

/// Planned forward of the same slice through `plan`.
Tensor planned_batch(nn::InferencePlan& plan, const data::Dataset& ds,
                     std::int64_t begin, std::int64_t n) {
  const std::int64_t s = ds.sample_shape().numel();
  const TensorView all = ds.images.view();
  const TensorView in(all.data() + begin * s,
                      Shape{n, ds.channels(), ds.height(), ds.width()});
  Tensor out(plan.output_shape(n));
  plan.run_batch(in, out.view());
  return out;
}

void check_model_parity(const std::string& name) {
  models::ZooModel m = models::make_model(name, 4, /*seed=*/3);
  const data::Dataset ds = small_dataset(4, 8);  // 32 samples
  ASSERT_GE(ds.size(), 32);

  // Every valid cut at an odd batch size.
  for (std::size_t cut = 0; cut < m.feature_count; ++cut) {
    nn::InferencePlan plan(m.net, m.input_chw, cut, /*max_batch=*/7);
    EXPECT_EQ(plan.output_shape(7),
              m.net.output_shape_at(Shape{7, 3, 32, 32}, cut));
    const Tensor legacy = m.net.forward_to(batch_of(ds, 0, 7), cut);
    const Tensor planned = planned_batch(plan, ds, 0, 7);
    expect_bitwise_equal(planned, legacy,
                         name + " cut=" + std::to_string(cut) + " batch=7");
  }

  // The paper's cut points at the batch-size extremes (1 and 32).
  for (std::size_t cut : m.paper_cut_layers) {
    nn::InferencePlan plan(m.net, m.input_chw, cut, /*max_batch=*/32);
    for (std::int64_t batch : {std::int64_t{1}, std::int64_t{32}}) {
      const Tensor legacy = m.net.forward_to(batch_of(ds, 0, batch), cut);
      const Tensor planned = planned_batch(plan, ds, 0, batch);
      expect_bitwise_equal(planned, legacy,
                           name + " cut=" + std::to_string(cut) + " batch=" +
                               std::to_string(batch));
    }
    EXPECT_GT(plan.peak_workspace_bytes(), 0u);
  }
}

// --- InferencePlan parity: every model x every cut ---

TEST(PlanParity, Vgg16sAllCuts) { check_model_parity("vgg16s"); }
TEST(PlanParity, MobileNetV2sAllCuts) { check_model_parity("mobilenetv2s"); }
TEST(PlanParity, EfficientNetB0sAllCuts) { check_model_parity("efficientnet_b0s"); }
TEST(PlanParity, EfficientNetB7sAllCuts) { check_model_parity("efficientnet_b7s"); }

TEST(PlanParity, FullNetworkLogits) {
  models::ZooModel m = models::make_model("mobilenetv2s", 4, 3);
  const data::Dataset ds = small_dataset(4, 8);
  const std::size_t last = m.net.size() - 1;
  nn::InferencePlan plan(m.net, m.input_chw, last, 32);
  const Tensor legacy = m.net.forward_to(batch_of(ds, 0, ds.size()), last);
  const Tensor planned = planned_batch(plan, ds, 0, ds.size());
  expect_bitwise_equal(planned, legacy, "full-net logits");
  EXPECT_EQ(planned.shape(), (Shape{ds.size(), 4}));
}

TEST(PlanParity, DefaultForwardIntoFallback) {
  // A layer without a workspace-native forward_into must still run correctly
  // under a plan, through the allocating base-class fallback.
  class ScaleLayer final : public nn::Layer {
   public:
    Tensor forward(const Tensor& input, bool) override {
      Tensor out(input.shape());
      for (std::int64_t i = 0; i < input.numel(); ++i) out[i] = 2.0f * input[i];
      return out;
    }
    Tensor backward(const Tensor& grad) override { return grad; }
    Shape output_shape(const Shape& input) const override { return input; }
    nn::LayerKind kind() const override { return nn::LayerKind::kActivation; }
    std::string name() const override { return "Scale2x"; }
  };

  nn::Sequential net;
  net.add(std::make_unique<ScaleLayer>());
  net.emplace<nn::ActivationLayer>(nn::Activation::kReLU);
  net.add(std::make_unique<ScaleLayer>());

  Tensor in(Shape{3, 2, 4, 4});
  for (std::int64_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(i % 7) - 3.0f;

  nn::InferencePlan plan(net, Shape{2, 4, 4}, net.size() - 1, 3);
  const Tensor planned = plan.run_batch(in);
  const Tensor legacy = net.forward_to(in, net.size() - 1);
  expect_bitwise_equal(planned, legacy, "fallback layer");
}

// --- Plan-based extraction and evaluation ---

TEST(PlanExtraction, ExtractOneMatchesBatchedRow) {
  models::ZooModel m = models::make_model("mobilenetv2s", 4, 3);
  const data::Dataset ds = small_dataset(4, 3);
  nn::InferencePlan plan(m.net, m.input_chw, 5, 5);

  const core::ExtractedFeatures feats =
      core::extract_features(plan, ds, /*batch_size=*/5);
  EXPECT_EQ(feats.values.shape()[0], ds.size());
  EXPECT_EQ(feats.values.shape()[1], m.feature_dim_at(5));
  EXPECT_EQ(feats.chw, m.feature_shape_at(5));

  const Tensor one = core::extract_one(plan, ds.sample(7));
  const std::int64_t f = feats.values.shape()[1];
  ASSERT_EQ(one.numel(), f);
  for (std::int64_t i = 0; i < f; ++i) {
    EXPECT_EQ(feats.values.at(7, i), one[i]) << "feature " << i;
  }
}

TEST(PlanExtraction, EmptyDatasetYieldsEmptyRows) {
  models::ZooModel m = models::make_model("efficientnet_b0s", 4, 3);
  data::Dataset empty;
  empty.num_classes = 4;
  nn::InferencePlan plan(m.net, m.input_chw, 2, 4);
  const core::ExtractedFeatures feats = core::extract_features(plan, empty);
  EXPECT_EQ(feats.values.shape()[0], 0);
  EXPECT_EQ(feats.values.numel(), 0);
  EXPECT_EQ(feats.chw.numel(), m.feature_dim_at(2));

  EXPECT_EQ(nn::evaluate_classifier(m.net, empty), 0.0);
  EXPECT_TRUE(nn::predict_logits(m.net, empty).empty());
}

TEST(PlanExtraction, EvaluateClassifierMatchesManualLoop) {
  models::ZooModel m = models::make_model("mobilenetv2s", 4, 3);
  const data::Dataset ds = small_dataset(4, 8);

  std::int64_t correct = 0;
  const Tensor logits = m.net.forward_to(batch_of(ds, 0, ds.size()),
                                         m.net.size() - 1);
  for (std::int64_t n = 0; n < ds.size(); ++n) {
    std::int64_t best = 0;
    for (std::int64_t k = 1; k < 4; ++k)
      if (logits.at(n, k) > logits.at(n, best)) best = k;
    if (best == ds.labels[static_cast<std::size_t>(n)]) ++correct;
  }
  const double expected = static_cast<double>(correct) /
                          static_cast<double>(ds.size());
  EXPECT_EQ(nn::evaluate_classifier(m.net, ds, /*batch_size=*/7), expected);

  const Tensor pl = nn::predict_logits(m.net, ds, /*batch_size=*/7);
  expect_bitwise_equal(pl, logits, "predict_logits");
}

// --- Determinism and thread safety ---

TEST(PlanThreading, ExtractionIsThreadCountInvariant) {
  models::ZooModel m = models::make_model("efficientnet_b0s", 4, 3);
  const data::Dataset ds = small_dataset(4, 8);
  nn::InferencePlan plan(m.net, m.input_chw, 4, 8);

  const int original = util::thread_count();
  util::set_thread_count(1);
  const core::ExtractedFeatures serial = core::extract_features(plan, ds, 8);
  util::set_thread_count(4);
  const core::ExtractedFeatures parallel = core::extract_features(plan, ds, 8);
  util::set_thread_count(original);

  expect_bitwise_equal(parallel.values, serial.values, "thread invariance");
}

TEST(PlanThreading, ConcurrentRunBatchIsSafe) {
  models::ZooModel m = models::make_model("efficientnet_b0s", 4, 3);
  const data::Dataset ds = small_dataset(4, 8);  // 32 samples
  nn::InferencePlan plan(m.net, m.input_chw, 3, 8);
  const std::int64_t f = plan.out_features();
  const std::int64_t s = ds.sample_shape().numel();

  // Reference, computed serially through the same plan.
  const core::ExtractedFeatures reference = core::extract_features(plan, ds, 8);

  // Four raw threads hammer the plan concurrently on disjoint output rows.
  Tensor out(Shape{ds.size(), f});
  const TensorView images = ds.images.view();
  const TensorView rows = out.view();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::int64_t begin = t * 8;
      const TensorView in(images.data() + begin * s, Shape{8, 3, 32, 32});
      TensorView slice(rows.data() + begin * f, Shape{8, f});
      plan.run_batch(in, slice);
    });
  }
  for (auto& thread : threads) thread.join();

  expect_bitwise_equal(out, reference.values, "concurrent run_batch");
  EXPECT_GE(plan.workspace_count(), 1u);
}

TEST(PlanReporting, WorkspaceBudgetIsReported) {
  models::ZooModel m = models::make_model("mobilenetv2s", 4, 3);
  nn::InferencePlan plan(m.net, m.input_chw, 10, 16);
  EXPECT_GT(plan.planned_workspace_bytes(), 0u);
  EXPECT_EQ(plan.peak_workspace_bytes(), 0u);  // nothing run yet

  const data::Dataset ds = small_dataset(4, 4);
  core::extract_features(plan, ds, 16);
  EXPECT_GT(plan.peak_workspace_bytes(), 0u);
  // The shape-inferred budget must cover the observed high water; if this
  // fails, scratch_floats underestimates and plans grow mid-flight.
  EXPECT_LE(plan.peak_workspace_bytes(), plan.planned_workspace_bytes());
}

TEST(PlanReporting, OversizedBatchLeaseIsReleasedNotPooled) {
  models::ZooModel m = models::make_model("mobilenetv2s", 4, 3);
  nn::InferencePlan plan(m.net, m.input_chw, 4, /*max_batch=*/4);
  const data::Dataset ds = small_dataset(4, 8);  // 32 samples
  const TensorView images = ds.images.view();
  const std::int64_t s = ds.sample_shape().numel();

  // Steady state: a batch within max_batch pools exactly one workspace and
  // stays inside the shape-inferred budget.
  Tensor out4(plan.output_shape(4));
  const TensorView in4(images.data(), Shape{4, 3, 32, 32});
  plan.run_batch(in4, out4.view());
  EXPECT_EQ(plan.workspace_count(), 1u);
  EXPECT_LE(plan.peak_workspace_bytes(), plan.planned_workspace_bytes());

  // One oversized burst (n = 32 > max_batch = 4) needs far more arena than
  // planned; it must run on a throwaway workspace, never inflating the pool.
  Tensor out(plan.output_shape(ds.size()));
  plan.run_batch(images, out.view());
  EXPECT_EQ(plan.workspace_count(), 1u);
  // Peak tracking still records the burst's true high water.
  const std::size_t burst_peak = plan.peak_workspace_bytes();
  EXPECT_GT(burst_peak, plan.planned_workspace_bytes());

  // Back to steady traffic: the planned-size workspace is re-used and the
  // burst peak remains visible.
  const TensorView in4b(images.data() + 4 * s, Shape{4, 3, 32, 32});
  plan.run_batch(in4b, out4.view());
  EXPECT_EQ(plan.workspace_count(), 1u);
  EXPECT_EQ(plan.peak_workspace_bytes(), burst_peak);
}

}  // namespace
}  // namespace nshd
