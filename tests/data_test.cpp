// Tests for src/data: SynthCIFAR generator properties and batching.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <fstream>

#include "data/ppm.hpp"
#include "data/synth_cifar.hpp"

namespace nshd::data {
namespace {

SynthCifarConfig small_config() {
  SynthCifarConfig config;
  config.num_classes = 10;
  config.samples_per_class = 8;
  return config;
}

TEST(SynthCifar, ShapeAndLabels) {
  const Dataset ds = make_synth_cifar(small_config());
  EXPECT_EQ(ds.size(), 80);
  EXPECT_EQ(ds.channels(), 3);
  EXPECT_EQ(ds.height(), 32);
  EXPECT_EQ(ds.width(), 32);
  EXPECT_EQ(ds.num_classes, 10);
  std::vector<int> counts(10, 0);
  for (std::int64_t label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 10);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_EQ(c, 8);
}

TEST(SynthCifar, PixelsAreNormalized) {
  const Dataset ds = make_synth_cifar(small_config());
  for (float v : ds.images.span()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SynthCifar, DeterministicForSameSeed) {
  const Dataset a = make_synth_cifar(small_config());
  const Dataset b = make_synth_cifar(small_config());
  ASSERT_EQ(a.images.numel(), b.images.numel());
  for (std::int64_t i = 0; i < a.images.numel(); ++i)
    ASSERT_EQ(a.images[i], b.images[i]);
}

TEST(SynthCifar, DifferentSeedsDiffer) {
  SynthCifarConfig c1 = small_config();
  SynthCifarConfig c2 = small_config();
  c2.seed = 123456;
  const Dataset a = make_synth_cifar(c1);
  const Dataset b = make_synth_cifar(c2);
  std::int64_t equal = 0;
  for (std::int64_t i = 0; i < a.images.numel(); ++i)
    if (a.images[i] == b.images[i]) ++equal;
  EXPECT_LT(equal, a.images.numel() / 2);
}

TEST(SynthCifar, SplitOffsetChangesInstances) {
  const Dataset a = make_synth_cifar(small_config(), 0);
  const Dataset b = make_synth_cifar(small_config(), 1);
  std::int64_t equal = 0;
  for (std::int64_t i = 0; i < a.images.numel(); ++i)
    if (a.images[i] == b.images[i]) ++equal;
  EXPECT_LT(equal, a.images.numel() / 2);
}

TEST(SynthCifar, InstancesWithinClassVary) {
  const Dataset ds = make_synth_cifar(small_config());
  // Samples 0 and 1 are both class 0 but must not be identical (noise,
  // jitter, flips).
  const std::int64_t chw = ds.sample_shape().numel();
  std::int64_t equal = 0;
  for (std::int64_t i = 0; i < chw; ++i)
    if (ds.images[i] == ds.images[chw + i]) ++equal;
  EXPECT_LT(equal, chw / 4);
}

TEST(SynthCifar, ClassesAreStatisticallyDistinct) {
  // Mean images of two classes should differ much more than mean images of
  // two disjoint halves of the same class.
  SynthCifarConfig config = small_config();
  config.samples_per_class = 80;
  config.noise_stddev = 0.1f;
  config.jitter_fraction = 0.1f;
  config.distractor_strength = 0.3f;
  const Dataset ds = make_synth_cifar(config);
  const std::int64_t chw = ds.sample_shape().numel();

  auto mean_image = [&](std::int64_t cls, std::int64_t lo, std::int64_t hi) {
    std::vector<double> m(static_cast<std::size_t>(chw), 0.0);
    std::int64_t count = 0;
    for (std::int64_t i = 0; i < ds.size(); ++i) {
      if (ds.labels[static_cast<std::size_t>(i)] != cls) continue;
      if (count >= lo && count < hi) {
        for (std::int64_t j = 0; j < chw; ++j) m[static_cast<std::size_t>(j)] += ds.images[i * chw + j];
      }
      ++count;
    }
    for (auto& v : m) v /= static_cast<double>(hi - lo);
    return m;
  };
  auto l2 = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
  };

  const auto class0_half1 = mean_image(0, 0, 40);
  const auto class0_half2 = mean_image(0, 40, 80);
  const auto class1 = mean_image(1, 0, 80);
  EXPECT_GT(l2(class0_half1, class1), 1.5 * l2(class0_half1, class0_half2));
}

TEST(SynthCifar, HundredClassVariant) {
  SynthCifarConfig config;
  config.num_classes = 100;
  config.samples_per_class = 2;
  const Dataset ds = make_synth_cifar(config);
  EXPECT_EQ(ds.size(), 200);
  EXPECT_EQ(ds.num_classes, 100);
  std::set<std::int64_t> seen(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SynthCifar, CacheKeyDistinguishesConfigs) {
  SynthCifarConfig a = small_config();
  SynthCifarConfig b = small_config();
  b.noise_stddev = 0.5f;
  EXPECT_NE(a.cache_key("train"), b.cache_key("train"));
  EXPECT_NE(a.cache_key("train"), a.cache_key("test"));
}

TEST(SynthCifar, TrainTestSplitUsesDisjointNoise) {
  const TrainTest tt = make_synth_cifar_split(small_config(), 4);
  EXPECT_EQ(tt.train.size(), 80);
  EXPECT_EQ(tt.test.size(), 40);
}

TEST(Dataset, GatherCopiesRows) {
  const Dataset ds = make_synth_cifar(small_config());
  const tensor::Tensor batch = ds.gather({3, 5});
  EXPECT_EQ(batch.shape(), tensor::Shape({2, 3, 32, 32}));
  const std::int64_t chw = ds.sample_shape().numel();
  for (std::int64_t i = 0; i < chw; ++i) {
    EXPECT_EQ(batch[i], ds.images[3 * chw + i]);
    EXPECT_EQ(batch[chw + i], ds.images[5 * chw + i]);
  }
}

TEST(Dataset, GatherLabels) {
  const Dataset ds = make_synth_cifar(small_config());
  const auto labels = ds.gather_labels({0, 8, 16});
  EXPECT_EQ(labels, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(BatchIterator, CoversWholeEpochOnce) {
  const Dataset ds = make_synth_cifar(small_config());
  util::Rng rng(1);
  BatchIterator it(ds, 16, rng);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t seen = 0;
  while (it.next(images, labels)) seen += static_cast<std::int64_t>(labels.size());
  EXPECT_EQ(seen, ds.size());
  EXPECT_EQ(it.batches_per_epoch(), 5);
}

TEST(BatchIterator, LastBatchMayBeShort) {
  const Dataset ds = make_synth_cifar(small_config());  // 80 samples
  util::Rng rng(1);
  BatchIterator it(ds, 32, rng);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  std::vector<std::int64_t> sizes;
  while (it.next(images, labels)) sizes.push_back(images.shape()[0]);
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{32, 32, 16}));
}

TEST(BatchIterator, ShuffleChangesOrderAcrossEpochs) {
  const Dataset ds = make_synth_cifar(small_config());
  util::Rng rng(1);
  BatchIterator it(ds, 80, rng);
  tensor::Tensor images;
  std::vector<std::int64_t> first, second;
  it.next(images, first);
  it.reset();
  it.next(images, second);
  EXPECT_NE(first, second);
}

TEST(Ppm, WritesValidHeaderAndSize) {
  const Dataset ds = make_synth_cifar(small_config());
  const std::string path = "/tmp/nshd_ppm_test.ppm";
  ASSERT_TRUE(write_ppm(ds, 0, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 32);
  EXPECT_EQ(h, 32);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(32 * 32 * 3);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_TRUE(static_cast<bool>(in));
  std::remove(path.c_str());
}

TEST(Ppm, SheetCoversAllClasses) {
  const Dataset ds = make_synth_cifar(small_config());
  const std::string path = "/tmp/nshd_ppm_sheet_test.ppm";
  ASSERT_TRUE(write_ppm_sheet(ds, 3, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0;
  in >> magic >> w >> h;
  EXPECT_EQ(w, 3 * 32);
  EXPECT_EQ(h, 10 * 32);
  std::remove(path.c_str());
}

TEST(BatchIterator, NoShufflePreservesOrder) {
  const Dataset ds = make_synth_cifar(small_config());
  util::Rng rng(1);
  BatchIterator it(ds, 80, rng, /*shuffle=*/false);
  tensor::Tensor images;
  std::vector<std::int64_t> labels;
  it.next(images, labels);
  EXPECT_EQ(labels, ds.labels);
}

}  // namespace
}  // namespace nshd::data
