// Tests for src/util: rng, table formatting, cache, cli parsing, thread pool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/cache.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace nshd::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(Rng, NextBelowIsBounded) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    saw_lo |= x == 2;
    saw_hi |= x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BipolarIsBalanced) {
  Rng rng(19);
  int pos = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bipolar() > 0) ++pos;
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(29);
  auto perm = random_permutation(100, rng);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(perm[i], i);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork(0);
  // The fork must not replay the parent's stream.
  int equal = 0;
  Rng parent_copy(31);
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent_copy.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Table, RendersAllRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1"), std::string::npos);
  EXPECT_NE(s.find("| 3"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, MarkdownHasSeparator) {
  Table t({"x"});
  t.add_row({"1"});
  EXPECT_NE(t.to_markdown().find("---|"), std::string::npos);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(0.63871, 2), "0.64");
  EXPECT_EQ(cell(std::size_t{42}), "42");
  EXPECT_EQ(cell(-3), "-3");
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2048), "2.00KB");
  EXPECT_EQ(format_bytes(69.61 * 1024 * 1024), "69.61MB");
}

TEST(Table, FormatCount) {
  EXPECT_EQ(format_count(500), "500");
  EXPECT_EQ(format_count(2500), "2.50K");
  EXPECT_EQ(format_count(3.1e6), "3.10M");
  EXPECT_EQ(format_count(2.5e9), "2.50G");
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nshd_cache_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DiskCacheTest, RoundTrip) {
  DiskCache cache(dir_.string());
  const std::vector<float> blob{1.0f, 2.5f, -3.0f};
  EXPECT_FALSE(cache.contains("key"));
  cache.put("key", blob);
  EXPECT_TRUE(cache.contains("key"));
  auto loaded = cache.get("key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, blob);
}

TEST_F(DiskCacheTest, MissingKeyReturnsNullopt) {
  DiskCache cache(dir_.string());
  EXPECT_FALSE(cache.get("missing").has_value());
}

TEST_F(DiskCacheTest, EraseRemovesEntry) {
  DiskCache cache(dir_.string());
  cache.put("key", {1.0f});
  cache.erase("key");
  EXPECT_FALSE(cache.contains("key"));
}

TEST_F(DiskCacheTest, DistinctKeysDistinctEntries) {
  DiskCache cache(dir_.string());
  cache.put("a", {1.0f});
  cache.put("b", {2.0f});
  EXPECT_EQ((*cache.get("a"))[0], 1.0f);
  EXPECT_EQ((*cache.get("b"))[0], 2.0f);
}

namespace {
/// The on-disk slot a key hashes to (mirrors DiskCache::path_for).
std::filesystem::path slot_path(const std::filesystem::path& dir, const std::string& key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir / (std::string(buf) + ".bin");
}
}  // namespace

TEST_F(DiskCacheTest, HashCollisionIsAMissNotTheWrongBlob) {
  DiskCache cache(dir_.string());
  cache.put("stored-key", {1.0f, 2.0f, 3.0f});
  // Simulate an fnv1a64 collision: drop the entry written for "stored-key"
  // into the slot "victim-key" hashes to.  Before the keyed header, get()
  // would happily return stored-key's blob for victim-key.
  std::filesystem::copy_file(slot_path(dir_, "stored-key"), slot_path(dir_, "victim-key"));
  EXPECT_FALSE(cache.get("victim-key").has_value());
  EXPECT_FALSE(cache.contains("victim-key"));
  // The real key still round-trips.
  auto loaded = cache.get("stored-key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

TEST_F(DiskCacheTest, LegacyHeaderlessEntryIsAMiss) {
  DiskCache cache(dir_.string());
  // Pre-header format: raw floats, no magic/key.  Must read as a miss, and
  // a fresh put() must repair the slot.
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(slot_path(dir_, "key"), std::ios::binary);
    const float legacy[2] = {9.0f, 8.0f};
    out.write(reinterpret_cast<const char*>(legacy), sizeof legacy);
  }
  EXPECT_FALSE(cache.get("key").has_value());
  EXPECT_FALSE(cache.contains("key"));
  cache.put("key", {4.0f});
  auto loaded = cache.get("key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, std::vector<float>{4.0f});
}

TEST_F(DiskCacheTest, ConcurrentPutsDoNotCorrupt) {
  DiskCache cache(dir_.string());
  // Writers hammer one shared key (same value) and one private key each;
  // unique staging names keep half-written temp files from colliding.
  const std::vector<float> shared_blob{3.25f, -1.5f};
  constexpr int kWriters = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::vector<float> mine{static_cast<float>(w), static_cast<float>(w) + 0.5f};
      for (int round = 0; round < kRounds; ++round) {
        cache.put("shared", shared_blob);
        cache.put("private-" + std::to_string(w), mine);
      }
    });
  }
  for (auto& t : writers) t.join();
  auto shared = cache.get("shared");
  ASSERT_TRUE(shared.has_value());
  EXPECT_EQ(*shared, shared_blob);
  for (int w = 0; w < kWriters; ++w) {
    auto mine = cache.get("private-" + std::to_string(w));
    ASSERT_TRUE(mine.has_value());
    EXPECT_EQ(*mine,
              (std::vector<float>{static_cast<float>(w), static_cast<float>(w) + 0.5f}));
  }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  set_thread_count(4);
  std::vector<std::atomic<int>> hits(1001);
  for (auto& h : hits) h.store(0);
  parallel_for(0, 1001, 7, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesIgnoreThreadCount) {
  // The fixed partitioning contract: chunk index/begin/end depend only on
  // (range, grain), so float reductions over per-chunk partials are
  // bitwise identical for any pool size.
  auto chunks_at = [](int threads) {
    set_thread_count(threads);
    const std::int64_t n = 103, grain = 9;
    std::vector<std::array<std::int64_t, 3>> seen(
        static_cast<std::size_t>(chunk_count(0, n, grain)));
    parallel_for_chunks(0, n, grain,
                        [&](std::int64_t c, std::int64_t b, std::int64_t e) {
                          seen[static_cast<std::size_t>(c)] = {c, b, e};
                        });
    return seen;
  };
  EXPECT_EQ(chunks_at(1), chunks_at(8));
}

TEST(ThreadPool, PartialSumReductionIsDeterministic) {
  // Awkward float magnitudes; per-chunk partials reduced in index order
  // must match bitwise across thread counts.
  const std::int64_t n = 4099, grain = 16;
  std::vector<float> values(static_cast<std::size_t>(n));
  Rng rng(99);
  for (auto& v : values) v = rng.uniform(-1e6f, 1e6f);
  auto sum_at = [&](int threads) {
    set_thread_count(threads);
    std::vector<float> partial(static_cast<std::size_t>(chunk_count(0, n, grain)), 0.0f);
    parallel_for_chunks(0, n, grain,
                        [&](std::int64_t c, std::int64_t b, std::int64_t e) {
                          float local = 0.0f;
                          for (std::int64_t i = b; i < e; ++i)
                            local += values[static_cast<std::size_t>(i)];
                          partial[static_cast<std::size_t>(c)] = local;
                        });
    float total = 0.0f;
    for (const float p : partial) total += p;
    return total;
  };
  const float serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(ThreadPool, NestedCallsRunInline) {
  set_thread_count(4);
  std::atomic<int> total{0};
  parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      // Nested parallel_for must not deadlock on the outer job's pool.
      parallel_for(0, 10, 2, [&](std::int64_t nb, std::int64_t ne) {
        total.fetch_add(static_cast<int>(ne - nb));
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, ContendedCallersBothMakeProgress) {
  // Regression: a second external caller used to block on caller_mutex_
  // behind an unrelated job.  Here caller A's chunks cannot finish until
  // caller B's parallel_for completes — with head-of-line blocking this
  // deadlocks; with the contended-inline fallback B completes on its own
  // thread and unblocks A.
  set_thread_count(4);
  std::atomic<bool> a_started{false};
  std::atomic<bool> b_done{false};
  std::atomic<int> a_total{0}, b_total{0};

  std::thread a([&] {
    parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
      a_started.store(true);
      while (!b_done.load()) std::this_thread::yield();
      a_total.fetch_add(static_cast<int>(e - b));
    });
  });
  std::thread b([&] {
    while (!a_started.load()) std::this_thread::yield();
    parallel_for(0, 100, 3, [&](std::int64_t nb, std::int64_t ne) {
      b_total.fetch_add(static_cast<int>(ne - nb));
    });
    b_done.store(true);
  });
  a.join();
  b.join();
  EXPECT_EQ(a_total.load(), 8);
  EXPECT_EQ(b_total.load(), 100);
}

TEST(ThreadPool, ContendedCallerKeepsChunkBoundaries) {
  // The inline fallback must preserve the fixed chunk partitioning, so a
  // contended caller's reduction stays bitwise identical.
  set_thread_count(4);
  std::atomic<bool> a_started{false};
  std::atomic<bool> b_done{false};
  std::vector<std::array<std::int64_t, 3>> seen(
      static_cast<std::size_t>(chunk_count(0, 103, 9)));

  std::thread a([&] {
    parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
      a_started.store(true);
      while (!b_done.load()) std::this_thread::yield();
    });
  });
  std::thread b([&] {
    while (!a_started.load()) std::this_thread::yield();
    parallel_for_chunks(0, 103, 9,
                        [&](std::int64_t c, std::int64_t cb, std::int64_t ce) {
                          seen[static_cast<std::size_t>(c)] = {c, cb, ce};
                        });
    b_done.store(true);
  });
  a.join();
  b.join();
  for (std::size_t c = 0; c < seen.size(); ++c) {
    const std::int64_t b0 = static_cast<std::int64_t>(c) * 9;
    EXPECT_EQ(seen[c][0], static_cast<std::int64_t>(c));
    EXPECT_EQ(seen[c][1], b0);
    EXPECT_EQ(seen[c][2], std::min<std::int64_t>(b0 + 9, 103));
  }
}

TEST(ThreadPool, ParseThreadCountAcceptsPlainIntegers) {
  EXPECT_EQ(parse_thread_count("1", 8), 1);
  EXPECT_EQ(parse_thread_count("16", 8), 16);
  EXPECT_EQ(parse_thread_count("  12  ", 8), 12);  // strtol skips leading ws
  EXPECT_EQ(parse_thread_count("256", 8), 256);
}

TEST(ThreadPool, ParseThreadCountRejectsGarbage) {
  // Trailing garbage must not half-parse ("8x" used to read as 8).
  EXPECT_EQ(parse_thread_count("8x", 3), 3);
  EXPECT_EQ(parse_thread_count("fast", 3), 3);
  EXPECT_EQ(parse_thread_count("3.5", 3), 3);
  EXPECT_EQ(parse_thread_count("", 3), 3);
  EXPECT_EQ(parse_thread_count(nullptr, 3), 3);
}

TEST(ThreadPool, ParseThreadCountRangeChecks) {
  EXPECT_EQ(parse_thread_count("0", 5), 5);
  EXPECT_EQ(parse_thread_count("-4", 5), 5);
  EXPECT_EQ(parse_thread_count("1000000", 5), kMaxThreads);
}

TEST(ThreadPool, EmptyAndSingleChunkRanges) {
  set_thread_count(4);
  int calls = 0;
  parallel_for(5, 5, 4, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(0, 3, 100, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST(CliArgs, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name=test"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(args.get("name", ""), "test");
}

TEST(CliArgs, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--epochs", "12"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("epochs", 0), 12);
}

TEST(CliArgs, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(CliArgs, PositionalPreserved) {
  const char* argv[] = {"prog", "input.bin", "--x=1", "output.bin"};
  CliArgs args(4, const_cast<char**>(argv));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.bin");
  EXPECT_EQ(args.positional()[1], "output.bin");
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("missing", "def"), "def");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

}  // namespace
}  // namespace nshd::util
