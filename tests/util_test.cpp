// Tests for src/util: rng, table formatting, cache, cli parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/cache.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace nshd::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(x, -2.0f);
    EXPECT_LT(x, 3.0f);
  }
}

TEST(Rng, NextBelowIsBounded) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int x = rng.uniform_int(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    saw_lo |= x == 2;
    saw_hi |= x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BipolarIsBalanced) {
  Rng rng(19);
  int pos = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bipolar() > 0) ++pos;
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(29);
  auto perm = random_permutation(100, rng);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(perm[i], i);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork(0);
  // The fork must not replay the parent's stream.
  int equal = 0;
  Rng parent_copy(31);
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == parent_copy.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Table, RendersAllRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1"), std::string::npos);
  EXPECT_NE(s.find("| 3"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, MarkdownHasSeparator) {
  Table t({"x"});
  t.add_row({"1"});
  EXPECT_NE(t.to_markdown().find("---|"), std::string::npos);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(0.63871, 2), "0.64");
  EXPECT_EQ(cell(std::size_t{42}), "42");
  EXPECT_EQ(cell(-3), "-3");
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2048), "2.00KB");
  EXPECT_EQ(format_bytes(69.61 * 1024 * 1024), "69.61MB");
}

TEST(Table, FormatCount) {
  EXPECT_EQ(format_count(500), "500");
  EXPECT_EQ(format_count(2500), "2.50K");
  EXPECT_EQ(format_count(3.1e6), "3.10M");
  EXPECT_EQ(format_count(2.5e9), "2.50G");
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nshd_cache_test_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DiskCacheTest, RoundTrip) {
  DiskCache cache(dir_.string());
  const std::vector<float> blob{1.0f, 2.5f, -3.0f};
  EXPECT_FALSE(cache.contains("key"));
  cache.put("key", blob);
  EXPECT_TRUE(cache.contains("key"));
  auto loaded = cache.get("key");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, blob);
}

TEST_F(DiskCacheTest, MissingKeyReturnsNullopt) {
  DiskCache cache(dir_.string());
  EXPECT_FALSE(cache.get("missing").has_value());
}

TEST_F(DiskCacheTest, EraseRemovesEntry) {
  DiskCache cache(dir_.string());
  cache.put("key", {1.0f});
  cache.erase("key");
  EXPECT_FALSE(cache.contains("key"));
}

TEST_F(DiskCacheTest, DistinctKeysDistinctEntries) {
  DiskCache cache(dir_.string());
  cache.put("a", {1.0f});
  cache.put("b", {2.0f});
  EXPECT_EQ((*cache.get("a"))[0], 1.0f);
  EXPECT_EQ((*cache.get("b"))[0], 2.0f);
}

TEST(CliArgs, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=0.5", "--name=test"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(args.get("name", ""), "test");
}

TEST(CliArgs, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--epochs", "12"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("epochs", 0), 12);
}

TEST(CliArgs, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(CliArgs, PositionalPreserved) {
  const char* argv[] = {"prog", "input.bin", "--x=1", "output.bin"};
  CliArgs args(4, const_cast<char**>(argv));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.bin");
  EXPECT_EQ(args.positional()[1], "output.bin");
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get("missing", "def"), "def");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

}  // namespace
}  // namespace nshd::util
