// Tests for the planned zero-alloc training path: finite-difference checks
// of every layer's backward_into, bitwise parity between the legacy
// allocating trainer loop and the TrainingPlan path, thread-count and
// prefetch-depth invariance of the accumulated gradients, kill-resume
// through the planned path, the train.* fault sites, and the
// backward-after-forward training-state contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "data/pipeline.hpp"
#include "data/synth_cifar.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/train_plan.hpp"
#include "nn/trainer.hpp"
#include "tensor/workspace.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nshd::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorView;
using tensor::Workspace;

Tensor random_tensor(Shape shape, util::Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = rng.normal(0.0f, scale);
  return t;
}

std::vector<Tensor> snapshot_state(Layer& layer) {
  std::vector<Tensor*> ptrs;
  layer.append_state(ptrs);
  std::vector<Tensor> out;
  out.reserve(ptrs.size());
  for (const Tensor* t : ptrs) out.push_back(*t);
  return out;
}

void restore_state(Layer& layer, const std::vector<Tensor>& snapshot) {
  std::vector<Tensor*> ptrs;
  layer.append_state(ptrs);
  ASSERT_EQ(ptrs.size(), snapshot.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    ASSERT_EQ(ptrs[i]->numel(), snapshot[i].numel());
    std::memcpy(ptrs[i]->data(), snapshot[i].data(),
                static_cast<std::size_t>(snapshot[i].numel()) * sizeof(float));
  }
}

bool tensors_bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

::testing::AssertionResult models_bitwise_equal(Layer& a, Layer& b) {
  std::vector<Tensor*> sa, sb;
  a.append_state(sa);
  b.append_state(sb);
  if (sa.size() != sb.size())
    return ::testing::AssertionFailure()
           << "state bank sizes differ: " << sa.size() << " vs " << sb.size();
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i]->numel() != sb[i]->numel())
      return ::testing::AssertionFailure() << "tensor " << i << " numel differs";
    if (std::memcmp(sa[i]->data(), sb[i]->data(),
                    static_cast<std::size_t>(sa[i]->numel()) * sizeof(float)) != 0) {
      for (std::int64_t j = 0; j < sa[i]->numel(); ++j)
        if ((*sa[i])[j] != (*sb[i])[j] ||
            std::signbit((*sa[i])[j]) != std::signbit((*sb[i])[j]))
          return ::testing::AssertionFailure()
                 << "state tensor " << i << " differs at " << j << ": "
                 << (*sa[i])[j] << " vs " << (*sb[i])[j];
      return ::testing::AssertionFailure() << "state tensor " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Probe loss sum(out .* probe) through the planned training forward.
/// Callers restore the layer's state (params, batch-norm running stats,
/// dropout step counters) to the baseline before each call — append_state
/// covers the param values too, so a restore inside this function would
/// undo the caller's finite-difference perturbation.
double planned_loss(Layer& layer, const Tensor& x, const Tensor& probe,
                    Workspace& ws) {
  ws.reset();
  Tensor out(layer.output_shape(x.shape()));
  layer.forward_train_into(x.view(), out.view(), ws);
  double loss = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i)
    loss += static_cast<double>(out[i]) * probe[i];
  return loss;
}

/// Finite-difference check of backward_into through the planned API
/// (forward_train_into + backward_into on a shared workspace).
void check_planned_gradients(Layer& layer, Tensor x, double tolerance = 2e-2,
                             float eps = 1e-2f) {
  util::Rng rng(4242);
  Workspace ws;
  const std::vector<Tensor> state0 = snapshot_state(layer);
  const Tensor probe = random_tensor(layer.output_shape(x.shape()), rng);

  restore_state(layer, state0);
  ws.reset();
  zero_grads(layer.params());
  Tensor out(layer.output_shape(x.shape()));
  layer.forward_train_into(x.view(), out.view(), ws);
  Tensor grad_in(x.shape());
  layer.backward_into(x.view(), probe.view(), grad_in.view(), ws);

  // Copy the analytic gradients out before the numeric passes overwrite
  // anything.
  std::vector<Tensor> param_grads;
  for (Param* p : layer.params()) param_grads.push_back(p->grad);

  // Each numeric evaluation restores the full baseline first (pinning the
  // batch-norm stats and dropout step), then applies one perturbation.
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 20);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    const float saved = x[i];
    restore_state(layer, state0);
    x[i] = saved + eps;
    const double up = planned_loss(layer, x, probe, ws);
    restore_state(layer, state0);
    x[i] = saved - eps;
    const double down = planned_loss(layer, x, probe, ws);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tolerance + 0.05 * std::fabs(numeric))
        << layer.name() << " input grad at " << i;
  }

  const std::vector<Param*> params = layer.params();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param* p = params[pi];
    const std::int64_t pstride = std::max<std::int64_t>(1, p->value.numel() / 12);
    for (std::int64_t i = 0; i < p->value.numel(); i += pstride) {
      restore_state(layer, state0);
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double up = planned_loss(layer, x, probe, ws);
      restore_state(layer, state0);
      p->value[i] = saved - eps;
      const double down = planned_loss(layer, x, probe, ws);
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(param_grads[pi][i], numeric,
                  tolerance + 0.05 * std::fabs(numeric))
          << layer.name() << " " << p->name << " grad at " << i;
    }
  }
  restore_state(layer, state0);
}

// --- Finite-difference checks, planned API, every layer type ---

TEST(PlannedGradient, Conv2dOddShapes) {
  util::Rng rng(11);
  Conv2d conv(3, 5, 3, 2, 1, /*bias=*/true, rng);
  check_planned_gradients(conv, random_tensor(Shape{7, 3, 7, 5}, rng));
}

TEST(PlannedGradient, Conv2dBatchOne) {
  util::Rng rng(12);
  Conv2d conv(2, 4, 3, 1, 1, /*bias=*/true, rng);
  check_planned_gradients(conv, random_tensor(Shape{1, 2, 5, 5}, rng));
}

TEST(PlannedGradient, PointwiseConv2d) {
  // The 1x1/s1/p0 backward takes the im2col-free fast path.
  util::Rng rng(13);
  Conv2d conv(4, 6, 1, 1, 0, /*bias=*/true, rng);
  check_planned_gradients(conv, random_tensor(Shape{7, 4, 5, 3}, rng));
}

TEST(PlannedGradient, DepthwiseConv2d) {
  util::Rng rng(14);
  DepthwiseConv2d conv(4, 3, 1, 1, rng);
  check_planned_gradients(conv, random_tensor(Shape{7, 4, 6, 5}, rng));
}

TEST(PlannedGradient, BatchNorm2d) {
  util::Rng rng(15);
  BatchNorm2d bn(5);
  check_planned_gradients(bn, random_tensor(Shape{7, 5, 4, 3}, rng), 5e-2);
}

TEST(PlannedGradient, ActivationSiLU) {
  util::Rng rng(16);
  ActivationLayer act(Activation::kSiLU);
  check_planned_gradients(act, random_tensor(Shape{7, 6, 5, 4}, rng));
}

TEST(PlannedGradient, MaxPool2d) {
  util::Rng rng(17);
  MaxPool2d pool(2, 2);
  check_planned_gradients(pool, random_tensor(Shape{7, 3, 6, 4}, rng));
}

TEST(PlannedGradient, GlobalAvgPool) {
  util::Rng rng(18);
  GlobalAvgPool pool;
  check_planned_gradients(pool, random_tensor(Shape{7, 5, 4, 6}, rng));
}

TEST(PlannedGradient, Linear) {
  util::Rng rng(19);
  Linear linear(10, 7, rng);
  check_planned_gradients(linear, random_tensor(Shape{7, 10}, rng));
}

TEST(PlannedGradient, Flatten) {
  util::Rng rng(20);
  Flatten flatten;
  check_planned_gradients(flatten, random_tensor(Shape{7, 3, 4, 2}, rng));
}

TEST(PlannedGradient, Dropout) {
  // The state snapshot/restore in check_planned_gradients pins the step
  // counter, so every finite-difference evaluation sees the same mask.
  util::Rng rng(21);
  Dropout dropout(0.3f, rng);
  check_planned_gradients(dropout, random_tensor(Shape{7, 5, 3, 2}, rng));
}

TEST(PlannedGradient, SqueezeExcite) {
  util::Rng rng(22);
  SqueezeExcite se(6, 3, Activation::kSiLU, rng);
  check_planned_gradients(se, random_tensor(Shape{5, 6, 4, 3}, rng, 0.5f), 5e-2);
}

TEST(PlannedGradient, MBConvResidual) {
  util::Rng rng(23);
  MBConvConfig cfg;
  cfg.in_channels = 6;
  cfg.out_channels = 6;  // stride 1 + equal channels => residual
  cfg.expand_ratio = 2;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.use_se = true;
  cfg.se_reduction = 2;
  cfg.activation = Activation::kSiLU;
  MBConvBlock block(cfg, rng);
  check_planned_gradients(block, random_tensor(Shape{3, 6, 5, 5}, rng, 0.5f), 8e-2);
}

TEST(PlannedGradient, MBConvNonResidual) {
  util::Rng rng(24);
  MBConvConfig cfg;
  cfg.in_channels = 6;
  cfg.out_channels = 8;  // channel change => no residual
  cfg.expand_ratio = 2;
  cfg.kernel = 3;
  cfg.stride = 2;
  cfg.use_se = false;
  cfg.activation = Activation::kReLU6;
  MBConvBlock block(cfg, rng);
  // Deep chains need a tighter probe step: at eps=1e-2 the central difference
  // picks up curvature (and ReLU6 kinks) from every downstream layer.
  check_planned_gradients(block, random_tensor(Shape{3, 6, 6, 6}, rng, 0.5f),
                          8e-2, 5e-4f);
}

TEST(PlannedGradient, SequentialStackAcrossBatchSizes) {
  for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{7}, std::int64_t{32}}) {
    util::Rng rng(25);
    Sequential net;
    net.emplace<Conv2d>(3, 6, 3, 1, 1, true, rng);
    net.emplace<BatchNorm2d>(6);
    net.emplace<ActivationLayer>(Activation::kSiLU);
    net.emplace<MaxPool2d>(2, 2);
    net.emplace<Flatten>();
    net.emplace<Linear>(6 * 3 * 2, 4, rng);
    // eps=5e-4: through six layers the fd estimate at eps=1e-2 is dominated
    // by third-order terms (verified to converge to the analytic value).
    check_planned_gradients(net, random_tensor(Shape{batch, 3, 6, 4}, rng),
                            5e-2, 5e-4f);
  }
}

TEST(PlannedGradient, MatchesLegacyBackwardBitwise) {
  // The legacy backward delegates to backward_into, so both paths must emit
  // the same gradient bits; this guards the delegation wiring itself.
  util::Rng rng(26);
  Conv2d conv(3, 5, 3, 1, 1, true, rng);
  Tensor x = random_tensor(Shape{4, 3, 6, 6}, rng);
  const Tensor probe = random_tensor(Shape{4, 5, 6, 6}, rng);

  zero_grads(conv.params());
  conv.forward(x, /*training=*/true);
  const Tensor legacy_grad_in = conv.backward(probe);
  std::vector<Tensor> legacy_grads;
  for (Param* p : conv.params()) legacy_grads.push_back(p->grad);

  zero_grads(conv.params());
  Workspace ws;
  Tensor out(conv.output_shape(x.shape()));
  conv.forward_train_into(x.view(), out.view(), ws);
  Tensor planned_grad_in(x.shape());
  conv.backward_into(x.view(), probe.view(), planned_grad_in.view(), ws);

  EXPECT_TRUE(tensors_bitwise_equal(legacy_grad_in, planned_grad_in));
  const std::vector<Param*> params = conv.params();
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_TRUE(tensors_bitwise_equal(legacy_grads[i], params[i]->grad))
        << params[i]->name;
}

// --- Training-state contract ---

TEST(TrainingState, BackwardBeforeTrainingForwardThrows) {
  util::Rng rng(31);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  Tensor g = random_tensor(Shape{2, 3, 4, 4}, rng);
  EXPECT_THROW(conv.backward(g), TrainingStateError);

  // Eval-mode forward must not arm the backward path either.
  Tensor x = random_tensor(Shape{2, 2, 4, 4}, rng);
  conv.forward(x, /*training=*/false);
  EXPECT_THROW(conv.backward(g), TrainingStateError);
}

TEST(TrainingState, StaleBatchShapeThrows) {
  util::Rng rng(32);
  Linear linear(6, 4, rng);
  Tensor x = random_tensor(Shape{5, 6}, rng);
  linear.forward(x, /*training=*/true);
  Tensor wrong = random_tensor(Shape{3, 4}, rng);  // batch 3 != cached 5
  EXPECT_THROW(linear.backward(wrong), TrainingStateError);
}

TEST(TrainingState, SequentialTapeIsSingleUse) {
  util::Rng rng(33);
  Sequential net;
  net.emplace<Linear>(4, 3, rng);
  Tensor x = random_tensor(Shape{2, 4}, rng);
  Tensor probe = random_tensor(Shape{2, 3}, rng);
  Tensor grad_in(x.shape());
  Workspace ws;

  // No tape yet.
  EXPECT_THROW(net.backward_into(x.view(), probe.view(), grad_in.view(), ws),
               TrainingStateError);

  Tensor out(net.output_shape(x.shape()));
  net.forward_train_into(x.view(), out.view(), ws);
  net.backward_into(x.view(), probe.view(), grad_in.view(), ws);
  // The tape was consumed; a second backward must not silently reuse it.
  EXPECT_THROW(net.backward_into(x.view(), probe.view(), grad_in.view(), ws),
               TrainingStateError);
}

TEST(TrainingState, TrainingPlanValidatesInputs) {
  util::Rng rng(34);
  Sequential net;
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 3 * 3, 4, rng);
  TrainingPlan plan(net, Shape{2, 3, 3}, /*max_batch=*/4);

  Tensor good = random_tensor(Shape{4, 2, 3, 3}, rng);
  Tensor bad_shape = random_tensor(Shape{4, 2, 3, 5}, rng);
  EXPECT_THROW(plan.step(bad_shape.view(), {0, 1, 2, 3}), TrainingStateError);
  EXPECT_THROW(plan.step(good.view(), {0, 1}), TrainingStateError);  // 2 labels
  EXPECT_THROW(plan.step(good.view(), {0, 1, 2, 9}), TrainingStateError);
  EXPECT_NO_THROW(plan.step(good.view(), {0, 1, 2, 3}));
}

TEST(TrainingState, PlanWorkspaceStaysWithinBudget) {
  util::Rng rng(35);
  Sequential net;
  net.emplace<Conv2d>(3, 6, 3, 1, 1, true, rng);
  net.emplace<BatchNorm2d>(6);
  net.emplace<ActivationLayer>(Activation::kReLU);
  net.emplace<Flatten>();
  net.emplace<Linear>(6 * 8 * 8, 4, rng);
  TrainingPlan plan(net, Shape{3, 8, 8}, /*max_batch=*/8);

  Tensor x = random_tensor(Shape{8, 3, 8, 8}, rng);
  std::vector<std::int64_t> labels{0, 1, 2, 3, 0, 1, 2, 3};
  for (int i = 0; i < 3; ++i) plan.step(x.view(), labels);
  EXPECT_GT(plan.peak_workspace_bytes(), 0u);
  EXPECT_LE(plan.peak_workspace_bytes(), plan.planned_workspace_bytes());
}

TEST(TrainingState, PlanBudgetCoversSiblingBlockPins) {
  // Stacked MBConv blocks each pin their internal activation tape for the
  // whole forward; the budget must SUM sibling pins (a max over layers
  // underestimates — regression test for exactly that bug).
  util::Rng rng(36);
  MBConvConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.expand_ratio = 3;
  cfg.activation = Activation::kReLU6;
  Sequential net;
  for (int i = 0; i < 3; ++i) net.emplace<MBConvBlock>(cfg, rng);
  net.emplace<Flatten>();
  net.emplace<Linear>(8 * 6 * 6, 4, rng);
  TrainingPlan plan(net, Shape{8, 6, 6}, /*max_batch=*/4);

  Tensor x = random_tensor(Shape{4, 8, 6, 6}, rng);
  std::vector<std::int64_t> labels{0, 1, 2, 3};
  for (int i = 0; i < 2; ++i) plan.step(x.view(), labels);
  EXPECT_GT(plan.peak_workspace_bytes(), 0u);
  EXPECT_LE(plan.peak_workspace_bytes(), plan.planned_workspace_bytes());
}

// --- Dropout's counter-based stream ---

TEST(Dropout, CounterStreamIsReproducibleAndAdvances) {
  util::Rng rng_a(5), rng_b(5), data_rng(6);
  Dropout a(0.4f, rng_a);
  Dropout b(0.4f, rng_b);
  Tensor x = random_tensor(Shape{3, 4, 2, 2}, data_rng);

  const Tensor y_a = a.forward(x, /*training=*/true);
  const Tensor y_b = b.forward(x, /*training=*/true);
  EXPECT_TRUE(tensors_bitwise_equal(y_a, y_b));  // same seed, same step

  const Tensor y_a2 = a.forward(x, /*training=*/true);
  EXPECT_FALSE(tensors_bitwise_equal(y_a, y_a2));  // step advanced

  const Tensor eval = a.forward(x, /*training=*/false);
  EXPECT_TRUE(tensors_bitwise_equal(eval, x));  // inference is identity

  // The mask is a pure function of (seed, step, index): any thread count
  // produces the same bits.
  const int threads_before = util::thread_count();
  util::set_thread_count(4);
  util::Rng rng_c(5);
  Dropout c(0.4f, rng_c);
  const Tensor y_c = c.forward(x, /*training=*/true);
  util::set_thread_count(threads_before);
  EXPECT_TRUE(tensors_bitwise_equal(y_a, y_c));
}

// --- Batch pipeline ---

data::Dataset small_dataset(std::int64_t classes = 3,
                            std::int64_t per_class = 8) {
  data::SynthCifarConfig cfg;
  cfg.num_classes = classes;
  cfg.samples_per_class = per_class;
  cfg.image_size = 8;
  cfg.seed = 321;
  return data::make_synth_cifar(cfg);
}

TEST(BatchPipeline, MatchesBatchIteratorBitwise) {
  const data::Dataset set = small_dataset(3, 5);  // N=15, batch 4 => ragged tail
  for (const int depth : {0, 2}) {
    util::Rng rng_iter(99), rng_pipe(99);
    data::BatchIterator it(set, 4, rng_iter);
    data::BatchPipeline pipe(set, 4, rng_pipe, depth);
    ASSERT_EQ(it.batches_per_epoch(), pipe.batches_per_epoch());

    for (int epoch = 0; epoch < 2; ++epoch) {
      it.reset();
      pipe.reset();
      Tensor it_images;
      TensorView pipe_images;
      std::vector<std::int64_t> it_labels, pipe_labels;
      while (it.next(it_images, it_labels)) {
        ASSERT_TRUE(pipe.next(pipe_images, pipe_labels)) << "depth " << depth;
        ASSERT_EQ(pipe_images.shape(), it_images.shape());
        EXPECT_EQ(std::memcmp(pipe_images.data(), it_images.data(),
                              static_cast<std::size_t>(it_images.numel()) *
                                  sizeof(float)),
                  0)
            << "depth " << depth << " epoch " << epoch;
        EXPECT_EQ(pipe_labels, it_labels);
      }
      TensorView leftover;
      std::vector<std::int64_t> leftover_labels;
      EXPECT_FALSE(pipe.next(leftover, leftover_labels));
    }
  }
}

TEST(BatchPipeline, PrefetchStallDelaysButPreservesStream) {
  const data::Dataset set = small_dataset(3, 5);
  util::Rng rng_ref(7), rng_faulty(7);
  data::BatchIterator reference(set, 4, rng_ref);

  util::fault::disarm_all();
  util::fault::arm("train.prefetch_stall", 2);
  data::BatchPipeline pipe(set, 4, rng_faulty, /*depth=*/2);

  Tensor ref_images;
  TensorView pipe_images;
  std::vector<std::int64_t> ref_labels, pipe_labels;
  while (reference.next(ref_images, ref_labels)) {
    ASSERT_TRUE(pipe.next(pipe_images, pipe_labels));
    EXPECT_EQ(std::memcmp(pipe_images.data(), ref_images.data(),
                          static_cast<std::size_t>(ref_images.numel()) *
                              sizeof(float)),
              0);
    EXPECT_EQ(pipe_labels, ref_labels);
  }
  EXPECT_GT(util::fault::hits("train.prefetch_stall"), 0u);
  util::fault::disarm_all();
}

// --- End-to-end trainer parity / invariance ---

Sequential build_parity_model(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential net;
  net.emplace<Conv2d>(3, 8, 3, 1, 1, true, rng);
  net.emplace<BatchNorm2d>(8);
  net.emplace<ActivationLayer>(Activation::kReLU6);
  net.emplace<DepthwiseConv2d>(8, 3, 2, 1, rng);  // 8x8 -> 4x4
  net.emplace<BatchNorm2d>(8);
  net.emplace<ActivationLayer>(Activation::kSiLU);
  net.emplace<SqueezeExcite>(8, 4, Activation::kSiLU, rng);
  net.emplace<MaxPool2d>(2, 2);  // 4x4 -> 2x2
  net.emplace<Flatten>();
  net.emplace<Linear>(8 * 2 * 2, 3, rng);
  return net;
}

TrainConfig base_config() {
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.target_train_accuracy = 0.0f;  // no early stop: fixed schedule
  config.seed = 7;
  config.prefetch_depth = 0;
  return config;
}

TEST(Trainer, PlannedMatchesLegacyBitwise) {
  const data::Dataset set = small_dataset();

  Sequential legacy_model = build_parity_model(100);
  TrainConfig legacy_config = base_config();
  legacy_config.planned = false;
  const TrainReport legacy_report =
      train_classifier(legacy_model, set, legacy_config);

  Sequential planned_model = build_parity_model(100);
  TrainConfig planned_config = base_config();
  planned_config.planned = true;
  const TrainReport planned_report =
      train_classifier(planned_model, set, planned_config);

  ASSERT_EQ(legacy_report.epochs.size(), planned_report.epochs.size());
  for (std::size_t e = 0; e < legacy_report.epochs.size(); ++e) {
    EXPECT_EQ(legacy_report.epochs[e].loss, planned_report.epochs[e].loss);
    EXPECT_EQ(legacy_report.epochs[e].accuracy,
              planned_report.epochs[e].accuracy);
  }
  EXPECT_TRUE(models_bitwise_equal(legacy_model, planned_model));
}

TEST(Trainer, PrefetchDepthDoesNotChangeWeights) {
  const data::Dataset set = small_dataset();

  Sequential sync_model = build_parity_model(101);
  TrainConfig sync_config = base_config();
  sync_config.prefetch_depth = 0;
  train_classifier(sync_model, set, sync_config);

  Sequential deep_model = build_parity_model(101);
  TrainConfig deep_config = base_config();
  deep_config.prefetch_depth = 2;
  train_classifier(deep_model, set, deep_config);

  EXPECT_TRUE(models_bitwise_equal(sync_model, deep_model));
}

TEST(Trainer, ThreadCountInvariantGradientAccumulation) {
  const data::Dataset set = small_dataset();
  const int threads_before = util::thread_count();

  util::set_thread_count(1);
  Sequential reference = build_parity_model(102);
  train_classifier(reference, set, base_config());

  for (const int threads : {4, 8}) {
    util::set_thread_count(threads);
    Sequential model = build_parity_model(102);
    train_classifier(model, set, base_config());
    EXPECT_TRUE(models_bitwise_equal(reference, model))
        << "NSHD_THREADS=" << threads;
  }
  util::set_thread_count(threads_before);
}

Sequential build_dropout_model(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential net;
  net.emplace<Conv2d>(3, 6, 3, 2, 1, true, rng);  // 8x8 -> 4x4
  net.emplace<BatchNorm2d>(6);
  net.emplace<ActivationLayer>(Activation::kReLU);
  net.emplace<Flatten>();
  net.emplace<Dropout>(0.25f, rng);
  net.emplace<Linear>(6 * 4 * 4, 3, rng);
  return net;
}

TEST(Trainer, KillResumeIsBitwiseThroughPlannedPath) {
  // The model includes Dropout so the resumable step counter is exercised.
  const data::Dataset set = small_dataset();
  TrainConfig config = base_config();
  config.epochs = 3;

  Sequential straight = build_dropout_model(103);
  TrainCheckpoint after_first;
  bool captured = false;
  train_classifier(straight, set, config,
                   [&](const EpochStats& stats, const TrainCheckpoint& tc) {
                     if (stats.epoch == 0) {
                       after_first = tc;
                       captured = true;
                     }
                   });
  ASSERT_TRUE(captured);

  Sequential resumed = build_dropout_model(103);
  const TrainReport report =
      train_classifier(resumed, set, config, {}, &after_first);
  EXPECT_EQ(report.resumed_from_epoch, 1);
  EXPECT_TRUE(models_bitwise_equal(straight, resumed));
}

TEST(Trainer, GradNanFaultTriggersDivergenceRecovery) {
  const data::Dataset set = small_dataset();
  util::fault::disarm_all();
  util::fault::arm("train.grad_nan", 1);  // poison the first planned step

  Sequential model = build_parity_model(104);
  TrainConfig config = base_config();
  const TrainReport report = train_classifier(model, set, config);

  EXPECT_GT(util::fault::hits("train.grad_nan"), 0u);
  util::fault::disarm_all();

  EXPECT_EQ(report.divergence_recoveries, 1);
  EXPECT_FALSE(report.diverged);
  std::vector<Tensor*> state;
  model.append_state(state);
  for (const Tensor* t : state)
    for (const float v : t->span()) ASSERT_TRUE(std::isfinite(v));

  // Both configured epochs still completed after the rollback-and-retry.
  EXPECT_EQ(report.epochs.size(), 2u);
}

}  // namespace
}  // namespace nshd::nn
