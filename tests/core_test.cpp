// Tests for src/core: feature extraction, the manifold learner and its
// HD-decoded training signal, Algorithm 1's update vector, and NSHD
// end-to-end on a small synthetic problem.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/feature_extractor.hpp"
#include "core/manifold.hpp"
#include "core/nshd.hpp"
#include "data/synth_cifar.hpp"
#include "models/zoo.hpp"
#include "tensor/ops.hpp"

namespace nshd::core {
namespace {

using tensor::Shape;
using tensor::Tensor;

// --- FeatureExtractor ---

TEST(FeatureExtractor, MatchesDirectForward) {
  models::ZooModel m = models::make_mobilenetv2s(4, 3);
  data::SynthCifarConfig config;
  config.num_classes = 4;
  config.samples_per_class = 3;
  const data::Dataset ds = data::make_synth_cifar(config);

  const ExtractedFeatures feats = extract_features(m, 5, ds, /*batch_size=*/5);
  EXPECT_EQ(feats.values.shape()[0], ds.size());
  EXPECT_EQ(feats.values.shape()[1], m.feature_dim_at(5));

  // Row 7 must equal a single-sample forward.
  const Tensor one = extract_one(m, 5, ds.sample(7));
  const std::int64_t f = feats.values.shape()[1];
  for (std::int64_t i = 0; i < f; ++i) {
    EXPECT_NEAR(feats.values.at(7, i), one[i], 1e-4f);
  }
}

// --- ManifoldLearner ---

TEST(Manifold, SpatialPoolHalvesExtent) {
  ManifoldConfig config;
  config.output_features = 10;
  const ManifoldLearner ml(Shape{4, 6, 6}, config);
  EXPECT_EQ(ml.input_features(), 4 * 3 * 3);
  EXPECT_EQ(ml.output_features(), 10);
  EXPECT_EQ(ml.raw_features(), 4 * 6 * 6);
}

TEST(Manifold, SpatialPoolTakesMaxima) {
  ManifoldConfig config;
  config.output_features = 2;
  const ManifoldLearner ml(Shape{1, 4, 4}, config);
  Tensor feats(Shape{16});
  feats.fill(-5.0f);
  feats[0] = 1.0f; feats[1] = -2.0f; feats[4] = 0.5f; feats[5] = 0.9f;
  const Tensor pooled = ml.pool(feats);
  EXPECT_EQ(pooled.numel(), 4);
  EXPECT_FLOAT_EQ(pooled[0], 1.0f);  // max of the top-left 2x2 window
}

TEST(Manifold, SmallMapsPassThroughUnpooled) {
  // 2x2 (and smaller) activations are not pooled: collapsing them would
  // discard 3/4 of the information entering the FC regressor.
  ManifoldConfig config;
  config.output_features = 3;
  const ManifoldLearner small(Shape{8, 2, 2}, config);
  EXPECT_EQ(small.input_features(), 32);
  const ManifoldLearner flat(Shape{8, 1, 1}, config);
  EXPECT_EQ(flat.input_features(), 8);
  Tensor feats(Shape{8});
  for (std::int64_t i = 0; i < 8; ++i) feats[i] = static_cast<float>(i);
  const Tensor pooled = flat.pool(feats);
  EXPECT_EQ(pooled.numel(), 8);
  EXPECT_FLOAT_EQ(pooled[7], 7.0f);
}

TEST(Manifold, CompressIsAffine) {
  ManifoldConfig config;
  config.output_features = 2;
  ManifoldLearner ml(Shape{1, 1, 1}, config);
  // One (pass-through) feature -> weight [2,1].
  ml.weight()[0] = 2.0f;
  ml.weight()[1] = -1.0f;
  Tensor pooled(Shape{1});
  pooled[0] = 3.0f;
  const Tensor v = ml.compress(pooled);
  EXPECT_FLOAT_EQ(v[0], 6.0f);
  EXPECT_FLOAT_EQ(v[1], -3.0f);
}

TEST(Manifold, ParameterAndMacCounts) {
  ManifoldConfig config;
  config.output_features = 100;
  const ManifoldLearner ml(Shape{32, 4, 4}, config);
  EXPECT_EQ(ml.parameter_count(), 32 * 2 * 2 * 100 + 100);
  EXPECT_EQ(ml.macs_per_sample(), 32 * 2 * 2 * 100);
}

TEST(Manifold, HdErrorUpdateReducesAlignedLoss) {
  // Construct a 1-sample problem: after the update, re-encoding the same
  // sample must move the pre-sign activations against the supplied error
  // gradient (i.e. the FC actually descends).
  util::Rng rng(5);
  ManifoldConfig config;
  config.output_features = 16;
  config.learning_rate = 0.05f;
  ManifoldLearner ml(Shape{4, 4, 4}, config);
  hd::RandomProjection projection(128, 16, rng);

  Tensor feats(Shape{64});
  for (float& v : feats.span()) v = rng.normal();
  const Tensor pooled = ml.pool(feats);
  Tensor pre_sign;
  projection.encode(ml.compress(pooled), pre_sign);

  // Target: push pre-sign activations toward +infinity on every dimension
  // (g_h = -1 everywhere). After several updates, sum(pre_sign) must rise.
  const double before = tensor::sum(projection.project(ml.compress(pooled)));
  Tensor g_h = Tensor::full(Shape{128}, -1.0f);
  for (int it = 0; it < 10; ++it) {
    Tensor ps;
    projection.encode(ml.compress(pooled), ps);
    ml.apply_hd_error(projection, g_h, ps, pooled);
  }
  const double after = tensor::sum(projection.project(ml.compress(pooled)));
  EXPECT_GT(after, before);
}

TEST(Manifold, IdentitySteUpdatesMoreAggressively) {
  // With identical inputs, the clipped STE can only zero out a subset of the
  // gradient; identity applies all of it.
  util::Rng rng(6);
  ManifoldConfig clipped;
  clipped.output_features = 8;
  clipped.ste = SteMode::kClipped;
  ManifoldConfig identity = clipped;
  identity.ste = SteMode::kIdentity;
  ManifoldLearner a(Shape{2, 4, 4}, clipped);
  ManifoldLearner b(Shape{2, 4, 4}, identity);
  hd::RandomProjection projection(64, 8, rng);

  Tensor feats(Shape{32});
  for (float& v : feats.span()) v = rng.normal();
  const Tensor pooled = a.pool(feats);
  Tensor pre_sign;
  projection.encode(a.compress(pooled), pre_sign);
  // Spike one dimension of pre_sign far beyond 3 sigma so clipping must
  // mask it.
  Tensor spiked = pre_sign;
  spiked[0] = 1000.0f;
  Tensor g_h(Shape{64});
  g_h[0] = 5.0f;  // gradient only on the spiked (clipped-away) dimension

  const Tensor wa_before = a.weight();
  const Tensor wb_before = b.weight();
  a.apply_hd_error(projection, g_h, spiked, pooled);
  b.apply_hd_error(projection, g_h, spiked, pooled);
  double delta_a = 0.0, delta_b = 0.0;
  for (std::int64_t i = 0; i < a.weight().numel(); ++i) {
    delta_a += std::fabs(a.weight()[i] - wa_before[i]);
    delta_b += std::fabs(b.weight()[i] - wb_before[i]);
  }
  EXPECT_EQ(delta_a, 0.0);  // fully masked
  EXPECT_GT(delta_b, 0.0);
}

// --- kd_update_vector (Algorithm 1) ---

TEST(KdUpdate, WithoutTeacherIsMassUpdate) {
  const std::vector<float> sims{0.2f, 0.7f, -0.1f};
  const auto u = kd_update_vector(sims, 0, nullptr, 0.7f, 15.0f);
  EXPECT_FLOAT_EQ(u[0], 1.0f - 0.2f);
  EXPECT_FLOAT_EQ(u[1], -0.7f);
  EXPECT_FLOAT_EQ(u[2], 0.1f);
}

TEST(KdUpdate, AlphaZeroIgnoresTeacher) {
  const std::vector<float> sims{0.2f, 0.7f};
  const float teacher[] = {10.0f, -10.0f};
  const auto with = kd_update_vector(sims, 0, teacher, 0.0f, 15.0f);
  const auto without = kd_update_vector(sims, 0, nullptr, 0.0f, 15.0f);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(with[i], without[i], 1e-6f);
}

TEST(KdUpdate, TeacherPullsTowardItsPrediction) {
  // Teacher confident in class 1; student similarities equal. The distilled
  // component must push class 1 up and class 0 down.
  const std::vector<float> sims{0.3f, 0.3f};
  const float teacher[] = {-5.0f, 5.0f};
  const auto u = kd_update_vector(sims, 0, teacher, 1.0f, 4.0f);
  EXPECT_LT(u[0], 0.0f);
  EXPECT_GT(u[1], 0.0f);
}

TEST(KdUpdate, HigherTemperatureSoftensDistillation) {
  const std::vector<float> sims{0.0f, 0.0f};
  const float teacher[] = {8.0f, -8.0f};
  const auto sharp = kd_update_vector(sims, 0, teacher, 1.0f, 2.0f);
  const auto soft = kd_update_vector(sims, 0, teacher, 1.0f, 30.0f);
  EXPECT_GT(sharp[0], soft[0]);
}

TEST(KdUpdate, ConvexMixOfComponents) {
  const std::vector<float> sims{0.1f, 0.5f};
  const float teacher[] = {3.0f, -1.0f};
  const auto gt_only = kd_update_vector(sims, 0, teacher, 0.0f, 10.0f);
  const auto kd_only = kd_update_vector(sims, 0, teacher, 1.0f, 10.0f);
  const auto mixed = kd_update_vector(sims, 0, teacher, 0.4f, 10.0f);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(mixed[c], 0.6f * gt_only[c] + 0.4f * kd_only[c], 1e-5f);
  }
}

// --- NSHD end-to-end on a tiny problem ---

struct TinyWorld {
  models::ZooModel model = models::make_mobilenetv2s(4, 7);
  data::Dataset train, test;
  ExtractedFeatures train_feats, test_feats;
  tensor::Tensor teacher_logits;

  explicit TinyWorld(std::size_t cut) {
    data::SynthCifarConfig config;
    config.num_classes = 4;
    config.samples_per_class = 40;
    config.noise_stddev = 0.25f;
    config.distractor_strength = 0.4f;
    config.jitter_fraction = 0.15f;
    train = data::make_synth_cifar(config, 0);
    config.samples_per_class = 10;
    test = data::make_synth_cifar(config, 1);

    nn::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 20;
    tc.target_train_accuracy = 0.97f;
    nn::train_classifier(model.net, train, tc);

    train_feats = extract_features(model, cut, train);
    test_feats = extract_features(model, cut, test);
    teacher_logits = nn::predict_logits(model.net, train);
  }
};

/// Shared across tests — building it (CNN pretraining included) is the
/// expensive part, and every test only reads from it or trains its own NSHD
/// on the extracted features.
TinyWorld& tiny_world() {
  static TinyWorld world(14);
  return world;
}

TEST(Nshd, LearnsAboveChanceAndPredictsConsistently) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 1000;
  config.epochs = 8;
  NshdModel nshd(world.model, 14, config);
  nshd.train(world.train_feats, world.train.labels, &world.teacher_logits);

  const double train_acc = nshd.evaluate(world.train_feats, world.train.labels);
  const double test_acc = nshd.evaluate(world.test_feats, world.test.labels);
  EXPECT_GT(train_acc, 0.8);
  EXPECT_GT(test_acc, 0.5);  // far above the 0.25 chance level

  // predict() and predict_image() agree.
  const std::int64_t direct = nshd.predict(world.test_feats.values.data());
  const std::int64_t end_to_end = nshd.predict_image(world.test.sample(0));
  EXPECT_EQ(direct, end_to_end);
}

TEST(Nshd, BaselineConfigDisablesManifoldAndKd) {
  const NshdConfig config = baseline_hd_config(2000);
  EXPECT_FALSE(config.use_kd);
  EXPECT_FALSE(config.use_manifold);
  EXPECT_EQ(config.dim, 2000);

  TinyWorld& world = tiny_world();
  NshdModel baseline(world.model, 14, config);
  EXPECT_EQ(baseline.encoded_features(), world.model.feature_dim_at(14));
  EXPECT_EQ(baseline.manifold(), nullptr);
  baseline.train(world.train_feats, world.train.labels, nullptr);
  EXPECT_GT(baseline.evaluate(world.test_feats, world.test.labels), 0.5);
}

TEST(Nshd, ManifoldReducesEncodedFeatures) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 500;
  config.manifold_features = 32;
  NshdModel nshd(world.model, 14, config);
  EXPECT_EQ(nshd.encoded_features(), 32);
  ASSERT_NE(nshd.manifold(), nullptr);
  EXPECT_LT(nshd.manifold()->output_features(),
            world.model.feature_dim_at(14));
}

TEST(Nshd, SymbolizeAllMatchesSymbolize) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 500;
  NshdModel nshd(world.model, 14, config);
  const auto all = nshd.symbolize_all(world.test_feats);
  ASSERT_EQ(all.size(), static_cast<std::size_t>(world.test.size()));
  const auto one = nshd.symbolize(world.test_feats.values.data());
  EXPECT_EQ(all[0], one);
}

TEST(Nshd, TrainStatsTrackEpochs) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 500;
  config.epochs = 5;
  NshdModel nshd(world.model, 14, config);
  const NshdTrainStats stats =
      nshd.train(world.train_feats, world.train.labels, &world.teacher_logits);
  // Two-phase schedule: `epochs` manifold-fitting epochs plus `epochs` of
  // KD retraining over the frozen encoder.
  EXPECT_EQ(stats.epoch_train_accuracy.size(), 10u);
  EXPECT_GT(stats.seconds, 0.0);
  // Training accuracy must not collapse over the run (small epoch-to-epoch
  // jitter is inherent to the online MASS updates).
  EXPECT_GE(stats.epoch_train_accuracy.back(),
            stats.epoch_train_accuracy.front() - 0.05);
}

TEST(KdRetrain, RunsOnCachedHypervectors) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 500;
  NshdModel nshd(world.model, 14, config);
  const auto hvs = nshd.symbolize_all(world.train_feats);
  nshd.classifier().bundle_init(hvs, world.train.labels);

  KdRetrainConfig retrain;
  retrain.epochs = 6;
  const NshdTrainStats stats = kd_retrain(
      nshd.classifier(), hvs, world.train.labels, &world.teacher_logits, retrain);
  EXPECT_EQ(stats.epoch_train_accuracy.size(), 6u);
  EXPECT_GT(stats.epoch_train_accuracy.back(), 0.5);
}

TEST(Nshd, DecodedPrototypesAlignWithClassMeans) {
  // Interpretability primitive: P^T C_c must be more similar to the mean
  // manifold output of class c than to other classes' means.
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 1000;
  config.epochs = 8;
  NshdModel nshd(world.model, 14, config);
  nshd.train(world.train_feats, world.train.labels, &world.teacher_logits);

  const std::int64_t k = 4;
  const std::int64_t f_hat = nshd.encoded_features();
  // Per-class mean of manifold outputs.
  std::vector<Tensor> means(static_cast<std::size_t>(k), Tensor(Shape{f_hat}));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(k), 0);
  const std::int64_t n = world.train_feats.values.shape()[0];
  const std::int64_t f = world.train_feats.values.shape()[1];
  for (std::int64_t i = 0; i < n; ++i) {
    const Tensor v = nshd.manifold()->forward(world.train_feats.values.data() + i * f);
    const std::int64_t label = world.train.labels[static_cast<std::size_t>(i)];
    tensor::add_inplace(means[static_cast<std::size_t>(label)], v);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (std::int64_t c = 0; c < k; ++c)
    tensor::scale_inplace(means[static_cast<std::size_t>(c)],
                          1.0f / static_cast<float>(counts[static_cast<std::size_t>(c)]));

  auto cosine = [](const Tensor& a, const Tensor& b) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      nb += static_cast<double>(b[i]) * b[i];
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };

  std::int64_t aligned = 0;
  for (std::int64_t c = 0; c < k; ++c) {
    const Tensor proto = nshd.decode_class_prototype(c);
    double own = cosine(proto, means[static_cast<std::size_t>(c)]);
    bool best = true;
    for (std::int64_t other = 0; other < k; ++other) {
      if (other != c && cosine(proto, means[static_cast<std::size_t>(other)]) >= own)
        best = false;
    }
    if (best) ++aligned;
  }
  EXPECT_GE(aligned, 3);  // at least 3 of 4 prototypes align with their class
}

TEST(Nshd, SaveLoadRoundTrip) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 500;
  config.epochs = 4;
  NshdModel trained(world.model, 14, config);
  trained.train(world.train_feats, world.train.labels, &world.teacher_logits);
  const std::vector<float> blob = trained.save_state();

  NshdModel restored(world.model, 14, config);
  ASSERT_TRUE(restored.load_state(blob));
  const std::int64_t f = world.test_feats.values.shape()[1];
  for (std::int64_t i = 0; i < world.test.size(); ++i) {
    const float* row = world.test_feats.values.data() + i * f;
    EXPECT_EQ(trained.predict(row), restored.predict(row));
  }
}

TEST(Nshd, LoadRejectsMismatchedLayout) {
  TinyWorld& world = tiny_world();
  NshdConfig a_config;
  a_config.dim = 500;
  NshdConfig b_config;
  b_config.dim = 600;
  NshdModel a(world.model, 14, a_config);
  NshdModel b(world.model, 14, b_config);
  EXPECT_FALSE(b.load_state(a.save_state()));
}

TEST(Nshd, DeterministicGivenSeed) {
  TinyWorld& world = tiny_world();
  NshdConfig config;
  config.dim = 500;
  config.epochs = 3;
  NshdModel a(world.model, 14, config);
  NshdModel b(world.model, 14, config);
  a.train(world.train_feats, world.train.labels, &world.teacher_logits);
  b.train(world.train_feats, world.train.labels, &world.teacher_logits);
  for (std::int64_t i = 0; i < world.test.size(); ++i) {
    const float* row = world.test_feats.values.data() +
                       i * world.test_feats.values.shape()[1];
    EXPECT_EQ(a.predict(row), b.predict(row));
  }
}

}  // namespace
}  // namespace nshd::core
