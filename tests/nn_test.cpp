// Tests for src/nn: every layer's forward semantics and backward pass
// (checked against finite differences), loss, optimizers, serialization,
// and a tiny end-to-end training run.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace nshd::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor random_tensor(Shape shape, util::Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = rng.normal(0.0f, scale);
  return t;
}

/// Scalar probe loss L = sum(weights .* layer(x)); evaluated in training
/// mode so that BatchNorm's finite differences match the batch-statistics
/// function its backward pass differentiates.
double probe_loss(Layer& layer, const Tensor& x, const Tensor& probe) {
  Tensor out = layer.forward(x, /*training=*/true);
  double loss = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i)
    loss += static_cast<double>(out[i]) * probe[i];
  return loss;
}

/// Checks d(probe loss)/d(input) and d/d(params) against finite differences.
/// BatchNorm in training mode recomputes batch stats, so callers that need
/// eval-mode statistics should pass eval_forward=true.
void check_gradients(Layer& layer, Tensor x, double tolerance = 2e-2) {
  util::Rng rng(4242);
  Tensor out = layer.forward(x, /*training=*/true);
  const Tensor probe = random_tensor(out.shape(), rng);

  zero_grads(layer.params());
  const Tensor grad_in = layer.backward(probe);
  ASSERT_EQ(grad_in.shape(), x.shape());

  const float eps = 1e-2f;
  // Input gradient, spot-checked on a subset of coordinates.
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 25);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    const float saved = x[i];
    x[i] = saved + eps;
    const double up = probe_loss(layer, x, probe);
    x[i] = saved - eps;
    const double down = probe_loss(layer, x, probe);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tolerance + 0.05 * std::fabs(numeric))
        << "input grad at " << i;
  }

  // Parameter gradients.
  for (Param* p : layer.params()) {
    const std::int64_t pstride = std::max<std::int64_t>(1, p->value.numel() / 15);
    for (std::int64_t i = 0; i < p->value.numel(); i += pstride) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double up = probe_loss(layer, x, probe);
      p->value[i] = saved - eps;
      const double down = probe_loss(layer, x, probe);
      p->value[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tolerance + 0.05 * std::fabs(numeric))
          << p->name << " grad at " << i;
    }
  }
}

// --- Conv2d ---

TEST(Conv2d, OutputShape) {
  util::Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, true, rng);
  EXPECT_EQ(conv.output_shape(Shape{2, 3, 16, 16}), Shape({2, 8, 16, 16}));
  Conv2d strided(3, 8, 3, 2, 1, true, rng);
  EXPECT_EQ(strided.output_shape(Shape{1, 3, 16, 16}), Shape({1, 8, 8, 8}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  util::Rng rng(2);
  Conv2d conv(1, 1, 1, 1, 0, /*bias=*/false, rng);
  // Set the single weight to 1.
  conv.params()[0]->value[0] = 1.0f;
  Tensor x = random_tensor(Shape{1, 1, 4, 4}, rng);
  const Tensor y = conv.forward(x, false);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, BiasIsAdded) {
  util::Rng rng(3);
  Conv2d conv(1, 2, 1, 1, 0, /*bias=*/true, rng);
  conv.params()[0]->value.zero();  // weight = 0 => output = bias
  conv.params()[1]->value[0] = 1.5f;
  conv.params()[1]->value[1] = -2.0f;
  Tensor x = random_tensor(Shape{1, 1, 3, 3}, rng);
  const Tensor y = conv.forward(x, false);
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(y[i], 1.5f);
    EXPECT_FLOAT_EQ(y[9 + i], -2.0f);
  }
}

TEST(Conv2d, GradientCheck) {
  util::Rng rng(4);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  check_gradients(conv, random_tensor(Shape{2, 2, 5, 5}, rng));
}

TEST(Conv2d, GradientCheckStride2) {
  util::Rng rng(5);
  Conv2d conv(2, 4, 3, 2, 1, false, rng);
  check_gradients(conv, random_tensor(Shape{1, 2, 6, 6}, rng));
}

TEST(Conv2d, MacsCount) {
  util::Rng rng(6);
  Conv2d conv(3, 8, 3, 1, 1, true, rng);
  // 8 out-ch * 16*16 positions * 3 in-ch * 9 taps.
  EXPECT_EQ(conv.macs_per_sample(Shape{3, 16, 16}), 8 * 16 * 16 * 3 * 9);
}

// --- DepthwiseConv2d ---

TEST(DepthwiseConv2d, OutputShape) {
  util::Rng rng(7);
  DepthwiseConv2d dw(4, 3, 2, 1, rng);
  EXPECT_EQ(dw.output_shape(Shape{1, 4, 8, 8}), Shape({1, 4, 4, 4}));
}

TEST(DepthwiseConv2d, ChannelsAreIndependent) {
  util::Rng rng(8);
  DepthwiseConv2d dw(2, 3, 1, 1, rng);
  // Zero the second channel's kernel; its output must be zero regardless of
  // the first channel's input.
  for (int i = 0; i < 9; ++i) dw.params()[0]->value[9 + i] = 0.0f;
  Tensor x = random_tensor(Shape{1, 2, 4, 4}, rng);
  const Tensor y = dw.forward(x, false);
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(y[16 + i], 0.0f);
}

TEST(DepthwiseConv2d, GradientCheck) {
  util::Rng rng(9);
  DepthwiseConv2d dw(3, 3, 1, 1, rng);
  check_gradients(dw, random_tensor(Shape{2, 3, 5, 5}, rng));
}

TEST(DepthwiseConv2d, MacsCount) {
  util::Rng rng(10);
  DepthwiseConv2d dw(16, 3, 1, 1, rng);
  EXPECT_EQ(dw.macs_per_sample(Shape{16, 8, 8}), 16 * 8 * 8 * 9);
}

// --- BatchNorm2d ---

TEST(BatchNorm2d, NormalizesBatchStatistics) {
  util::Rng rng(11);
  BatchNorm2d bn(3);
  Tensor x = random_tensor(Shape{4, 3, 6, 6}, rng, 3.0f);
  for (float& v : x.span()) v += 5.0f;
  const Tensor y = bn.forward(x, /*training=*/true);
  // Per channel: mean ~0, var ~1 (gamma=1, beta=0 initially).
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t i = 0; i < 36; ++i) {
        const float v = y[(n * 3 + c) * 36 + i];
        sum += v;
        sq += static_cast<double>(v) * v;
        ++count;
      }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  util::Rng rng(12);
  BatchNorm2d bn(2);
  // Run several training batches so running stats approach the true ones.
  for (int i = 0; i < 60; ++i) {
    Tensor x = random_tensor(Shape{8, 2, 4, 4}, rng, 2.0f);
    for (float& v : x.span()) v += 1.0f;
    bn.forward(x, true);
  }
  Tensor x = random_tensor(Shape{4, 2, 4, 4}, rng, 2.0f);
  for (float& v : x.span()) v += 1.0f;
  const Tensor y = bn.forward(x, /*training=*/false);
  EXPECT_NEAR(tensor::mean(y), 0.0, 0.2);
}

TEST(BatchNorm2d, GradientCheck) {
  util::Rng rng(13);
  BatchNorm2d bn(2);
  check_gradients(bn, random_tensor(Shape{3, 2, 4, 4}, rng), 5e-2);
}

// --- Activations ---

TEST(Activation, ReLUValues) {
  EXPECT_FLOAT_EQ(activate(Activation::kReLU, -1.0f), 0.0f);
  EXPECT_FLOAT_EQ(activate(Activation::kReLU, 2.0f), 2.0f);
}

TEST(Activation, ReLU6Saturates) {
  EXPECT_FLOAT_EQ(activate(Activation::kReLU6, 10.0f), 6.0f);
  EXPECT_FLOAT_EQ(activate(Activation::kReLU6, 3.0f), 3.0f);
  EXPECT_FLOAT_EQ(activate(Activation::kReLU6, -1.0f), 0.0f);
}

TEST(Activation, SiLUAtZeroAndLimit) {
  EXPECT_FLOAT_EQ(activate(Activation::kSiLU, 0.0f), 0.0f);
  EXPECT_NEAR(activate(Activation::kSiLU, 10.0f), 10.0f, 1e-3f);
  EXPECT_NEAR(activate(Activation::kSiLU, -10.0f), 0.0f, 1e-3f);
}

TEST(Activation, SigmoidRange) {
  EXPECT_NEAR(activate(Activation::kSigmoid, 0.0f), 0.5f, 1e-6f);
  EXPECT_GT(activate(Activation::kSigmoid, 5.0f), 0.99f);
}

class ActivationGrad : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGrad, GradientCheck) {
  util::Rng rng(14);
  ActivationLayer layer(GetParam());
  // Keep values away from the ReLU kinks to avoid finite-difference noise.
  Tensor x = random_tensor(Shape{2, 3, 4, 4}, rng, 2.0f);
  for (float& v : x.span())
    if (std::fabs(v) < 0.05f) v += 0.2f;
  check_gradients(layer, x);
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGrad,
                         ::testing::Values(Activation::kReLU, Activation::kReLU6,
                                           Activation::kSiLU,
                                           Activation::kSigmoid));

// --- Pooling ---

TEST(MaxPool2d, SelectsMaxima) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1; x[1] = 5; x[2] = 2; x[3] = 3;
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1; x[1] = 5; x[2] = 2; x[3] = 3;
  pool.forward(x, true);
  Tensor g(Shape{1, 1, 1, 1});
  g[0] = 7.0f;
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 7.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(MaxPool2d, GradientCheck) {
  util::Rng rng(15);
  MaxPool2d pool(2, 2);
  check_gradients(pool, random_tensor(Shape{2, 3, 6, 6}, rng));
}

TEST(GlobalAvgPool, AveragesPlanes) {
  GlobalAvgPool pool;
  Tensor x(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 4; ++i) x[i] = 4.0f;      // channel 0
  for (std::int64_t i = 4; i < 8; ++i) x[i] = static_cast<float>(i);  // 4,5,6,7
  const Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 5.5f);
}

TEST(GlobalAvgPool, GradientCheck) {
  util::Rng rng(16);
  GlobalAvgPool pool;
  check_gradients(pool, random_tensor(Shape{2, 3, 4, 4}, rng));
}

// --- Linear / Flatten / Dropout ---

TEST(Linear, ComputesAffineMap) {
  util::Rng rng(17);
  Linear fc(2, 2, rng);
  auto params = fc.params();
  params[0]->value[0] = 1; params[0]->value[1] = 2;   // row 0
  params[0]->value[2] = 3; params[0]->value[3] = 4;   // row 1
  params[1]->value[0] = 10; params[1]->value[1] = 20;
  Tensor x(Shape{1, 2});
  x[0] = 1; x[1] = 1;
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 13.0f);
  EXPECT_FLOAT_EQ(y[1], 27.0f);
}

TEST(Linear, GradientCheck) {
  util::Rng rng(18);
  Linear fc(6, 4, rng);
  check_gradients(fc, random_tensor(Shape{3, 6}, rng));
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  util::Rng rng(19);
  Tensor x = random_tensor(Shape{2, 3, 4, 5}, rng);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  const Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Dropout, InferenceIsIdentity) {
  util::Rng rng(20);
  Dropout drop(0.5f, rng);
  Tensor x = random_tensor(Shape{2, 10}, rng);
  const Tensor y = drop.forward(x, /*training=*/false);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  util::Rng rng(21);
  Dropout drop(0.5f, rng);
  Tensor x = Tensor::full(Shape{1, 2000}, 1.0f);
  const Tensor y = drop.forward(x, /*training=*/true);
  std::int64_t zeros = 0;
  for (float v : y.span()) {
    if (v == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(v, 2.0f);  // 1 / (1 - 0.5)
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2000.0, 0.5, 0.06);
}

// --- Blocks ---

TEST(SqueezeExcite, GatesAreBounded) {
  util::Rng rng(22);
  SqueezeExcite se(4, 2, Activation::kSiLU, rng);
  Tensor x = random_tensor(Shape{2, 4, 3, 3}, rng);
  const Tensor y = se.forward(x, false);
  // |y| <= |x| since the gate is in (0, 1).
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_LE(std::fabs(y[i]), std::fabs(x[i]) + 1e-5f);
}

TEST(SqueezeExcite, GradientCheck) {
  util::Rng rng(23);
  SqueezeExcite se(3, 2, Activation::kSiLU, rng);
  check_gradients(se, random_tensor(Shape{2, 3, 3, 3}, rng), 5e-2);
}

TEST(MBConvBlock, ResidualAppliesWhenShapesMatch) {
  util::Rng rng(24);
  MBConvConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 4;
  cfg.expand_ratio = 2;
  cfg.stride = 1;
  MBConvBlock block(cfg, rng);
  EXPECT_TRUE(block.has_residual());
  MBConvConfig strided = cfg;
  strided.stride = 2;
  MBConvBlock block2(strided, rng);
  EXPECT_FALSE(block2.has_residual());
  MBConvConfig widened = cfg;
  widened.out_channels = 8;
  MBConvBlock block3(widened, rng);
  EXPECT_FALSE(block3.has_residual());
}

TEST(MBConvBlock, OutputShape) {
  util::Rng rng(25);
  MBConvConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  cfg.expand_ratio = 6;
  cfg.stride = 2;
  MBConvBlock block(cfg, rng);
  EXPECT_EQ(block.output_shape(Shape{1, 4, 8, 8}), Shape({1, 6, 4, 4}));
}

TEST(MBConvBlock, GradientCheckWithResidualAndSe) {
  util::Rng rng(26);
  MBConvConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 3;
  cfg.expand_ratio = 2;
  cfg.stride = 1;
  cfg.use_se = true;
  cfg.activation = Activation::kSiLU;
  MBConvBlock block(cfg, rng);
  check_gradients(block, random_tensor(Shape{2, 3, 4, 4}, rng), 8e-2);
}

// --- Sequential ---

TEST(Sequential, ForwardToCutsPrefix) {
  util::Rng rng(27);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);
  net.emplace<ActivationLayer>(Activation::kReLU);
  net.emplace<MaxPool2d>(2, 2);
  Tensor x = random_tensor(Shape{1, 1, 4, 4}, rng);
  const Tensor at1 = net.forward_to(x, 1);
  EXPECT_EQ(at1.shape(), Shape({1, 2, 4, 4}));
  const Tensor at2 = net.forward_to(x, 2);
  EXPECT_EQ(at2.shape(), Shape({1, 2, 2, 2}));
}

TEST(Sequential, OutputShapeAtMatchesForwardTo) {
  util::Rng rng(28);
  Sequential net;
  net.emplace<Conv2d>(3, 4, 3, 2, 1, false, rng);
  net.emplace<BatchNorm2d>(4);
  net.emplace<ActivationLayer>(Activation::kReLU6);
  Tensor x = random_tensor(Shape{2, 3, 8, 8}, rng);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(net.output_shape_at(x.shape(), i), net.forward_to(x, i).shape());
  }
}

TEST(Sequential, ParamsAggregatesChildren) {
  util::Rng rng(29);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);
  net.emplace<Linear>(4, 3, rng);
  EXPECT_EQ(net.params().size(), 4u);  // conv w+b, linear w+b
}

// --- Loss ---

TEST(Loss, PerfectPredictionHasLowLoss) {
  Tensor logits(Shape{2, 3});
  logits.at(0, 0) = 100.0f;
  logits.at(1, 2) = 100.0f;
  const LossResult r = softmax_cross_entropy(logits, {0, 2});
  EXPECT_LT(r.loss, 1e-3);
  EXPECT_EQ(r.correct, 2);
}

TEST(Loss, UniformLogitsGiveLogK) {
  Tensor logits(Shape{1, 10});
  const LossResult r = softmax_cross_entropy(logits, {4});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(Loss, GradientIsSoftmaxMinusOneHotOverN) {
  Tensor logits(Shape{2, 2});
  logits.at(0, 0) = 1.0f;
  const LossResult r = softmax_cross_entropy(logits, {0, 1});
  // Row sums of grad must be ~0 (softmax sums to 1, one-hot sums to 1).
  for (std::int64_t n = 0; n < 2; ++n) {
    EXPECT_NEAR(r.grad_logits.at(n, 0) + r.grad_logits.at(n, 1), 0.0f, 1e-6f);
  }
  // True-class gradient is negative.
  EXPECT_LT(r.grad_logits.at(0, 0), 0.0f);
  EXPECT_LT(r.grad_logits.at(1, 1), 0.0f);
}

TEST(Loss, GradientCheckAgainstFiniteDifference) {
  util::Rng rng(30);
  Tensor logits = random_tensor(Shape{3, 4}, rng);
  const std::vector<std::int64_t> labels{1, 3, 0};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor up = logits, down = logits;
    up[i] += eps;
    down[i] -= eps;
    const double numeric = (softmax_cross_entropy(up, labels).loss -
                            softmax_cross_entropy(down, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(r.grad_logits[i], numeric, 1e-3);
  }
}

// --- Optimizers ---

TEST(Sgd, DescendsQuadratic) {
  // Minimize f(w) = 0.5 * w^2 by feeding grad = w.
  Param w(Shape{1});
  w.value[0] = 10.0f;
  Sgd opt({&w}, 0.1f, 0.0f, 0.0f);
  for (int i = 0; i < 100; ++i) {
    w.grad[0] = w.value[0];
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Param a(Shape{1}), b(Shape{1});
  a.value[0] = b.value[0] = 10.0f;
  Sgd plain({&a}, 0.01f, 0.0f, 0.0f);
  Sgd momentum({&b}, 0.01f, 0.9f, 0.0f);
  for (int i = 0; i < 20; ++i) {
    a.grad[0] = a.value[0];
    plain.step();
    b.grad[0] = b.value[0];
    momentum.step();
  }
  EXPECT_LT(std::fabs(b.value[0]), std::fabs(a.value[0]));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param w(Shape{1});
  w.value[0] = 1.0f;
  Sgd opt({&w}, 0.1f, 0.0f, 0.5f);
  opt.step();  // grad 0, decay only
  EXPECT_LT(w.value[0], 1.0f);
}

TEST(Adam, DescendsQuadratic) {
  Param w(Shape{1});
  w.value[0] = 5.0f;
  Adam opt({&w}, 0.3f);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = w.value[0];
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 0.0f, 1e-2f);
}

TEST(Optimizer, StepZeroesGradients) {
  Param w(Shape{2});
  Sgd opt({&w}, 0.1f);
  w.grad[0] = 1.0f;
  w.grad[1] = -2.0f;
  opt.step();
  EXPECT_EQ(w.grad[0], 0.0f);
  EXPECT_EQ(w.grad[1], 0.0f);
}

// --- Serialization ---

TEST(Serialize, RoundTripRestoresForward) {
  util::Rng rng(31);
  Sequential a;
  a.emplace<Conv2d>(1, 2, 3, 1, 1, false, rng);
  a.emplace<BatchNorm2d>(2);
  a.emplace<ActivationLayer>(Activation::kReLU);

  // Give BN nontrivial running stats.
  for (int i = 0; i < 5; ++i) a.forward(random_tensor(Shape{4, 1, 4, 4}, rng), true);

  const std::vector<float> blob = save_state(a);

  util::Rng rng2(99);
  Sequential b;
  b.emplace<Conv2d>(1, 2, 3, 1, 1, false, rng2);
  b.emplace<BatchNorm2d>(2);
  b.emplace<ActivationLayer>(Activation::kReLU);
  ASSERT_TRUE(load_state(b, blob));

  Tensor x = random_tensor(Shape{1, 1, 4, 4}, rng);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Serialize, RejectsWrongLayout) {
  util::Rng rng(32);
  Sequential a;
  a.emplace<Linear>(4, 3, rng);
  Sequential b;
  b.emplace<Linear>(4, 5, rng);
  const std::vector<float> blob = save_state(a);
  EXPECT_FALSE(load_state(b, blob));
}

TEST(Serialize, ParameterCount) {
  util::Rng rng(33);
  Sequential net;
  net.emplace<Linear>(10, 5, rng);  // 55
  net.emplace<Linear>(5, 2, rng);   // 12
  EXPECT_EQ(parameter_count(net), 67);
}

// --- End-to-end training smoke ---

TEST(Trainer, LearnsLinearlySeparableTask) {
  // Two Gaussian blobs in 8-D; a tiny MLP must fit them.
  util::Rng rng(34);
  const std::int64_t n = 120;
  data::Dataset ds;
  ds.num_classes = 2;
  ds.images = Tensor(Shape{n, 1, 1, 8});
  ds.labels.resize(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = i % 2;
    ds.labels[static_cast<std::size_t>(i)] = label;
    for (std::int64_t j = 0; j < 8; ++j) {
      ds.images[i * 8 + j] = rng.normal(label == 0 ? -1.0f : 1.0f, 0.5f);
    }
  }
  Sequential net;
  net.emplace<Flatten>();
  net.emplace<Linear>(8, 16, rng);
  net.emplace<ActivationLayer>(Activation::kReLU);
  net.emplace<Linear>(16, 2, rng);

  TrainConfig config;
  config.epochs = 30;
  config.batch_size = 16;
  config.learning_rate = 0.05f;
  const TrainReport report = train_classifier(net, ds, config);
  EXPECT_GT(report.final_train_accuracy, 0.95);
  EXPECT_GT(evaluate_classifier(net, ds), 0.95);
}

TEST(Trainer, PredictLogitsShapeAndConsistency) {
  util::Rng rng(35);
  data::Dataset ds;
  ds.num_classes = 3;
  ds.images = random_tensor(Shape{10, 1, 1, 4}, rng);
  ds.labels.assign(10, 0);
  Sequential net;
  net.emplace<Flatten>();
  net.emplace<Linear>(4, 3, rng);
  const Tensor logits = predict_logits(net, ds, /*batch_size=*/4);
  EXPECT_EQ(logits.shape(), Shape({10, 3}));
  // Same input row => same logits independent of batching.
  const Tensor one = net.forward(ds.sample(7).reshaped(Shape{1, 4}), false);
  for (std::int64_t c = 0; c < 3; ++c)
    EXPECT_NEAR(logits.at(7, c), one[c], 1e-5f);
}

}  // namespace
}  // namespace nshd::nn
