// Crash-recovery and robustness tests: the NaN-fingerprint serialization
// regression, same-numel shape rejection, empty-dataset inference, trainer
// divergence recovery (injected NaN loss), and kill-and-resume runs that
// must match their uninterrupted twins bitwise.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "data/dataset.hpp"
#include "data/synth_cifar.hpp"
#include "models/pretrained.hpp"
#include "models/zoo.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "util/cache.hpp"
#include "util/checkpoint.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace nshd {
namespace {

using nn::Sequential;
using tensor::Shape;
using tensor::Tensor;

/// Every site disarmed around each test so injections cannot leak.
class FaultGuard : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::disarm_all(); }
  void TearDown() override { util::fault::disarm_all(); }
};
using Recovery = FaultGuard;
using Divergence = FaultGuard;
using KillResume = FaultGuard;

void expect_params_bitwise_equal(Sequential& a, Sequential& b) {
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    EXPECT_EQ(std::memcmp(pa[i]->value.data(), pb[i]->value.data(),
                          static_cast<std::size_t>(pa[i]->value.numel()) *
                              sizeof(float)),
              0)
        << "param " << i << " differs";
  }
}

// --- NaN-pathological fingerprint (legacy blob header) ---

TEST_F(Recovery, NanFingerprintLayoutStillRoundTrips) {
  // Find a Linear(1, k) whose layout hash bit-casts to a NaN float.  The old
  // header check compared the fingerprint with `!=` on floats, which is
  // always true for NaN — every cached blob of such a layout was rejected
  // and the model retrained forever.
  std::int64_t nan_k = -1;
  for (std::int64_t k = 1; k <= 4096; ++k) {
    util::Rng rng(1);
    nn::Linear probe(1, k, rng);
    const std::vector<float> blob = nn::save_state(probe);
    if (std::isnan(blob[0])) {
      nan_k = k;
      break;
    }
  }
  ASSERT_GT(nan_k, 0) << "no NaN-pattern layout below k=4096";

  util::Rng rng_a(7);
  nn::Linear a(1, nan_k, rng_a);
  const std::vector<float> blob = nn::save_state(a);
  ASSERT_TRUE(std::isnan(blob[0]));

  util::Rng rng_b(8);
  nn::Linear b(1, nan_k, rng_b);
  ASSERT_TRUE(nn::load_state(b, blob));  // the regression: this was false
  ASSERT_EQ(std::memcmp(a.weight().value.data(), b.weight().value.data(),
                        static_cast<std::size_t>(nan_k) * sizeof(float)),
            0);

  // And a genuinely foreign layout is still rejected.
  util::Rng rng_c(9);
  nn::Linear c(1, nan_k + 1, rng_c);
  EXPECT_FALSE(nn::load_state(c, nn::save_state(a)));
}

// --- Same-numel shape changes must be rejected, not garbage-loaded ---

TEST_F(Recovery, SameNumelShapeChangeIsShapeMismatch) {
  // Conv2d(2->3, 1x1, no bias) and Conv2d(3->2, 1x1, no bias) hold a single
  // weight of 6 elements each, but shaped [3,2,1,1] vs [2,3,1,1].  A
  // fingerprint of numel alone cannot tell them apart.
  util::Rng rng(10);
  nn::Conv2d a(2, 3, 1, 1, 0, /*bias=*/false, rng);
  nn::Conv2d b(3, 2, 1, 1, 0, /*bias=*/false, rng);

  const util::Checkpoint cp = nn::checkpoint_state(a);
  EXPECT_EQ(nn::load_state(b, cp), util::LoadStatus::kShapeMismatch);
  EXPECT_EQ(nn::load_state(a, cp), util::LoadStatus::kOk);  // sanity

  // The legacy flat blob now hashes full dims, so it rejects the reshape too.
  EXPECT_FALSE(nn::load_state(b, nn::save_state(a)));
}

TEST_F(Recovery, CheckpointStateFileRoundTripRestoresForward) {
  util::Rng rng(11);
  Sequential a;
  a.emplace<nn::Conv2d>(1, 2, 3, 1, 1, false, rng);
  a.emplace<nn::BatchNorm2d>(2);
  a.emplace<nn::ActivationLayer>(nn::Activation::kReLU);
  // Nontrivial BatchNorm running stats must survive the trip.
  for (int i = 0; i < 5; ++i) {
    Tensor x(Shape{4, 1, 4, 4});
    for (float& v : x.span()) v = rng.normal(0.0f, 1.0f);
    a.forward(x, true);
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("nshd_recovery_rt_" + std::to_string(::getpid()));
  const std::string file = (dir / "net.ckpt").string();
  ASSERT_TRUE(util::write_checkpoint_file(file, nn::checkpoint_state(a, "net")));
  const util::CheckpointLoad load = util::read_checkpoint_file(file);
  ASSERT_TRUE(load.ok());

  util::Rng rng2(99);
  Sequential b;
  b.emplace<nn::Conv2d>(1, 2, 3, 1, 1, false, rng2);
  b.emplace<nn::BatchNorm2d>(2);
  b.emplace<nn::ActivationLayer>(nn::Activation::kReLU);
  ASSERT_EQ(nn::load_state(b, load.checkpoint), util::LoadStatus::kOk);

  Tensor x(Shape{1, 1, 4, 4});
  for (float& v : x.span()) v = rng.normal(0.0f, 1.0f);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
  std::filesystem::remove_all(dir);
}

// --- Empty-dataset inference ---

TEST_F(Recovery, EmptyDatasetInferenceIsExplicit) {
  util::Rng rng(12);
  Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(4, 3, rng);
  data::Dataset empty;
  empty.num_classes = 3;
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(nn::evaluate_classifier(net, empty), 0.0);
  EXPECT_TRUE(nn::predict_logits(net, empty).empty());
}

// --- Divergence recovery in the trainer ---

data::Dataset two_blobs(std::int64_t n = 120) {
  util::Rng rng(34);
  data::Dataset ds;
  ds.num_classes = 2;
  ds.images = Tensor(Shape{n, 1, 1, 8});
  ds.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t label = i % 2;
    ds.labels[static_cast<std::size_t>(i)] = label;
    for (std::int64_t j = 0; j < 8; ++j)
      ds.images[i * 8 + j] = rng.normal(label == 0 ? -1.0f : 1.0f, 0.5f);
  }
  return ds;
}

Sequential small_mlp(std::uint64_t seed = 34) {
  util::Rng rng(seed);
  Sequential net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(8, 16, rng);
  net.emplace<nn::ActivationLayer>(nn::Activation::kReLU);
  net.emplace<nn::Linear>(16, 2, rng);
  return net;
}

TEST_F(Divergence, NanLossRollsBackAndRetries) {
  const data::Dataset ds = two_blobs();
  Sequential net = small_mlp();
  nn::TrainConfig config;
  config.epochs = 20;
  config.batch_size = 16;
  config.learning_rate = 0.05f;

  util::fault::arm("trainer.nan_loss", 1);  // poison one batch of epoch 0
  const nn::TrainReport report = nn::train_classifier(net, ds, config);
  EXPECT_EQ(report.divergence_recoveries, 1);
  EXPECT_FALSE(report.diverged);
  EXPECT_GT(report.final_train_accuracy, 0.9);
  for (const nn::EpochStats& e : report.epochs) EXPECT_TRUE(std::isfinite(e.loss));
  for (nn::Param* p : net.params())
    for (const float v : p->value.span()) ASSERT_TRUE(std::isfinite(v));
}

TEST_F(Divergence, ExhaustedRetriesKeepLastFiniteWeights) {
  const data::Dataset ds = two_blobs();
  Sequential net = small_mlp();
  nn::TrainConfig config;
  config.epochs = 5;
  config.batch_size = 16;
  config.max_divergence_retries = 2;

  util::fault::arm_every("trainer.nan_loss");  // every retry fails too
  const nn::TrainReport report = nn::train_classifier(net, ds, config);
  EXPECT_TRUE(report.diverged);
  EXPECT_EQ(report.divergence_recoveries, 2);
  EXPECT_TRUE(report.epochs.empty());  // no epoch ever completed
  for (nn::Param* p : net.params())
    for (const float v : p->value.span()) ASSERT_TRUE(std::isfinite(v));
}

TEST_F(Divergence, RecoveryCanBeDisabled) {
  const data::Dataset ds = two_blobs();
  Sequential net = small_mlp();
  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.recover_divergence = false;

  util::fault::arm("trainer.nan_loss", 1);
  const nn::TrainReport report = nn::train_classifier(net, ds, config);
  EXPECT_EQ(report.divergence_recoveries, 0);
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_TRUE(std::isnan(report.epochs.front().loss));  // recorded, not hidden
}

// --- Kill-and-resume: bitwise identity with the uninterrupted run ---

TEST_F(KillResume, TrainerResumeIsBitwiseIdentical) {
  const data::Dataset ds = two_blobs();
  nn::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 16;
  config.target_train_accuracy = 0.0f;  // no early stop: all epochs run

  // Uninterrupted twin.
  Sequential uninterrupted = small_mlp();
  nn::train_classifier(uninterrupted, ds, config);

  // Killed run: persist the epoch-1 checkpoint through the full artifact
  // encode/decode path, then die.
  std::vector<std::uint8_t> saved;
  Sequential killed = small_mlp();
  const nn::EpochHook hook = [&saved](const nn::EpochStats& stats,
                                      const nn::TrainCheckpoint& tc) {
    saved = util::encode_checkpoint(tc.to_artifact("resume-test"));
    if (stats.epoch == 1) throw std::runtime_error("injected kill");
  };
  EXPECT_THROW(nn::train_classifier(killed, ds, config, hook), std::runtime_error);
  ASSERT_FALSE(saved.empty());

  // Resume a fresh model from the persisted snapshot.
  const util::CheckpointLoad load =
      util::decode_checkpoint(saved.data(), saved.size());
  ASSERT_TRUE(load.ok());
  const auto resume = nn::TrainCheckpoint::from_artifact(load.checkpoint);
  ASSERT_TRUE(resume.has_value());
  EXPECT_EQ(resume->epochs_done, 2);

  Sequential resumed = small_mlp();
  const nn::TrainReport report =
      nn::train_classifier(resumed, ds, config, {}, &*resume);
  EXPECT_EQ(report.resumed_from_epoch, 2);
  EXPECT_EQ(static_cast<std::int64_t>(report.epochs.size()), 2);

  expect_params_bitwise_equal(uninterrupted, resumed);
}

TEST_F(KillResume, MismatchedResumeCheckpointTrainsFromScratch) {
  const data::Dataset ds = two_blobs();
  nn::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.target_train_accuracy = 0.0f;

  nn::TrainCheckpoint bogus;  // empty state: layout cannot match
  bogus.epochs_done = 1;
  Sequential from_scratch = small_mlp();
  const nn::TrainReport report =
      nn::train_classifier(from_scratch, ds, config, {}, &bogus);
  EXPECT_EQ(report.resumed_from_epoch, 0);
  EXPECT_EQ(static_cast<std::int64_t>(report.epochs.size()), 2);
}

TEST_F(KillResume, PretrainedModelResumesBitwiseAfterKill) {
  const auto base = std::filesystem::temp_directory_path() /
                    ("nshd_killresume_" + std::to_string(::getpid()));
  const util::DiskCache cache_killed((base / "killed").string());
  const util::DiskCache cache_straight((base / "straight").string());

  data::SynthCifarConfig data_config;
  data_config.num_classes = 3;
  data_config.samples_per_class = 6;
  data_config.image_size = 16;
  const data::Dataset tiny = data::make_synth_cifar(data_config);

  models::PretrainOptions options;
  options.train.epochs = 3;
  options.train.batch_size = 6;
  options.train.target_train_accuracy = 0.0f;  // run every epoch in both paths
  options.dataset_key = data_config.cache_key("train");

  // Kill right after the first epoch checkpoint lands on disk.
  util::fault::arm("pretrain.kill", 1);
  EXPECT_THROW(models::pretrained_model("mobilenetv2s", tiny, options, cache_killed),
               std::runtime_error);
  util::fault::disarm_all();

  // Second attempt resumes from the epoch checkpoint and completes.
  models::ZooModel resumed =
      models::pretrained_model("mobilenetv2s", tiny, options, cache_killed);
  // Uninterrupted twin in a separate cache.
  models::ZooModel straight =
      models::pretrained_model("mobilenetv2s", tiny, options, cache_straight);

  expect_params_bitwise_equal(resumed.net, straight.net);

  // The final weights are cached and the epoch checkpoint is cleaned up.
  models::ZooModel probe = models::make_model("mobilenetv2s", 3, options.model_seed);
  models::PretrainOptions effective = options;
  effective.train.learning_rate =
      std::min(options.train.learning_rate, probe.suggested_learning_rate);
  const std::string key = models::pretrain_cache_key("mobilenetv2s", effective, 3);
  EXPECT_TRUE(cache_killed.get_checkpoint(key).ok());
  EXPECT_EQ(cache_killed.get_checkpoint("epoch|" + key).status,
            util::LoadStatus::kNotFound);

  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace nshd
